#include "netsvc/earthqube_service.h"

#include <cstdio>

#include "json/json.h"

namespace agoraeo::netsvc {

using docstore::Document;
using docstore::Value;
using earthqube::EarthQubeQuery;
using earthqube::GeoQuery;
using earthqube::LabelFilter;
using earthqube::LabelOperator;
using earthqube::SearchResponse;

namespace {

StatusOr<double> NumberField(const Document& doc, const std::string& path) {
  const Value* v = doc.GetPath(path);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("missing numeric field: " + path);
  }
  return v->as_number();
}

StatusOr<GeoQuery> GeoFromJson(const Document& geo) {
  if (geo.Has("rect")) {
    const Value* rect = geo.Get("rect");
    if (!rect->is_document()) {
      return Status::InvalidArgument("geo.rect must be an object");
    }
    const Document& r = rect->as_document();
    geo::BoundingBox box;
    AGORAEO_ASSIGN_OR_RETURN(box.min.lat, NumberField(r, "min_lat"));
    AGORAEO_ASSIGN_OR_RETURN(box.min.lon, NumberField(r, "min_lon"));
    AGORAEO_ASSIGN_OR_RETURN(box.max.lat, NumberField(r, "max_lat"));
    AGORAEO_ASSIGN_OR_RETURN(box.max.lon, NumberField(r, "max_lon"));
    return GeoQuery::Rect(box);
  }
  if (geo.Has("circle")) {
    const Value* circle = geo.Get("circle");
    if (!circle->is_document()) {
      return Status::InvalidArgument("geo.circle must be an object");
    }
    const Document& c = circle->as_document();
    geo::Circle out;
    AGORAEO_ASSIGN_OR_RETURN(out.center.lat, NumberField(c, "lat"));
    AGORAEO_ASSIGN_OR_RETURN(out.center.lon, NumberField(c, "lon"));
    AGORAEO_ASSIGN_OR_RETURN(out.radius_meters, NumberField(c, "radius_m"));
    return GeoQuery::InCircle(out);
  }
  if (geo.Has("polygon")) {
    const Value* poly = geo.Get("polygon");
    if (!poly->is_array()) {
      return Status::InvalidArgument("geo.polygon must be an array");
    }
    geo::Polygon out;
    for (const Value& vertex : poly->as_array()) {
      if (!vertex.is_array() || vertex.as_array().size() != 2 ||
          !vertex.as_array()[0].is_number() ||
          !vertex.as_array()[1].is_number()) {
        return Status::InvalidArgument(
            "polygon vertices must be [lat, lon] pairs");
      }
      out.vertices.push_back({vertex.as_array()[0].as_number(),
                              vertex.as_array()[1].as_number()});
    }
    if (out.vertices.size() < 3) {
      return Status::InvalidArgument("polygon needs at least 3 vertices");
    }
    return GeoQuery::InPolygon(std::move(out));
  }
  return Status::InvalidArgument(
      "geo must contain one of rect/circle/polygon");
}

StatusOr<LabelFilter> LabelsFromJson(const Document& labels) {
  const Value* names = labels.Get("names");
  if (names == nullptr || !names->is_array()) {
    return Status::InvalidArgument("labels.names must be an array");
  }
  bigearthnet::LabelSet set;
  for (const Value& name : names->as_array()) {
    if (!name.is_string()) {
      return Status::InvalidArgument("label names must be strings");
    }
    AGORAEO_ASSIGN_OR_RETURN(bigearthnet::LabelId id,
                             bigearthnet::LabelIdFromName(name.as_string()));
    set.Add(id);
  }
  const Value* op = labels.Get("operator");
  const std::string op_name =
      op != nullptr && op->is_string() ? op->as_string() : "some";
  if (op_name == "some") return LabelFilter::Some(std::move(set));
  if (op_name == "exactly") return LabelFilter::Exactly(std::move(set));
  if (op_name == "at_least_and_more") {
    return LabelFilter::AtLeastAndMore(std::move(set));
  }
  return Status::InvalidArgument("unknown label operator: " + op_name);
}

std::string EntryToJsonValue(const earthqube::ResultEntry& entry) {
  Document d;
  d.Set("name", Value(entry.name));
  std::vector<Value> labels;
  for (bigearthnet::LabelId id : entry.labels.ids()) {
    labels.emplace_back(bigearthnet::LabelById(id).name);
  }
  d.Set("labels", Value(std::move(labels)));
  d.Set("country", Value(entry.country));
  d.Set("date", Value(entry.acquisition_date));
  d.Set("lat", Value(entry.map_location.lat));
  d.Set("lon", Value(entry.map_location.lon));
  return json::Serialize(d);
}

}  // namespace

StatusOr<EarthQubeQuery> EarthQubeService::QueryFromJson(
    const Document& body) {
  EarthQubeQuery query;
  if (const Value* geo = body.Get("geo"); geo != nullptr) {
    if (!geo->is_document()) {
      return Status::InvalidArgument("geo must be an object");
    }
    AGORAEO_ASSIGN_OR_RETURN(query.geo, GeoFromJson(geo->as_document()));
  }
  if (const Value* dr = body.Get("date_range"); dr != nullptr) {
    if (!dr->is_document()) {
      return Status::InvalidArgument("date_range must be an object");
    }
    const Value* begin = dr->as_document().Get("begin");
    const Value* end = dr->as_document().Get("end");
    if (begin == nullptr || end == nullptr || !begin->is_string() ||
        !end->is_string()) {
      return Status::InvalidArgument(
          "date_range needs string fields begin and end");
    }
    DateRange range;
    AGORAEO_ASSIGN_OR_RETURN(range.begin,
                             CivilDate::Parse(begin->as_string()));
    AGORAEO_ASSIGN_OR_RETURN(range.end, CivilDate::Parse(end->as_string()));
    query.date_range = range;
  }
  if (const Value* sats = body.Get("satellites"); sats != nullptr) {
    if (!sats->is_array()) {
      return Status::InvalidArgument("satellites must be an array");
    }
    for (const Value& s : sats->as_array()) {
      if (!s.is_string()) {
        return Status::InvalidArgument("satellite entries must be strings");
      }
      query.satellites.push_back(s.as_string());
    }
  }
  if (const Value* seasons = body.Get("seasons"); seasons != nullptr) {
    if (!seasons->is_array()) {
      return Status::InvalidArgument("seasons must be an array");
    }
    for (const Value& s : seasons->as_array()) {
      if (!s.is_string()) {
        return Status::InvalidArgument("season entries must be strings");
      }
      AGORAEO_ASSIGN_OR_RETURN(Season season,
                               SeasonFromString(s.as_string()));
      query.seasons.push_back(season);
    }
  }
  if (const Value* labels = body.Get("labels"); labels != nullptr) {
    if (!labels->is_document()) {
      return Status::InvalidArgument("labels must be an object");
    }
    AGORAEO_ASSIGN_OR_RETURN(query.label_filter,
                             LabelsFromJson(labels->as_document()));
  }
  if (const Value* limit = body.Get("limit"); limit != nullptr) {
    if (!limit->is_int64() || limit->as_int64() < 0) {
      return Status::InvalidArgument("limit must be a non-negative integer");
    }
    query.limit = static_cast<size_t>(limit->as_int64());
  }
  return query;
}

std::string EarthQubeService::ResponseToJson(const SearchResponse& response,
                                             size_t page) {
  std::string out = "{\"total\":" + std::to_string(response.panel.total()) +
                    ",\"page\":" + std::to_string(page) + ",\"plan\":\"" +
                    response.query_stats.plan + "\",\"results\":[";
  bool first = true;
  for (const earthqube::ResultEntry* entry : response.panel.Page(page)) {
    if (!first) out += ",";
    first = false;
    out += EntryToJsonValue(*entry);
  }
  out += "],\"label_statistics\":[";
  first = true;
  for (const earthqube::LabelBar& bar : response.statistics.bars()) {
    if (!first) out += ",";
    first = false;
    char color[16];
    std::snprintf(color, sizeof(color), "#%06X", bar.color_rgb & 0xFFFFFF);
    Document d;
    d.Set("label", Value(bar.label_name));
    d.Set("count", Value(static_cast<int64_t>(bar.count)));
    d.Set("color", Value(std::string(color)));
    out += json::Serialize(d);
  }
  out += "]}";
  return out;
}

void EarthQubeService::RegisterRoutes(HttpServer* server) {
  server->Route("GET", "/health", [](const HttpRequest&) {
    return HttpResponse::Json(200, "{\"status\":\"ok\"}");
  });
  server->Route("POST", "/api/search", [this](const HttpRequest& request) {
    return HandleSearch(request);
  });
  server->Route("POST", "/api/similar/by_name",
                [this](const HttpRequest& request) {
                  return HandleSimilarByName(request);
                });
  server->Route("POST", "/cbir/batch_search",
                [this](const HttpRequest& request) {
                  return HandleBatchSearch(request);
                });
  server->Route("POST", "/api/feedback", [this](const HttpRequest& request) {
    return HandleFeedback(request);
  });
  server->Route("POST", "/api/download", [this](const HttpRequest& request) {
    return HandleDownload(request);
  });
  server->Route("GET", "/api/feedback/count", [this](const HttpRequest&) {
    return HttpResponse::Json(
        200, "{\"count\":" + std::to_string(system_->NumFeedbackEntries()) +
                 "}");
  });
  server->Route("GET", "/api/patch/*", [this](const HttpRequest& request) {
    return HandlePatchMetadata(request);
  });
}

HttpResponse EarthQubeService::HandleSearch(const HttpRequest& request) const {
  auto body = json::ParseObject(request.body.empty() ? "{}" : request.body);
  if (!body.ok()) return HttpResponse::BadRequest(body.status().message());
  auto query = QueryFromJson(*body);
  if (!query.ok()) return HttpResponse::BadRequest(query.status().message());
  auto response = system_->Search(*query);
  if (!response.ok()) {
    return HttpResponse::InternalError(response.status().message());
  }
  size_t page = 0;
  if (const Value* p = body->Get("page"); p != nullptr && p->is_int64()) {
    page = static_cast<size_t>(std::max<int64_t>(0, p->as_int64()));
  }
  return HttpResponse::Json(200, ResponseToJson(*response, page));
}

HttpResponse EarthQubeService::HandleSimilarByName(
    const HttpRequest& request) const {
  auto body = json::ParseObject(request.body);
  if (!body.ok()) return HttpResponse::BadRequest(body.status().message());
  const Value* name = body->Get("name");
  if (name == nullptr || !name->is_string()) {
    return HttpResponse::BadRequest("name is required");
  }
  // Same negative-value clamping as the batch endpoint, so the two
  // interpret identical JSON fields identically.
  StatusOr<SearchResponse> response = Status::InvalidArgument("unreachable");
  if (const Value* k = body->Get("k"); k != nullptr && k->is_int64()) {
    response = system_->NearestToArchiveImage(
        name->as_string(),
        static_cast<size_t>(std::max<int64_t>(0, k->as_int64())));
  } else {
    uint32_t radius = 8;
    if (const Value* r = body->Get("radius"); r != nullptr && r->is_int64()) {
      radius = static_cast<uint32_t>(std::max<int64_t>(0, r->as_int64()));
    }
    size_t limit = 0;
    if (const Value* l = body->Get("limit"); l != nullptr && l->is_int64()) {
      limit = static_cast<size_t>(std::max<int64_t>(0, l->as_int64()));
    }
    response =
        system_->SimilarToArchiveImage(name->as_string(), radius, limit);
  }
  if (!response.ok()) {
    const Status& s = response.status();
    return s.IsNotFound() ? HttpResponse::NotFound(s.message())
                          : HttpResponse::InternalError(s.message());
  }
  return HttpResponse::Json(200, ResponseToJson(*response, 0));
}

HttpResponse EarthQubeService::HandleBatchSearch(
    const HttpRequest& request) const {
  auto body = json::ParseObject(request.body);
  if (!body.ok()) return HttpResponse::BadRequest(body.status().message());
  const Value* names = body->Get("names");
  if (names == nullptr || !names->is_array() || names->as_array().empty()) {
    return HttpResponse::BadRequest("names must be a non-empty array");
  }
  if (names->as_array().size() > kMaxBatchQueries) {
    return HttpResponse::BadRequest(
        "batch too large: at most " + std::to_string(kMaxBatchQueries) +
        " names per request");
  }
  std::vector<std::string> queries;
  queries.reserve(names->as_array().size());
  for (const Value& n : names->as_array()) {
    if (!n.is_string()) {
      return HttpResponse::BadRequest("names must be strings");
    }
    queries.push_back(n.as_string());
  }

  StatusOr<std::vector<std::vector<earthqube::CbirResult>>> batch =
      Status::InvalidArgument("unreachable");
  if (const Value* k = body->Get("k"); k != nullptr && k->is_int64()) {
    batch = system_->BatchNearestToArchiveImages(
        queries, static_cast<size_t>(std::max<int64_t>(0, k->as_int64())));
  } else {
    uint32_t radius = 8;
    if (const Value* r = body->Get("radius"); r != nullptr && r->is_int64()) {
      radius = static_cast<uint32_t>(std::max<int64_t>(0, r->as_int64()));
    }
    size_t limit = 0;
    if (const Value* l = body->Get("limit"); l != nullptr && l->is_int64()) {
      limit = static_cast<size_t>(std::max<int64_t>(0, l->as_int64()));
    }
    batch = system_->BatchSimilarToArchiveImages(queries, radius, limit);
  }
  if (!batch.ok()) {
    const Status& s = batch.status();
    return s.IsNotFound() ? HttpResponse::NotFound(s.message())
                          : HttpResponse::InternalError(s.message());
  }

  Document out;
  out.Set("batch_size", Value(static_cast<int64_t>(queries.size())));
  std::vector<Value> results;
  results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Document entry;
    entry.Set("query", Value(queries[i]));
    std::vector<Value> hits;
    hits.reserve((*batch)[i].size());
    for (const earthqube::CbirResult& hit : (*batch)[i]) {
      Document h;
      h.Set("name", Value(hit.patch_name));
      h.Set("distance", Value(static_cast<int64_t>(hit.hamming_distance)));
      hits.emplace_back(std::move(h));
    }
    entry.Set("hits", Value(std::move(hits)));
    results.emplace_back(std::move(entry));
  }
  out.Set("results", Value(std::move(results)));
  return HttpResponse::Json(200, json::Serialize(out));
}

HttpResponse EarthQubeService::HandleFeedback(const HttpRequest& request) {
  auto body = json::ParseObject(request.body);
  if (!body.ok()) return HttpResponse::BadRequest(body.status().message());
  const Value* text = body->Get("text");
  if (text == nullptr || !text->is_string() || text->as_string().empty()) {
    return HttpResponse::BadRequest("text is required");
  }
  const Status stored = system_->SubmitFeedback(text->as_string());
  if (!stored.ok()) return HttpResponse::InternalError(stored.message());
  return HttpResponse::Json(201, "{\"stored\":true}");
}

HttpResponse EarthQubeService::HandleDownload(
    const HttpRequest& request) const {
  auto body = json::ParseObject(request.body);
  if (!body.ok()) return HttpResponse::BadRequest(body.status().message());
  const Value* names = body->Get("names");
  if (names == nullptr || !names->is_array() || names->as_array().empty()) {
    return HttpResponse::BadRequest("names must be a non-empty array");
  }
  std::vector<std::string> list;
  for (const Value& n : names->as_array()) {
    if (!n.is_string()) {
      return HttpResponse::BadRequest("names must be strings");
    }
    list.push_back(n.as_string());
  }
  auto zip = system_->ExportAsZip(list);
  if (!zip.ok()) {
    const Status& s = zip.status();
    return s.IsNotFound() ? HttpResponse::NotFound(s.message())
                          : HttpResponse::InternalError(s.message());
  }
  // The browser downloads binary; the JSON API ships it base64-tagged.
  Document out;
  out.Set("filename", Value("earthqube_download.zip"));
  out.Set("zip_base64", Value(json::Base64Encode(*zip)));
  out.Set("entries", Value(static_cast<int64_t>(list.size())));
  return HttpResponse::Json(200, json::Serialize(out));
}

HttpResponse EarthQubeService::HandlePatchMetadata(
    const HttpRequest& request) const {
  const std::string prefix = "/api/patch/";
  auto name = UrlDecode(request.path.substr(prefix.size()));
  if (!name.ok()) return HttpResponse::BadRequest(name.status().message());
  auto meta = system_->GetMetadata(*name);
  if (!meta.ok()) return HttpResponse::NotFound("no such patch: " + *name);
  Document d;
  d.Set("name", Value(meta->name));
  std::vector<Value> labels;
  for (bigearthnet::LabelId id : meta->labels.ids()) {
    labels.emplace_back(bigearthnet::LabelById(id).name);
  }
  d.Set("labels", Value(std::move(labels)));
  d.Set("country", Value(meta->country));
  d.Set("date", Value(meta->acquisition_date.ToString()));
  d.Set("season", Value(std::string(SeasonToString(meta->season))));
  Document bounds;
  bounds.Set("min_lat", Value(meta->bounds.min.lat));
  bounds.Set("min_lon", Value(meta->bounds.min.lon));
  bounds.Set("max_lat", Value(meta->bounds.max.lat));
  bounds.Set("max_lon", Value(meta->bounds.max.lon));
  d.Set("bounds", Value(bounds));
  return HttpResponse::Json(200, json::Serialize(d));
}

}  // namespace agoraeo::netsvc
