#include "netsvc/earthqube_service.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>

#include "common/simd/hamming_kernels.h"
#include "earthqube/exec/execution_engine.h"
#include "json/json.h"

namespace agoraeo::netsvc {

using docstore::Document;
using docstore::Value;
using earthqube::EarthQubeQuery;
using earthqube::GeoQuery;
using earthqube::LabelFilter;
using earthqube::LabelOperator;
using earthqube::PlannerMode;
using earthqube::Projection;
using earthqube::QueryRequest;
using earthqube::QueryResponse;
using earthqube::SearchResponse;
using earthqube::SimilaritySpec;

namespace {

StatusOr<double> NumberField(const Document& doc, const std::string& path) {
  const Value* v = doc.GetPath(path);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("missing numeric field: " + path);
  }
  return v->as_number();
}

/// Reads an optional non-negative integer field; malformed or negative
/// values are rejected (the v1 endpoints used to clamp silently).
StatusOr<int64_t> NonNegativeField(const Document& doc, const std::string& key,
                                   int64_t default_value) {
  const Value* v = doc.Get(key);
  if (v == nullptr) return default_value;
  if (!v->is_int64() || v->as_int64() < 0) {
    return Status::InvalidArgument(key + " must be a non-negative integer");
  }
  return v->as_int64();
}

/// Maps a facade error onto the shared JSON error envelope.  Cursor
/// rejections get their own code (410 Gone) so paging clients can tell
/// "restart from page 0" apart from "fix your request".
HttpResponse FromStatus(const Status& status) {
  if (status.IsNotFound()) return HttpResponse::NotFound(status.message());
  if (earthqube::IsCursorRejection(status)) {
    return HttpResponse::Error(410, "cursor_expired", status.message());
  }
  if (status.IsInvalidArgument()) {
    return HttpResponse::BadRequest(status.message());
  }
  return HttpResponse::InternalError(status.message());
}

StatusOr<GeoQuery> GeoFromJson(const Document& geo) {
  if (geo.Has("rect")) {
    const Value* rect = geo.Get("rect");
    if (!rect->is_document()) {
      return Status::InvalidArgument("geo.rect must be an object");
    }
    const Document& r = rect->as_document();
    geo::BoundingBox box;
    AGORAEO_ASSIGN_OR_RETURN(box.min.lat, NumberField(r, "min_lat"));
    AGORAEO_ASSIGN_OR_RETURN(box.min.lon, NumberField(r, "min_lon"));
    AGORAEO_ASSIGN_OR_RETURN(box.max.lat, NumberField(r, "max_lat"));
    AGORAEO_ASSIGN_OR_RETURN(box.max.lon, NumberField(r, "max_lon"));
    return GeoQuery::Rect(box);
  }
  if (geo.Has("circle")) {
    const Value* circle = geo.Get("circle");
    if (!circle->is_document()) {
      return Status::InvalidArgument("geo.circle must be an object");
    }
    const Document& c = circle->as_document();
    geo::Circle out;
    AGORAEO_ASSIGN_OR_RETURN(out.center.lat, NumberField(c, "lat"));
    AGORAEO_ASSIGN_OR_RETURN(out.center.lon, NumberField(c, "lon"));
    AGORAEO_ASSIGN_OR_RETURN(out.radius_meters, NumberField(c, "radius_m"));
    return GeoQuery::InCircle(out);
  }
  if (geo.Has("polygon")) {
    const Value* poly = geo.Get("polygon");
    if (!poly->is_array()) {
      return Status::InvalidArgument("geo.polygon must be an array");
    }
    geo::Polygon out;
    for (const Value& vertex : poly->as_array()) {
      if (!vertex.is_array() || vertex.as_array().size() != 2 ||
          !vertex.as_array()[0].is_number() ||
          !vertex.as_array()[1].is_number()) {
        return Status::InvalidArgument(
            "polygon vertices must be [lat, lon] pairs");
      }
      out.vertices.push_back({vertex.as_array()[0].as_number(),
                              vertex.as_array()[1].as_number()});
    }
    if (out.vertices.size() < 3) {
      return Status::InvalidArgument("polygon needs at least 3 vertices");
    }
    return GeoQuery::InPolygon(std::move(out));
  }
  return Status::InvalidArgument(
      "geo must contain one of rect/circle/polygon");
}

StatusOr<LabelFilter> LabelsFromJson(const Document& labels) {
  const Value* names = labels.Get("names");
  if (names == nullptr || !names->is_array()) {
    return Status::InvalidArgument("labels.names must be an array");
  }
  bigearthnet::LabelSet set;
  for (const Value& name : names->as_array()) {
    if (!name.is_string()) {
      return Status::InvalidArgument("label names must be strings");
    }
    AGORAEO_ASSIGN_OR_RETURN(bigearthnet::LabelId id,
                             bigearthnet::LabelIdFromName(name.as_string()));
    set.Add(id);
  }
  const Value* op = labels.Get("operator");
  const std::string op_name =
      op != nullptr && op->is_string() ? op->as_string() : "some";
  if (op_name == "some") return LabelFilter::Some(std::move(set));
  if (op_name == "exactly") return LabelFilter::Exactly(std::move(set));
  if (op_name == "at_least_and_more") {
    return LabelFilter::AtLeastAndMore(std::move(set));
  }
  return Status::InvalidArgument("unknown label operator: " + op_name);
}

Document EntryToJsonDoc(const earthqube::ResultEntry& entry) {
  Document d;
  d.Set("name", Value(entry.name));
  std::vector<Value> labels;
  for (bigearthnet::LabelId id : entry.labels.ids()) {
    labels.emplace_back(bigearthnet::LabelById(id).name);
  }
  d.Set("labels", Value(std::move(labels)));
  d.Set("country", Value(entry.country));
  d.Set("date", Value(entry.acquisition_date));
  d.Set("lat", Value(entry.map_location.lat));
  d.Set("lon", Value(entry.map_location.lon));
  return d;
}

/// Serialises the label-statistics bars as the contents of a JSON array
/// (shared between the v1 and v2 response shapes).
std::string LabelStatisticsToJson(const earthqube::LabelStatistics& stats) {
  std::string out;
  bool first = true;
  for (const earthqube::LabelBar& bar : stats.bars()) {
    if (!first) out += ",";
    first = false;
    char color[16];
    std::snprintf(color, sizeof(color), "#%06X", bar.color_rgb & 0xFFFFFF);
    Document d;
    d.Set("label", Value(bar.label_name));
    d.Set("count", Value(static_cast<int64_t>(bar.count)));
    d.Set("color", Value(std::string(color)));
    out += json::Serialize(d);
  }
  return out;
}

}  // namespace

StatusOr<EarthQubeQuery> EarthQubeService::QueryFromJson(
    const Document& body) {
  EarthQubeQuery query;
  if (const Value* geo = body.Get("geo"); geo != nullptr) {
    if (!geo->is_document()) {
      return Status::InvalidArgument("geo must be an object");
    }
    AGORAEO_ASSIGN_OR_RETURN(query.geo, GeoFromJson(geo->as_document()));
  }
  if (const Value* dr = body.Get("date_range"); dr != nullptr) {
    if (!dr->is_document()) {
      return Status::InvalidArgument("date_range must be an object");
    }
    const Value* begin = dr->as_document().Get("begin");
    const Value* end = dr->as_document().Get("end");
    if (begin == nullptr || end == nullptr || !begin->is_string() ||
        !end->is_string()) {
      return Status::InvalidArgument(
          "date_range needs string fields begin and end");
    }
    DateRange range;
    AGORAEO_ASSIGN_OR_RETURN(range.begin,
                             CivilDate::Parse(begin->as_string()));
    AGORAEO_ASSIGN_OR_RETURN(range.end, CivilDate::Parse(end->as_string()));
    query.date_range = range;
  }
  if (const Value* sats = body.Get("satellites"); sats != nullptr) {
    if (!sats->is_array()) {
      return Status::InvalidArgument("satellites must be an array");
    }
    for (const Value& s : sats->as_array()) {
      if (!s.is_string()) {
        return Status::InvalidArgument("satellite entries must be strings");
      }
      if (s.as_string() != "S2A" && s.as_string() != "S2B") {
        return Status::InvalidArgument("unknown satellite: " + s.as_string());
      }
      query.satellites.push_back(s.as_string());
    }
  }
  if (const Value* seasons = body.Get("seasons"); seasons != nullptr) {
    if (!seasons->is_array()) {
      return Status::InvalidArgument("seasons must be an array");
    }
    for (const Value& s : seasons->as_array()) {
      if (!s.is_string()) {
        return Status::InvalidArgument("season entries must be strings");
      }
      AGORAEO_ASSIGN_OR_RETURN(Season season,
                               SeasonFromString(s.as_string()));
      query.seasons.push_back(season);
    }
  }
  if (const Value* labels = body.Get("labels"); labels != nullptr) {
    if (!labels->is_document()) {
      return Status::InvalidArgument("labels must be an object");
    }
    AGORAEO_ASSIGN_OR_RETURN(query.label_filter,
                             LabelsFromJson(labels->as_document()));
  }
  AGORAEO_ASSIGN_OR_RETURN(const int64_t limit,
                           NonNegativeField(body, "limit", 0));
  query.limit = static_cast<size_t>(limit);
  return query;
}

StatusOr<QueryRequest> EarthQubeService::QueryRequestFromJson(
    const Document& body) {
  QueryRequest request;
  if (const Value* panel = body.Get("panel"); panel != nullptr) {
    if (!panel->is_document()) {
      return Status::InvalidArgument("panel must be an object");
    }
    AGORAEO_ASSIGN_OR_RETURN(request.panel,
                             QueryFromJson(panel->as_document()));
  }
  if (const Value* sim = body.Get("similarity"); sim != nullptr) {
    if (!sim->is_document()) {
      return Status::InvalidArgument("similarity must be an object");
    }
    const Document& s = sim->as_document();
    SimilaritySpec spec;
    if (const Value* name = s.Get("name"); name != nullptr) {
      if (!name->is_string()) {
        return Status::InvalidArgument("similarity.name must be a string");
      }
      spec.archive_name = name->as_string();
    }
    if (const Value* code = s.Get("code"); code != nullptr) {
      if (!code->is_string() || code->as_string().empty()) {
        return Status::InvalidArgument(
            "similarity.code must be a non-empty '0'/'1' bit string");
      }
      for (char c : code->as_string()) {
        if (c != '0' && c != '1') {
          return Status::InvalidArgument(
              "similarity.code must contain only '0'/'1' characters");
        }
      }
      spec.code = BinaryCode::FromBitString(code->as_string());
    }
    if (s.Has("radius")) {
      AGORAEO_ASSIGN_OR_RETURN(const int64_t radius,
                               NonNegativeField(s, "radius", 0));
      spec.radius = static_cast<uint32_t>(radius);
    }
    if (s.Has("k")) {
      AGORAEO_ASSIGN_OR_RETURN(const int64_t k, NonNegativeField(s, "k", 0));
      spec.k = static_cast<size_t>(k);
    }
    // v1-compatible default mode.
    if (!spec.radius.has_value() && !spec.k.has_value()) spec.radius = 8;
    AGORAEO_ASSIGN_OR_RETURN(const int64_t limit,
                             NonNegativeField(s, "limit", 0));
    spec.limit = static_cast<size_t>(limit);
    request.similarity = std::move(spec);
  }
  if (const Value* projection = body.Get("projection"); projection != nullptr) {
    if (!projection->is_string()) {
      return Status::InvalidArgument("projection must be a string");
    }
    if (projection->as_string() == "full") {
      request.projection = Projection::kFullPanel;
    } else if (projection->as_string() == "hits") {
      request.projection = Projection::kHitsOnly;
    } else {
      return Status::InvalidArgument(
          "projection must be \"full\" or \"hits\"");
    }
  }
  if (const Value* planner = body.Get("planner"); planner != nullptr) {
    if (!planner->is_string()) {
      return Status::InvalidArgument("planner must be a string");
    }
    if (planner->as_string() == "auto") {
      request.planner = PlannerMode::kAuto;
    } else if (planner->as_string() == "pre_filter") {
      request.planner = PlannerMode::kForcePreFilter;
    } else if (planner->as_string() == "post_filter") {
      request.planner = PlannerMode::kForcePostFilter;
    } else {
      return Status::InvalidArgument(
          "planner must be \"auto\", \"pre_filter\" or \"post_filter\"");
    }
  }
  AGORAEO_ASSIGN_OR_RETURN(const int64_t page,
                           NonNegativeField(body, "page", 0));
  request.page = static_cast<size_t>(page);
  AGORAEO_ASSIGN_OR_RETURN(
      const int64_t page_size,
      NonNegativeField(body, "page_size",
                       static_cast<int64_t>(earthqube::kPageSize)));
  request.page_size = static_cast<size_t>(page_size);
  if (const Value* cursor = body.Get("cursor"); cursor != nullptr) {
    if (!cursor->is_string()) {
      return Status::InvalidArgument("cursor must be a string");
    }
    AGORAEO_ASSIGN_OR_RETURN(const earthqube::PageCursor decoded,
                             earthqube::DecodeCursor(cursor->as_string()));
    request.page = decoded.page;
    request.page_size = decoded.page_size;
  }
  AGORAEO_RETURN_IF_ERROR(request.Validate());
  return request;
}

std::string EarthQubeService::ResponseToJson(const SearchResponse& response,
                                             size_t page) {
  std::string out = "{\"total\":" + std::to_string(response.panel.total()) +
                    ",\"page\":" + std::to_string(page) + ",\"plan\":\"" +
                    response.query_stats.plan + "\",\"results\":[";
  bool first = true;
  for (const earthqube::ResultEntry* entry : response.panel.Page(page)) {
    if (!first) out += ",";
    first = false;
    out += json::Serialize(EntryToJsonDoc(*entry));
  }
  out += "],\"label_statistics\":[";
  out += LabelStatisticsToJson(response.statistics);
  // The v2 continuation cursor, also served on v1 search responses so
  // clients can page without recomputing offsets.
  out += "],\"cursor\":\"";
  if ((page + 1) * earthqube::kPageSize < response.panel.total()) {
    out += earthqube::EncodeCursor({page + 1, earthqube::kPageSize});
  }
  out += "\"}";
  return out;
}

std::string EarthQubeService::QueryResponseToJson(
    const QueryResponse& response) {
  Document plan;
  plan.Set("strategy", Value(std::string(earthqube::StrategyToString(
                           response.plan.strategy))));
  plan.Set("description", Value(response.plan.description));
  plan.Set("selectivity", Value(response.plan.estimated_selectivity));
  plan.Set("estimated_matches",
           Value(static_cast<int64_t>(response.plan.estimated_filter_matches)));

  const size_t total = response.total();
  size_t begin = 0;
  size_t end = total;
  size_t reported = total;
  if (response.windowed) {
    // The execution tier already sliced this response to the requested
    // window (ranked direct access streams only what the page needs),
    // so serialise it whole.  The reported total is a lower bound:
    // everything known to precede the window, the window itself, and
    // one more hit iff a continuation cursor proves there is one.
    reported = response.page * response.page_size + total +
               (response.cursor.empty() ? 0 : 1);
  } else if (response.page_size > 0) {
    begin = std::min(total, response.page * response.page_size);
    end = std::min(total, begin + response.page_size);
  }

  std::string out = "{\"total\":" + std::to_string(reported) +
                    ",\"page\":" + std::to_string(response.page) +
                    ",\"page_size\":" + std::to_string(response.page_size) +
                    ",\"served_from_cache\":" +
                    (response.served_from_cache ? "true" : "false") +
                    ",\"plan\":" + json::Serialize(plan) + ",\"results\":[";
  bool first = true;
  if (response.projection == Projection::kHitsOnly) {
    for (size_t i = begin; i < end; ++i) {
      if (!first) out += ",";
      first = false;
      Document d;
      d.Set("name", Value(response.hits[i].patch_name));
      d.Set("distance",
            Value(static_cast<int64_t>(response.hits[i].hamming_distance)));
      out += json::Serialize(d);
    }
  } else {
    const auto& entries = response.panel.entries();
    // Joined similarity responses keep entries aligned with hits, so
    // each result row can carry its Hamming distance.
    const bool aligned = response.hits.size() == entries.size();
    for (size_t i = begin; i < end; ++i) {
      if (!first) out += ",";
      first = false;
      Document d = EntryToJsonDoc(entries[i]);
      if (aligned && !response.hits.empty()) {
        d.Set("distance",
              Value(static_cast<int64_t>(response.hits[i].hamming_distance)));
      }
      out += json::Serialize(d);
    }
  }
  out += "]";
  if (response.projection == Projection::kFullPanel) {
    out += ",\"label_statistics\":[" +
           LabelStatisticsToJson(response.statistics) + "]";
  }
  out += ",\"cursor\":\"" + response.cursor + "\"}";
  return out;
}

void EarthQubeService::RegisterRoutes(HttpServer* server,
                                      bool include_query_route) {
  // Every server fronting this service reports per-route request
  // counts/latency into the system's registry (RegisterRoutes runs
  // before Start, which is when the server binds its metrics).
  server->AttachObservability(&system_->obs());
  server->Route("GET", "/health", [](const HttpRequest&) {
    return HttpResponse::Json(200, "{\"status\":\"ok\"}");
  });
  if (include_query_route) {
    server->RouteAsync("POST", "/api/v2/query",
                       [this](const HttpRequest& request,
                              HttpServer::Responder responder) {
                         HandleQueryV2(request, std::move(responder));
                       });
  }
  server->RouteAsync("POST", "/api/search",
                     [this](const HttpRequest& request,
                            HttpServer::Responder responder) {
                       HandleSearch(request, std::move(responder));
                     });
  server->RouteAsync("POST", "/api/similar/by_name",
                     [this](const HttpRequest& request,
                            HttpServer::Responder responder) {
                       HandleSimilarByName(request, std::move(responder));
                     });
  server->Route("POST", "/cbir/batch_search",
                [this](const HttpRequest& request) {
                  return HandleBatchSearch(request);
                });
  server->Route("POST", "/api/feedback", [this](const HttpRequest& request) {
    return HandleFeedback(request);
  });
  server->Route("POST", "/api/download", [this](const HttpRequest& request) {
    return HandleDownload(request);
  });
  server->Route("GET", "/api/feedback/count", [this](const HttpRequest&) {
    return HttpResponse::Json(
        200, "{\"count\":" + std::to_string(system_->NumFeedbackEntries()) +
                 "}");
  });
  server->Route("GET", "/api/v2/cache/stats", [this](const HttpRequest&) {
    return HandleCacheStats();
  });
  server->Route("GET", "/api/v2/index/stats", [this](const HttpRequest&) {
    return HandleIndexStats();
  });
  server->Route("POST", "/api/v2/index/snapshot", [this](const HttpRequest&) {
    return HandleIndexSnapshot();
  });
  // Observability: Prometheus exposition, the JSON mirror, and the
  // slow-query ring.  Served even with metrics disabled (the registry
  // is just empty) so probes never 404.
  server->Route("GET", "/metrics", [this](const HttpRequest&) {
    return HttpResponse::Text(200,
                              system_->obs().registry().PrometheusText());
  });
  server->Route("GET", "/api/v2/metrics", [this](const HttpRequest&) {
    return HttpResponse::Json(200, system_->obs().registry().JsonText());
  });
  server->Route("GET", "/api/v2/debug/slow_queries",
                [this](const HttpRequest&) {
                  return HttpResponse::Json(200,
                                            system_->obs().slow_log().ToJson());
                });
  server->Route("GET", "/api/patch/*", [this](const HttpRequest& request) {
    return HandlePatchMetadata(request);
  });
}

HttpResponse EarthQubeService::HandleCacheStats() const {
  const earthqube::QueryCache& cache = system_->query_cache();
  const auto to_doc = [](bool enabled, const agoraeo::cache::CacheStats& s) {
    Document d;
    d.Set("enabled", Value(enabled));
    d.Set("hits", Value(static_cast<int64_t>(s.hits)));
    d.Set("misses", Value(static_cast<int64_t>(s.misses)));
    d.Set("puts", Value(static_cast<int64_t>(s.puts)));
    d.Set("rejected_puts", Value(static_cast<int64_t>(s.rejected_puts)));
    d.Set("evictions", Value(static_cast<int64_t>(s.evictions)));
    d.Set("stale_drops", Value(static_cast<int64_t>(s.stale_drops)));
    d.Set("expired_drops", Value(static_cast<int64_t>(s.expired_drops)));
    d.Set("entries", Value(static_cast<int64_t>(s.entries)));
    d.Set("bytes", Value(static_cast<int64_t>(s.bytes)));
    d.Set("capacity_bytes", Value(static_cast<int64_t>(s.capacity_bytes)));
    d.Set("hit_rate", Value(s.hit_rate()));
    return d;
  };
  Document out;
  out.Set("epoch", Value(static_cast<int64_t>(cache.epoch())));
  out.Set("response_cache",
          Value(to_doc(cache.config().enable_response_cache,
                       cache.ResponseStats())));
  out.Set("allowlist_cache",
          Value(to_doc(cache.config().enable_allowlist_cache,
                       cache.AllowlistStats())));
  out.Set("negative_cache",
          Value(to_doc(cache.config().enable_negative_cache,
                       cache.NegativeStats())));
  // The execution engine's counters: miss coalescing and micro-batching
  // live here because the response cache's fingerprint is their shared
  // key — one endpoint tells the whole work-sharing story.
  Document exec;
  const earthqube::ExecutionEngine* engine = system_->exec_engine();
  exec.Set("enabled", Value(engine != nullptr));
  if (engine != nullptr) {
    const earthqube::ExecStats s = engine->Stats();
    exec.Set("submitted", Value(static_cast<int64_t>(s.submitted)));
    exec.Set("completed", Value(static_cast<int64_t>(s.completed)));
    exec.Set("cache_hits", Value(static_cast<int64_t>(s.cache_hits)));
    exec.Set("negative_hits", Value(static_cast<int64_t>(s.negative_hits)));
    exec.Set("coalesced", Value(static_cast<int64_t>(s.coalesced)));
    exec.Set("flights", Value(static_cast<int64_t>(s.flights)));
    exec.Set("direct", Value(static_cast<int64_t>(s.direct)));
    exec.Set("batches", Value(static_cast<int64_t>(s.batches)));
    exec.Set("batched_flights",
             Value(static_cast<int64_t>(s.batched_flights)));
    exec.Set("rejected", Value(static_cast<int64_t>(s.rejected)));
    exec.Set("flight_warms", Value(static_cast<int64_t>(s.flight_warms)));
    exec.Set("warm_from_flight_hits",
             Value(static_cast<int64_t>(s.warm_from_flight_hits)));
  }
  out.Set("exec", Value(std::move(exec)));
  if (node_info_) {
    const NodeInfo info = node_info_();
    Document node;
    node.Set("id", Value(info.id));
    node.Set("owned_slots", Value(static_cast<int64_t>(info.owned_slots)));
    node.Set("cluster_epoch",
             Value(static_cast<int64_t>(info.cluster_epoch)));
    out.Set("node", Value(std::move(node)));
  }
  return HttpResponse::Json(200, json::Serialize(out));
}

HttpResponse EarthQubeService::HandleIndexStats() const {
  // Per-shard observability of the partitioned index layer: routing
  // balance (shard sizes), how many batched passes fanned out across
  // the shards, and the time spent in the gather-point merges.
  Document out;
  const earthqube::CbirService* cbir = system_->cbir();
  out.Set("attached", Value(cbir != nullptr));
  // The Hamming kernel layer: which dispatched kernel serves distance
  // scans, whether the choice was forced (config/env), what the build
  // compiled, and how many scan passes each kernel has run.
  {
    Document kernel;
    kernel.Set("active", Value(std::string(simd::ActiveKernel()->name)));
    kernel.Set("forced", Value(simd::KernelForced()));
    const auto& kernels = simd::CompiledKernels();
    std::vector<Value> compiled;
    Document dispatch;
    compiled.reserve(kernels.size());
    for (size_t i = 0; i < kernels.size(); ++i) {
      compiled.emplace_back(std::string(kernels[i]->name));
      dispatch.Set(kernels[i]->name,
                   Value(static_cast<int64_t>(simd::DispatchCount(i))));
    }
    kernel.Set("compiled", Value(std::move(compiled)));
    kernel.Set("dispatch_total", Value(std::move(dispatch)));
    out.Set("kernel", Value(std::move(kernel)));
  }
  if (cbir != nullptr) {
    out.Set("name", Value(cbir->hamming_index().Name()));
    out.Set("num_indexed", Value(static_cast<int64_t>(cbir->num_indexed())));
    const index::ShardedHammingIndex* sharded = cbir->sharded_index();
    out.Set("sharded", Value(sharded != nullptr));
    if (sharded != nullptr) {
      const index::ShardedIndexStats stats = sharded->Stats();
      out.Set("num_shards", Value(static_cast<int64_t>(stats.num_shards)));
      std::vector<Value> sizes;
      sizes.reserve(stats.shard_sizes.size());
      for (size_t shard_size : stats.shard_sizes) {
        sizes.emplace_back(static_cast<int64_t>(shard_size));
      }
      out.Set("shard_sizes", Value(std::move(sizes)));
      out.Set("single_fanouts",
              Value(static_cast<int64_t>(stats.single_fanouts)));
      out.Set("batch_fanouts",
              Value(static_cast<int64_t>(stats.batch_fanouts)));
      out.Set("fanout_tasks", Value(static_cast<int64_t>(stats.fanout_tasks)));
      out.Set("merge_nanos", Value(static_cast<int64_t>(stats.merge_nanos)));
      // Segment structure inside the shards: how much of the data is
      // served lock-free (sealed) vs behind the mutable-segment lock.
      std::vector<Value> segments;
      segments.reserve(stats.shard_segments.size());
      for (size_t n : stats.shard_segments) {
        segments.emplace_back(static_cast<int64_t>(n));
      }
      out.Set("shard_segments", Value(std::move(segments)));
      out.Set("seals", Value(static_cast<int64_t>(stats.seals)));
      out.Set("sealed_items", Value(static_cast<int64_t>(stats.sealed_items)));
      out.Set("mutable_items",
              Value(static_cast<int64_t>(stats.mutable_items)));
    } else if (const index::SegmentedHammingIndex* segmented =
                   cbir->segmented_index();
               segmented != nullptr) {
      const index::SegmentedIndexStats seg = segmented->Stats();
      out.Set("num_segments", Value(static_cast<int64_t>(seg.num_sealed)));
      out.Set("seals", Value(static_cast<int64_t>(seg.seals)));
      out.Set("sealed_items", Value(static_cast<int64_t>(seg.sealed_items)));
      out.Set("mutable_items",
              Value(static_cast<int64_t>(seg.mutable_items)));
    }
    // Persistence: snapshot/WAL state of the durable index (all zeros
    // when the service runs in-memory only).
    const earthqube::CbirPersistenceStats& p = cbir->persistence_stats();
    Document persistence;
    persistence.Set("enabled", Value(p.enabled));
    persistence.Set("recovered", Value(p.recovered));
    persistence.Set("restored_items",
                    Value(static_cast<int64_t>(p.restored_items)));
    persistence.Set("replayed_items",
                    Value(static_cast<int64_t>(p.replayed_items)));
    persistence.Set("discarded_snapshots",
                    Value(static_cast<int64_t>(p.discarded_snapshots)));
    persistence.Set("wal_records", Value(static_cast<int64_t>(p.wal_records)));
    persistence.Set("snapshots_written",
                    Value(static_cast<int64_t>(p.snapshots_written)));
    out.Set("persistence", Value(std::move(persistence)));
  }
  if (node_info_) {
    const NodeInfo info = node_info_();
    Document node;
    node.Set("id", Value(info.id));
    node.Set("owned_slots", Value(static_cast<int64_t>(info.owned_slots)));
    node.Set("cluster_epoch",
             Value(static_cast<int64_t>(info.cluster_epoch)));
    out.Set("node", Value(std::move(node)));
  }
  return HttpResponse::Json(200, json::Serialize(out));
}

HttpResponse EarthQubeService::HandleIndexSnapshot() {
  earthqube::CbirService* cbir = system_->cbir();
  if (cbir == nullptr) {
    return HttpResponse::Json(409, "{\"error\":\"no CBIR service attached\"}");
  }
  const Status status = cbir->Snapshot();
  if (!status.ok()) {
    if (status.IsFailedPrecondition()) {
      return HttpResponse::Json(
          409, "{\"error\":\"" + std::string(status.message()) + "\"}");
    }
    return HttpResponse::Json(
        500, "{\"error\":\"" + std::string(status.message()) + "\"}");
  }
  const earthqube::CbirPersistenceStats& p = cbir->persistence_stats();
  Document out;
  out.Set("snapshotted", Value(true));
  out.Set("num_indexed", Value(static_cast<int64_t>(cbir->num_indexed())));
  out.Set("snapshots_written",
          Value(static_cast<int64_t>(p.snapshots_written)));
  return HttpResponse::Json(200, json::Serialize(out));
}

namespace {

/// Aggregation state of one deferred batch submission: slots fill in
/// from engine callbacks (possibly concurrently); the last completion
/// serialises and answers.
struct DeferredBatch {
  explicit DeferredBatch(size_t n)
      : slots(n, StatusOr<QueryResponse>(Status::Internal("slot pending"))),
        remaining(n) {}
  std::mutex mu;
  std::vector<StatusOr<QueryResponse>> slots;
  size_t remaining;
};

}  // namespace

void EarthQubeService::HandleQueryV2(const HttpRequest& request,
                                     HttpServer::Responder responder) const {
  auto body = json::ParseObject(request.body.empty() ? "{}" : request.body);
  if (!body.ok()) {
    responder.Send(HttpResponse::BadRequest(body.status().message()));
    return;
  }

  if (const Value* batch = body->Get("requests"); batch != nullptr) {
    if (!batch->is_array() || batch->as_array().empty()) {
      responder.Send(
          HttpResponse::BadRequest("requests must be a non-empty array"));
      return;
    }
    if (batch->as_array().size() > kMaxBatchQueries) {
      responder.Send(HttpResponse::BadRequest(
          "batch too large: at most " + std::to_string(kMaxBatchQueries) +
          " requests per submission"));
      return;
    }
    std::vector<QueryRequest> requests;
    requests.reserve(batch->as_array().size());
    for (const Value& entry : batch->as_array()) {
      if (!entry.is_document()) {
        responder.Send(
            HttpResponse::BadRequest("requests entries must be objects"));
        return;
      }
      auto parsed = QueryRequestFromJson(entry.as_document());
      if (!parsed.ok()) {
        responder.Send(FromStatus(parsed.status()));
        return;
      }
      requests.push_back(std::move(parsed).value());
    }
    earthqube::ExecutionEngine* engine = system_->exec_engine();
    if (engine == nullptr) {
      // Engine off: nothing to park the connection on — execute the
      // batch synchronously (ExecuteBatch keeps the dedup contract).
      auto responses = system_->ExecuteBatch(requests);
      if (!responses.ok()) {
        responder.Send(FromStatus(responses.status()));
        return;
      }
      std::string out = "{\"batch_size\":" +
                        std::to_string(responses->size()) + ",\"responses\":[";
      for (size_t i = 0; i < responses->size(); ++i) {
        if (i != 0) out += ",";
        out += QueryResponseToJson((*responses)[i]);
      }
      out += "]}";
      responder.Send(HttpResponse::Json(200, out));
      return;
    }
    // Every slot goes through ExecuteAsync; the last completion answers
    // the parked connection.  Mirrors ExecuteBatch's semantics: any
    // failed slot fails the whole batch (first failing slot wins).
    // The engine is paused across the submissions (the SubmitBatch
    // admission gate) so identical slots coalesce deterministically
    // instead of racing the first slot's completion.
    engine->Pause();
    auto state = std::make_shared<DeferredBatch>(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      system_->ExecuteAsync(
          requests[i],
          [state, i, responder](const StatusOr<QueryResponse>& result) {
            bool last;
            {
              std::lock_guard<std::mutex> lock(state->mu);
              state->slots[i] = result;
              last = --state->remaining == 0;
            }
            if (!last) return;
            for (const StatusOr<QueryResponse>& slot : state->slots) {
              if (!slot.ok()) {
                responder.Send(FromStatus(slot.status()));
                return;
              }
            }
            std::string out =
                "{\"batch_size\":" + std::to_string(state->slots.size()) +
                ",\"responses\":[";
            for (size_t j = 0; j < state->slots.size(); ++j) {
              if (j != 0) out += ",";
              out += QueryResponseToJson(*state->slots[j]);
            }
            out += "]}";
            responder.Send(HttpResponse::Json(200, out));
          });
    }
    engine->Resume();
    return;
  }

  auto parsed = QueryRequestFromJson(*body);
  if (!parsed.ok()) {
    responder.Send(FromStatus(parsed.status()));
    return;
  }
  // Per-request trace: adopt a propagated id (the cluster coordinator's
  // x-trace-id) or mint one.  Null when tracing is off — the engine's
  // span sites all null-check.
  obs::Observability& obs = system_->obs();
  const std::string& propagated = request.Header("x-trace-id");
  std::shared_ptr<obs::Trace> trace = propagated.empty()
                                          ? obs.StartTrace()
                                          : obs.StartTrace(propagated);
  const uint64_t start_ns =
      (trace != nullptr || obs.metrics_enabled()) ? obs::NowNanos() : 0;
  std::string summary = "POST /api/v2/query ";
  summary += !parsed->similarity.has_value() ? "panel"
             : parsed->panel.has_value()     ? "hybrid"
                                             : "cbir";
  system_->ExecuteAsync(
      *parsed, trace,
      [this, responder, trace, start_ns,
       summary = std::move(summary)](const StatusOr<QueryResponse>& response) {
        HttpResponse http =
            response.ok()
                ? HttpResponse::Json(200, QueryResponseToJson(*response))
                : FromStatus(response.status());
        if (trace != nullptr) http.headers["x-trace-id"] = trace->id();
        if (start_ns != 0) {
          obs::SlowQueryLog& slow_log = system_->obs().slow_log();
          const uint64_t total_ns = obs::NowNanos() - start_ns;
          // Threshold check before rendering: fast requests never pay
          // for the trace JSON.
          if (total_ns >= slow_log.threshold_ns() &&
              slow_log.capacity() > 0) {
            slow_log.Observe(total_ns, trace != nullptr ? trace->id() : "",
                             summary, trace != nullptr ? trace->ToJson() : "");
          }
        }
        responder.Send(http);
      });
}

void EarthQubeService::HandleSearch(const HttpRequest& request,
                                    HttpServer::Responder responder) const {
  auto body = json::ParseObject(request.body.empty() ? "{}" : request.body);
  if (!body.ok()) {
    responder.Send(HttpResponse::BadRequest(body.status().message()));
    return;
  }
  auto query = QueryFromJson(*body);
  if (!query.ok()) {
    responder.Send(HttpResponse::BadRequest(query.status().message()));
    return;
  }
  // Malformed paging is a client error, not something to clamp away.
  auto page = NonNegativeField(*body, "page", 0);
  if (!page.ok()) {
    responder.Send(HttpResponse::BadRequest(page.status().message()));
    return;
  }
  QueryRequest unified;
  unified.panel = std::move(query).value();
  unified.page_size = 0;  // the v1 serialiser pages the panel itself
  const size_t page_index = static_cast<size_t>(*page);
  system_->ExecuteAsync(
      unified,
      [responder, page_index](const StatusOr<QueryResponse>& response) {
        if (!response.ok()) {
          responder.Send(FromStatus(response.status()));
          return;
        }
        const SearchResponse v1{response->panel, response->statistics,
                                response->query_stats};
        responder.Send(HttpResponse::Json(200, ResponseToJson(v1, page_index)));
      });
}

void EarthQubeService::HandleSimilarByName(
    const HttpRequest& request, HttpServer::Responder responder) const {
  auto body = json::ParseObject(request.body);
  if (!body.ok()) {
    responder.Send(HttpResponse::BadRequest(body.status().message()));
    return;
  }
  const Value* name = body->Get("name");
  if (name == nullptr || !name->is_string()) {
    responder.Send(HttpResponse::BadRequest("name is required"));
    return;
  }
  QueryRequest unified;
  unified.page_size = 0;  // v1 similarity responses are unpaged
  // v1 precedence: "k" selects k-NN and wins over "radius".
  if (body->Has("k")) {
    auto k = NonNegativeField(*body, "k", 0);
    if (!k.ok()) {
      responder.Send(HttpResponse::BadRequest(k.status().message()));
      return;
    }
    unified.similarity = SimilaritySpec::NameKnn(
        name->as_string(), static_cast<size_t>(*k));
  } else {
    auto radius = NonNegativeField(*body, "radius", 8);
    if (!radius.ok()) {
      responder.Send(HttpResponse::BadRequest(radius.status().message()));
      return;
    }
    auto limit = NonNegativeField(*body, "limit", 0);
    if (!limit.ok()) {
      responder.Send(HttpResponse::BadRequest(limit.status().message()));
      return;
    }
    unified.similarity = SimilaritySpec::NameRadius(
        name->as_string(), static_cast<uint32_t>(*radius),
        static_cast<size_t>(*limit));
  }
  system_->ExecuteAsync(
      unified, [responder](const StatusOr<QueryResponse>& response) {
        if (!response.ok()) {
          responder.Send(FromStatus(response.status()));
          return;
        }
        const SearchResponse v1{response->panel, response->statistics,
                                response->query_stats};
        responder.Send(HttpResponse::Json(200, ResponseToJson(v1, 0)));
      });
}

HttpResponse EarthQubeService::HandleBatchSearch(
    const HttpRequest& request) const {
  auto body = json::ParseObject(request.body);
  if (!body.ok()) return HttpResponse::BadRequest(body.status().message());
  const Value* names = body->Get("names");
  if (names == nullptr || !names->is_array() || names->as_array().empty()) {
    return HttpResponse::BadRequest("names must be a non-empty array");
  }
  if (names->as_array().size() > kMaxBatchQueries) {
    return HttpResponse::BadRequest(
        "batch too large: at most " + std::to_string(kMaxBatchQueries) +
        " names per request");
  }
  std::vector<std::string> queries;
  queries.reserve(names->as_array().size());
  for (const Value& n : names->as_array()) {
    if (!n.is_string()) {
      return HttpResponse::BadRequest("names must be strings");
    }
    queries.push_back(n.as_string());
  }

  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  if (body->Has("k")) {
    auto k = NonNegativeField(*body, "k", 0);
    if (!k.ok()) return HttpResponse::BadRequest(k.status().message());
    for (const std::string& query : queries) {
      QueryRequest unified;
      unified.similarity =
          SimilaritySpec::NameKnn(query, static_cast<size_t>(*k));
      unified.projection = Projection::kHitsOnly;
      unified.page_size = 0;
      requests.push_back(std::move(unified));
    }
  } else {
    auto radius = NonNegativeField(*body, "radius", 8);
    if (!radius.ok()) {
      return HttpResponse::BadRequest(radius.status().message());
    }
    auto limit = NonNegativeField(*body, "limit", 0);
    if (!limit.ok()) return HttpResponse::BadRequest(limit.status().message());
    for (const std::string& query : queries) {
      QueryRequest unified;
      unified.similarity = SimilaritySpec::NameRadius(
          query, static_cast<uint32_t>(*radius), static_cast<size_t>(*limit));
      unified.projection = Projection::kHitsOnly;
      unified.page_size = 0;
      requests.push_back(std::move(unified));
    }
  }

  auto batch = system_->ExecuteBatch(requests);
  if (!batch.ok()) return FromStatus(batch.status());

  Document out;
  out.Set("batch_size", Value(static_cast<int64_t>(queries.size())));
  std::vector<Value> results;
  results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Document entry;
    entry.Set("query", Value(queries[i]));
    std::vector<Value> hits;
    hits.reserve((*batch)[i].hits.size());
    for (const earthqube::CbirResult& hit : (*batch)[i].hits) {
      Document h;
      h.Set("name", Value(hit.patch_name));
      h.Set("distance", Value(static_cast<int64_t>(hit.hamming_distance)));
      hits.emplace_back(std::move(h));
    }
    entry.Set("hits", Value(std::move(hits)));
    results.emplace_back(std::move(entry));
  }
  out.Set("results", Value(std::move(results)));
  return HttpResponse::Json(200, json::Serialize(out));
}

HttpResponse EarthQubeService::HandleFeedback(const HttpRequest& request) {
  auto body = json::ParseObject(request.body);
  if (!body.ok()) return HttpResponse::BadRequest(body.status().message());
  const Value* text = body->Get("text");
  if (text == nullptr || !text->is_string() || text->as_string().empty()) {
    return HttpResponse::BadRequest("text is required");
  }
  const Status stored = system_->SubmitFeedback(text->as_string());
  if (!stored.ok()) return HttpResponse::InternalError(stored.message());
  return HttpResponse::Json(201, "{\"stored\":true}");
}

HttpResponse EarthQubeService::HandleDownload(
    const HttpRequest& request) const {
  auto body = json::ParseObject(request.body);
  if (!body.ok()) return HttpResponse::BadRequest(body.status().message());
  const Value* names = body->Get("names");
  if (names == nullptr || !names->is_array() || names->as_array().empty()) {
    return HttpResponse::BadRequest("names must be a non-empty array");
  }
  std::vector<std::string> list;
  for (const Value& n : names->as_array()) {
    if (!n.is_string()) {
      return HttpResponse::BadRequest("names must be strings");
    }
    list.push_back(n.as_string());
  }
  auto zip = system_->ExportAsZip(list);
  if (!zip.ok()) return FromStatus(zip.status());
  // The browser downloads binary; the JSON API ships it base64-tagged.
  Document out;
  out.Set("filename", Value("earthqube_download.zip"));
  out.Set("zip_base64", Value(json::Base64Encode(*zip)));
  out.Set("entries", Value(static_cast<int64_t>(list.size())));
  return HttpResponse::Json(200, json::Serialize(out));
}

HttpResponse EarthQubeService::HandlePatchMetadata(
    const HttpRequest& request) const {
  const std::string prefix = "/api/patch/";
  auto name = UrlDecode(request.path.substr(prefix.size()));
  if (!name.ok()) return HttpResponse::BadRequest(name.status().message());
  auto meta = system_->GetMetadata(*name);
  if (!meta.ok()) return HttpResponse::NotFound("no such patch: " + *name);
  Document d;
  d.Set("name", Value(meta->name));
  std::vector<Value> labels;
  for (bigearthnet::LabelId id : meta->labels.ids()) {
    labels.emplace_back(bigearthnet::LabelById(id).name);
  }
  d.Set("labels", Value(std::move(labels)));
  d.Set("country", Value(meta->country));
  d.Set("date", Value(meta->acquisition_date.ToString()));
  d.Set("season", Value(std::string(SeasonToString(meta->season))));
  Document bounds;
  bounds.Set("min_lat", Value(meta->bounds.min.lat));
  bounds.Set("min_lon", Value(meta->bounds.min.lon));
  bounds.Set("max_lat", Value(meta->bounds.max.lat));
  bounds.Set("max_lon", Value(meta->bounds.max.lon));
  d.Set("bounds", Value(bounds));
  return HttpResponse::Json(200, json::Serialize(d));
}

}  // namespace agoraeo::netsvc
