#ifndef AGORAEO_NETSVC_EARTHQUBE_SERVICE_H_
#define AGORAEO_NETSVC_EARTHQUBE_SERVICE_H_

#include <string>

#include "common/status.h"
#include "earthqube/earthqube.h"
#include "netsvc/server.h"

namespace agoraeo::netsvc {

/// The HTTP face of the EarthQube back end — the middle tier of the
/// paper's three-tier architecture.  Registers JSON endpoints on an
/// HttpServer and translates between the wire format and the EarthQube
/// facade:
///
///   GET  /health                         liveness probe
///   POST /api/search                     query-panel submission
///   POST /api/similar/by_name            CBIR from an archive image
///   POST /cbir/batch_search              batched CBIR (many queries at once)
///   POST /api/download                   zip export of named images
///   POST /api/feedback                   anonymous feedback text
///   GET  /api/feedback/count
///   GET  /api/patch/<name>               one image's metadata
///
/// /api/search request body (all fields optional):
///   {
///     "geo": {"rect": {"min_lat":..,"min_lon":..,"max_lat":..,"max_lon":..}}
///          | {"circle": {"lat":..,"lon":..,"radius_m":..}}
///          | {"polygon": [[lat,lon],...]},
///     "date_range": {"begin": "YYYY-MM-DD", "end": "YYYY-MM-DD"},
///     "satellites": ["S2A","S2B"],
///     "seasons": ["Summer","Autumn"],
///     "labels": {"operator": "some"|"exactly"|"at_least_and_more",
///                "names": ["Airports", ...]},
///     "limit": 100, "page": 0
///   }
///
/// /api/similar/by_name body: {"name": "...", "radius": 8, "limit": 50}
/// (or {"name": "...", "k": 20} for k-NN).
///
/// /cbir/batch_search body:
///   {"names": ["...", ...], "radius": 8, "limit": 50}
/// or {"names": ["...", ...], "k": 20} for k-NN.  All queries of the
/// batch share one thread-parallel index pass.  Response:
///   {"batch_size": N, "results": [
///     {"query": "...", "hits": [{"name": "...", "distance": D}, ...]},
///     ...]}
/// 404 when any queried name is not in the archive; 400 when the batch
/// exceeds kMaxBatchQueries (one request must not monopolize the
/// shared query pool).
///
/// Search/similar responses:
///   {"total": N, "page": 0, "plan": "IXSCAN(...)",
///    "results": [{"name","labels":[..],"country","date","lat","lon"}...],
///    "label_statistics": [{"label","count","color"}...]}
class EarthQubeService {
 public:
  /// `system` must outlive the service and the server.
  explicit EarthQubeService(earthqube::EarthQube* system) : system_(system) {}

  /// Registers every endpoint on `server` (call before server->Start()).
  void RegisterRoutes(HttpServer* server);

  /// Largest accepted /cbir/batch_search batch.
  static constexpr size_t kMaxBatchQueries = 1024;

  /// Translates a JSON search request body into a query-panel submission
  /// (exposed for tests).
  static StatusOr<earthqube::EarthQubeQuery> QueryFromJson(
      const docstore::Document& body);

  /// Serialises a search response (exposed for tests).
  static std::string ResponseToJson(const earthqube::SearchResponse& response,
                                    size_t page);

 private:
  HttpResponse HandleSearch(const HttpRequest& request) const;
  HttpResponse HandleSimilarByName(const HttpRequest& request) const;
  HttpResponse HandleBatchSearch(const HttpRequest& request) const;
  HttpResponse HandleFeedback(const HttpRequest& request);
  HttpResponse HandleDownload(const HttpRequest& request) const;
  HttpResponse HandlePatchMetadata(const HttpRequest& request) const;

  earthqube::EarthQube* system_;
};

}  // namespace agoraeo::netsvc

#endif  // AGORAEO_NETSVC_EARTHQUBE_SERVICE_H_
