#ifndef AGORAEO_NETSVC_EARTHQUBE_SERVICE_H_
#define AGORAEO_NETSVC_EARTHQUBE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/status.h"
#include "earthqube/earthqube.h"
#include "netsvc/server.h"

namespace agoraeo::netsvc {

/// The HTTP face of the EarthQube back end — the middle tier of the
/// paper's three-tier architecture.  Registers JSON endpoints on an
/// HttpServer and translates between the wire format and the EarthQube
/// facade:
///
///   GET  /health                         liveness probe
///   POST /api/v2/query                   unified query API (see below)
///   GET  /api/v2/cache/stats             query-cache counters + epoch
///   GET  /api/v2/index/stats             Hamming-index partition stats
///   GET  /metrics                        Prometheus text exposition
///   GET  /api/v2/metrics                 same registry as JSON
///   GET  /api/v2/debug/slow_queries      slow-query ring, worst first
///   POST /api/search                     [v1, deprecated] query panel
///   POST /api/similar/by_name            [v1, deprecated] CBIR by name
///   POST /cbir/batch_search              [v1, deprecated] batched CBIR
///   POST /api/download                   zip export of named images
///   POST /api/feedback                   anonymous feedback text
///   GET  /api/feedback/count
///   GET  /api/patch/<name>               one image's metadata
///
/// The v1 routes are thin shims over the same EarthQube::Execute path
/// that serves /api/v2/query and are kept for compatibility; new
/// clients should use v2.
///
/// The query routes (/api/v2/query, /api/search, /api/similar/by_name)
/// are registered as deferred (async) handlers: the HTTP worker parses
/// the request, submits it to EarthQube's execution engine via
/// ExecuteAsync, and returns immediately; an engine worker completes
/// the parked connection when the (possibly coalesced or micro-batched)
/// execution finishes.  Non-query routes stay synchronous.
///
/// /api/v2/query request body — one schema covers panel-only,
/// CBIR-only, hybrid (panel ∧ similarity) and batch submissions:
///   {
///     "panel": {            // optional metadata restrictions
///       "geo": {"rect": {...}} | {"circle": {...}} | {"polygon": [...]},
///       "date_range": {"begin": "YYYY-MM-DD", "end": "YYYY-MM-DD"},
///       "satellites": ["S2A","S2B"],
///       "seasons": ["Summer","Autumn"],
///       "labels": {"operator": "some"|"exactly"|"at_least_and_more",
///                  "names": [...]},
///       "limit": 100
///     },
///     "similarity": {       // optional similarity restriction
///       "name": "<archive image>" | "code": "<'0'/'1' bit string>",
///       "radius": 8 | "k": 20,   // both together -> 400 (default radius 8)
///       "limit": 50
///     },
///     "projection": "full" | "hits",        // default "full"
///     "planner": "auto" | "pre_filter" | "post_filter",  // default auto
///     "page": 0, "page_size": 50,
///     "cursor": "<continuation token>"      // overrides page/page_size
///   }
/// Continuation cursors come in two flavours: v2 tokens carry only
/// (page, page_size); v3 tokens additionally name the server-side
/// ranked-access handle pinning the merged shard-frontier state, so
/// resuming page N costs one incremental pull instead of a
/// re-execution of pages 0..N-1.  Both decode transparently; a handle
/// that has expired, been evicted, or straddles an ingest epoch bump
/// silently falls back to re-execution — resumes never fail, they just
/// lose the shortcut.  A cursor that cannot be DECODED (bad base64,
/// unknown version, mangled fields) is answered with 410 and error
/// code "cursor_expired" so paging clients know to restart from page 0
/// rather than "fix" the request.
/// Batch flavour: {"requests": [<single bodies>, ...]} (at most
/// kMaxBatchQueries).
///
/// /api/v2/query response (similarity responses are windowed: results
/// hold exactly the requested page, "total" is the lower bound
/// page*page_size + |results| (+1 when a cursor promises more), and
/// label_statistics cover the window):
///   {"total": N, "page": 0, "page_size": 50, "cursor": "<token>"|"",
///    "served_from_cache": false,
///    "plan": {"strategy": "panel_only"|"cbir_only"|"pre_filter"|
///             "post_filter", "description": "...", "selectivity": 0.03,
///             "estimated_matches": 123},
///    "results": [{"name",...,"distance"?}, ...],
///    "label_statistics": [{"label","count","color"}, ...]}
/// Hits-only projection drops the metadata join: results are
/// [{"name","distance"}, ...] and label_statistics is omitted.  Batch
/// responses: {"batch_size": N, "responses": [<single responses>]}.
///
/// Every endpoint answers errors with the shared JSON envelope
/// {"error": {"code": "...", "message": "..."}} (HttpResponse::Error).
///
/// v1 bodies (unchanged): /api/search takes the "panel" fields at the
/// top level plus "page"; /api/similar/by_name takes {"name", "radius"
/// | "k", "limit"}; /cbir/batch_search takes {"names": [...], "radius"
/// | "k", "limit"}.  v1 search responses now carry the v2 continuation
/// "cursor", and malformed "page"/"limit" values are rejected (400)
/// instead of clamped.
class EarthQubeService {
 public:
  /// Cluster identity surfaced by the stats endpoints.  A standalone
  /// (non-cluster) service has no provider and emits no "node" block;
  /// a ClusterNode installs one so operators can tell WHICH node a
  /// stats response describes and how much of the slot space it owns.
  struct NodeInfo {
    std::string id;
    size_t owned_slots = 0;
    uint64_t cluster_epoch = 0;
  };
  using NodeInfoProvider = std::function<NodeInfo()>;

  /// `system` must outlive the service and the server.
  explicit EarthQubeService(earthqube::EarthQube* system) : system_(system) {}

  /// Registers every endpoint on `server` (call before server->Start()).
  /// A cluster node passes `include_query_route = false` and registers
  /// its own /api/v2/query handler (slot guard + migration filtering)
  /// in front of the same execution path.
  void RegisterRoutes(HttpServer* server, bool include_query_route = true);

  /// Installs the cluster-identity provider consulted by the stats
  /// endpoints.  Must be called before the server starts; the provider
  /// must be safe to invoke from server worker threads.
  void set_node_info_provider(NodeInfoProvider provider) {
    node_info_ = std::move(provider);
  }

  /// Largest accepted batch (/cbir/batch_search names and /api/v2/query
  /// requests).
  static constexpr size_t kMaxBatchQueries = 1024;

  /// Translates a JSON search request body into a query-panel submission
  /// (exposed for tests).
  static StatusOr<earthqube::EarthQubeQuery> QueryFromJson(
      const docstore::Document& body);

  /// Translates a /api/v2/query body into a unified request (exposed
  /// for tests).  Parser-level and semantic validation errors both
  /// surface as InvalidArgument.
  static StatusOr<earthqube::QueryRequest> QueryRequestFromJson(
      const docstore::Document& body);

  /// Serialises a v1 search response (exposed for tests).  Emits the v2
  /// continuation cursor when further kPageSize pages remain.
  static std::string ResponseToJson(const earthqube::SearchResponse& response,
                                    size_t page);

  /// Serialises a v2 response (exposed for tests).
  static std::string QueryResponseToJson(
      const earthqube::QueryResponse& response);

 private:
  void HandleQueryV2(const HttpRequest& request,
                     HttpServer::Responder responder) const;
  HttpResponse HandleCacheStats() const;
  HttpResponse HandleIndexStats() const;
  HttpResponse HandleIndexSnapshot();
  void HandleSearch(const HttpRequest& request,
                    HttpServer::Responder responder) const;
  void HandleSimilarByName(const HttpRequest& request,
                           HttpServer::Responder responder) const;
  HttpResponse HandleBatchSearch(const HttpRequest& request) const;
  HttpResponse HandleFeedback(const HttpRequest& request);
  HttpResponse HandleDownload(const HttpRequest& request) const;
  HttpResponse HandlePatchMetadata(const HttpRequest& request) const;

  earthqube::EarthQube* system_;
  NodeInfoProvider node_info_;
};

}  // namespace agoraeo::netsvc

#endif  // AGORAEO_NETSVC_EARTHQUBE_SERVICE_H_
