#include "netsvc/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace agoraeo::netsvc {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Splits `head` into lines at CRLF (tolerating bare LF).
std::vector<std::string> SplitLines(const std::string& head) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < head.size()) {
    size_t nl = head.find('\n', pos);
    if (nl == std::string::npos) nl = head.size();
    size_t end = nl;
    if (end > pos && head[end - 1] == '\r') --end;
    lines.push_back(head.substr(pos, end - pos));
    pos = nl + 1;
  }
  return lines;
}

Status ParseHeaderLines(const std::vector<std::string>& lines, size_t first,
                        std::map<std::string, std::string>* headers) {
  for (size_t i = first; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("malformed header line: " + line);
    }
    std::string name = ToLower(line.substr(0, colon));
    size_t vbegin = colon + 1;
    while (vbegin < line.size() && line[vbegin] == ' ') ++vbegin;
    size_t vend = line.size();
    while (vend > vbegin && line[vend - 1] == ' ') --vend;
    (*headers)[std::move(name)] = line.substr(vbegin, vend - vbegin);
  }
  return Status::OK();
}

}  // namespace

const std::string& HttpRequest::Header(const std::string& lower_name) const {
  static const std::string kEmpty;
  auto it = headers.find(lower_name);
  return it == headers.end() ? kEmpty : it->second;
}

HttpResponse HttpResponse::Json(int code, std::string json_body) {
  HttpResponse r;
  r.status_code = code;
  r.reason = ReasonPhrase(code);
  r.headers["content-type"] = "application/json";
  r.body = std::move(json_body);
  return r;
}

HttpResponse HttpResponse::Text(int code, std::string text_body) {
  HttpResponse r;
  r.status_code = code;
  r.reason = ReasonPhrase(code);
  r.headers["content-type"] = "text/plain";
  r.body = std::move(text_body);
  return r;
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

HttpResponse HttpResponse::Error(int status, const std::string& code,
                                 const std::string& message) {
  return Json(status, "{\"error\":{\"code\":\"" + JsonEscape(code) +
                          "\",\"message\":\"" + JsonEscape(message) + "\"}}");
}

HttpResponse HttpResponse::NotFound(const std::string& what) {
  return Error(404, "not_found", what);
}

HttpResponse HttpResponse::BadRequest(const std::string& what) {
  return Error(400, "bad_request", what);
}

HttpResponse HttpResponse::InternalError(const std::string& what) {
  return Error(500, "internal_error", what);
}

HttpResponse HttpResponse::MethodNotAllowed(const std::string& what) {
  return Error(405, "method_not_allowed", what);
}

std::string SerializeRequest(const HttpRequest& request,
                             const std::string& host) {
  std::string out = request.method + " " + request.path;
  if (!request.query.empty()) out += "?" + request.query;
  out += " HTTP/1.1\r\n";
  out += "host: " + host + "\r\n";
  for (const auto& [name, value] : request.headers) {
    if (name == "host" || name == "content-length" || name == "connection") {
      continue;
    }
    out += name + ": " + value + "\r\n";
  }
  out += "content-length: " + std::to_string(request.body.size()) + "\r\n";
  out += "connection: close\r\n\r\n";
  out += request.body;
  return out;
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status_code) + " " +
                    response.reason + "\r\n";
  for (const auto& [name, value] : response.headers) {
    if (name == "content-length" || name == "connection") continue;
    out += name + ": " + value + "\r\n";
  }
  out += "content-length: " + std::to_string(response.body.size()) + "\r\n";
  out += "connection: close\r\n\r\n";
  out += response.body;
  return out;
}

StatusOr<HttpRequest> ParseRequestHead(const std::string& head) {
  const std::vector<std::string> lines = SplitLines(head);
  if (lines.empty()) return Status::InvalidArgument("empty request head");
  const std::string& request_line = lines[0];
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return Status::InvalidArgument("malformed request line: " + request_line);
  }
  HttpRequest req;
  req.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    return Status::InvalidArgument("unsupported HTTP version: " + version);
  }
  const size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    req.path = std::move(target);
  } else {
    req.path = target.substr(0, qmark);
    req.query = target.substr(qmark + 1);
  }
  AGORAEO_RETURN_IF_ERROR(ParseHeaderLines(lines, 1, &req.headers));
  return req;
}

StatusOr<HttpResponse> ParseResponseHead(const std::string& head) {
  const std::vector<std::string> lines = SplitLines(head);
  if (lines.empty()) return Status::InvalidArgument("empty response head");
  const std::string& status_line = lines[0];
  if (status_line.rfind("HTTP/1.", 0) != 0) {
    return Status::InvalidArgument("malformed status line: " + status_line);
  }
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos || sp1 + 4 > status_line.size()) {
    return Status::InvalidArgument("malformed status line: " + status_line);
  }
  HttpResponse resp;
  resp.status_code = std::atoi(status_line.c_str() + sp1 + 1);
  if (resp.status_code < 100 || resp.status_code > 599) {
    return Status::InvalidArgument("bad status code in: " + status_line);
  }
  const size_t sp2 = status_line.find(' ', sp1 + 1);
  resp.reason = sp2 == std::string::npos ? "" : status_line.substr(sp2 + 1);
  AGORAEO_RETURN_IF_ERROR(ParseHeaderLines(lines, 1, &resp.headers));
  return resp;
}

StatusOr<std::string> UrlDecode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= text.size()) {
        return Status::InvalidArgument("truncated percent escape");
      }
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      const int hi = hex(text[i + 1]);
      const int lo = hex(text[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("bad percent escape");
      }
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UrlEncode(const std::string& text) {
  std::string out;
  for (unsigned char c : text) {
    const bool unreserved = std::isalnum(c) || c == '-' || c == '_' ||
                            c == '.' || c == '~';
    if (unreserved) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    }
  }
  return out;
}

StatusOr<std::map<std::string, std::string>> ParseQueryString(
    const std::string& query) {
  std::map<std::string, std::string> out;
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      std::string key = eq == std::string::npos ? pair : pair.substr(0, eq);
      std::string value = eq == std::string::npos ? "" : pair.substr(eq + 1);
      AGORAEO_ASSIGN_OR_RETURN(key, UrlDecode(key));
      AGORAEO_ASSIGN_OR_RETURN(value, UrlDecode(value));
      out[std::move(key)] = std::move(value);
    }
    pos = amp + 1;
  }
  return out;
}

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 308: return "Permanent Redirect";
    case 400: return "Bad Request";
    case 409: return "Conflict";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace agoraeo::netsvc
