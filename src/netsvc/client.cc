#include "netsvc/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace agoraeo::netsvc {

namespace {

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

StatusOr<HttpResponse> HttpClient::Request(uint16_t port,
                                           const std::string& method,
                                           const std::string& target,
                                           const std::string& body,
                                           const std::string& content_type)
    const {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  timeval tv{};
  tv.tv_sec = timeout_ms_ / 1000;
  tv.tv_usec = (timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host_);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::IOError(std::string("connect: ") + std::strerror(errno));
  }

  HttpRequest req;
  req.method = method;
  const size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    req.path = target;
  } else {
    req.path = target.substr(0, qmark);
    req.query = target.substr(qmark + 1);
  }
  req.body = body;
  if (!body.empty()) req.headers["content-type"] = content_type;

  const Status sent =
      SendAll(fd, SerializeRequest(req, host_ + ":" + std::to_string(port)));
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }

  // Read until EOF (the server closes after one response).
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IOError("no complete HTTP response head received");
  }
  AGORAEO_ASSIGN_OR_RETURN(HttpResponse resp,
                           ParseResponseHead(buffer.substr(0, head_end)));
  resp.body = buffer.substr(head_end + 4);
  // Trust Content-Length when present and sane.
  auto it = resp.headers.find("content-length");
  if (it != resp.headers.end()) {
    const size_t expected =
        static_cast<size_t>(std::strtoull(it->second.c_str(), nullptr, 10));
    if (resp.body.size() < expected) {
      return Status::IOError("response body shorter than content-length");
    }
    resp.body.resize(expected);
  }
  return resp;
}

}  // namespace agoraeo::netsvc
