#include "netsvc/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>

namespace agoraeo::netsvc {

namespace {

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

bool IsRefusedErrno(int err) {
  return err == ECONNREFUSED || err == ECONNRESET || err == EPIPE ||
         err == ENETUNREACH || err == EHOSTUNREACH;
}

/// Non-blocking connect bounded by `timeout_ms`.  Distinguishes the two
/// interesting failures: nobody listening (refused) vs nobody answering
/// (timeout).
Status ConnectWithTimeout(int fd, const sockaddr_in& addr, int timeout_ms,
                          HttpErrorKind* kind) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    *kind = IsRefusedErrno(errno) ? HttpErrorKind::kRefused
                                  : HttpErrorKind::kOther;
    return Status::IOError(std::string("connect: ") + std::strerror(errno));
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      *kind = HttpErrorKind::kConnectTimeout;
      return Status::IOError("connect timed out after " +
                             std::to_string(timeout_ms) + " ms");
    }
    if (rc < 0) {
      *kind = HttpErrorKind::kOther;
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      *kind = IsRefusedErrno(err) ? HttpErrorKind::kRefused
                                  : HttpErrorKind::kOther;
      return Status::IOError(std::string("connect: ") + std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for send/recv
  return Status::OK();
}

/// Deterministic per-(request, attempt) jitter fraction in [0.5, 1.0) —
/// a splitmix64 scramble instead of shared RNG state, so concurrent
/// requests need no lock and tests are reproducible.
double JitterFraction(uint64_t salt, int attempt) {
  uint64_t x = salt + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(attempt + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return 0.5 + 0.5 * (static_cast<double>(x >> 11) / 9007199254740992.0);
}

}  // namespace

const char* HttpErrorKindName(HttpErrorKind kind) {
  switch (kind) {
    case HttpErrorKind::kNone: return "none";
    case HttpErrorKind::kConnectTimeout: return "connect_timeout";
    case HttpErrorKind::kReadTimeout: return "read_timeout";
    case HttpErrorKind::kRefused: return "refused";
    case HttpErrorKind::kMalformed: return "malformed";
    case HttpErrorKind::kOther: return "other";
  }
  return "other";
}

StatusOr<HttpResponse> HttpClient::Attempt(uint16_t port,
                                           const std::string& wire,
                                           HttpErrorKind* kind) const {
  *kind = HttpErrorKind::kOther;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host_);
  }
  Status connected =
      ConnectWithTimeout(fd, addr, options_.connect_timeout_ms, kind);
  if (!connected.ok()) {
    ::close(fd);
    return connected;
  }
  timeval tv{};
  tv.tv_sec = options_.read_timeout_ms / 1000;
  tv.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  const Status sent = SendAll(fd, wire);
  if (!sent.ok()) {
    const bool timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
    ::close(fd);
    *kind = timed_out ? HttpErrorKind::kReadTimeout : HttpErrorKind::kRefused;
    return sent;
  }

  // Read until EOF (the server closes after one response).
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const bool timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      ::close(fd);
      *kind =
          timed_out ? HttpErrorKind::kReadTimeout : HttpErrorKind::kRefused;
      return Status::IOError(
          timed_out ? "recv timed out after " +
                          std::to_string(options_.read_timeout_ms) + " ms"
                    : std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    *kind = HttpErrorKind::kMalformed;
    return Status::IOError("no complete HTTP response head received");
  }
  auto resp_or = ParseResponseHead(buffer.substr(0, head_end));
  if (!resp_or.ok()) {
    *kind = HttpErrorKind::kMalformed;
    return resp_or.status();
  }
  HttpResponse resp = std::move(resp_or).value();
  resp.body = buffer.substr(head_end + 4);
  // Trust Content-Length when present and sane.
  auto it = resp.headers.find("content-length");
  if (it != resp.headers.end()) {
    const size_t expected =
        static_cast<size_t>(std::strtoull(it->second.c_str(), nullptr, 10));
    if (resp.body.size() < expected) {
      *kind = HttpErrorKind::kMalformed;
      return Status::IOError("response body shorter than content-length");
    }
    resp.body.resize(expected);
  }
  *kind = HttpErrorKind::kNone;
  return resp;
}

StatusOr<HttpResponse> HttpClient::Request(
    uint16_t port, const std::string& method, const std::string& target,
    const std::string& body, const std::string& content_type,
    HttpRequestDetail* detail,
    const std::map<std::string, std::string>& extra_headers) const {
  const obs::HttpClientMetrics* metrics = options_.metrics;
  if (metrics != nullptr && metrics->requests != nullptr) {
    metrics->requests->Increment();
  }
  HttpRequest req;
  req.method = method;
  const size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    req.path = target;
  } else {
    req.path = target.substr(0, qmark);
    req.query = target.substr(qmark + 1);
  }
  req.body = body;
  if (!body.empty()) req.headers["content-type"] = content_type;
  for (const auto& [name, value] : extra_headers) req.headers[name] = value;
  const std::string wire =
      SerializeRequest(req, host_ + ":" + std::to_string(port));

  const uint64_t jitter_salt =
      std::hash<std::string>{}(target) ^ (static_cast<uint64_t>(port) << 17);
  StatusOr<HttpResponse> result = Status::IOError("no attempt made");
  HttpErrorKind kind = HttpErrorKind::kOther;
  int attempts = 0;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1);
      if (metrics != nullptr && metrics->retries != nullptr) {
        metrics->retries->Increment();
      }
      const int base = std::min(options_.backoff_max_ms,
                                options_.backoff_base_ms << (attempt - 1));
      const int sleep_ms = std::max(
          1, static_cast<int>(base * JitterFraction(jitter_salt, attempt)));
      if (metrics != nullptr && metrics->backoff_sleeps != nullptr) {
        metrics->backoff_sleeps->Increment();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    ++attempts;
    result = Attempt(port, wire, &kind);
    if (result.ok()) break;
    // Connection-phase failures never reached the server, so any method
    // can retry them; read-phase failures may have executed server-side
    // and only idempotent GETs retry.
    const bool retryable =
        kind == HttpErrorKind::kRefused ||
        kind == HttpErrorKind::kConnectTimeout ||
        (method == "GET" && (kind == HttpErrorKind::kReadTimeout ||
                             kind == HttpErrorKind::kMalformed));
    if (!retryable) break;
  }
  if (detail != nullptr) {
    detail->error_kind = kind;
    detail->attempts = attempts;
  }
  if (!result.ok() && kind != HttpErrorKind::kNone) {
    if (metrics != nullptr) {
      if (metrics->failures != nullptr) metrics->failures->Increment();
      const int kind_index = static_cast<int>(kind);
      if (kind_index >= 0 &&
          kind_index < obs::HttpClientMetrics::kNumErrorKinds &&
          metrics->errors_by_kind[kind_index] != nullptr) {
        metrics->errors_by_kind[kind_index]->Increment();
      }
    }
    return Status::IOError(std::string(HttpErrorKindName(kind)) + ": " +
                           std::string(result.status().message()));
  }
  return result;
}

}  // namespace agoraeo::netsvc
