#ifndef AGORAEO_NETSVC_CLIENT_H_
#define AGORAEO_NETSVC_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "netsvc/http.h"
#include "obs/metrics.h"

namespace agoraeo::netsvc {

/// How a request failed, classified for callers that react differently
/// to "the peer is slow" vs "the peer is gone" vs "the peer is
/// broken" — the cluster coordinator retries refused nodes but fails
/// fast on malformed responses.
enum class HttpErrorKind {
  kNone,            ///< the request succeeded
  kConnectTimeout,  ///< connect() did not complete within the budget
  kReadTimeout,     ///< the peer accepted but a send/recv timed out
  kRefused,         ///< connection refused / reset / unreachable
  kMalformed,       ///< bytes arrived but were not a valid HTTP response
  kOther,           ///< anything else (bad address, local socket error)
};

const char* HttpErrorKindName(HttpErrorKind kind);

/// Per-request outcome detail beyond the Status (optional out-param of
/// Request): the typed failure kind and how many attempts were made.
struct HttpRequestDetail {
  HttpErrorKind error_kind = HttpErrorKind::kNone;
  int attempts = 0;  ///< total connection attempts (1 = no retry needed)
};

/// Tuning of HttpClient; the defaults suit loopback tiers.
struct HttpClientOptions {
  /// Budget for establishing the TCP connection (non-blocking connect +
  /// poll), separate from the read budget so a dead host fails fast
  /// while a slow response can still stream.
  int connect_timeout_ms = 2000;
  /// Budget for each send/recv on an established connection.
  int read_timeout_ms = 5000;
  /// Extra attempts after the first failure.  Only connection-phase
  /// failures (refused, connect timeout) are retried for non-idempotent
  /// methods; GET also retries read-phase failures.
  int max_retries = 2;
  /// Exponential backoff between attempts: attempt n sleeps
  /// min(backoff_base_ms << n, backoff_max_ms) scaled by a
  /// deterministic jitter in [0.5, 1.0) so synchronized clients fan
  /// back in spread out.
  int backoff_base_ms = 25;
  int backoff_max_ms = 1000;
  /// Optional metric hooks (requests, failures, retries, backoff
  /// sleeps, error kinds — indexed by static_cast<int>(HttpErrorKind)).
  /// Not owned; must outlive every client constructed from these
  /// options.  Null (the default) records nothing.
  const obs::HttpClientMetrics* metrics = nullptr;
};

/// A blocking HTTP client for the loopback tiers (the UI tier's side of
/// the paper's three-tier architecture, and the cluster tier's
/// inter-node transport).  One request per connection, mirroring the
/// server.  Thread-safe: requests share no mutable state beyond
/// counters.
class HttpClient {
 public:
  explicit HttpClient(std::string host = "127.0.0.1",
                      HttpClientOptions options = {})
      : host_(std::move(host)), options_(options) {}

  /// Legacy convenience: one timeout bounds connect and read alike.
  HttpClient(std::string host, int timeout_ms) : host_(std::move(host)) {
    options_.connect_timeout_ms = timeout_ms;
    options_.read_timeout_ms = timeout_ms;
  }

  /// Issues `method target` with an optional body.  Failures carry a
  /// "<kind>: " prefix in the Status message; pass `detail` for the
  /// typed kind and the attempt count.
  StatusOr<HttpResponse> Request(
      uint16_t port, const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::string& content_type = "application/json",
      HttpRequestDetail* detail = nullptr,
      const std::map<std::string, std::string>& extra_headers = {}) const;

  StatusOr<HttpResponse> Get(uint16_t port, const std::string& target) const {
    return Request(port, "GET", target);
  }
  StatusOr<HttpResponse> Post(uint16_t port, const std::string& target,
                              const std::string& json_body) const {
    return Request(port, "POST", target, json_body);
  }

  const HttpClientOptions& options() const { return options_; }
  /// Lifetime retry count across all requests (observability, tests).
  uint64_t retries_attempted() const { return retries_.load(); }

 private:
  /// One connection attempt: connect, send, read to EOF, parse.
  StatusOr<HttpResponse> Attempt(uint16_t port, const std::string& wire,
                                 HttpErrorKind* kind) const;

  std::string host_;
  HttpClientOptions options_;
  mutable std::atomic<uint64_t> retries_{0};
};

}  // namespace agoraeo::netsvc

#endif  // AGORAEO_NETSVC_CLIENT_H_
