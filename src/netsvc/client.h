#ifndef AGORAEO_NETSVC_CLIENT_H_
#define AGORAEO_NETSVC_CLIENT_H_

#include <string>

#include "common/status.h"
#include "netsvc/http.h"

namespace agoraeo::netsvc {

/// A blocking HTTP client for the loopback tiers (the UI tier's side of
/// the paper's three-tier architecture).  One request per connection,
/// mirroring the server.
class HttpClient {
 public:
  /// `timeout_ms` bounds connect/send/receive individually.
  explicit HttpClient(std::string host = "127.0.0.1", int timeout_ms = 5000)
      : host_(std::move(host)), timeout_ms_(timeout_ms) {}

  /// Issues `method target` with an optional body.
  StatusOr<HttpResponse> Request(uint16_t port, const std::string& method,
                                 const std::string& target,
                                 const std::string& body = "",
                                 const std::string& content_type =
                                     "application/json") const;

  StatusOr<HttpResponse> Get(uint16_t port, const std::string& target) const {
    return Request(port, "GET", target);
  }
  StatusOr<HttpResponse> Post(uint16_t port, const std::string& target,
                              const std::string& json_body) const {
    return Request(port, "POST", target, json_body);
  }

 private:
  std::string host_;
  int timeout_ms_;
};

}  // namespace agoraeo::netsvc

#endif  // AGORAEO_NETSVC_CLIENT_H_
