#ifndef AGORAEO_NETSVC_HTTP_H_
#define AGORAEO_NETSVC_HTTP_H_

#include <map>
#include <string>

#include "common/status.h"

namespace agoraeo::netsvc {

/// A parsed HTTP/1.1 request.  Header names are lower-cased; the target
/// is split into path and (raw) query string at the first '?'.
struct HttpRequest {
  std::string method;  ///< upper-case, e.g. "GET", "POST"
  std::string path;    ///< e.g. "/api/search"
  std::string query;   ///< raw query string without '?', may be empty
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header lookup by lower-case name; empty string when absent.
  const std::string& Header(const std::string& lower_name) const;
};

/// An HTTP response under construction or as received by the client.
struct HttpResponse {
  int status_code = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  std::string body;

  static HttpResponse Json(int code, std::string json_body);
  static HttpResponse Text(int code, std::string text_body);

  /// The shared JSON error envelope every endpoint (v1 and v2) answers
  /// errors with: {"error": {"code": "<machine code>", "message":
  /// "<human text>"}} — `message` is JSON-escaped.
  static HttpResponse Error(int status, const std::string& code,
                            const std::string& message);

  /// Canonical error shorthands over Error().
  static HttpResponse NotFound(const std::string& what);
  static HttpResponse BadRequest(const std::string& what);
  static HttpResponse InternalError(const std::string& what);
  static HttpResponse MethodNotAllowed(const std::string& what);
};

/// Serialises a request/response with a Content-Length header and
/// `Connection: close` (the server speaks one-request-per-connection
/// HTTP, which is all the loopback tiers need).
std::string SerializeRequest(const HttpRequest& request,
                             const std::string& host);
std::string SerializeResponse(const HttpResponse& response);

/// Parses the head (request line + headers) of a request/response given
/// everything up to and excluding the blank line.  Body handling is the
/// transport's job (via Content-Length).
StatusOr<HttpRequest> ParseRequestHead(const std::string& head);
StatusOr<HttpResponse> ParseResponseHead(const std::string& head);

/// Percent-decodes a URL component ("%20" -> ' ', '+' -> ' ').
StatusOr<std::string> UrlDecode(const std::string& text);
std::string UrlEncode(const std::string& text);

/// Parses "a=1&b=x%20y" into a map (later duplicates win).
StatusOr<std::map<std::string, std::string>> ParseQueryString(
    const std::string& query);

/// Reason phrase for common status codes ("OK", "Not Found", ...).
const char* ReasonPhrase(int code);

}  // namespace agoraeo::netsvc

#endif  // AGORAEO_NETSVC_HTTP_H_
