#include "milan/baselines.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace agoraeo::milan {

namespace {

std::vector<BinaryCode> HashRows(const Tensor& features,
                                 const std::function<BinaryCode(const Tensor&)>& fn) {
  std::vector<BinaryCode> out;
  out.reserve(features.dim(0));
  for (size_t i = 0; i < features.dim(0); ++i) {
    out.push_back(fn(features.Row(i)));
  }
  return out;
}

/// Gram-Schmidt orthonormalisation of the columns of [n, n] matrix `m`
/// (in place); degenerate columns are replaced with unit axis vectors.
void OrthonormalizeColumns(Tensor* m) {
  const size_t n = m->dim(0);
  for (size_t col = 0; col < m->dim(1); ++col) {
    // Subtract projections onto previous columns.
    for (size_t prev = 0; prev < col; ++prev) {
      double dot = 0.0;
      for (size_t r = 0; r < n; ++r) {
        dot += static_cast<double>(m->at(r, col)) * m->at(r, prev);
      }
      for (size_t r = 0; r < n; ++r) {
        m->at(r, col) -= static_cast<float>(dot) * m->at(r, prev);
      }
    }
    double norm = 0.0;
    for (size_t r = 0; r < n; ++r) {
      norm += static_cast<double>(m->at(r, col)) * m->at(r, col);
    }
    norm = std::sqrt(norm);
    if (norm < 1e-8) {
      for (size_t r = 0; r < n; ++r) m->at(r, col) = 0.0f;
      m->at(col % n, col) = 1.0f;
    } else {
      const float inv = static_cast<float>(1.0 / norm);
      for (size_t r = 0; r < n; ++r) m->at(r, col) *= inv;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// RandomHyperplaneLsh
// ---------------------------------------------------------------------------

RandomHyperplaneLsh::RandomHyperplaneLsh(size_t feature_dim, size_t bits,
                                         uint64_t seed)
    : bits_(bits) {
  Rng rng(seed, /*stream=*/41);
  hyperplanes_ = Tensor::RandomNormal({feature_dim, bits}, 1.0f, &rng);
}

BinaryCode RandomHyperplaneLsh::Hash(const Tensor& feature) const {
  assert(feature.size() == hyperplanes_.dim(0));
  Tensor x = feature.Reshaped({1, feature.size()});
  Tensor proj = MatMul(x, hyperplanes_);
  std::vector<float> values(proj.data(), proj.data() + proj.size());
  return BinaryCode::FromSigns(values);
}

std::vector<BinaryCode> RandomHyperplaneLsh::HashBatch(
    const Tensor& features) const {
  return HashRows(features, [this](const Tensor& f) { return Hash(f); });
}

// ---------------------------------------------------------------------------
// MedianThresholdHash
// ---------------------------------------------------------------------------

MedianThresholdHash::MedianThresholdHash(const Tensor& training, size_t bits,
                                         uint64_t seed)
    : bits_(bits) {
  assert(training.rank() == 2 && training.dim(0) > 0);
  Rng rng(seed, /*stream=*/43);
  projections_ = Tensor::RandomNormal({training.dim(1), bits}, 1.0f, &rng);
  const Tensor projected = MatMul(training, projections_);
  thresholds_.resize(bits);
  std::vector<float> column(projected.dim(0));
  for (size_t j = 0; j < bits; ++j) {
    for (size_t i = 0; i < projected.dim(0); ++i) column[i] = projected.at(i, j);
    auto mid = column.begin() + column.size() / 2;
    std::nth_element(column.begin(), mid, column.end());
    thresholds_[j] = *mid;
  }
}

BinaryCode MedianThresholdHash::Hash(const Tensor& feature) const {
  assert(feature.size() == projections_.dim(0));
  Tensor x = feature.Reshaped({1, feature.size()});
  Tensor proj = MatMul(x, projections_);
  BinaryCode code(bits_);
  for (size_t j = 0; j < bits_; ++j) {
    if (proj[j] > thresholds_[j]) code.SetBit(j, true);
  }
  return code;
}

std::vector<BinaryCode> MedianThresholdHash::HashBatch(
    const Tensor& features) const {
  return HashRows(features, [this](const Tensor& f) { return Hash(f); });
}

// ---------------------------------------------------------------------------
// ItqHash
// ---------------------------------------------------------------------------

ItqHash::ItqHash(const Tensor& training, size_t bits, size_t iterations,
                 uint64_t seed)
    : bits_(bits) {
  assert(training.rank() == 2 && training.dim(0) > 1);
  const size_t n = training.dim(0), dim = training.dim(1);
  Rng rng(seed, /*stream=*/47);

  // Center the data.
  mean_.assign(dim, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) mean_[j] += training.at(i, j);
  }
  for (float& v : mean_) v /= static_cast<float>(n);
  Tensor centered = training;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) centered.at(i, j) -= mean_[j];
  }

  // Covariance [dim, dim] (scaled; scale does not affect eigenvectors).
  Tensor cov = MatMul(centered.Transposed(), centered);

  // Top-`bits` eigenvectors by power iteration with deflation.
  pca_ = Tensor({dim, bits});
  Tensor work = cov;
  for (size_t k = 0; k < bits_; ++k) {
    Tensor v = Tensor::RandomNormal({dim}, 1.0f, &rng);
    float eigenvalue = 0.0f;
    for (int it = 0; it < 60; ++it) {
      Tensor next = MatVec(work, v);
      const float norm = next.L2Norm();
      if (norm < 1e-12f) break;
      next *= 1.0f / norm;
      eigenvalue = norm;
      v = next;
    }
    for (size_t j = 0; j < dim; ++j) pca_.at(j, k) = v[j];
    // Deflate: work -= lambda v v^T.
    for (size_t r = 0; r < dim; ++r) {
      for (size_t c = 0; c < dim; ++c) {
        work.at(r, c) -= eigenvalue * v[r] * v[c];
      }
    }
  }

  // ITQ rotation refinement: alternate B = sign(V R) and R ~ orthogonal
  // matrix aligning V with B (approximated by orthonormalising V^T B).
  rotation_ = Tensor::RandomNormal({bits, bits}, 1.0f, &rng);
  OrthonormalizeColumns(&rotation_);
  const Tensor projected = MatMul(centered, pca_);  // [n, bits]
  for (size_t it = 0; it < iterations; ++it) {
    Tensor vr = MatMul(projected, rotation_);
    Tensor b = vr;
    b.Apply([](float x) { return x >= 0.0f ? 1.0f : -1.0f; });
    Tensor corr = MatMul(projected.Transposed(), b);  // [bits, bits]
    OrthonormalizeColumns(&corr);
    rotation_ = corr;
  }
}

Tensor ItqHash::ProjectCentered(const Tensor& features) const {
  Tensor centered = features;
  const size_t dim = centered.dim(1);
  for (size_t i = 0; i < centered.dim(0); ++i) {
    for (size_t j = 0; j < dim; ++j) centered.at(i, j) -= mean_[j];
  }
  return MatMul(MatMul(centered, pca_), rotation_);
}

BinaryCode ItqHash::Hash(const Tensor& feature) const {
  Tensor proj = ProjectCentered(feature.Reshaped({1, feature.size()}));
  std::vector<float> values(proj.data(), proj.data() + proj.size());
  return BinaryCode::FromSigns(values);
}

std::vector<BinaryCode> ItqHash::HashBatch(const Tensor& features) const {
  Tensor proj = ProjectCentered(features);
  std::vector<BinaryCode> out;
  out.reserve(proj.dim(0));
  for (size_t i = 0; i < proj.dim(0); ++i) {
    const Tensor row = proj.Row(i);
    std::vector<float> values(row.data(), row.data() + row.size());
    out.push_back(BinaryCode::FromSigns(values));
  }
  return out;
}

}  // namespace agoraeo::milan
