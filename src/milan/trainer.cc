#include "milan/trainer.h"

#include "common/logging.h"

namespace agoraeo::milan {

Trainer::Trainer(MilanModel* model, const Tensor* features,
                 const TripletSampler* sampler, TrainConfig config)
    : model_(model),
      features_(features),
      sampler_(sampler),
      config_(config),
      rng_(config.seed, /*stream=*/31),
      optimizer_(model->net().Params(), config.learning_rate) {}

StatusOr<MilanLossResult> Trainer::TrainStep() {
  const size_t batch = config_.batch_size;
  AGORAEO_ASSIGN_OR_RETURN(std::vector<Triplet> triplets,
                           sampler_->SampleBatch(batch, &rng_));

  // Stack rows: [anchors; positives; negatives].
  const size_t dim = features_->dim(1);
  Tensor input({3 * batch, dim});
  for (size_t b = 0; b < batch; ++b) {
    input.SetRow(b, features_->Row(triplets[b].anchor));
    input.SetRow(batch + b, features_->Row(triplets[b].positive));
    input.SetRow(2 * batch + b, features_->Row(triplets[b].negative));
  }

  model_->net().ZeroGrad();
  const Tensor outputs = model_->Forward(input, /*training=*/true);
  MilanLossResult loss = MilanLoss(outputs, batch, config_.loss);
  model_->Backward(loss.grad);
  optimizer_.Step();
  return loss;
}

StatusOr<TrainResult> Trainer::Train() {
  TrainResult result;
  float lr = config_.learning_rate;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    optimizer_.set_learning_rate(lr);
    EpochStats stats;
    for (size_t step = 0; step < config_.batches_per_epoch; ++step) {
      AGORAEO_ASSIGN_OR_RETURN(MilanLossResult loss, TrainStep());
      stats.total += loss.total;
      stats.triplet += loss.triplet;
      stats.balance += loss.balance;
      stats.quantization += loss.quantization;
      stats.active_triplet_fraction +=
          static_cast<float>(loss.active_triplets) /
          static_cast<float>(config_.batch_size);
      result.samples_seen += 3 * config_.batch_size;
    }
    const float inv = 1.0f / static_cast<float>(config_.batches_per_epoch);
    stats.total *= inv;
    stats.triplet *= inv;
    stats.balance *= inv;
    stats.quantization *= inv;
    stats.active_triplet_fraction *= inv;
    result.epochs.push_back(stats);
    AGORAEO_LOG(kDebug) << "epoch " << epoch << " loss=" << stats.total
                        << " (triplet=" << stats.triplet
                        << " balance=" << stats.balance
                        << " quant=" << stats.quantization << ")";
    lr *= config_.lr_decay;
  }
  return result;
}

}  // namespace agoraeo::milan
