#include "milan/milan_model.h"

#include "common/byte_buffer.h"
#include "nn/activations.h"
#include "nn/dense.h"

namespace agoraeo::milan {

namespace {
constexpr uint32_t kMagic = 0x4d494c41;  // "MILA"
constexpr uint32_t kVersion = 1;
}  // namespace

MilanModel::MilanModel(const MilanConfig& config)
    : config_(config), rng_(config.seed, /*stream=*/21) {
  net_.Emplace<nn::Dense>(config_.feature_dim, config_.hidden1,
                          nn::Init::kHeNormal, &rng_);
  net_.Emplace<nn::ReLU>();
  if (config_.dropout > 0.0f) net_.Emplace<nn::Dropout>(config_.dropout, &rng_);
  net_.Emplace<nn::Dense>(config_.hidden1, config_.hidden2,
                          nn::Init::kHeNormal, &rng_);
  net_.Emplace<nn::ReLU>();
  if (config_.dropout > 0.0f) net_.Emplace<nn::Dropout>(config_.dropout, &rng_);
  net_.Emplace<nn::Dense>(config_.hidden2, config_.hash_bits,
                          nn::Init::kXavierUniform, &rng_);
  net_.Emplace<nn::Tanh>();
}

Tensor MilanModel::Forward(const Tensor& features, bool training) {
  return net_.Forward(features, training);
}

void MilanModel::Backward(const Tensor& grad_outputs) {
  net_.Backward(grad_outputs);
}

std::vector<BinaryCode> MilanModel::HashBatch(const Tensor& features) {
  const Tensor outputs = Forward(features, /*training=*/false);
  std::vector<BinaryCode> codes;
  codes.reserve(outputs.dim(0));
  for (size_t i = 0; i < outputs.dim(0); ++i) {
    const Tensor row = outputs.Row(i);
    std::vector<float> values(row.data(), row.data() + row.size());
    codes.push_back(BinaryCode::FromSigns(values));
  }
  return codes;
}

BinaryCode MilanModel::HashOne(const Tensor& feature) {
  Tensor batch = feature.Reshaped({1, feature.size()});
  return HashBatch(batch)[0];
}

Status MilanModel::Save(const std::string& path) const {
  ByteWriter out;
  out.PutU32(kMagic);
  out.PutU32(kVersion);
  out.PutU64(config_.feature_dim);
  out.PutU64(config_.hidden1);
  out.PutU64(config_.hidden2);
  out.PutU64(config_.hash_bits);
  out.PutF32(config_.dropout);
  out.PutU64(config_.seed);
  // Parameter tensors in layer order.
  auto params = const_cast<nn::Sequential&>(net_).Params();
  out.PutU32(static_cast<uint32_t>(params.size()));
  for (const nn::Parameter* p : params) {
    out.PutU32(static_cast<uint32_t>(p->value.shape().size()));
    for (size_t d : p->value.shape()) out.PutU64(d);
    std::vector<float> data(p->value.data(),
                            p->value.data() + p->value.size());
    out.PutF32Vector(data);
  }
  return WriteFileBytes(path, out.data());
}

StatusOr<std::unique_ptr<MilanModel>> MilanModel::Load(
    const std::string& path) {
  AGORAEO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  ByteReader in(bytes);
  AGORAEO_ASSIGN_OR_RETURN(uint32_t magic, in.GetU32());
  if (magic != kMagic) return Status::Corruption("bad model file magic");
  AGORAEO_ASSIGN_OR_RETURN(uint32_t version, in.GetU32());
  if (version != kVersion) {
    return Status::Corruption("unsupported model file version");
  }
  MilanConfig config;
  AGORAEO_ASSIGN_OR_RETURN(config.feature_dim, in.GetU64());
  AGORAEO_ASSIGN_OR_RETURN(config.hidden1, in.GetU64());
  AGORAEO_ASSIGN_OR_RETURN(config.hidden2, in.GetU64());
  AGORAEO_ASSIGN_OR_RETURN(config.hash_bits, in.GetU64());
  AGORAEO_ASSIGN_OR_RETURN(config.dropout, in.GetF32());
  AGORAEO_ASSIGN_OR_RETURN(config.seed, in.GetU64());

  auto model = std::make_unique<MilanModel>(config);
  auto params = model->net_.Params();
  AGORAEO_ASSIGN_OR_RETURN(uint32_t num_params, in.GetU32());
  if (num_params != params.size()) {
    return Status::Corruption("parameter count mismatch in model file");
  }
  for (nn::Parameter* p : params) {
    AGORAEO_ASSIGN_OR_RETURN(uint32_t rank, in.GetU32());
    std::vector<size_t> shape;
    for (uint32_t d = 0; d < rank; ++d) {
      AGORAEO_ASSIGN_OR_RETURN(uint64_t dim, in.GetU64());
      shape.push_back(dim);
    }
    if (shape != p->value.shape()) {
      return Status::Corruption("parameter shape mismatch in model file");
    }
    AGORAEO_ASSIGN_OR_RETURN(std::vector<float> data, in.GetF32Vector());
    if (data.size() != p->value.size()) {
      return Status::Corruption("parameter size mismatch in model file");
    }
    p->value = Tensor(shape, std::move(data));
  }
  return model;
}

}  // namespace agoraeo::milan
