#include "milan/losses.h"

#include <cassert>
#include <cmath>

namespace agoraeo::milan {

TripletLossResult TripletLoss(const Tensor& outputs, size_t batch,
                              float margin) {
  assert(outputs.rank() == 2 && outputs.dim(0) == 3 * batch);
  const size_t k = outputs.dim(1);
  TripletLossResult result;
  result.grad = Tensor({3 * batch, k});
  if (batch == 0) return result;

  double total = 0.0;
  for (size_t b = 0; b < batch; ++b) {
    const size_t ia = b, ip = batch + b, in = 2 * batch + b;
    double d_ap = 0.0, d_an = 0.0;
    for (size_t j = 0; j < k; ++j) {
      const float dp = outputs.at(ia, j) - outputs.at(ip, j);
      const float dn = outputs.at(ia, j) - outputs.at(in, j);
      d_ap += static_cast<double>(dp) * dp;
      d_an += static_cast<double>(dn) * dn;
    }
    const double viol = d_ap - d_an + margin;
    if (viol <= 0.0) continue;
    total += viol;
    ++result.active;
    // Gradients of the hinge term, averaged over the batch below.
    for (size_t j = 0; j < k; ++j) {
      const float a = outputs.at(ia, j);
      const float p = outputs.at(ip, j);
      const float n = outputs.at(in, j);
      result.grad.at(ia, j) += 2.0f * (n - p);
      result.grad.at(ip, j) += 2.0f * (p - a);
      result.grad.at(in, j) += 2.0f * (a - n);
    }
  }
  const float inv_batch = 1.0f / static_cast<float>(batch);
  result.grad *= inv_batch;
  result.value = static_cast<float>(total) * inv_batch;
  return result;
}

BitBalanceLossResult BitBalanceLoss(const Tensor& outputs, float beta) {
  assert(outputs.rank() == 2);
  const size_t rows = outputs.dim(0), k = outputs.dim(1);
  BitBalanceLossResult result;
  result.grad = Tensor({rows, k});
  if (rows == 0 || k == 0) return result;

  // Balance term: ||mu||^2 / K.
  Tensor mu({k});
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < k; ++j) mu[j] += outputs.at(i, j);
  }
  mu *= 1.0f / static_cast<float>(rows);
  double balance = 0.0;
  for (size_t j = 0; j < k; ++j) {
    balance += static_cast<double>(mu[j]) * mu[j];
  }
  balance /= static_cast<double>(k);
  // d/dh_ij ||mu||^2 / K = 2 mu_j / (rows * K).
  const float balance_scale =
      2.0f / (static_cast<float>(rows) * static_cast<float>(k));
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < k; ++j) {
      result.grad.at(i, j) += balance_scale * mu[j];
    }
  }

  double independence = 0.0;
  if (beta > 0.0f) {
    // C = H^T H / rows; L_ind = beta * ||C - I||_F^2 / K^2.
    Tensor c = MatMul(outputs.Transposed(), outputs);
    c *= 1.0f / static_cast<float>(rows);
    for (size_t j = 0; j < k; ++j) c.at(j, j) -= 1.0f;
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = 0; b < k; ++b) {
        independence += static_cast<double>(c.at(a, b)) * c.at(a, b);
      }
    }
    const float k2 = static_cast<float>(k) * static_cast<float>(k);
    independence = beta * independence / k2;
    // dL/dH = beta * (4 / (rows * K^2)) * H (C - I).
    Tensor grad_ind = MatMul(outputs, c);
    grad_ind *= beta * 4.0f / (static_cast<float>(rows) * k2);
    result.grad += grad_ind;
  }

  result.value = static_cast<float>(balance + independence);
  return result;
}

QuantizationLossResult QuantizationLoss(const Tensor& outputs) {
  assert(outputs.rank() == 2);
  const size_t rows = outputs.dim(0), k = outputs.dim(1);
  QuantizationLossResult result;
  result.grad = Tensor({rows, k});
  if (rows == 0 || k == 0) return result;

  double total = 0.0;
  const float scale = 1.0f / (static_cast<float>(rows) * static_cast<float>(k));
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < k; ++j) {
      const float h = outputs.at(i, j);
      const float gap = std::fabs(h) - 1.0f;
      total += static_cast<double>(gap) * gap;
      // d/dh (|h|-1)^2 = 2 (|h|-1) sign(h) = 2 (h - sign(h)).
      const float sign = h > 0.0f ? 1.0f : (h < 0.0f ? -1.0f : 0.0f);
      result.grad.at(i, j) = 2.0f * scale * (h - sign);
    }
  }
  result.value = static_cast<float>(total) * scale;
  return result;
}

MilanLossResult MilanLoss(const Tensor& outputs, size_t batch,
                          const MilanLossConfig& config) {
  MilanLossResult result;
  TripletLossResult triplet = TripletLoss(outputs, batch, config.margin);
  BitBalanceLossResult balance =
      BitBalanceLoss(outputs, config.independence_beta);
  QuantizationLossResult quant = QuantizationLoss(outputs);

  result.triplet = triplet.value;
  result.balance = balance.value;
  result.quantization = quant.value;
  result.active_triplets = triplet.active;
  result.total = config.triplet_weight * triplet.value +
                 config.balance_weight * balance.value +
                 config.quantization_weight * quant.value;

  result.grad = Tensor(outputs.shape());
  triplet.grad *= config.triplet_weight;
  balance.grad *= config.balance_weight;
  quant.grad *= config.quantization_weight;
  result.grad += triplet.grad;
  result.grad += balance.grad;
  result.grad += quant.grad;
  return result;
}

}  // namespace agoraeo::milan
