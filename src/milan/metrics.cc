#include "milan/metrics.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>

namespace agoraeo::milan {

double PrecisionAtK(const std::vector<bool>& relevant, size_t k) {
  if (k == 0) return 0.0;
  const size_t n = std::min(k, relevant.size());
  if (n == 0) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (relevant[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

double AveragePrecision(const std::vector<bool>& relevant) {
  size_t hits = 0;
  double sum = 0.0;
  for (size_t i = 0; i < relevant.size(); ++i) {
    if (relevant[i]) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return hits == 0 ? 0.0 : sum / static_cast<double>(hits);
}

std::vector<size_t> RankByHamming(const BinaryCode& query,
                                  const std::vector<BinaryCode>& database,
                                  size_t exclude_index) {
  std::vector<std::pair<uint32_t, size_t>> dist;
  dist.reserve(database.size());
  for (size_t i = 0; i < database.size(); ++i) {
    if (i == exclude_index) continue;
    dist.emplace_back(
        static_cast<uint32_t>(database[i].HammingDistance(query)), i);
  }
  std::sort(dist.begin(), dist.end());
  std::vector<size_t> out;
  out.reserve(dist.size());
  for (const auto& [d, i] : dist) out.push_back(i);
  return out;
}

std::vector<size_t> RankByL2(const Tensor& query, const Tensor& database,
                             size_t exclude_index) {
  assert(database.rank() == 2 && query.size() == database.dim(1));
  const size_t n = database.dim(0), dim = database.dim(1);
  std::vector<std::pair<float, size_t>> dist;
  dist.reserve(n);
  const float* q = query.data();
  for (size_t i = 0; i < n; ++i) {
    if (i == exclude_index) continue;
    const float* row = database.data() + i * dim;
    float acc = 0.0f;
    for (size_t j = 0; j < dim; ++j) {
      const float d = row[j] - q[j];
      acc += d * d;
    }
    dist.emplace_back(acc, i);
  }
  std::sort(dist.begin(), dist.end());
  std::vector<size_t> out;
  out.reserve(dist.size());
  for (const auto& [d, i] : dist) out.push_back(i);
  return out;
}

RetrievalQuality EvaluateRetrieval(
    size_t num_queries, size_t k,
    const std::function<std::vector<size_t>(size_t)>& rank_fn,
    const std::function<bool(size_t, size_t)>& is_relevant) {
  RetrievalQuality out;
  for (size_t q = 0; q < num_queries; ++q) {
    std::vector<size_t> ranked = rank_fn(q);
    if (ranked.size() > k) ranked.resize(k);
    std::vector<bool> relevant;
    relevant.reserve(ranked.size());
    for (size_t i : ranked) relevant.push_back(is_relevant(q, i));
    out.precision_at_k += PrecisionAtK(relevant, k);
    out.map_at_k += AveragePrecision(relevant);
    ++out.num_queries;
  }
  if (out.num_queries > 0) {
    out.precision_at_k /= static_cast<double>(out.num_queries);
    out.map_at_k /= static_cast<double>(out.num_queries);
  }
  return out;
}

}  // namespace agoraeo::milan
