#ifndef AGORAEO_MILAN_TRAINER_H_
#define AGORAEO_MILAN_TRAINER_H_

#include <vector>

#include "milan/losses.h"
#include "milan/milan_model.h"
#include "milan/triplet_sampler.h"
#include "tensor/tensor.h"

namespace agoraeo::milan {

/// Training hyper-parameters.
struct TrainConfig {
  size_t epochs = 10;
  size_t batches_per_epoch = 50;
  size_t batch_size = 32;        ///< triplets per batch (3x rows)
  float learning_rate = 1e-3f;
  float lr_decay = 0.95f;        ///< multiplicative per-epoch decay
  uint64_t seed = 99;
  MilanLossConfig loss;
};

/// Loss trajectory of one epoch.
struct EpochStats {
  float total = 0.0f;
  float triplet = 0.0f;
  float balance = 0.0f;
  float quantization = 0.0f;
  float active_triplet_fraction = 0.0f;
};

/// Full training record.
struct TrainResult {
  std::vector<EpochStats> epochs;
  size_t samples_seen = 0;
};

/// Minibatch trainer for the MiLaN network: samples label-based triplets,
/// stacks them [anchors; positives; negatives], applies the composite
/// loss and an Adam step.
class Trainer {
 public:
  /// `features` is the [N, feature_dim] matrix aligned with the sampler's
  /// item indices.  Both must outlive the trainer.
  Trainer(MilanModel* model, const Tensor* features,
          const TripletSampler* sampler, TrainConfig config);

  /// Runs the configured schedule; resumable (call again to continue).
  StatusOr<TrainResult> Train();

  /// One gradient step on one sampled batch; exposed for tests and the
  /// training-throughput benchmark.
  StatusOr<MilanLossResult> TrainStep();

 private:
  MilanModel* model_;
  const Tensor* features_;
  const TripletSampler* sampler_;
  TrainConfig config_;
  Rng rng_;
  nn::Adam optimizer_;
};

}  // namespace agoraeo::milan

#endif  // AGORAEO_MILAN_TRAINER_H_
