#ifndef AGORAEO_MILAN_LOSSES_H_
#define AGORAEO_MILAN_LOSSES_H_

#include <cstddef>

#include "tensor/tensor.h"

namespace agoraeo::milan {

/// MiLaN trains its hashing network with three losses (paper Section 2.2,
/// following Roy et al. 2021):
///  1. a triplet loss learning a metric space where semantically similar
///     images are close and dissimilar ones separated;
///  2. a bit-balance loss pushing every bit to a 50% activation rate and
///     decorrelating different bits;
///  3. a quantization loss shrinking the gap between the continuous
///     network outputs and their binarized codes.
/// Each loss exposes value and gradient w.r.t. the network outputs so the
/// trainer can combine them with configurable weights.

/// Triplet loss over a batch of B triplets.  `outputs` is a [3B, K]
/// tensor laid out as B anchors, then B positives, then B negatives.
/// L = mean_b max(0, ||a_b - p_b||^2 - ||a_b - n_b||^2 + margin).
struct TripletLossResult {
  float value = 0.0f;
  Tensor grad;          ///< [3B, K], same layout as outputs
  size_t active = 0;    ///< triplets violating the margin
};
TripletLossResult TripletLoss(const Tensor& outputs, size_t batch,
                              float margin);

/// Bit-balance loss over a [B, K] output block:
/// L = ||mu||^2 / K + beta * ||H^T H / B - I||_F^2 / K^2,
/// where mu is the per-bit batch mean.  The first term balances each
/// bit's activation; the second decorrelates bits (independence).
struct BitBalanceLossResult {
  float value = 0.0f;
  Tensor grad;  ///< [B, K]
};
BitBalanceLossResult BitBalanceLoss(const Tensor& outputs, float beta);

/// Quantization loss over a [B, K] output block:
/// L = mean_{b,k} (|h_bk| - 1)^2, pulling tanh outputs toward +/-1 so
/// binarization loses little information.
struct QuantizationLossResult {
  float value = 0.0f;
  Tensor grad;  ///< [B, K]
};
QuantizationLossResult QuantizationLoss(const Tensor& outputs);

/// Weighted combination of the three losses on a triplet batch layout
/// ([3B, K]).  The balance/quantization terms apply to all 3B rows.
struct MilanLossConfig {
  float margin = 2.0f;             ///< triplet margin
  float triplet_weight = 1.0f;
  float balance_weight = 0.5f;     ///< lambda_1
  float independence_beta = 0.1f;  ///< decorrelation inside balance loss
  float quantization_weight = 0.1f;  ///< lambda_2
};

struct MilanLossResult {
  float total = 0.0f;
  float triplet = 0.0f;
  float balance = 0.0f;
  float quantization = 0.0f;
  size_t active_triplets = 0;
  Tensor grad;  ///< [3B, K]
};
MilanLossResult MilanLoss(const Tensor& outputs, size_t batch,
                          const MilanLossConfig& config);

}  // namespace agoraeo::milan

#endif  // AGORAEO_MILAN_LOSSES_H_
