#include "milan/triplet_sampler.h"

namespace agoraeo::milan {

using bigearthnet::kNumLabels;

TripletSampler::TripletSampler(std::vector<bigearthnet::LabelSet> labels)
    : labels_(std::move(labels)), by_label_(kNumLabels) {
  for (size_t i = 0; i < labels_.size(); ++i) {
    for (bigearthnet::LabelId id : labels_[i].ids()) {
      by_label_[static_cast<size_t>(id)].push_back(i);
    }
  }
}

StatusOr<Triplet> TripletSampler::Sample(Rng* rng) const {
  if (labels_.size() < 3) {
    return Status::FailedPrecondition("corpus too small for triplets");
  }
  constexpr int kMaxAttempts = 256;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const size_t anchor =
        rng->UniformInt(static_cast<uint32_t>(labels_.size()));
    const auto& anchor_labels = labels_[anchor].ids();
    if (anchor_labels.empty()) continue;

    // Positive: a different item carrying a random anchor label.
    const bigearthnet::LabelId pivot = anchor_labels[rng->UniformInt(
        static_cast<uint32_t>(anchor_labels.size()))];
    const auto& bucket = by_label_[static_cast<size_t>(pivot)];
    if (bucket.size() < 2) continue;
    const size_t positive =
        bucket[rng->UniformInt(static_cast<uint32_t>(bucket.size()))];
    if (positive == anchor) continue;

    // Negative: rejection-sample an item sharing no label with anchor.
    bool found = false;
    size_t negative = 0;
    for (int tries = 0; tries < 64; ++tries) {
      const size_t cand =
          rng->UniformInt(static_cast<uint32_t>(labels_.size()));
      if (cand == anchor || cand == positive) continue;
      if (!Similar(anchor, cand)) {
        negative = cand;
        found = true;
        break;
      }
    }
    if (!found) continue;
    return Triplet{anchor, positive, negative};
  }
  return Status::FailedPrecondition(
      "could not sample a triplet: labels too homogeneous");
}

StatusOr<std::vector<Triplet>> TripletSampler::SampleBatch(size_t batch,
                                                           Rng* rng) const {
  std::vector<Triplet> out;
  out.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    AGORAEO_ASSIGN_OR_RETURN(Triplet t, Sample(rng));
    out.push_back(t);
  }
  return out;
}

}  // namespace agoraeo::milan
