#ifndef AGORAEO_MILAN_MILAN_MODEL_H_
#define AGORAEO_MILAN_MILAN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/binary_code.h"
#include "common/random.h"
#include "common/status.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace agoraeo::milan {

/// Architecture/configuration of the MiLaN hashing network.
struct MilanConfig {
  size_t feature_dim = 128;   ///< input "deep feature" dimensionality
  size_t hidden1 = 1024;      ///< first FC layer width
  size_t hidden2 = 512;       ///< second FC layer width
  size_t hash_bits = 128;     ///< K, the binary code length (paper: 128)
  float dropout = 0.1f;       ///< dropout rate between FC layers
  uint64_t seed = 1234;       ///< weight-initialisation seed
};

/// The metric-learning deep hashing network: three fully connected
/// layers ending in a tanh head whose sign yields the binary hash code.
///
///   feature (128) -> FC 1024 + ReLU -> dropout
///                 -> FC 512  + ReLU -> dropout
///                 -> FC K    + tanh -> sign -> K-bit code
class MilanModel {
 public:
  explicit MilanModel(const MilanConfig& config);

  /// Continuous hash-head outputs in (-1, 1) for a [B, feature_dim]
  /// batch; `training` enables dropout.
  Tensor Forward(const Tensor& features, bool training);

  /// Back-propagates dLoss/dOutputs; parameter gradients accumulate into
  /// the network (call net().ZeroGrad() between steps).
  void Backward(const Tensor& grad_outputs);

  /// Binary codes for a feature batch (inference path: forward + sign).
  std::vector<BinaryCode> HashBatch(const Tensor& features);

  /// Binary code for one feature vector (rank-1 [feature_dim]); the
  /// on-the-fly path EarthQube uses for query-by-new-example.
  BinaryCode HashOne(const Tensor& feature);

  /// Serialises config + all weights.
  Status Save(const std::string& path) const;

  /// Restores a model saved with Save; the loaded config replaces the
  /// current one.
  static StatusOr<std::unique_ptr<MilanModel>> Load(const std::string& path);

  nn::Sequential& net() { return net_; }
  const MilanConfig& config() const { return config_; }

 private:
  MilanConfig config_;
  Rng rng_;
  nn::Sequential net_;
};

}  // namespace agoraeo::milan

#endif  // AGORAEO_MILAN_MILAN_MODEL_H_
