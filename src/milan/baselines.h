#ifndef AGORAEO_MILAN_BASELINES_H_
#define AGORAEO_MILAN_BASELINES_H_

#include <vector>

#include "common/binary_code.h"
#include "common/random.h"
#include "tensor/tensor.h"

namespace agoraeo::milan {

/// Non-learned hashing baselines MiLaN is compared against in experiment
/// E2.  All map float feature vectors to K-bit binary codes.

/// Random-hyperplane LSH (Charikar): bit k is the sign of a fixed random
/// projection.  Data independent.
class RandomHyperplaneLsh {
 public:
  RandomHyperplaneLsh(size_t feature_dim, size_t bits, uint64_t seed);

  BinaryCode Hash(const Tensor& feature) const;
  std::vector<BinaryCode> HashBatch(const Tensor& features) const;

  size_t bits() const { return bits_; }

 private:
  size_t bits_;
  Tensor hyperplanes_;  ///< [feature_dim, bits]
};

/// Data-dependent baseline: random projections thresholded at the
/// per-dimension median of a training sample (balances each bit, like
/// spectral hashing's zero-centering trick, but without eigenvectors).
class MedianThresholdHash {
 public:
  /// Fits medians on `training` ([N, feature_dim]).
  MedianThresholdHash(const Tensor& training, size_t bits, uint64_t seed);

  BinaryCode Hash(const Tensor& feature) const;
  std::vector<BinaryCode> HashBatch(const Tensor& features) const;

  size_t bits() const { return bits_; }

 private:
  size_t bits_;
  Tensor projections_;  ///< [feature_dim, bits]
  std::vector<float> thresholds_;  ///< per-bit median
};

/// Iterative-quantization-style baseline ("ITQ-lite"): PCA to K
/// dimensions (power iteration with deflation) followed by alternating
/// optimisation of a rotation that minimises quantization error, as in
/// Gong & Lazebnik — with the orthogonal Procrustes step approximated by
/// Gram-Schmidt re-orthonormalisation of the correlation matrix.
class ItqHash {
 public:
  /// Fits on `training` ([N, feature_dim]); `iterations` of the rotation
  /// refinement.
  ItqHash(const Tensor& training, size_t bits, size_t iterations,
          uint64_t seed);

  BinaryCode Hash(const Tensor& feature) const;
  std::vector<BinaryCode> HashBatch(const Tensor& features) const;

  size_t bits() const { return bits_; }

 private:
  Tensor ProjectCentered(const Tensor& features) const;

  size_t bits_;
  std::vector<float> mean_;  ///< training mean, length feature_dim
  Tensor pca_;               ///< [feature_dim, bits]
  Tensor rotation_;          ///< [bits, bits]
};

}  // namespace agoraeo::milan

#endif  // AGORAEO_MILAN_BASELINES_H_
