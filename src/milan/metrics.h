#ifndef AGORAEO_MILAN_METRICS_H_
#define AGORAEO_MILAN_METRICS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/binary_code.h"
#include "tensor/tensor.h"

namespace agoraeo::milan {

/// Retrieval-quality metrics for experiment E2 (the "highly accurate
/// retrieval" claim).  Ground truth follows the BigEarthNet CBIR
/// convention: a retrieved image is relevant to the query when their
/// label sets share at least one class.

/// `relevant[i]` flags whether the i-th ranked retrieved item is
/// relevant.  Precision@k = relevant fraction of the first k.
double PrecisionAtK(const std::vector<bool>& relevant, size_t k);

/// Average precision of one ranked list (mean of precision@rank over the
/// relevant positions; 0 when nothing is relevant).
double AveragePrecision(const std::vector<bool>& relevant);

/// Ranks all database codes by Hamming distance to the query code (ties
/// by index) and returns the database indices in rank order, excluding
/// `exclude_index` (pass SIZE_MAX to keep all).
std::vector<size_t> RankByHamming(const BinaryCode& query,
                                  const std::vector<BinaryCode>& database,
                                  size_t exclude_index);

/// Ranks all database rows by squared L2 distance to the query vector —
/// the float-feature upper-bound ranking.
std::vector<size_t> RankByL2(const Tensor& query, const Tensor& database,
                             size_t exclude_index);

/// Aggregated retrieval quality over a query set.
struct RetrievalQuality {
  double precision_at_k = 0.0;
  double map_at_k = 0.0;  ///< mean AP truncated at k
  size_t num_queries = 0;
};

/// Evaluates a ranking function over `num_queries` sampled queries.
/// `rank_fn(q)` returns ranked database indices for query index q
/// (self-match already excluded); `is_relevant(q, i)` is the ground
/// truth.  Ranks are truncated at k.
RetrievalQuality EvaluateRetrieval(
    size_t num_queries, size_t k,
    const std::function<std::vector<size_t>(size_t)>& rank_fn,
    const std::function<bool(size_t, size_t)>& is_relevant);

}  // namespace agoraeo::milan

#endif  // AGORAEO_MILAN_METRICS_H_
