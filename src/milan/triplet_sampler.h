#ifndef AGORAEO_MILAN_TRIPLET_SAMPLER_H_
#define AGORAEO_MILAN_TRIPLET_SAMPLER_H_

#include <vector>

#include "bigearthnet/clc_labels.h"
#include "common/random.h"
#include "common/status.h"

namespace agoraeo::milan {

/// Indices of one training triplet into the feature matrix.
struct Triplet {
  size_t anchor;
  size_t positive;  ///< shares >= 1 label with the anchor
  size_t negative;  ///< shares no label with the anchor
};

/// Samples training triplets from a multi-labelled corpus.
///
/// MiLaN's metric-learning notion of semantic similarity on BigEarthNet:
/// two images are similar when their label sets intersect, dissimilar
/// when they are disjoint.  The sampler indexes items by label so
/// positives are drawn in O(1) and negatives by rejection (disjointness
/// checked exactly).
class TripletSampler {
 public:
  /// `labels[i]` is the label set of item i.
  explicit TripletSampler(std::vector<bigearthnet::LabelSet> labels);

  /// Draws one triplet; FailedPrecondition when the corpus cannot supply
  /// one (e.g. no two items share a label, or no disjoint pair exists).
  StatusOr<Triplet> Sample(Rng* rng) const;

  /// Draws a batch; fails when any draw fails.
  StatusOr<std::vector<Triplet>> SampleBatch(size_t batch, Rng* rng) const;

  /// True when item a and item b share at least one label.
  bool Similar(size_t a, size_t b) const {
    return labels_[a].ContainsAny(labels_[b]);
  }

  size_t size() const { return labels_.size(); }
  const bigearthnet::LabelSet& labels(size_t i) const { return labels_[i]; }

 private:
  std::vector<bigearthnet::LabelSet> labels_;
  /// label id -> item indices carrying it.
  std::vector<std::vector<size_t>> by_label_;
};

}  // namespace agoraeo::milan

#endif  // AGORAEO_MILAN_TRIPLET_SAMPLER_H_
