#include "nn/optimizer.h"

#include <cmath>

namespace agoraeo::nn {

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Tensor& vel = velocity_[i];
    for (size_t j = 0; j < p->value.size(); ++j) {
      float g = p->grad[j] + weight_decay_ * p->value[j];
      vel[j] = momentum_ * vel[j] + g;
      p->value[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float epsilon, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (size_t j = 0; j < p->value.size(); ++j) {
      float g = p->grad[j] + weight_decay_ * p->value[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      float m_hat = m[j] / bc1;
      float v_hat = v[j] / bc2;
      p->value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace agoraeo::nn
