#ifndef AGORAEO_NN_ACTIVATIONS_H_
#define AGORAEO_NN_ACTIVATIONS_H_

#include <string>

#include "common/random.h"
#include "nn/layer.h"

namespace agoraeo::nn {

/// Elementwise max(0, x).
class ReLU : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "ReLU"; }
  size_t OutputDim(size_t input_dim) const override { return input_dim; }

 private:
  Tensor cached_input_;
};

/// Elementwise tanh(x) — the output nonlinearity of MiLaN's hashing head;
/// its outputs in (-1, 1) are binarized by sign to produce hash bits.
class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Tanh"; }
  size_t OutputDim(size_t input_dim) const override { return input_dim; }

 private:
  Tensor cached_output_;
};

/// Elementwise logistic sigmoid.
class Sigmoid : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Sigmoid"; }
  size_t OutputDim(size_t input_dim) const override { return input_dim; }

 private:
  Tensor cached_output_;
};

/// Inverted dropout: during training zeroes each activation with
/// probability p and scales survivors by 1/(1-p); identity at inference.
class Dropout : public Layer {
 public:
  /// `rng` must outlive the layer.
  Dropout(float p, Rng* rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override;
  size_t OutputDim(size_t input_dim) const override { return input_dim; }

 private:
  float p_;
  Rng* rng_;
  Tensor mask_;
  bool last_training_ = false;
};

}  // namespace agoraeo::nn

#endif  // AGORAEO_NN_ACTIVATIONS_H_
