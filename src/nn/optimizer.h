#ifndef AGORAEO_NN_OPTIMIZER_H_
#define AGORAEO_NN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace agoraeo::nn {

/// Base optimizer over a fixed set of parameters.  `Step` consumes the
/// gradients accumulated since the last ZeroGrad and updates values.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;
  virtual std::string Name() const = 0;

  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

 protected:
  std::vector<Parameter*> params_;
  float lr_ = 1e-3f;
};

/// Stochastic gradient descent with classical momentum and optional L2
/// weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);

  void Step() override;
  std::string Name() const override { return "SGD"; }

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction; the optimizer used to train
/// MiLaN in the reference implementation.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f,
       float weight_decay = 0.0f);

  void Step() override;
  std::string Name() const override { return "Adam"; }

 private:
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace agoraeo::nn

#endif  // AGORAEO_NN_OPTIMIZER_H_
