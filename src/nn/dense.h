#ifndef AGORAEO_NN_DENSE_H_
#define AGORAEO_NN_DENSE_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "nn/layer.h"

namespace agoraeo::nn {

/// Weight initialisation schemes for Dense layers.
enum class Init {
  kXavierUniform,  ///< U(-sqrt(6/(in+out)), +sqrt(6/(in+out))) — tanh nets
  kHeNormal,       ///< N(0, sqrt(2/in)) — ReLU nets
  kZero,
};

/// Fully connected layer: y = x W + b, W: [in, out], b: [out].
class Dense : public Layer {
 public:
  Dense(size_t in_features, size_t out_features, Init init, Rng* rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }
  std::string Name() const override;
  size_t OutputDim(size_t) const override { return out_features_; }

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  size_t in_features_;
  size_t out_features_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace agoraeo::nn

#endif  // AGORAEO_NN_DENSE_H_
