#ifndef AGORAEO_NN_SEQUENTIAL_H_
#define AGORAEO_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.h"

namespace agoraeo::nn {

/// An ordered stack of layers trained end-to-end; the container MiLaN's
/// hashing head is built from.
class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& Add(LayerPtr layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  template <typename L, typename... Args>
  Sequential& Emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
    return *this;
  }

  /// Runs the batch through every layer.
  Tensor Forward(const Tensor& input, bool training);

  /// Back-propagates through every layer in reverse; returns the gradient
  /// w.r.t. the network input.
  Tensor Backward(const Tensor& grad_output);

  /// All trainable parameters across layers.
  std::vector<Parameter*> Params();

  /// Zeroes every parameter gradient.
  void ZeroGrad();

  /// Total number of trainable scalars.
  size_t NumParams();

  size_t NumLayers() const { return layers_.size(); }
  Layer& layer(size_t i) { return *layers_[i]; }

  /// One line per layer.
  std::string Summary() const;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace agoraeo::nn

#endif  // AGORAEO_NN_SEQUENTIAL_H_
