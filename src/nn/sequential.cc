#include "nn/sequential.h"

#include <sstream>

namespace agoraeo::nn {

Tensor Sequential::Forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->Forward(x, training);
  }
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Params() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Params()) params.push_back(p);
  }
  return params;
}

void Sequential::ZeroGrad() {
  for (Parameter* p : Params()) p->ZeroGrad();
}

size_t Sequential::NumParams() {
  size_t n = 0;
  for (Parameter* p : Params()) n += p->value.size();
  return n;
}

std::string Sequential::Summary() const {
  std::ostringstream out;
  for (size_t i = 0; i < layers_.size(); ++i) {
    out << "  (" << i << ") " << layers_[i]->Name() << "\n";
  }
  return out.str();
}

}  // namespace agoraeo::nn
