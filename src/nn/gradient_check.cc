#include "nn/gradient_check.h"

#include <algorithm>
#include <cmath>

namespace agoraeo::nn {

GradCheckResult CheckGradients(Sequential* net, const Tensor& input,
                               const LossFn& loss, size_t max_probes,
                               float epsilon) {
  GradCheckResult result;

  // Analytic gradients.
  net->ZeroGrad();
  Tensor out = net->Forward(input, /*training=*/false);
  Tensor grad_out = loss.grad(out);
  net->Backward(grad_out);

  auto params = net->Params();
  size_t total_scalars = 0;
  for (Parameter* p : params) total_scalars += p->value.size();
  if (total_scalars == 0) return result;

  const float loss0 = loss.value(net->Forward(input, false));
  // A float32 forward pass carries O(machine-eps) relative noise that the
  // central difference divides by 2*epsilon.  Derivatives below this floor
  // cannot be measured by finite differences (the comparison would be
  // noise against noise), so such probes are recorded but excluded from
  // the relative-error verdict.
  constexpr float kMachineEps = 1.2e-7f;
  const float fd_noise =
      100.0f * kMachineEps * std::max(1.0f, std::fabs(loss0)) / epsilon;

  const size_t stride = std::max<size_t>(1, total_scalars / max_probes);

  size_t flat = 0;
  for (Parameter* p : params) {
    for (size_t j = 0; j < p->value.size(); ++j, ++flat) {
      if (flat % stride != 0) continue;
      if (result.checked >= max_probes) break;

      const float orig = p->value[j];
      p->value[j] = orig + epsilon;
      const float loss_plus = loss.value(net->Forward(input, false));
      p->value[j] = orig - epsilon;
      const float loss_minus = loss.value(net->Forward(input, false));
      p->value[j] = orig;

      const float d_plus = (loss_plus - loss0) / epsilon;
      const float d_minus = (loss0 - loss_minus) / epsilon;
      const float numeric = 0.5f * (d_plus + d_minus);
      const float analytic = p->grad[j];
      const float abs_err = std::fabs(numeric - analytic);
      const float scale = std::max(std::fabs(numeric), std::fabs(analytic));
      ++result.checked;
      result.max_abs_error = std::max(result.max_abs_error, abs_err);

      if (scale < fd_noise) {
        ++result.skipped;  // derivative below the measurable floor
        continue;
      }
      // One-sided slopes that disagree mean the probe straddles a ReLU
      // kink (or a curvature spike of the same magnitude as the slope);
      // the central difference is meaningless there.
      if (std::fabs(d_plus - d_minus) > 0.2f * scale + 10.0f * fd_noise) {
        ++result.skipped;
        continue;
      }
      result.max_rel_error = std::max(result.max_rel_error, abs_err / scale);
    }
  }
  return result;
}

}  // namespace agoraeo::nn
