#ifndef AGORAEO_NN_GRADIENT_CHECK_H_
#define AGORAEO_NN_GRADIENT_CHECK_H_

#include <functional>

#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace agoraeo::nn {

/// A scalar loss over a network output batch, together with its gradient
/// w.r.t. that output.  Used by the finite-difference gradient checker.
struct LossFn {
  /// Returns loss value for `output`.
  std::function<float(const Tensor& output)> value;
  /// Returns dLoss/dOutput for `output`.
  std::function<Tensor(const Tensor& output)> grad;
};

/// Result of a finite-difference check.
struct GradCheckResult {
  float max_abs_error = 0.0f;  ///< max |analytic - numeric| over params
  float max_rel_error = 0.0f;  ///< max relative error over measurable probes
  size_t checked = 0;          ///< number of parameter scalars probed
  /// Probes excluded from the relative-error verdict: derivative below the
  /// float32 finite-difference noise floor, or straddling a ReLU kink
  /// (one-sided slopes disagree).  Always <= checked.
  size_t skipped = 0;
};

/// Compares analytic parameter gradients of `net` under `loss` on `input`
/// against central finite differences.  Probes at most `max_probes`
/// parameter scalars (round-robin across parameters) with step `epsilon`.
///
/// Used by the test suite to validate every layer's backward pass.
GradCheckResult CheckGradients(Sequential* net, const Tensor& input,
                               const LossFn& loss, size_t max_probes = 64,
                               float epsilon = 1e-3f);

}  // namespace agoraeo::nn

#endif  // AGORAEO_NN_GRADIENT_CHECK_H_
