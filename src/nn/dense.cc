#include "nn/dense.h"

#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace agoraeo::nn {

namespace {
Tensor MakeWeight(size_t in, size_t out, Init init, Rng* rng) {
  switch (init) {
    case Init::kXavierUniform: {
      float limit = std::sqrt(6.0f / static_cast<float>(in + out));
      return Tensor::RandomUniform({in, out}, -limit, limit, rng);
    }
    case Init::kHeNormal: {
      float stddev = std::sqrt(2.0f / static_cast<float>(in));
      return Tensor::RandomNormal({in, out}, stddev, rng);
    }
    case Init::kZero:
      return Tensor({in, out});
  }
  return Tensor({in, out});
}
}  // namespace

Dense::Dense(size_t in_features, size_t out_features, Init init, Rng* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(MakeWeight(in_features, out_features, init, rng)),
      bias_(Tensor({out_features})) {}

Tensor Dense::Forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 2 && input.dim(1) == in_features_);
  cached_input_ = input;
  Tensor out = MatMul(input, weight_.value);
  AddBiasRows(&out, bias_.value);
  return out;
}

Tensor Dense::Backward(const Tensor& grad_output) {
  assert(grad_output.rank() == 2 && grad_output.dim(1) == out_features_);
  assert(cached_input_.rank() == 2);
  // dW += x^T g ; db += sum_rows(g) ; dx = g W^T
  MatMulAccumulate(cached_input_.Transposed(), grad_output, &weight_.grad);
  bias_.grad += SumRows(grad_output);
  return MatMul(grad_output, weight_.value.Transposed());
}

std::string Dense::Name() const {
  return StrFormat("Dense(%zu->%zu)", in_features_, out_features_);
}

}  // namespace agoraeo::nn
