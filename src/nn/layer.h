#ifndef AGORAEO_NN_LAYER_H_
#define AGORAEO_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace agoraeo::nn {

/// A parameter tensor paired with its accumulated gradient.
struct Parameter {
  Tensor value;
  Tensor grad;

  explicit Parameter(Tensor v) : value(std::move(v)), grad(value.shape()) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

/// Base class for differentiable layers.
///
/// Layers operate on minibatches: the input and output of Forward are
/// rank-2 tensors of shape [batch, features].  Backward receives the
/// gradient of the loss w.r.t. the layer output and returns the gradient
/// w.r.t. the layer input, accumulating parameter gradients internally.
///
/// A layer caches whatever it needs from the Forward pass, so the usage
/// protocol is strictly: Forward, then Backward on the same batch.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for `input` ([batch, in_features]).
  virtual Tensor Forward(const Tensor& input, bool training) = 0;

  /// Back-propagates `grad_output` ([batch, out_features]); returns
  /// gradient w.r.t. the last Forward input.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// The layer's trainable parameters (possibly empty).  Pointers remain
  /// valid for the layer's lifetime.
  virtual std::vector<Parameter*> Params() { return {}; }

  /// Human-readable description, e.g. "Dense(128->512)".
  virtual std::string Name() const = 0;

  /// Number of output features for a given number of input features.
  virtual size_t OutputDim(size_t input_dim) const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace agoraeo::nn

#endif  // AGORAEO_NN_LAYER_H_
