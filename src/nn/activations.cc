#include "nn/activations.h"

#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace agoraeo::nn {

Tensor ReLU::Forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = input;
  out.Apply([](float v) { return v > 0.0f ? v : 0.0f; });
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  assert(grad_output.shape() == cached_input_.shape());
  Tensor out = grad_output;
  for (size_t i = 0; i < out.size(); ++i) {
    if (cached_input_[i] <= 0.0f) out[i] = 0.0f;
  }
  return out;
}

Tensor Tanh::Forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  out.Apply([](float v) { return std::tanh(v); });
  cached_output_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  assert(grad_output.shape() == cached_output_.shape());
  Tensor out = grad_output;
  for (size_t i = 0; i < out.size(); ++i) {
    float y = cached_output_[i];
    out[i] *= (1.0f - y * y);
  }
  return out;
}

Tensor Sigmoid::Forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  out.Apply([](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  assert(grad_output.shape() == cached_output_.shape());
  Tensor out = grad_output;
  for (size_t i = 0; i < out.size(); ++i) {
    float y = cached_output_[i];
    out[i] *= y * (1.0f - y);
  }
  return out;
}

Dropout::Dropout(float p, Rng* rng) : p_(p), rng_(rng) {
  assert(p >= 0.0f && p < 1.0f);
}

Tensor Dropout::Forward(const Tensor& input, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0f) return input;
  mask_ = Tensor(input.shape());
  const float keep_scale = 1.0f / (1.0f - p_);
  Tensor out = input;
  for (size_t i = 0; i < out.size(); ++i) {
    if (rng_->Bernoulli(p_)) {
      mask_[i] = 0.0f;
      out[i] = 0.0f;
    } else {
      mask_[i] = keep_scale;
      out[i] *= keep_scale;
    }
  }
  return out;
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  if (!last_training_ || p_ == 0.0f) return grad_output;
  assert(grad_output.shape() == mask_.shape());
  return Mul(grad_output, mask_);
}

std::string Dropout::Name() const { return StrFormat("Dropout(%.2f)", p_); }

}  // namespace agoraeo::nn
