#include "geo/geo.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace agoraeo::geo {

namespace {

constexpr double kDegToRad = M_PI / 180.0;
const char kBase32[] = "0123456789bcdefghjkmnpqrstuvwxyz";

int Base32Index(char c) {
  for (int i = 0; i < 32; ++i) {
    if (kBase32[i] == c) return i;
  }
  return -1;
}

}  // namespace

bool IsValidPoint(const GeoPoint& p) {
  return p.lat >= -90.0 && p.lat <= 90.0 && p.lon >= -180.0 && p.lon <= 180.0;
}

double HaversineMeters(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

BoundingBox Circle::Bounds() const {
  const double dlat = (radius_meters / kEarthRadiusMeters) / kDegToRad;
  const double coslat =
      std::max(0.01, std::cos(center.lat * kDegToRad));  // clamp near poles
  const double dlon = dlat / coslat;
  BoundingBox box;
  box.min = {std::max(-90.0, center.lat - dlat),
             std::max(-180.0, center.lon - dlon)};
  box.max = {std::min(90.0, center.lat + dlat),
             std::min(180.0, center.lon + dlon)};
  return box;
}

bool Polygon::Contains(const GeoPoint& p) const {
  if (vertices.size() < 3) return false;
  bool inside = false;
  const double x = p.lon, y = p.lat;
  for (size_t i = 0, j = vertices.size() - 1; i < vertices.size(); j = i++) {
    const double xi = vertices[i].lon, yi = vertices[i].lat;
    const double xj = vertices[j].lon, yj = vertices[j].lat;
    const bool crosses = ((yi > y) != (yj > y)) &&
                         (x < (xj - xi) * (y - yi) / (yj - yi) + xi);
    if (crosses) inside = !inside;
  }
  return inside;
}

BoundingBox Polygon::Bounds() const {
  BoundingBox box;
  if (vertices.empty()) return box;
  box.min = box.max = vertices[0];
  for (const GeoPoint& v : vertices) {
    box.min.lat = std::min(box.min.lat, v.lat);
    box.min.lon = std::min(box.min.lon, v.lon);
    box.max.lat = std::max(box.max.lat, v.lat);
    box.max.lon = std::max(box.max.lon, v.lon);
  }
  return box;
}

StatusOr<std::string> GeohashEncode(const GeoPoint& p, int precision) {
  if (!IsValidPoint(p)) {
    return Status::InvalidArgument("point out of WGS-84 range");
  }
  if (precision < 1 || precision > 12) {
    return Status::InvalidArgument("geohash precision must be in [1, 12]");
  }
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  std::string out;
  out.reserve(precision);
  int bit = 0;
  int current = 0;
  bool even_bit = true;  // even bits encode longitude
  while (static_cast<int>(out.size()) < precision) {
    if (even_bit) {
      const double mid = (lon_lo + lon_hi) / 2.0;
      if (p.lon >= mid) {
        current = (current << 1) | 1;
        lon_lo = mid;
      } else {
        current <<= 1;
        lon_hi = mid;
      }
    } else {
      const double mid = (lat_lo + lat_hi) / 2.0;
      if (p.lat >= mid) {
        current = (current << 1) | 1;
        lat_lo = mid;
      } else {
        current <<= 1;
        lat_hi = mid;
      }
    }
    even_bit = !even_bit;
    if (++bit == 5) {
      out.push_back(kBase32[current]);
      bit = 0;
      current = 0;
    }
  }
  return out;
}

StatusOr<BoundingBox> GeohashDecodeBounds(const std::string& hash) {
  if (hash.empty() || hash.size() > 12) {
    return Status::InvalidArgument("geohash length must be in [1, 12]");
  }
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  bool even_bit = true;
  for (char c : hash) {
    const int idx = Base32Index(c);
    if (idx < 0) {
      return Status::InvalidArgument(std::string("bad geohash character: ") +
                                     c);
    }
    for (int b = 4; b >= 0; --b) {
      const int bit = (idx >> b) & 1;
      if (even_bit) {
        const double mid = (lon_lo + lon_hi) / 2.0;
        if (bit) lon_lo = mid; else lon_hi = mid;
      } else {
        const double mid = (lat_lo + lat_hi) / 2.0;
        if (bit) lat_lo = mid; else lat_hi = mid;
      }
      even_bit = !even_bit;
    }
  }
  BoundingBox box;
  box.min = {lat_lo, lon_lo};
  box.max = {lat_hi, lon_hi};
  return box;
}

StatusOr<GeoPoint> GeohashDecode(const std::string& hash) {
  AGORAEO_ASSIGN_OR_RETURN(BoundingBox box, GeohashDecodeBounds(hash));
  return box.Center();
}

StatusOr<std::vector<std::string>> GeohashNeighbors(const std::string& hash) {
  AGORAEO_ASSIGN_OR_RETURN(BoundingBox box, GeohashDecodeBounds(hash));
  const double dlat = box.max.lat - box.min.lat;
  const double dlon = box.max.lon - box.min.lon;
  const GeoPoint c = box.Center();
  const int precision = static_cast<int>(hash.size());

  std::vector<std::string> out;
  out.push_back(hash);
  const double dirs[8][2] = {
      {dlat, 0},    {dlat, dlon},  {0, dlon},  {-dlat, dlon},
      {-dlat, 0},   {-dlat, -dlon}, {0, -dlon}, {dlat, -dlon},
  };
  for (const auto& d : dirs) {
    GeoPoint q{c.lat + d[0], c.lon + d[1]};
    // Wrap longitude; clamp latitude (no neighbour across a pole).
    if (q.lon > 180.0) q.lon -= 360.0;
    if (q.lon < -180.0) q.lon += 360.0;
    if (q.lat > 90.0 || q.lat < -90.0) continue;
    auto enc = GeohashEncode(q, precision);
    if (enc.ok() && std::find(out.begin(), out.end(), *enc) == out.end()) {
      out.push_back(std::move(enc).value());
    }
  }
  return out;
}

std::vector<std::string> GeohashCover(const BoundingBox& box, int precision,
                                      size_t max_cells) {
  precision = std::clamp(precision, 1, 12);
  for (int prec = precision; prec >= 1; --prec) {
    // Cell extents at this precision: derive from a decode of the SW corner.
    auto sw = GeohashEncode(box.min, prec);
    if (!sw.ok()) return {};
    auto cell = GeohashDecodeBounds(*sw);
    if (!cell.ok()) return {};
    const double dlat = cell->max.lat - cell->min.lat;
    const double dlon = cell->max.lon - cell->min.lon;

    // Geohash cells are aligned to the global grid, not to the query box:
    // walk cell centers starting from the cell that contains the SW corner
    // (sampling from box.min itself can skip a grid row/column when the
    // corner sits mid-cell).
    const size_t nlat =
        static_cast<size_t>((box.max.lat - cell->min.lat) / dlat) + 1;
    const size_t nlon =
        static_cast<size_t>((box.max.lon - cell->min.lon) / dlon) + 1;
    if (nlat * nlon > max_cells) continue;  // too fine; try coarser

    std::set<std::string> cells;
    for (size_t i = 0; i < nlat; ++i) {
      for (size_t j = 0; j < nlon; ++j) {
        GeoPoint p{std::min(90.0, cell->min.lat + (i + 0.5) * dlat),
                   std::min(180.0, cell->min.lon + (j + 0.5) * dlon)};
        auto enc = GeohashEncode(p, prec);
        if (enc.ok()) cells.insert(std::move(enc).value());
      }
    }
    return std::vector<std::string>(cells.begin(), cells.end());
  }
  return {};
}

}  // namespace agoraeo::geo
