#ifndef AGORAEO_GEO_GEO_H_
#define AGORAEO_GEO_GEO_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace agoraeo::geo {

/// Mean Earth radius in meters (spherical model).
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// A WGS-84 coordinate: latitude in [-90, 90], longitude in [-180, 180].
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;

  bool operator==(const GeoPoint& o) const {
    return lat == o.lat && lon == o.lon;
  }
};

/// Validates coordinate ranges.
bool IsValidPoint(const GeoPoint& p);

/// Great-circle distance between two points in meters (haversine).
double HaversineMeters(const GeoPoint& a, const GeoPoint& b);

/// Axis-aligned latitude/longitude rectangle.  `min` is the south-west
/// corner and `max` the north-east; boxes never wrap the antimeridian
/// (BigEarthNet covers Europe only, so this is safe).
struct BoundingBox {
  GeoPoint min;  ///< south-west corner
  GeoPoint max;  ///< north-east corner

  bool Contains(const GeoPoint& p) const {
    return p.lat >= min.lat && p.lat <= max.lat && p.lon >= min.lon &&
           p.lon <= max.lon;
  }
  bool Intersects(const BoundingBox& o) const {
    return !(o.min.lat > max.lat || o.max.lat < min.lat ||
             o.min.lon > max.lon || o.max.lon < min.lon);
  }
  GeoPoint Center() const {
    return {(min.lat + max.lat) / 2.0, (min.lon + max.lon) / 2.0};
  }
  bool IsValid() const {
    return IsValidPoint(min) && IsValidPoint(max) && min.lat <= max.lat &&
           min.lon <= max.lon;
  }
};

/// Geodesic circle (center + radius in meters).
struct Circle {
  GeoPoint center;
  double radius_meters = 0.0;

  bool Contains(const GeoPoint& p) const {
    return HaversineMeters(center, p) <= radius_meters;
  }
  /// Conservative lat/lon bounding box of the circle (exact in latitude,
  /// widened by cos(lat) in longitude).
  BoundingBox Bounds() const;
};

/// Simple (non-self-intersecting) polygon in lat/lon space; vertices are
/// listed in order, the closing edge is implicit.
struct Polygon {
  std::vector<GeoPoint> vertices;

  /// Even-odd (ray casting) containment in lon/lat plane coordinates.
  /// Points exactly on an edge may fall either way, like in most GIS
  /// engines' fast paths.
  bool Contains(const GeoPoint& p) const;
  BoundingBox Bounds() const;
  bool IsValid() const { return vertices.size() >= 3; }
};

// ---------------------------------------------------------------------------
// Geohash
// ---------------------------------------------------------------------------

/// Encodes a point into a base-32 geohash of `precision` characters
/// (1..12).  This mirrors the 2D geohashing index MongoDB builds for
/// EarthQube's metadata `location` attribute.
StatusOr<std::string> GeohashEncode(const GeoPoint& p, int precision);

/// Decodes a geohash to the bounding box of its cell.
StatusOr<BoundingBox> GeohashDecodeBounds(const std::string& hash);

/// Decodes a geohash to its cell center.
StatusOr<GeoPoint> GeohashDecode(const std::string& hash);

/// The geohash cell and its 8 neighbours at the same precision (fewer at
/// the poles).  Order: {self, N, NE, E, SE, S, SW, W, NW}.
StatusOr<std::vector<std::string>> GeohashNeighbors(const std::string& hash);

/// Returns a set of geohash prefixes at `precision` whose cells together
/// cover `box`.  Cell count is capped at `max_cells`; when the cap would
/// be exceeded the precision is reduced until the cover fits, so the
/// result may be coarser (but always complete).
std::vector<std::string> GeohashCover(const BoundingBox& box, int precision,
                                      size_t max_cells = 1024);

}  // namespace agoraeo::geo

#endif  // AGORAEO_GEO_GEO_H_
