/// Experiment E6 — geospatial queries over the metadata location index
/// (paper §3.2: "we index the location attribute using MongoDB's
/// built-in 2D geohashing index").
///
/// Measures rectangle / circle / polygon queries with the geohash index
/// versus a collection scan, for small (city-scale) and large
/// (country-scale) query areas.  Expected shape: the index wins by a
/// large factor for selective areas and converges toward the scan as
/// the area approaches the whole archive.
#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace agoraeo::bench {
namespace {

using earthqube::EarthQubeQuery;
using earthqube::GeoQuery;

constexpr size_t kArchive = 50000;

geo::BoundingBox SmallRect() { return {{38.0, -9.2}, {38.4, -8.8}}; }  // ~40 km
geo::BoundingBox LargeRect() { return {{37.0, -9.5}, {42.2, -6.2}}; }  // Portugal

void RunGeoQuery(benchmark::State& state, const GeoQuery& geo, bool indexed) {
  const ArchiveFixture& fixture = GetArchive(kArchive);
  earthqube::EarthQube* system = GetEarthQube(
      fixture, indexed, earthqube::LabelEncoding::kAsciiCompressed);
  EarthQubeQuery query;
  query.geo = geo;
  size_t matches = 0, examined = 0, iters = 0;
  std::string plan;
  for (auto _ : state) {
    auto response = system->Search(query);
    if (!response.ok()) std::abort();
    benchmark::DoNotOptimize(response);
    matches += response->panel.total();
    examined += response->query_stats.docs_examined;
    plan = response->query_stats.plan;
    ++iters;
  }
  state.counters["matches"] = iters ? static_cast<double>(matches) / iters : 0;
  state.counters["docs_examined"] =
      iters ? static_cast<double>(examined) / iters : 0;
  state.SetLabel(plan);
}

void BM_SmallRect_Indexed(benchmark::State& state) {
  RunGeoQuery(state, GeoQuery::Rect(SmallRect()), true);
}
void BM_SmallRect_Scan(benchmark::State& state) {
  RunGeoQuery(state, GeoQuery::Rect(SmallRect()), false);
}
void BM_LargeRect_Indexed(benchmark::State& state) {
  RunGeoQuery(state, GeoQuery::Rect(LargeRect()), true);
}
void BM_LargeRect_Scan(benchmark::State& state) {
  RunGeoQuery(state, GeoQuery::Rect(LargeRect()), false);
}
void BM_Circle_Indexed(benchmark::State& state) {
  RunGeoQuery(state, GeoQuery::InCircle({{38.2, -9.0}, 30000}), true);
}
void BM_Circle_Scan(benchmark::State& state) {
  RunGeoQuery(state, GeoQuery::InCircle({{38.2, -9.0}, 30000}), false);
}
void BM_Polygon_Indexed(benchmark::State& state) {
  // A triangle over the SW tip of Portugal.
  RunGeoQuery(state,
              GeoQuery::InPolygon({{{37.0, -9.5}, {38.5, -9.5}, {37.7, -7.9}}}),
              true);
}
void BM_Polygon_Scan(benchmark::State& state) {
  RunGeoQuery(state,
              GeoQuery::InPolygon({{{37.0, -9.5}, {38.5, -9.5}, {37.7, -7.9}}}),
              false);
}

BENCHMARK(BM_SmallRect_Indexed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SmallRect_Scan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LargeRect_Indexed)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LargeRect_Scan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Circle_Indexed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Circle_Scan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Polygon_Indexed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Polygon_Scan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace agoraeo::bench

BENCHMARK_MAIN();
