/// Ranked direct access: what a resumable cursor actually buys.
///
/// Two layers, same question — what does page N of a ranked result set
/// cost?
///
///   Index layer (100k codes in 4 sealed shards, full-ranked walk):
///     BM_LazyFrontierPage   open a merged shard frontier, pull only the
///                           hits page N needs ((N+1) * 50), stop — each
///                           shard sorts only the distance buckets the
///                           pull actually reaches.
///     BM_EagerOverfetchPage the stateless alternative: every shard
///                           computes its full top-(N+1)*50 (4x
///                           overfetch), the merge discards 3/4 of it,
///                           page N is sliced out.
///
///   System layer (EarthQube over the same 100k archive):
///     BM_CursorResumePage   page N with a live ranked-access handle —
///                           the cursor-resume path: slice the pinned
///                           survivors, pull at most one incremental
///                           chunk.
///     BM_ColdRerunPage      page N with the handle table cleared every
///                           iteration — what every page costs a
///                           stateless server that re-executes the
///                           ranking from scratch.
///     BM_WalkResume/Rerun   the end-to-end deep-page walk (pages
///                           0..P-1), cursors vs re-execution; the
///                           rerun flavour is quadratic in P.
///
/// The resume-vs-rerun ratio at depth >= 10 is the headline number of
/// the ranked-paging work: BENCH_paging.json carries both rows so the
/// speedup is machine-checkable.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "earthqube/query_request.h"
#include "index/frontier.h"
#include "index/linear_scan.h"
#include "index/sharded_index.h"
#include "milan/milan_model.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kArchive = 100000;
constexpr size_t kBits = 64;
constexpr size_t kPage = 50;      ///< k per page (the paper's default grid)
constexpr uint32_t kRadius = 16;  ///< deep ranking: thousands of hits

// ---------------------------------------------------------------------------
// Index layer: lazy frontier pull vs eager overfetch
// ---------------------------------------------------------------------------

struct IndexContext {
  std::unique_ptr<index::ShardedHammingIndex> idx;
  BinaryCode query;
  size_t total_hits = 0;  ///< eager ranking size, for the counters
};

IndexContext* GetIndexContext() {
  static std::unique_ptr<IndexContext> cached;
  if (cached != nullptr) return cached.get();

  const ArchiveFixture& fixture = GetArchive(kArchive);
  const std::vector<BinaryCode> codes = ClusteredCodes(fixture, kBits);
  auto ctx = std::make_unique<IndexContext>();
  // Seal after loading: lazy frontiers stream from sealed segments; a
  // never-sealed mutable segment would be materialised eagerly (it has
  // no stable snapshot to stream from).
  ctx->idx = std::make_unique<index::ShardedHammingIndex>(
      4, [] { return std::make_unique<index::LinearScanIndex>(); },
      /*seal_threshold=*/0);
  for (size_t i = 0; i < codes.size(); ++i) {
    if (!ctx->idx->Add(i, codes[i]).ok()) std::abort();
  }
  if (!ctx->idx->SealAll().ok()) std::abort();
  ctx->query = codes[123];
  ctx->total_hits = ctx->idx->size();
  cached = std::move(ctx);
  return cached.get();
}

void BM_LazyFrontierPage(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  IndexContext* ctx = GetIndexContext();
  const size_t need = (depth + 1) * kPage;
  std::vector<index::SearchResult> hits;
  for (auto _ : state) {
    hits.clear();
    auto frontier = ctx->idx->OpenFrontier(ctx->query, {});  // full rank
    while (hits.size() < need) {
      if (frontier->Next(need - hits.size(), &hits) == 0) break;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["hits_pulled"] = static_cast<double>(hits.size());
  state.counters["ranking_size"] = static_cast<double>(ctx->total_hits);
}

void BM_EagerOverfetchPage(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  IndexContext* ctx = GetIndexContext();
  const size_t need = (depth + 1) * kPage;
  size_t window = 0;
  for (auto _ : state) {
    const auto all = ctx->idx->KnnSearch(ctx->query, need);
    const size_t begin = std::min(all.size(), depth * kPage);
    const size_t end = std::min(all.size(), begin + kPage);
    window = end - begin;
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["window"] = static_cast<double>(window);
  state.counters["ranking_size"] = static_cast<double>(ctx->total_hits);
}

// ---------------------------------------------------------------------------
// System layer: cursor resume vs stateless re-execution
// ---------------------------------------------------------------------------

struct SystemContext {
  std::unique_ptr<earthqube::EarthQube> system;
  earthqube::QueryRequest base;
};

SystemContext* GetSystemContext() {
  static std::unique_ptr<SystemContext> cached;
  if (cached != nullptr) return cached.get();

  const ArchiveFixture& fixture = GetArchive(kArchive);
  auto ctx = std::make_unique<SystemContext>();
  earthqube::EarthQubeConfig config;
  // Measure the ranked-access path, not response replay.
  config.cache.enable_response_cache = false;
  ctx->system = std::make_unique<earthqube::EarthQube>(config);
  if (!ctx->system->IngestArchive(fixture.archive).ok()) std::abort();

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 64;
  mconfig.hidden2 = 32;
  mconfig.hash_bits = kBits;
  mconfig.dropout = 0.0f;
  earthqube::CbirConfig cbir_config;
  cbir_config.index_kind = earthqube::CbirIndexKind::kLinearScan;
  cbir_config.num_shards = 4;
  auto cbir = std::make_unique<earthqube::CbirService>(
      std::make_unique<milan::MilanModel>(mconfig), &fixture.extractor,
      cbir_config);
  if (!cbir->AddImages(fixture.names, fixture.features).ok()) std::abort();
  ctx->system->AttachCbir(std::move(cbir));

  ctx->base.similarity =
      earthqube::SimilaritySpec::NameRadius(fixture.names[123], kRadius);
  ctx->base.projection = earthqube::Projection::kHitsOnly;
  ctx->base.page_size = kPage;
  cached = std::move(ctx);
  return cached.get();
}

/// Executes one page, aborting on error (bench setup bugs, not data).
size_t ExecutePage(SystemContext* ctx, size_t page) {
  earthqube::QueryRequest request = ctx->base;
  request.page = page;
  auto response = ctx->system->Execute(request);
  if (!response.ok()) std::abort();
  benchmark::DoNotOptimize(response->hits);
  return response->hits.size();
}

void BM_CursorResumePage(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  SystemContext* ctx = GetSystemContext();
  // Warm the handle the way a paging client does: walk to the page.
  ctx->system->ranked_access()->Clear();
  for (size_t page = 0; page < depth; ++page) ExecutePage(ctx, page);
  size_t window = 0;
  for (auto _ : state) window = ExecutePage(ctx, depth);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["window"] = static_cast<double>(window);
  const auto stats = ctx->system->ranked_access()->Stats();
  state.counters["resume_hits"] = static_cast<double>(stats.hits);
}

void BM_ColdRerunPage(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  SystemContext* ctx = GetSystemContext();
  size_t window = 0;
  for (auto _ : state) {
    // A stateless server holds no handle: every page re-executes the
    // ranking from hit 0 up through the requested window.
    ctx->system->ranked_access()->Clear();
    window = ExecutePage(ctx, depth);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["window"] = static_cast<double>(window);
}

void BM_WalkResume(benchmark::State& state) {
  const size_t pages = static_cast<size_t>(state.range(0));
  SystemContext* ctx = GetSystemContext();
  size_t rows = 0;
  for (auto _ : state) {
    ctx->system->ranked_access()->Clear();  // each walk starts cold
    rows = 0;
    for (size_t page = 0; page < pages; ++page) rows += ExecutePage(ctx, page);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * pages));
  state.counters["pages"] = static_cast<double>(pages);
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_WalkRerun(benchmark::State& state) {
  const size_t pages = static_cast<size_t>(state.range(0));
  SystemContext* ctx = GetSystemContext();
  size_t rows = 0;
  for (auto _ : state) {
    rows = 0;
    for (size_t page = 0; page < pages; ++page) {
      ctx->system->ranked_access()->Clear();
      rows += ExecutePage(ctx, page);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * pages));
  state.counters["pages"] = static_cast<double>(pages);
  state.counters["rows"] = static_cast<double>(rows);
}

#define DEPTH_ARGS ->Arg(1)->Arg(10)->Arg(25)->Unit(benchmark::kMicrosecond)

BENCHMARK(BM_LazyFrontierPage) DEPTH_ARGS;
BENCHMARK(BM_EagerOverfetchPage) DEPTH_ARGS;
BENCHMARK(BM_CursorResumePage) DEPTH_ARGS;
BENCHMARK(BM_ColdRerunPage) DEPTH_ARGS;
BENCHMARK(BM_WalkResume)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkRerun)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace agoraeo::bench

int main(int argc, char** argv) {
  return agoraeo::bench::RunBenchmarksWithJson("paging", argc, argv);
}
