/// Experiment E16 — durability cost of the data tier's journal.
///
/// MongoDB (the paper's data tier) journals every write; our embedded
/// substitute reproduces that with a CRC-framed write-ahead log.  This
/// bench measures (a) ingest throughput with and without journaling,
/// (b) checkpoint cost, and (c) cold-start recovery (snapshot +
/// journal replay) as a function of the journal's length.  Expected
/// shape: journaling costs a constant per-write overhead (serialise +
/// flush); recovery is linear in journal records and much faster than
/// re-ingesting.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.h"
#include "docstore/wal.h"
#include "earthqube/schema.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kPatches = 5000;

std::vector<docstore::Document> MetadataDocs(size_t n) {
  const ArchiveFixture& fixture = GetArchive(kPatches);
  std::vector<docstore::Document> docs;
  docs.reserve(n);
  for (size_t i = 0; i < n && i < fixture.archive.patches.size(); ++i) {
    docs.push_back(earthqube::MetadataToDocument(
        fixture.archive.patches[i],
        earthqube::LabelEncoding::kAsciiCompressed));
  }
  return docs;
}

void WipeDir(const std::string& dir) {
  std::remove((dir + "/snapshot.bin").c_str());
  std::remove((dir + "/wal.log").c_str());
  (void)!system(("mkdir -p " + dir).c_str());
}

void BM_Ingest_NoJournal(benchmark::State& state) {
  const auto docs = MetadataDocs(kPatches);
  for (auto _ : state) {
    docstore::Database db;
    auto* coll = db.GetOrCreateCollection("metadata");
    for (const auto& doc : docs) {
      if (!coll->Insert(doc).ok()) std::abort();
    }
    benchmark::DoNotOptimize(db);
  }
  state.counters["docs_per_s"] = benchmark::Counter(
      static_cast<double>(docs.size()), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Ingest_Journaled(benchmark::State& state) {
  const auto docs = MetadataDocs(kPatches);
  const std::string dir = "/tmp/agoraeo_bench_wal_ingest";
  for (auto _ : state) {
    WipeDir(dir);
    docstore::DurableDatabase ddb(dir);
    if (!ddb.Open().ok()) std::abort();
    for (const auto& doc : docs) {
      if (!ddb.Insert("metadata", doc).ok()) std::abort();
    }
    benchmark::DoNotOptimize(ddb);
  }
  state.counters["docs_per_s"] = benchmark::Counter(
      static_cast<double>(docs.size()), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Checkpoint(benchmark::State& state) {
  const auto docs = MetadataDocs(kPatches);
  const std::string dir = "/tmp/agoraeo_bench_wal_ckpt";
  WipeDir(dir);
  docstore::DurableDatabase ddb(dir);
  if (!ddb.Open().ok()) std::abort();
  for (const auto& doc : docs) {
    if (!ddb.Insert("metadata", doc).ok()) std::abort();
  }
  for (auto _ : state) {
    if (!ddb.Checkpoint().ok()) std::abort();
  }
  state.counters["docs"] = static_cast<double>(docs.size());
}

void BM_Recovery_JournalReplay(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto docs = MetadataDocs(n);
  const std::string dir = "/tmp/agoraeo_bench_wal_recovery";
  WipeDir(dir);
  {
    docstore::DurableDatabase writer(dir);
    if (!writer.Open().ok()) std::abort();
    for (const auto& doc : docs) {
      if (!writer.Insert("metadata", doc).ok()) std::abort();
    }
  }  // no checkpoint: recovery replays the full journal
  for (auto _ : state) {
    docstore::DurableDatabase ddb(dir);
    if (!ddb.Open().ok()) std::abort();
    if (ddb.db().GetCollection("metadata")->size() != docs.size()) {
      std::abort();
    }
    benchmark::DoNotOptimize(ddb);
  }
  state.counters["journal_records"] = static_cast<double>(n);
}

void BM_Recovery_FromCheckpoint(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto docs = MetadataDocs(n);
  const std::string dir = "/tmp/agoraeo_bench_wal_ckpt_recovery";
  WipeDir(dir);
  {
    docstore::DurableDatabase writer(dir);
    if (!writer.Open().ok()) std::abort();
    for (const auto& doc : docs) {
      if (!writer.Insert("metadata", doc).ok()) std::abort();
    }
    if (!writer.Checkpoint().ok()) std::abort();
  }
  for (auto _ : state) {
    docstore::DurableDatabase ddb(dir);
    if (!ddb.Open().ok()) std::abort();
    benchmark::DoNotOptimize(ddb);
  }
  state.counters["snapshot_docs"] = static_cast<double>(n);
}

BENCHMARK(BM_Ingest_NoJournal)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ingest_Journaled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Checkpoint)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Recovery_JournalReplay)
    ->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Recovery_FromCheckpoint)
    ->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace agoraeo::bench

int main(int argc, char** argv) {
  return agoraeo::bench::RunBenchmarksWithJson("wal", argc, argv);
}
