/// Experiment E16 — cost and scaling of the slot-sharded cluster tier.
///
/// Three questions, one suite:
///   1. Fan-out overhead: a 1-node cluster answers the same query as a
///      monolithic deployment but pays coordinator parse + re-serialise
///      + one loopback hop + merge.  Mono vs cluster/1 is that price.
///   2. Scatter width: cluster/2 and cluster/3 split the archive over
///      more nodes; per-node work shrinks while the coordinator merge
///      grows with the union size.  For cheap queries the fan-out
///      dominates; the cluster pays off only when per-node index work
///      is the bottleneck.
///   3. Closed-loop throughput: 4 client threads hammering a Zipfian
///      query mix, items/s across 1/2/3 nodes — the multi-node win the
///      slot tier exists for.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "cluster/cluster_node.h"
#include "cluster/coordinator.h"
#include "cluster/slot_table.h"
#include "common/random.h"
#include "earthqube/cbir_service.h"
#include "netsvc/client.h"
#include "netsvc/earthqube_service.h"
#include "netsvc/server.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kArchive = 10000;
constexpr size_t kBits = 64;
constexpr size_t kNumSlots = 256;

/// An untrained model: every benchmark here ingests PRECOMPUTED codes
/// (ClusteredCodes), so the model never runs — index and transport cost
/// is what is measured, exactly like the pure data-structure benches.
std::unique_ptr<earthqube::CbirService> MakeCbir(
    const ArchiveFixture& fixture) {
  milan::MilanConfig config;
  config.feature_dim = bigearthnet::kFeatureDim;
  config.hidden1 = 32;
  config.hidden2 = 32;
  config.hash_bits = kBits;
  return std::make_unique<earthqube::CbirService>(
      std::make_unique<milan::MilanModel>(config), &fixture.extractor);
}

const std::vector<BinaryCode>& GetCodes(const ArchiveFixture& fixture) {
  static auto* codes =
      new std::vector<BinaryCode>(ClusteredCodes(fixture, kBits));
  return *codes;
}

/// Monolithic reference: one system, one HTTP service.
struct MonoRig {
  std::unique_ptr<earthqube::EarthQube> system;
  std::unique_ptr<netsvc::EarthQubeService> service;
  netsvc::HttpServer server{4};
  uint16_t port = 0;
};

MonoRig* GetMono() {
  static MonoRig* rig = [] {
    const ArchiveFixture& fixture = GetArchive(kArchive);
    auto* r = new MonoRig();
    r->system = std::make_unique<earthqube::EarthQube>();
    r->system->AttachCbir(MakeCbir(fixture));
    if (!r->system->IngestArchiveWithCodes(fixture.archive, GetCodes(fixture))
             .ok()) {
      std::abort();
    }
    r->service = std::make_unique<netsvc::EarthQubeService>(r->system.get());
    r->service->RegisterRoutes(&r->server);
    if (!r->server.Start(0).ok()) std::abort();
    r->port = r->server.port();
    return r;
  }();
  return rig;
}

/// An n-node cluster behind a coordinator front door.
struct ClusterRig {
  std::vector<std::unique_ptr<earthqube::EarthQube>> systems;
  std::vector<std::unique_ptr<cluster::ClusterNode>> nodes;
  std::unique_ptr<cluster::Coordinator> coordinator;
  netsvc::HttpServer server{4};
  uint16_t port = 0;
};

ClusterRig* GetCluster(size_t num_nodes) {
  static auto* rigs = new std::map<size_t, ClusterRig*>();
  auto it = rigs->find(num_nodes);
  if (it != rigs->end()) return it->second;
  const ArchiveFixture& fixture = GetArchive(kArchive);
  auto* rig = new ClusterRig();
  std::vector<cluster::NodeAddress> addresses;
  for (size_t i = 0; i < num_nodes; ++i) {
    rig->systems.push_back(std::make_unique<earthqube::EarthQube>());
    rig->systems.back()->AttachCbir(MakeCbir(fixture));
    cluster::ClusterNode::Options options;
    options.id = "n" + std::to_string(i + 1);
    rig->nodes.push_back(std::make_unique<cluster::ClusterNode>(
        rig->systems.back().get(), options));
    if (!rig->nodes.back()->Start(0).ok()) std::abort();
    addresses.push_back(rig->nodes.back()->address());
  }
  const cluster::SlotTable table(addresses, kNumSlots);
  for (auto& node : rig->nodes) node->SetTable(table);
  rig->coordinator = std::make_unique<cluster::Coordinator>();
  rig->coordinator->AttachTable(table);
  if (!rig->coordinator->IngestArchive(fixture.archive, GetCodes(fixture))
           .ok()) {
    std::abort();
  }
  rig->coordinator->RegisterRoutes(&rig->server);
  if (!rig->server.Start(0).ok()) std::abort();
  rig->port = rig->server.port();
  (*rigs)[num_nodes] = rig;
  return rig;
}

const char* kPanelQuery =
    R"({"panel":{"labels":{"operator":"some","names":["Airports",)"
    R"("Water bodies"]},"limit":50}})";

std::string KnnQuery(const BinaryCode& code, size_t k) {
  return R"({"similarity":{"code":")" + code.ToBitString() + R"(","k":)" +
         std::to_string(k) + "}}";
}

/// Zipf-ish subject pick: rank r with weight 1/(r+1); cheap inverse
/// sampling over a small head so hot subjects repeat like real users.
size_t ZipfIndex(Rng* rng, size_t n) {
  const double u = rng->UniformDouble();
  const size_t head = std::min<size_t>(64, n);
  double total = 0;
  for (size_t r = 0; r < head; ++r) total += 1.0 / static_cast<double>(r + 1);
  double acc = 0;
  for (size_t r = 0; r < head; ++r) {
    acc += 1.0 / static_cast<double>(r + 1) / total;
    if (u < acc) return r * (n / head);
  }
  return n - 1;
}

void PostOrAbort(const netsvc::HttpClient& client, uint16_t port,
                 const std::string& body, benchmark::State& state) {
  auto response = client.Post(port, "/api/v2/query", body);
  if (!response.ok() || response->status_code != 200) {
    state.SkipWithError("query failed");
    return;
  }
  benchmark::DoNotOptimize(response->body.size());
}

void BM_MonoPanelHttp(benchmark::State& state) {
  MonoRig* rig = GetMono();
  netsvc::HttpClient client;
  for (auto _ : state) PostOrAbort(client, rig->port, kPanelQuery, state);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MonoPanelHttp);

void BM_ClusterPanelHttp(benchmark::State& state) {
  ClusterRig* rig = GetCluster(static_cast<size_t>(state.range(0)));
  netsvc::HttpClient client;
  for (auto _ : state) PostOrAbort(client, rig->port, kPanelQuery, state);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ClusterPanelHttp)->Arg(1)->Arg(2)->Arg(3);

void BM_MonoKnnHttp(benchmark::State& state) {
  MonoRig* rig = GetMono();
  const ArchiveFixture& fixture = GetArchive(kArchive);
  netsvc::HttpClient client;
  Rng rng(11 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    const auto& code = GetCodes(fixture)[ZipfIndex(&rng, kArchive)];
    PostOrAbort(client, rig->port, KnnQuery(code, 50), state);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MonoKnnHttp);

void BM_ClusterKnnHttp(benchmark::State& state) {
  ClusterRig* rig = GetCluster(static_cast<size_t>(state.range(0)));
  const ArchiveFixture& fixture = GetArchive(kArchive);
  netsvc::HttpClient client;
  Rng rng(11 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    const auto& code = GetCodes(fixture)[ZipfIndex(&rng, kArchive)];
    PostOrAbort(client, rig->port, KnnQuery(code, 50), state);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ClusterKnnHttp)->Arg(1)->Arg(2)->Arg(3);

/// Closed loop: 4 concurrent clients, Zipfian k-NN mix, scaling across
/// cluster widths.  items/s is the headline number.
void BM_ClusterClosedLoop(benchmark::State& state) {
  ClusterRig* rig = GetCluster(static_cast<size_t>(state.range(0)));
  const ArchiveFixture& fixture = GetArchive(kArchive);
  netsvc::HttpClient client;
  Rng rng(101 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    const auto& code = GetCodes(fixture)[ZipfIndex(&rng, kArchive)];
    if (rng.UniformDouble() < 0.3) {
      PostOrAbort(client, rig->port, kPanelQuery, state);
    } else {
      PostOrAbort(client, rig->port, KnnQuery(code, 50), state);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ClusterClosedLoop)->Arg(1)->Arg(2)->Arg(3)->Threads(4)
    ->UseRealTime();

}  // namespace
}  // namespace agoraeo::bench

int main(int argc, char** argv) {
  return agoraeo::bench::RunBenchmarksWithJson("cluster", argc, argv);
}
