/// Experiment E1b — batched, thread-parallel CBIR queries.
///
/// The ROADMAP's first scaling increment: instead of answering queries
/// one at a time on one thread, the retrieval stack accepts query
/// batches, shards them across a ThreadPool, and (for the linear scan)
/// blocks over the code array so a cache-resident block of codes serves
/// every query of a shard.  This bench reports single-query baseline
/// throughput against batched throughput at 1/4/8 pool threads for the
/// linear-scan, hash-table and BK-tree backends at 10k codes, plus the
/// end-to-end CbirService::QueryBatch path (one MiLaN forward pass per
/// batch instead of per query).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/harness.h"
#include "common/thread_pool.h"
#include "index/bk_tree.h"
#include "index/hamming_table.h"
#include "index/linear_scan.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kBits = 128;
constexpr uint32_t kRadius = 8;
constexpr size_t kArchive = 10000;
constexpr size_t kBatch = 64;

index::HammingIndex* GetIndex(const std::string& kind) {
  static std::map<std::string, std::unique_ptr<index::HammingIndex>> cache;
  auto it = cache.find(kind);
  if (it != cache.end()) return it->second.get();
  const ArchiveFixture& fixture = GetArchive(kArchive);
  const auto codes = ClusteredCodes(fixture, kBits);
  std::unique_ptr<index::HammingIndex> idx;
  if (kind == "hash_table") {
    idx = std::make_unique<index::HammingHashTable>();
  } else if (kind == "bk_tree") {
    idx = std::make_unique<index::BkTree>();
  } else {
    idx = std::make_unique<index::LinearScanIndex>();
  }
  for (size_t i = 0; i < codes.size(); ++i) {
    if (!idx->Add(i, codes[i]).ok()) std::abort();
  }
  return cache.emplace(kind, std::move(idx)).first->second.get();
}

/// Pre-generated rotating query batches so the timed loops measure the
/// search alone, not query synthesis.
const std::vector<BinaryCode>& QueryBatchCodes(size_t offset) {
  static const std::vector<std::vector<BinaryCode>> batches = [] {
    const ArchiveFixture& fixture = GetArchive(kArchive);
    const auto codes = ClusteredCodes(fixture, kBits);
    std::vector<std::vector<BinaryCode>> out(16);
    for (size_t b = 0; b < out.size(); ++b) {
      out[b].reserve(kBatch);
      for (size_t q = 0; q < kBatch; ++q) {
        out[b].push_back(codes[(b + q * 37) % codes.size()]);
      }
    }
    return out;
  }();
  return batches[offset % batches.size()];
}

/// Baseline: the batch answered as kBatch independent single-threaded
/// single queries (the seed's only query path).
void RunSingleQuery(benchmark::State& state, const std::string& kind) {
  index::HammingIndex* idx = GetIndex(kind);
  size_t offset = 0;
  for (auto _ : state) {
    const auto& queries = QueryBatchCodes(offset++);
    size_t results = 0;
    for (const BinaryCode& q : queries) {
      auto hits = idx->RadiusSearch(q, kRadius);
      benchmark::DoNotOptimize(hits);
      results += hits.size();
    }
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  state.counters["queries_per_batch"] = static_cast<double>(kBatch);
}

/// Batched path: one BatchRadiusSearch call sharded across `threads`
/// pool workers (threads == 0 runs the batch sequentially, isolating
/// the batching gain from the threading gain).
void RunBatchQuery(benchmark::State& state, const std::string& kind) {
  index::HammingIndex* idx = GetIndex(kind);
  const size_t threads = static_cast<size_t>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  size_t offset = 0;
  for (auto _ : state) {
    const auto& queries = QueryBatchCodes(offset++);
    auto hits = idx->BatchRadiusSearch(queries, kRadius, pool.get());
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  state.counters["pool_threads"] = static_cast<double>(threads);
}

void BM_SingleQueryLinearScan(benchmark::State& state) {
  RunSingleQuery(state, "linear");
}
void BM_BatchLinearScan(benchmark::State& state) {
  RunBatchQuery(state, "linear");
}
void BM_SingleQueryHashTable(benchmark::State& state) {
  RunSingleQuery(state, "hash_table");
}
void BM_BatchHashTable(benchmark::State& state) {
  RunBatchQuery(state, "hash_table");
}
void BM_SingleQueryBkTree(benchmark::State& state) {
  RunSingleQuery(state, "bk_tree");
}
void BM_BatchBkTree(benchmark::State& state) {
  RunBatchQuery(state, "bk_tree");
}

/// End-to-end service path: query-by-feature with per-query inference
/// (baseline) versus one batched forward pass + batch index search.
earthqube::CbirService* GetCbir() {
  static std::unique_ptr<earthqube::CbirService> cbir;
  if (cbir != nullptr) return cbir.get();
  const ArchiveFixture& fixture = GetArchive(2000);
  milan::MilanModel* trained = GetTrainedMilan(fixture, 32);
  // Clone the trained weights into a service-owned model via a
  // save/load round trip (the harness cache keeps the original).
  const std::string path = "/tmp/agoraeo_bench_batch_milan.bin";
  if (!trained->Save(path).ok()) std::abort();
  auto model = milan::MilanModel::Load(path);
  if (!model.ok()) std::abort();
  cbir = std::make_unique<earthqube::CbirService>(
      std::move(model).value(), &fixture.extractor,
      earthqube::CbirIndexKind::kHashTable, /*query_threads=*/4);
  if (!cbir->AddImages(fixture.names, fixture.features).ok()) std::abort();
  return cbir.get();
}

void BM_CbirSingleQueryByFeature(benchmark::State& state) {
  earthqube::CbirService* cbir = GetCbir();
  const ArchiveFixture& fixture = GetArchive(2000);
  size_t offset = 0;
  for (auto _ : state) {
    size_t results = 0;
    for (size_t q = 0; q < kBatch; ++q) {
      const auto hits = cbir->QueryByFeature(
          fixture.features.Row((offset + q * 37) % 2000), kRadius);
      results += hits.size();
    }
    benchmark::DoNotOptimize(results);
    ++offset;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
}

void BM_CbirQueryBatch(benchmark::State& state) {
  earthqube::CbirService* cbir = GetCbir();
  const ArchiveFixture& fixture = GetArchive(2000);
  const size_t dim = fixture.features.shape()[1];
  size_t offset = 0;
  for (auto _ : state) {
    Tensor batch({kBatch, dim});
    for (size_t q = 0; q < kBatch; ++q) {
      batch.SetRow(q, fixture.features.Row((offset + q * 37) % 2000));
    }
    auto hits = cbir->QueryBatch(batch, kRadius);
    if (!hits.ok()) std::abort();
    benchmark::DoNotOptimize(*hits);
    ++offset;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
}

// UseRealTime: worker-pool benches must report wall-clock rates, not
// the main thread's CPU time.
BENCHMARK(BM_SingleQueryLinearScan)->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(BM_BatchLinearScan)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK(BM_SingleQueryHashTable)->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(BM_BatchHashTable)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK(BM_SingleQueryBkTree)->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(BM_BatchBkTree)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK(BM_CbirSingleQueryByFeature)->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(BM_CbirQueryBatch)->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace
}  // namespace agoraeo::bench

BENCHMARK_MAIN();
