/// Experiment E9 — the label-statistics view (paper §3.1, Figure 2-4),
/// "a unique feature of EarthQube".
///
/// Measures the latency of building the statistics bar chart as a
/// function of result-set size, both from in-memory label sets (the
/// result-panel path) and via the docstore aggregation
/// (CountByArrayField).  Expected shape: linear in the number of
/// retrieved images with a tiny constant.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "docstore/aggregate.h"
#include "docstore/collection.h"
#include "earthqube/statistics.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kArchive = 50000;

void BM_StatisticsFromLabelSets(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ArchiveFixture& fixture = GetArchive(kArchive);
  std::vector<bigearthnet::LabelSet> subset(
      fixture.labels.begin(),
      fixture.labels.begin() + std::min(n, fixture.labels.size()));
  for (auto _ : state) {
    auto stats = earthqube::LabelStatistics::FromLabelSets(subset);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["images"] = static_cast<double>(subset.size());
}

void BM_StatisticsViaAggregation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ArchiveFixture& fixture = GetArchive(kArchive);
  earthqube::EarthQube* system = GetEarthQube(
      fixture, true, earthqube::LabelEncoding::kAsciiCompressed);
  auto* metadata =
      system->database().GetCollection(earthqube::kMetadataCollection);
  // Restrict the aggregation to the first n documents by date ordinal
  // trickery: use a True filter but a bounded scan via limit-equivalent
  // (CountByArrayField has no limit, so aggregate over a name subset).
  // Simplest faithful restriction: aggregate over all docs when n covers
  // the archive, otherwise over a country subset of roughly that size.
  docstore::Filter filter = docstore::Filter::True();
  if (n < kArchive / 2) {
    filter = docstore::Filter::Eq("properties.country", docstore::Value("Portugal"));
  }
  for (auto _ : state) {
    auto counts =
        metadata->CountByArrayField(earthqube::kFieldLabels, filter);
    benchmark::DoNotOptimize(counts);
  }
}

void BM_StatisticsViaPipeline(benchmark::State& state) {
  // The full MongoDB-style aggregation: $match -> $unwind(labels) ->
  // $group(count) -> $sort(desc), i.e. exactly the query the real
  // EarthQube back end would issue for the Figure 2-4 bar chart.
  const size_t n = static_cast<size_t>(state.range(0));
  const ArchiveFixture& fixture = GetArchive(kArchive);
  earthqube::EarthQube* system = GetEarthQube(
      fixture, true, earthqube::LabelEncoding::kAsciiCompressed);
  auto* metadata =
      system->database().GetCollection(earthqube::kMetadataCollection);
  docstore::Filter filter = docstore::Filter::True();
  if (n < kArchive / 2) {
    filter = docstore::Filter::Eq("properties.country",
                                  docstore::Value("Portugal"));
  }
  size_t groups = 0;
  for (auto _ : state) {
    auto out = docstore::Pipeline()
                   .Match(filter)
                   .Unwind(earthqube::kFieldLabels)
                   .Group(earthqube::kFieldLabels,
                          {docstore::Accumulator::Count("count")})
                   .Sort("count", /*ascending=*/false)
                   .Run(*metadata);
    if (!out.ok()) std::abort();
    groups = out->size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["label_bars"] = static_cast<double>(groups);
}

void BM_RenderAsciiChart(benchmark::State& state) {
  const ArchiveFixture& fixture = GetArchive(kArchive);
  auto stats = earthqube::LabelStatistics::FromLabelSets(fixture.labels);
  for (auto _ : state) {
    auto chart = stats.RenderAscii();
    benchmark::DoNotOptimize(chart);
  }
}

BENCHMARK(BM_StatisticsFromLabelSets)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StatisticsViaAggregation)
    ->Arg(5000)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StatisticsViaPipeline)
    ->Arg(5000)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RenderAsciiChart)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace agoraeo::bench

BENCHMARK_MAIN();
