/// The partitioned index layer: batched CBIR and hybrid mixes through
/// EarthQube at 1/2/4/8 index shards, plus a pure index-level batched
/// scatter–gather.  On a multi-core runner the multi-shard rows show
/// the wall-clock win of fanning one fused batch out across shards (one
/// task per shard per pass); on a single-core runner the shard_size_*
/// and fanout counters still document the per-shard work split the
/// parallelism acts on.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/thread_pool.h"
#include "earthqube/query_request.h"
#include "index/linear_scan.h"
#include "index/sharded_index.h"
#include "milan/milan_model.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kArchive = 10000;
constexpr size_t kBits = 64;
constexpr uint32_t kRadius = 8;
constexpr size_t kBatch = 64;

// ---------------------------------------------------------------------------
// Index level: one batched radius pass, scattered across shards
// ---------------------------------------------------------------------------

struct IndexContext {
  std::unique_ptr<index::ShardedHammingIndex> idx;
  std::vector<BinaryCode> queries;
  std::unique_ptr<ThreadPool> pool;
  size_t pinned = 0;  ///< workers PinThreads() actually pinned
};

IndexContext* GetIndexContext(size_t num_shards, bool pin) {
  static std::map<std::pair<size_t, bool>, std::unique_ptr<IndexContext>>
      cache;
  auto it = cache.find({num_shards, pin});
  if (it != cache.end()) return it->second.get();

  const ArchiveFixture& fixture = GetArchive(kArchive);
  const std::vector<BinaryCode> codes = ClusteredCodes(fixture, kBits);
  auto ctx = std::make_unique<IndexContext>();
  ctx->idx = std::make_unique<index::ShardedHammingIndex>(
      num_shards, [] { return std::make_unique<index::LinearScanIndex>(); });
  for (size_t i = 0; i < codes.size(); ++i) {
    if (!ctx->idx->Add(i, codes[i]).ok()) std::abort();
  }
  for (size_t q = 0; q < kBatch; ++q) {
    ctx->queries.push_back(codes[(q * 131) % codes.size()]);
  }
  ctx->pool = std::make_unique<ThreadPool>(0);  // hardware concurrency
  if (pin) ctx->pinned = ctx->pool->PinThreads();
  return cache.emplace(std::make_pair(num_shards, pin), std::move(ctx))
      .first->second.get();
}

void BM_ShardedBatchRadius(benchmark::State& state) {
  const size_t num_shards = static_cast<size_t>(state.range(0));
  const bool pin = state.range(1) != 0;
  IndexContext* ctx = GetIndexContext(num_shards, pin);
  size_t hits = 0;
  for (auto _ : state) {
    const auto batch =
        ctx->idx->BatchRadiusSearch(ctx->queries, kRadius, ctx->pool.get());
    for (const auto& slot : batch) hits += slot.size();
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
  const index::ShardedIndexStats stats = ctx->idx->Stats();
  state.counters["num_shards"] = static_cast<double>(stats.num_shards);
  state.counters["fanout_tasks_per_batch"] =
      stats.batch_fanouts > 0 ? static_cast<double>(stats.fanout_tasks) /
                                    static_cast<double>(stats.batch_fanouts)
                              : 0.0;
  // Routing balance evidence for single-core runs: the largest shard's
  // share of the items (1/num_shards = perfectly balanced).
  size_t largest = 0;
  for (size_t s : stats.shard_sizes) largest = std::max(largest, s);
  state.counters["largest_shard_frac"] =
      static_cast<double>(largest) / static_cast<double>(kArchive);
  state.counters["avg_hits"] =
      state.iterations() > 0
          ? static_cast<double>(hits) /
                static_cast<double>(state.iterations() * kBatch)
          : 0.0;
  // Scaling-curve context: how many cores the host actually has, how
  // wide the pool is, and whether affinity pinning was in effect — so a
  // 1-core CI row is never mistaken for a flat scaling curve.
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["pool_threads"] =
      static_cast<double>(ctx->pool->num_threads());
  state.counters["pinned_threads"] = static_cast<double>(ctx->pinned);
}

// ---------------------------------------------------------------------------
// System level: ExecuteBatch of mixed CBIR + hybrid requests through the
// execution engine's micro-batcher, whose fused passes fan out per shard
// ---------------------------------------------------------------------------

struct SystemContext {
  std::unique_ptr<earthqube::EarthQube> system;
  std::vector<earthqube::QueryRequest> mix;
};

SystemContext* GetSystemContext(size_t num_shards) {
  static std::map<size_t, std::unique_ptr<SystemContext>> cache;
  auto it = cache.find(num_shards);
  if (it != cache.end()) return it->second.get();

  const ArchiveFixture& fixture = GetArchive(kArchive);
  auto ctx = std::make_unique<SystemContext>();
  earthqube::EarthQubeConfig config;
  // Measure execution, not replay: the response cache would hide the
  // index pass entirely after the first iteration.
  config.cache.enable_response_cache = false;
  ctx->system = std::make_unique<earthqube::EarthQube>(config);
  if (!ctx->system->IngestArchive(fixture.archive).ok()) std::abort();

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 64;
  mconfig.hidden2 = 32;
  mconfig.hash_bits = kBits;
  mconfig.dropout = 0.0f;
  earthqube::CbirConfig cbir_config;
  cbir_config.index_kind = earthqube::CbirIndexKind::kLinearScan;
  cbir_config.num_shards = num_shards;
  auto cbir = std::make_unique<earthqube::CbirService>(
      std::make_unique<milan::MilanModel>(mconfig), &fixture.extractor,
      cbir_config);
  if (!cbir->AddImages(fixture.names, fixture.features).ok()) std::abort();
  ctx->system->AttachCbir(std::move(cbir));

  // The mix: distinct CBIR radius queries (they fuse into one batched
  // pass) plus pre-filter hybrids sharing one panel (they fuse into one
  // restricted pass over a shared allowlist).
  earthqube::EarthQubeQuery panel;
  panel.seasons = {Season::kSummer};
  for (size_t i = 0; i < kBatch; ++i) {
    earthqube::QueryRequest request;
    request.similarity = earthqube::SimilaritySpec::NameRadius(
        fixture.names[(i * 131) % fixture.names.size()], kRadius);
    request.projection = earthqube::Projection::kHitsOnly;
    request.page_size = 0;
    if (i % 4 == 3) {
      request.panel = panel;
      request.planner = earthqube::PlannerMode::kForcePreFilter;
    }
    ctx->mix.push_back(std::move(request));
  }
  return cache.emplace(num_shards, std::move(ctx)).first->second.get();
}

void BM_ShardedEngineMix(benchmark::State& state) {
  const size_t num_shards = static_cast<size_t>(state.range(0));
  SystemContext* ctx = GetSystemContext(num_shards);
  for (auto _ : state) {
    auto responses = ctx->system->ExecuteBatch(ctx->mix);
    if (!responses.ok()) std::abort();
    benchmark::DoNotOptimize(*responses);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * ctx->mix.size()));
  const index::ShardedHammingIndex* sharded =
      ctx->system->cbir()->sharded_index();
  state.counters["num_shards"] = static_cast<double>(num_shards);
  if (sharded != nullptr) {
    const index::ShardedIndexStats stats = sharded->Stats();
    state.counters["batch_fanouts"] = static_cast<double>(stats.batch_fanouts);
    state.counters["fanout_tasks"] = static_cast<double>(stats.fanout_tasks);
    state.counters["merge_ms"] =
        static_cast<double>(stats.merge_nanos) / 1e6;
  }
}

#define SHARD_ARGS ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)

// The shard-scaling curve, unpinned and with workers pinned one per
// core ({shards, pin}).
BENCHMARK(BM_ShardedBatchRadius)
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShardedEngineMix) SHARD_ARGS;

}  // namespace
}  // namespace agoraeo::bench

int main(int argc, char** argv) {
  return agoraeo::bench::RunBenchmarksWithJson("sharded_index", argc, argv);
}
