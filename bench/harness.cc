#include "bench/harness.h"

#include <cstdio>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "json/json.h"

namespace agoraeo::bench {

const ArchiveFixture& GetArchive(size_t num_patches, uint64_t seed) {
  // Benchmarks report through google-benchmark counters; INFO logging
  // (archive generation, ingest progress) would only pollute the tables.
  static const bool quiet = [] {
    SetLogLevel(LogLevel::kWarning);
    return true;
  }();
  (void)quiet;
  static auto* cache = new std::map<std::pair<size_t, uint64_t>,
                                    std::unique_ptr<ArchiveFixture>>();
  const auto key = std::make_pair(num_patches, seed);
  auto it = cache->find(key);
  if (it != cache->end()) return *it->second;

  auto fixture = std::make_unique<ArchiveFixture>();
  fixture->config.num_patches = num_patches;
  fixture->config.seed = seed;
  fixture->config.patches_per_scene = 40;
  fixture->generator =
      std::make_unique<bigearthnet::ArchiveGenerator>(fixture->config);
  auto archive = fixture->generator->Generate();
  if (!archive.ok()) {
    std::fprintf(stderr, "archive generation failed: %s\n",
                 archive.status().ToString().c_str());
    std::abort();
  }
  fixture->archive = std::move(archive).value();
  fixture->features =
      fixture->extractor.ExtractArchive(fixture->archive, *fixture->generator,
                                        /*num_threads=*/8);
  fixture->names.reserve(fixture->archive.patches.size());
  fixture->labels.reserve(fixture->archive.patches.size());
  for (const auto& p : fixture->archive.patches) {
    fixture->names.push_back(p.name);
    fixture->labels.push_back(p.labels);
  }
  auto [inserted, _] = cache->emplace(key, std::move(fixture));
  return *inserted->second;
}

std::vector<BinaryCode> ClusteredCodes(const ArchiveFixture& fixture,
                                       size_t bits, double flip_rate,
                                       uint64_t seed) {
  Rng rng(seed, /*stream=*/51);
  // One random center code per scene.
  std::vector<BinaryCode> centers;
  centers.reserve(fixture.archive.scene_centers.size());
  for (size_t s = 0; s < fixture.archive.scene_centers.size(); ++s) {
    BinaryCode center(bits);
    for (size_t b = 0; b < bits; ++b) center.SetBit(b, rng.Bernoulli(0.5));
    centers.push_back(std::move(center));
  }
  std::vector<BinaryCode> codes;
  codes.reserve(fixture.archive.patches.size());
  for (const auto& patch : fixture.archive.patches) {
    BinaryCode code = centers[static_cast<size_t>(patch.scene_id)];
    for (size_t b = 0; b < bits; ++b) {
      if (rng.Bernoulli(flip_rate)) code.FlipBit(b);
    }
    codes.push_back(std::move(code));
  }
  return codes;
}

milan::MilanModel* GetTrainedMilan(const ArchiveFixture& fixture,
                                   size_t bits) {
  static auto* cache =
      new std::map<std::pair<size_t, size_t>,
                   std::unique_ptr<milan::MilanModel>>();
  const auto key =
      std::make_pair(fixture.archive.patches.size(), bits);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 256;
  mconfig.hidden2 = 128;
  mconfig.hash_bits = bits;
  mconfig.dropout = 0.0f;
  auto model = std::make_unique<milan::MilanModel>(mconfig);

  milan::TripletSampler sampler(fixture.labels);
  milan::TrainConfig tconfig;
  tconfig.epochs = 16;
  tconfig.batches_per_epoch = 40;
  tconfig.batch_size = 32;
  tconfig.learning_rate = 1e-3f;
  milan::Trainer trainer(model.get(), &fixture.features, &sampler, tconfig);
  auto result = trainer.Train();
  if (!result.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  auto [inserted, _] = cache->emplace(key, std::move(model));
  return inserted->second.get();
}

earthqube::EarthQube* GetEarthQube(const ArchiveFixture& fixture,
                                   bool build_indexes,
                                   earthqube::LabelEncoding encoding) {
  static auto* cache =
      new std::map<std::tuple<size_t, bool, int>,
                   std::unique_ptr<earthqube::EarthQube>>();
  const auto key = std::make_tuple(fixture.archive.patches.size(),
                                   build_indexes, static_cast<int>(encoding));
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  earthqube::EarthQubeConfig config;
  config.build_indexes = build_indexes;
  config.label_encoding = encoding;
  auto system = std::make_unique<earthqube::EarthQube>(config);
  auto status = system->IngestArchive(fixture.archive);
  if (!status.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
    std::abort();
  }
  auto [inserted, _] = cache->emplace(key, std::move(system));
  return inserted->second.get();
}

void PrintHeader(const std::string& experiment, const std::string& claim) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("============================================================\n");
}

JsonFileReporter::JsonFileReporter(std::string suite)
    : suite_(std::move(suite)),
      path_("BENCH_" + suite_ + ".json"),
      console_(benchmark::CreateDefaultDisplayReporter()) {}

bool JsonFileReporter::ReportContext(const Context& context) {
  return console_->ReportContext(context);
}

void JsonFileReporter::ReportRuns(const std::vector<Run>& runs) {
  console_->ReportRuns(runs);
  for (const Run& run : runs) {
    if (run.error_occurred) continue;
    const double iters =
        run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
    docstore::Document row;
    row.Set("name", docstore::Value(run.benchmark_name()));
    row.Set("label", docstore::Value(run.report_label));
    row.Set("iterations",
            docstore::Value(static_cast<int64_t>(run.iterations)));
    row.Set("real_time_per_iter_ns",
            docstore::Value(run.real_accumulated_time / iters * 1e9));
    row.Set("cpu_time_per_iter_ns",
            docstore::Value(run.cpu_accumulated_time / iters * 1e9));
    docstore::Document counters;
    for (const auto& [name, counter] : run.counters) {
      counters.Set(name, docstore::Value(static_cast<double>(counter)));
    }
    row.Set("counters", docstore::Value(std::move(counters)));
    rows_.emplace_back(std::move(row));
  }
}

void JsonFileReporter::Finalize() {
  console_->Finalize();
  std::FILE* out = std::fopen(path_.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "JsonFileReporter: cannot write %s\n", path_.c_str());
    return;
  }
  docstore::Document report;
  report.Set("suite", docstore::Value(suite_));
  report.Set("benchmarks", docstore::Value(std::move(rows_)));
  const std::string text = json::Serialize(report);
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("wrote %s\n", path_.c_str());
}

int RunBenchmarksWithJson(const std::string& suite, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonFileReporter json(suite);
  benchmark::RunSpecifiedBenchmarks(&json);
  benchmark::Shutdown();
  return 0;
}

}  // namespace agoraeo::bench
