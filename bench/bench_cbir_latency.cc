/// Experiment E1 — "real-time nearest neighbor search" (paper §1, §2.2).
///
/// Measures CBIR query latency as a function of archive size for the
/// paper's hash-table lookup versus multi-index hashing, an exhaustive
/// Hamming scan, and an exhaustive float-feature scan (what retrieval
/// would cost without hashing).  Expected shape: hash lookup latency is
/// roughly flat in archive size for a fixed radius, while both scans
/// grow linearly; the float scan is slowest by a wide margin.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "index/hamming_table.h"
#include "index/bk_tree.h"
#include "index/ivf_index.h"
#include "index/linear_scan.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kBits = 128;
constexpr uint32_t kRadius = 8;

/// Builds (cached) an index of the requested kind over clustered codes.
index::HammingIndex* GetIndex(const std::string& kind, size_t n) {
  static std::map<std::pair<std::string, size_t>,
                  std::unique_ptr<index::HammingIndex>>
      cache;
  auto key = std::make_pair(kind, n);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();

  const ArchiveFixture& fixture = GetArchive(n);
  const auto codes = ClusteredCodes(fixture, kBits);
  std::unique_ptr<index::HammingIndex> idx;
  if (kind == "hash_table") {
    idx = std::make_unique<index::HammingHashTable>();
  } else if (kind == "mih") {
    idx = std::make_unique<index::MultiIndexHashing>(4);
  } else if (kind == "bk_tree") {
    idx = std::make_unique<index::BkTree>();
  } else {
    idx = std::make_unique<index::LinearScanIndex>();
  }
  for (size_t i = 0; i < codes.size(); ++i) {
    auto status = idx->Add(i, codes[i]);
    if (!status.ok()) std::abort();
  }
  auto [inserted, _] = cache.emplace(key, std::move(idx));
  return inserted->second.get();
}

void RunRadiusQueries(benchmark::State& state, const std::string& kind) {
  const size_t n = static_cast<size_t>(state.range(0));
  index::HammingIndex* idx = GetIndex(kind, n);
  const ArchiveFixture& fixture = GetArchive(n);
  const auto codes = ClusteredCodes(fixture, kBits);

  size_t q = 0;
  size_t results = 0, candidates = 0, queries = 0;
  for (auto _ : state) {
    index::SearchStats stats;
    auto hits = idx->RadiusSearch(codes[(q * 37) % codes.size()], kRadius,
                                  &stats);
    benchmark::DoNotOptimize(hits);
    results += hits.size();
    candidates += stats.candidates;
    ++queries;
    ++q;
  }
  state.counters["archive_size"] = static_cast<double>(n);
  state.counters["avg_results"] =
      queries ? static_cast<double>(results) / queries : 0;
  state.counters["avg_candidates"] =
      queries ? static_cast<double>(candidates) / queries : 0;
}

void BM_HashTableLookup(benchmark::State& state) {
  RunRadiusQueries(state, "hash_table");
}

void BM_BkTreeLookup(benchmark::State& state) {
  RunRadiusQueries(state, "bk_tree");
}
void BM_MultiIndexHashing(benchmark::State& state) {
  RunRadiusQueries(state, "mih");
}
void BM_HammingLinearScan(benchmark::State& state) {
  RunRadiusQueries(state, "linear");
}

/// Float-feature exhaustive scan baseline (no hashing at all).
void BM_FloatFeatureScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ArchiveFixture& fixture = GetArchive(n);
  static std::map<size_t, std::unique_ptr<index::FloatLinearScan>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    auto scan = std::make_unique<index::FloatLinearScan>(
        bigearthnet::kFeatureDim);
    for (size_t i = 0; i < n; ++i) scan->Add(i, fixture.features.Row(i));
    it = cache.emplace(n, std::move(scan)).first;
  }
  size_t q = 0;
  for (auto _ : state) {
    auto hits = it->second->KnnSearch(fixture.features.Row((q * 37) % n), 20);
    benchmark::DoNotOptimize(hits);
    ++q;
  }
  state.counters["archive_size"] = static_cast<double>(n);
}

/// IVF-Flat (FAISS/Milvus-style inverted file, nprobe=8 of 64 cells):
/// the float-side middle ground between exhaustive scan and hashing.
void BM_IvfFlatSearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ArchiveFixture& fixture = GetArchive(n);
  static std::map<size_t, std::unique_ptr<index::IvfFlatIndex>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    index::IvfFlatIndex::Config config;
    config.nlist = 64;
    auto ivf = index::IvfFlatIndex::Train(fixture.features, config);
    if (!ivf.ok()) std::abort();
    auto owned = std::make_unique<index::IvfFlatIndex>(std::move(ivf).value());
    for (size_t i = 0; i < n; ++i) {
      if (!owned->Add(i, fixture.features.Row(i)).ok()) std::abort();
    }
    it = cache.emplace(n, std::move(owned)).first;
  }
  size_t q = 0, candidates = 0, queries = 0;
  for (auto _ : state) {
    const Tensor query = fixture.features.Row((q * 37) % n);
    auto hits = it->second->KnnSearch(query, 20, /*nprobe=*/8);
    benchmark::DoNotOptimize(hits);
    candidates += it->second->CandidatesForProbe(query, 8);
    ++queries;
    ++q;
  }
  state.counters["archive_size"] = static_cast<double>(n);
  state.counters["avg_candidates"] =
      queries ? static_cast<double>(candidates) / queries : 0;
}

BENCHMARK(BM_HashTableLookup)->Arg(10000)->Arg(50000)->Arg(200000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BkTreeLookup)->Arg(10000)->Arg(50000)->Arg(200000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MultiIndexHashing)->Arg(10000)->Arg(50000)->Arg(200000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HammingLinearScan)->Arg(10000)->Arg(50000)->Arg(200000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IvfFlatSearch)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FloatFeatureScan)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace agoraeo::bench

BENCHMARK_MAIN();
