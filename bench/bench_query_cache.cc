/// Query-cache throughput on a skewed request mix: a Zipfian(1.0)
/// stream over a pool of distinct CBIR-only and hybrid requests —
/// the interactive EarthQube pattern where users re-run the same hot
/// panel filters and archive-image queries — executed against three
/// configurations: caches disabled, caches enabled but always cold
/// (the epoch is bumped every iteration, so every lookup is a stale
/// miss: this bounds the cache's overhead), and caches warm (steady
/// state after the first pass over the pool).  The warm/disabled ratio
/// is the headline: the response cache replaces a Hamming search plus
/// metadata join with one sharded LRU probe and a response copy.
///
/// Also verifies, outside the timed region, that cached responses are
/// byte-equivalent to uncached ones (identical hits, plan, paging).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "common/random.h"
#include "earthqube/query_request.h"
#include "milan/milan_model.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kNumPatches = 10000;
constexpr size_t kRequestPool = 256;
constexpr double kZipfSkew = 1.0;

/// Samples ranks in [0, n) with p(r) ∝ 1/(r+1)^skew via inverse-CDF
/// binary search over the precomputed cumulative mass.
class ZipfianSampler {
 public:
  ZipfianSampler(size_t n, double skew, uint64_t seed)
      : rng_(seed, /*stream=*/23), cdf_(n) {
    double mass = 0.0;
    for (size_t r = 0; r < n; ++r) {
      mass += 1.0 / std::pow(static_cast<double>(r + 1), skew);
      cdf_[r] = mass;
    }
    for (double& c : cdf_) c /= mass;
  }

  size_t Next() {
    const double u = rng_.UniformDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

/// An EarthQube (cache on or off) plus the shared distinct-request
/// pool; cached per configuration.
struct CacheBenchContext {
  std::unique_ptr<earthqube::EarthQube> system;
  std::vector<earthqube::QueryRequest> pool;
};

std::vector<earthqube::QueryRequest> BuildRequestPool(
    const ArchiveFixture& fixture) {
  // Half CBIR-only (radius and k-NN alternating), half hybrid with a
  // recurring season filter — the shapes the response and allowlist
  // caches serve.
  std::vector<earthqube::QueryRequest> pool;
  pool.reserve(kRequestPool);
  for (size_t i = 0; i < kRequestPool; ++i) {
    const std::string& name =
        fixture.names[(i * 131) % fixture.names.size()];
    earthqube::QueryRequest request;
    request.projection = earthqube::Projection::kHitsOnly;
    request.page_size = 0;
    if (i % 2 == 0) {
      request.similarity =
          (i % 4 == 0)
              ? earthqube::SimilaritySpec::NameRadius(name, 8)
              : earthqube::SimilaritySpec::NameKnn(name, 10);
    } else {
      earthqube::EarthQubeQuery panel;
      panel.seasons = {static_cast<Season>(i % 4)};  // kSpring..kAutumn
      request.panel = panel;
      request.similarity = earthqube::SimilaritySpec::NameKnn(name, 10);
      // Every other hybrid pins pre-filter so the allowlist cache (the
      // planner-level layer) is part of the measured mix, not only the
      // response cache.
      if (i % 4 == 3) request.planner = earthqube::PlannerMode::kForcePreFilter;
    }
    pool.push_back(std::move(request));
  }
  return pool;
}

CacheBenchContext* GetContext(bool caches_enabled) {
  static std::map<bool, std::unique_ptr<CacheBenchContext>> cache;
  auto it = cache.find(caches_enabled);
  if (it != cache.end()) return it->second.get();

  const ArchiveFixture& fixture = GetArchive(kNumPatches);
  auto ctx = std::make_unique<CacheBenchContext>();

  earthqube::EarthQubeConfig config;
  config.cache.enable_response_cache = caches_enabled;
  config.cache.enable_allowlist_cache = caches_enabled;
  ctx->system = std::make_unique<earthqube::EarthQube>(config);
  if (!ctx->system->IngestArchive(fixture.archive).ok()) std::abort();

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 64;
  mconfig.hidden2 = 32;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  auto cbir = std::make_unique<earthqube::CbirService>(
      std::make_unique<milan::MilanModel>(mconfig), &fixture.extractor);
  if (!cbir->AddImages(fixture.names, fixture.features).ok()) std::abort();
  ctx->system->AttachCbir(std::move(cbir));

  ctx->pool = BuildRequestPool(fixture);
  return cache.emplace(caches_enabled, std::move(ctx)).first->second.get();
}

enum class Mode { kDisabled, kCold, kWarm };

void RunZipfianMix(benchmark::State& state, Mode mode) {
  CacheBenchContext* ctx = GetContext(mode != Mode::kDisabled);
  earthqube::EarthQube& system = *ctx->system;

  if (mode == Mode::kWarm) {
    // One pass over the pool fills both caches.
    for (const auto& request : ctx->pool) {
      if (!system.Execute(request).ok()) std::abort();
    }
  }

  ZipfianSampler zipf(ctx->pool.size(), kZipfSkew, /*seed=*/99);
  const auto before = system.query_cache().ResponseStats();
  size_t hits = 0;
  for (auto _ : state) {
    if (mode == Mode::kCold) system.query_cache().Invalidate();
    const auto response = system.Execute(ctx->pool[zipf.Next()]);
    if (!response.ok()) std::abort();
    hits += response->hits.size();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  // Hit rate over this run only (the enabled-cache system is shared
  // between the cold and warm benchmarks).
  const auto after = system.query_cache().ResponseStats();
  const uint64_t lookups =
      (after.hits + after.misses) - (before.hits + before.misses);
  state.counters["cache_hit_rate"] =
      lookups == 0 ? 0.0
                   : static_cast<double>(after.hits - before.hits) /
                         static_cast<double>(lookups);
  state.counters["cache_entries"] = static_cast<double>(after.entries);
}

void BM_ZipfianCacheDisabled(benchmark::State& state) {
  RunZipfianMix(state, Mode::kDisabled);
}
void BM_ZipfianCacheCold(benchmark::State& state) {
  RunZipfianMix(state, Mode::kCold);
}
void BM_ZipfianCacheWarm(benchmark::State& state) {
  RunZipfianMix(state, Mode::kWarm);
}

BENCHMARK(BM_ZipfianCacheDisabled)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ZipfianCacheCold)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ZipfianCacheWarm)->Unit(benchmark::kMicrosecond);

/// Equivalence audit (not timed): every pool request must produce the
/// same caller-visible response cached and uncached.
void VerifyCachedEqualsUncached() {
  CacheBenchContext* cached = GetContext(true);
  CacheBenchContext* uncached = GetContext(false);
  for (size_t i = 0; i < cached->pool.size(); ++i) {
    const auto warm1 = cached->system->Execute(cached->pool[i]);
    const auto warm2 = cached->system->Execute(cached->pool[i]);
    const auto raw = uncached->system->Execute(uncached->pool[i]);
    if (!warm1.ok() || !warm2.ok() || !raw.ok()) std::abort();
    const auto same = [](const earthqube::QueryResponse& a,
                         const earthqube::QueryResponse& b) {
      if (a.hits.size() != b.hits.size() || a.cursor != b.cursor ||
          a.plan.description != b.plan.description) {
        return false;
      }
      for (size_t j = 0; j < a.hits.size(); ++j) {
        if (a.hits[j].patch_name != b.hits[j].patch_name ||
            a.hits[j].hamming_distance != b.hits[j].hamming_distance) {
          return false;
        }
      }
      return true;
    };
    if (!same(*warm2, *raw) || !same(*warm1, *warm2)) {
      std::fprintf(stderr,
                   "cached/uncached response mismatch for pool request %zu\n",
                   i);
      std::abort();
    }
  }
  std::printf("equivalence audit: %zu pool requests byte-equivalent "
              "cached vs uncached\n",
              cached->pool.size());
}

}  // namespace
}  // namespace agoraeo::bench

int main(int argc, char** argv) {
  const int rc =
      agoraeo::bench::RunBenchmarksWithJson("query_cache", argc, argv);
  if (rc == 0) agoraeo::bench::VerifyCachedEqualsUncached();
  return rc;
}
