/// Experiment E5 — label filtering operators (paper §3.1, Figure 2-2).
///
/// Measures the latency of the Some / Exactly / AtLeast&More operators
/// with the production indexes (multikey labels array + hash on the
/// sorted labels_key) versus a collection scan, at low and high
/// selectivity.  Expected shape: indexed queries beat the scan by
/// orders of magnitude at high selectivity; Exactly is the cheapest
/// indexed operator (single hash probe).
#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace agoraeo::bench {
namespace {

using bigearthnet::LabelIdFromName;
using bigearthnet::LabelSet;
using earthqube::EarthQubeQuery;
using earthqube::LabelFilter;

constexpr size_t kArchive = 50000;

LabelSet RareLabels() {
  // Industrial + water bodies: the industrial_waterfront theme only.
  return LabelSet({*LabelIdFromName("Industrial or commercial units"),
                   *LabelIdFromName("Water bodies")});
}

LabelSet CommonLabels() {
  // Pastures: core label of a frequent theme.
  return LabelSet({*LabelIdFromName("Pastures")});
}

void RunLabelQuery(benchmark::State& state, earthqube::LabelOperator op,
                   const LabelSet& labels, bool indexed) {
  const ArchiveFixture& fixture = GetArchive(kArchive);
  earthqube::EarthQube* system = GetEarthQube(
      fixture, indexed, earthqube::LabelEncoding::kAsciiCompressed);

  EarthQubeQuery query;
  query.label_filter = {true, op, labels};
  size_t matches = 0, iters = 0;
  std::string plan;
  for (auto _ : state) {
    auto response = system->Search(query);
    if (!response.ok()) std::abort();
    benchmark::DoNotOptimize(response);
    matches += response->panel.total();
    plan = response->query_stats.plan;
    ++iters;
  }
  state.counters["matches"] =
      iters ? static_cast<double>(matches) / iters : 0;
  state.SetLabel(plan);
}

void BM_Some_Rare_Indexed(benchmark::State& state) {
  RunLabelQuery(state, earthqube::LabelOperator::kSome, RareLabels(), true);
}
void BM_Some_Rare_Scan(benchmark::State& state) {
  RunLabelQuery(state, earthqube::LabelOperator::kSome, RareLabels(), false);
}
void BM_Some_Common_Indexed(benchmark::State& state) {
  RunLabelQuery(state, earthqube::LabelOperator::kSome, CommonLabels(), true);
}
void BM_Exactly_Indexed(benchmark::State& state) {
  RunLabelQuery(state, earthqube::LabelOperator::kExactly, RareLabels(), true);
}
void BM_Exactly_Scan(benchmark::State& state) {
  RunLabelQuery(state, earthqube::LabelOperator::kExactly, RareLabels(),
                false);
}
void BM_AtLeast_Indexed(benchmark::State& state) {
  RunLabelQuery(state, earthqube::LabelOperator::kAtLeastAndMore,
                RareLabels(), true);
}
void BM_AtLeast_Scan(benchmark::State& state) {
  RunLabelQuery(state, earthqube::LabelOperator::kAtLeastAndMore,
                RareLabels(), false);
}

BENCHMARK(BM_Some_Rare_Indexed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Some_Rare_Scan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Some_Common_Indexed)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Exactly_Indexed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Exactly_Scan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AtLeast_Indexed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AtLeast_Scan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace agoraeo::bench

BENCHMARK_MAIN();
