/// Persistence benchmarks: restart time — cold re-ingest (model
/// inference + index build from raw features) vs snapshot+WAL restore
/// (decode codes from disk, no inference) at 10k and 100k codes — and
/// the read-throughput cost of a segmented index vs a monolithic one.
/// The restore rows are the paper-facing claim: a warm restart should
/// be an order of magnitude faster than re-hashing the archive.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bigearthnet/feature_extractor.h"
#include "common/random.h"
#include "earthqube/cbir_service.h"
#include "index/hamming_table.h"
#include "index/segmented_index.h"
#include "milan/milan_model.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kBits = 64;
constexpr size_t kShards = 4;
constexpr size_t kSealThreshold = 4096;
const char* kBenchRoot = "/tmp/agoraeo_bench_persistence";

/// Paper-scale hashing network (Section 3.2: 128 -> 1024 -> 512 -> K).
/// The restart comparison is only honest at this size: the cold path
/// pays full inference per archive image, the restore path pays none.
milan::MilanConfig PaperModel() {
  milan::MilanConfig config;
  config.feature_dim = bigearthnet::kFeatureDim;
  config.hash_bits = kBits;
  config.dropout = 0.0f;
  return config;
}

const bigearthnet::FeatureExtractor& Extractor() {
  static bigearthnet::FeatureExtractor extractor;
  return extractor;
}

std::unique_ptr<earthqube::CbirService> MakeService(
    const std::string& snapshot_dir) {
  earthqube::CbirConfig config;
  config.index_kind = earthqube::CbirIndexKind::kHashTable;
  config.query_threads = 4;
  config.num_shards = kShards;
  config.snapshot_dir = snapshot_dir;
  config.seal_threshold = kSealThreshold;
  return std::make_unique<earthqube::CbirService>(
      std::make_unique<milan::MilanModel>(PaperModel()), &Extractor(), config);
}

/// Random features + names for n items, cached per size.
struct IngestData {
  std::vector<std::string> names;
  Tensor features;
};

const IngestData& GetIngestData(size_t n) {
  static std::map<size_t, std::unique_ptr<IngestData>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return *it->second;
  auto data = std::make_unique<IngestData>();
  data->features = Tensor({n, bigearthnet::kFeatureDim});
  Rng rng(0xBE7C + n);
  float* raw = data->features.data();
  for (size_t i = 0; i < n * bigearthnet::kFeatureDim; ++i) {
    raw[i] = static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
  }
  data->names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data->names.push_back("patch_" + std::to_string(i));
  }
  return *(cache[n] = std::move(data));
}

/// Prepares (once per size) a durable state dir holding n codes: ~90%
/// checkpointed into shard snapshots, the last 10% only in the WAL, so
/// the restore row exercises both halves of the boot path.
const std::string& GetDurableDir(size_t n) {
  static std::map<size_t, std::string> prepared;
  auto it = prepared.find(n);
  if (it != prepared.end()) return it->second;
  const std::string dir = std::string(kBenchRoot) + "/state_" +
                          std::to_string(n);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const IngestData& data = GetIngestData(n);
  auto service = MakeService(dir);
  if (!service->Recover().ok()) std::abort();
  const size_t checkpointed = n - n / 10;
  {
    std::vector<std::string> head(data.names.begin(),
                                  data.names.begin() + checkpointed);
    Tensor head_features({checkpointed, bigearthnet::kFeatureDim});
    std::copy_n(data.features.data(),
                checkpointed * bigearthnet::kFeatureDim,
                head_features.data());
    if (!service->AddImages(head, head_features).ok()) std::abort();
    if (!service->Snapshot().ok()) std::abort();
  }
  {
    const size_t tail = n - checkpointed;
    std::vector<std::string> names(data.names.begin() + checkpointed,
                                   data.names.end());
    Tensor tail_features({tail, bigearthnet::kFeatureDim});
    std::copy_n(data.features.data() + checkpointed * bigearthnet::kFeatureDim,
                tail * bigearthnet::kFeatureDim, tail_features.data());
    if (!service->AddImages(names, tail_features).ok()) std::abort();
  }
  return prepared[n] = dir;
}

// ---------------------------------------------------------------------------
// Restart time: cold re-ingest vs snapshot+WAL restore
// ---------------------------------------------------------------------------

/// The restart path WITHOUT persistence: every feature goes back
/// through the hashing model before it can be indexed.
void BM_Restart_ColdReingest(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const IngestData& data = GetIngestData(n);
  for (auto _ : state) {
    auto service = MakeService("");
    if (!service->AddImages(data.names, data.features).ok()) std::abort();
    benchmark::DoNotOptimize(service->num_indexed());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
  state.counters["codes"] = static_cast<double>(n);
}

/// The restart path WITH persistence: shard snapshots bulk-load, the
/// WAL tail replays — no model inference anywhere.
void BM_Restart_SnapshotWalRestore(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::string& dir = GetDurableDir(n);
  for (auto _ : state) {
    auto service = MakeService(dir);
    if (!service->Recover().ok()) std::abort();
    if (service->num_indexed() != n) std::abort();
    benchmark::DoNotOptimize(service->persistence_stats().restored_items);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
  state.counters["codes"] = static_cast<double>(n);
}

// ---------------------------------------------------------------------------
// Read throughput: sealed segments vs a monolithic index
// ---------------------------------------------------------------------------

struct ReadContext {
  std::unique_ptr<index::HammingIndex> index;  ///< monolithic or segmented
  std::vector<BinaryCode> queries;
};

BinaryCode RandomCode(size_t bits, Rng* rng) {
  BinaryCode code(bits);
  for (size_t i = 0; i < bits; ++i) code.SetBit(i, rng->Bernoulli(0.5));
  return code;
}

/// seal_threshold == 0 -> one flat HammingHashTable; otherwise a
/// segmented wrapper sealing every `seal_threshold` items.
ReadContext* GetReadContext(size_t n, size_t seal_threshold) {
  static std::map<std::pair<size_t, size_t>, std::unique_ptr<ReadContext>>
      cache;
  auto key = std::make_pair(n, seal_threshold);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();
  auto context = std::make_unique<ReadContext>();
  if (seal_threshold == 0) {
    context->index = std::make_unique<index::HammingHashTable>();
  } else {
    context->index = std::make_unique<index::SegmentedHammingIndex>(
        [] {
          return std::unique_ptr<index::HammingIndex>(
              std::make_unique<index::HammingHashTable>());
        },
        seal_threshold);
  }
  Rng rng(0x5EA1 + seal_threshold);
  for (size_t id = 0; id < n; ++id) {
    if (!context->index->Add(id, RandomCode(kBits, &rng)).ok()) std::abort();
  }
  for (size_t q = 0; q < 256; ++q) {
    context->queries.push_back(RandomCode(kBits, &rng));
  }
  return (cache[key] = std::move(context)).get();
}

void BM_Read_MonolithicVsSealed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t seal_threshold = static_cast<size_t>(state.range(1));
  ReadContext* context = GetReadContext(n, seal_threshold);
  size_t cursor = 0, hits = 0;
  for (auto _ : state) {
    const BinaryCode& q = context->queries[cursor++ % context->queries.size()];
    hits += context->index->KnnSearch(q, 10).size();
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["codes"] = static_cast<double>(n);
  state.counters["segments"] =
      seal_threshold == 0
          ? 1.0
          : static_cast<double>((n + seal_threshold - 1) / seal_threshold);
}

BENCHMARK(BM_Restart_ColdReingest)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Restart_SnapshotWalRestore)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Read_MonolithicVsSealed)
    ->Args({100000, 0})      // monolithic baseline
    ->Args({100000, 25000})  // 4 segments
    ->Args({100000, 6250})   // 16 segments
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace agoraeo::bench

int main(int argc, char** argv) {
  return agoraeo::bench::RunBenchmarksWithJson("persistence", argc, argv);
}
