/// Staged-execution-engine throughput under closed-loop concurrency:
/// N client threads (8/32/128) each drive a Zipfian(1.0) stream over a
/// pool of distinct CBIR and pre-filter-hybrid requests against one
/// EarthQube, with the response cache DISABLED so every request is a
/// miss — the configuration where the engine itself (not the cache)
/// has to win.  Three engine configurations are compared:
///
///   engine off          — the synchronous per-caller path
///   coalesce only       — singleflight on identical in-flight misses
///   coalesce + batch    — plus micro-batched index passes for
///                         distinct compatible misses
///
/// The headline is coalesce+batch vs engine-off at 32 clients (the
/// acceptance bar is >= 1.5x on this cold-cache mix).  An untimed
/// audit verifies engine responses are byte-identical to the
/// synchronous path across the whole pool.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/random.h"
#include "earthqube/exec/execution_engine.h"
#include "earthqube/query_request.h"
#include "milan/milan_model.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kNumPatches = 10000;
constexpr size_t kRequestPool = 128;
constexpr double kZipfSkew = 1.0;
constexpr size_t kOpsPerClient = 8;

/// Same inverse-CDF Zipfian sampler as bench_query_cache.
class ZipfianSampler {
 public:
  ZipfianSampler(size_t n, double skew, uint64_t seed)
      : rng_(seed, /*stream=*/31), cdf_(n) {
    double mass = 0.0;
    for (size_t r = 0; r < n; ++r) {
      mass += 1.0 / std::pow(static_cast<double>(r + 1), skew);
      cdf_[r] = mass;
    }
    for (double& c : cdf_) c /= mass;
  }

  size_t Next() {
    const double u = rng_.UniformDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

enum class Mode { kEngineOff, kCoalesceOnly, kCoalescePlusBatch };

struct EngineBenchContext {
  std::unique_ptr<earthqube::EarthQube> system;
  std::vector<earthqube::QueryRequest> pool;
};

std::vector<earthqube::QueryRequest> BuildRequestPool(
    const ArchiveFixture& fixture) {
  // Half radius CBIR (one shared batch class), a quarter k-NN CBIR, a
  // quarter pre-filter hybrids over a recurring season filter — the
  // interactive shapes the coalescer and micro-batcher serve.
  std::vector<earthqube::QueryRequest> pool;
  pool.reserve(kRequestPool);
  for (size_t i = 0; i < kRequestPool; ++i) {
    const std::string& name = fixture.names[(i * 173) % fixture.names.size()];
    earthqube::QueryRequest request;
    request.projection = earthqube::Projection::kHitsOnly;
    request.page_size = 0;
    if (i % 4 <= 1) {
      // An interactive-style result cap: the search still pays the full
      // index pass, but waiters materialise a small response.
      request.similarity =
          earthqube::SimilaritySpec::NameRadius(name, 8, /*limit=*/50);
    } else if (i % 4 == 2) {
      request.similarity = earthqube::SimilaritySpec::NameKnn(name, 10);
    } else {
      earthqube::EarthQubeQuery panel;
      panel.seasons = {static_cast<Season>(i % 4)};
      request.panel = panel;
      request.similarity = earthqube::SimilaritySpec::NameKnn(name, 10);
      request.planner = earthqube::PlannerMode::kForcePreFilter;
    }
    pool.push_back(std::move(request));
  }
  return pool;
}

EngineBenchContext* GetContext(Mode mode) {
  static std::map<Mode, std::unique_ptr<EngineBenchContext>> cache;
  auto it = cache.find(mode);
  if (it != cache.end()) return it->second.get();

  const ArchiveFixture& fixture = GetArchive(kNumPatches);
  auto ctx = std::make_unique<EngineBenchContext>();

  earthqube::EarthQubeConfig config;
  // Cold-cache configuration: the response cache would otherwise
  // absorb the Zipfian head and measure the cache, not the engine.
  config.cache.enable_response_cache = false;
  config.cache.enable_negative_cache = false;
  config.exec.enable = mode != Mode::kEngineOff;
  config.exec.coalesce = true;
  config.exec.micro_batch = mode == Mode::kCoalescePlusBatch;
  ctx->system = std::make_unique<earthqube::EarthQube>(config);
  if (!ctx->system->IngestArchive(fixture.archive).ok()) std::abort();

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 64;
  mconfig.hidden2 = 32;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  auto cbir = std::make_unique<earthqube::CbirService>(
      std::make_unique<milan::MilanModel>(mconfig), &fixture.extractor);
  if (!cbir->AddImages(fixture.names, fixture.features).ok()) std::abort();
  ctx->system->AttachCbir(std::move(cbir));

  ctx->pool = BuildRequestPool(fixture);
  return cache.emplace(mode, std::move(ctx)).first->second.get();
}

void RunClosedLoop(benchmark::State& state, Mode mode) {
  EngineBenchContext* ctx = GetContext(mode);
  earthqube::EarthQube& system = *ctx->system;
  const size_t clients = static_cast<size_t>(state.range(0));

  const earthqube::ExecStats before =
      system.exec_engine() != nullptr ? system.exec_engine()->Stats()
                                      : earthqube::ExecStats{};
  uint64_t round = 0;
  for (auto _ : state) {
    ++round;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ZipfianSampler zipf(ctx->pool.size(), kZipfSkew,
                            /*seed=*/round * 1000 + c);
        for (size_t op = 0; op < kOpsPerClient; ++op) {
          const auto response = system.Execute(ctx->pool[zipf.Next()]);
          if (!response.ok()) std::abort();
          benchmark::DoNotOptimize(response->hits.size());
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * clients * kOpsPerClient));
  if (system.exec_engine() != nullptr) {
    const earthqube::ExecStats after = system.exec_engine()->Stats();
    state.counters["coalesced"] =
        static_cast<double>(after.coalesced - before.coalesced);
    state.counters["batches"] =
        static_cast<double>(after.batches - before.batches);
    state.counters["batched_flights"] =
        static_cast<double>(after.batched_flights - before.batched_flights);
    state.counters["flights"] =
        static_cast<double>(after.flights - before.flights);
  }
}

void BM_ClosedLoopEngineOff(benchmark::State& state) {
  RunClosedLoop(state, Mode::kEngineOff);
}
void BM_ClosedLoopCoalesceOnly(benchmark::State& state) {
  RunClosedLoop(state, Mode::kCoalesceOnly);
}
void BM_ClosedLoopCoalescePlusBatch(benchmark::State& state) {
  RunClosedLoop(state, Mode::kCoalescePlusBatch);
}

BENCHMARK(BM_ClosedLoopEngineOff)
    ->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ClosedLoopCoalesceOnly)
    ->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ClosedLoopCoalescePlusBatch)
    ->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Parity audit (not timed): every pool request must produce the same
/// caller-visible response through the engine (both configurations)
/// and through the synchronous path.
void VerifyEngineMatchesSync() {
  EngineBenchContext* off = GetContext(Mode::kEngineOff);
  EngineBenchContext* batch = GetContext(Mode::kCoalescePlusBatch);
  for (size_t i = 0; i < off->pool.size(); ++i) {
    const auto sync_response = off->system->Execute(off->pool[i]);
    const auto engine_response = batch->system->Execute(batch->pool[i]);
    if (!sync_response.ok() || !engine_response.ok()) std::abort();
    const auto& a = *sync_response;
    const auto& b = *engine_response;
    bool same = a.hits.size() == b.hits.size() && a.cursor == b.cursor &&
                a.plan.description == b.plan.description &&
                a.query_stats.plan == b.query_stats.plan;
    for (size_t j = 0; same && j < a.hits.size(); ++j) {
      same = a.hits[j].patch_name == b.hits[j].patch_name &&
             a.hits[j].hamming_distance == b.hits[j].hamming_distance;
    }
    if (!same) {
      std::fprintf(stderr,
                   "engine/sync response mismatch for pool request %zu\n", i);
      std::abort();
    }
  }
  std::printf("parity audit: %zu pool requests byte-identical through the "
              "engine vs the synchronous path\n",
              off->pool.size());
}

}  // namespace
}  // namespace agoraeo::bench

int main(int argc, char** argv) {
  const int rc =
      agoraeo::bench::RunBenchmarksWithJson("exec_engine", argc, argv);
  if (rc == 0) agoraeo::bench::VerifyEngineMatchesSync();
  return rc;
}
