/// Experiment E14 — acquisition-date range queries over the metadata
/// collection (paper §3.1: the query panel filters by "the acquisition
/// date range"; §3.2: MongoDB's secondary B-tree indexes serve such
/// range predicates).
///
/// Measures date-range search latency with the B+-tree range index
/// versus a collection scan, for one-week, one-month and six-month
/// windows of the archive's Jun 2017 - May 2018 span.  Expected shape:
/// the index wins by orders of magnitude for narrow windows and
/// converges toward the scan as the window approaches the full year.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "common/time_util.h"

namespace agoraeo::bench {
namespace {

using earthqube::EarthQubeQuery;

constexpr size_t kArchive = 50000;

void RunDateQuery(benchmark::State& state, const DateRange& range,
                  bool indexed) {
  const ArchiveFixture& fixture = GetArchive(kArchive);
  earthqube::EarthQube* system = GetEarthQube(
      fixture, indexed, earthqube::LabelEncoding::kAsciiCompressed);
  EarthQubeQuery query;
  query.date_range = range;
  size_t matches = 0, examined = 0, iters = 0;
  std::string plan;
  for (auto _ : state) {
    auto response = system->Search(query);
    if (!response.ok()) std::abort();
    benchmark::DoNotOptimize(response);
    matches += response->panel.total();
    examined += response->query_stats.docs_examined;
    plan = response->query_stats.plan;
    ++iters;
  }
  state.counters["matches"] = iters ? static_cast<double>(matches) / iters : 0;
  state.counters["docs_examined"] =
      iters ? static_cast<double>(examined) / iters : 0;
  state.SetLabel(plan);
}

DateRange Week() { return {CivilDate(2017, 8, 7), CivilDate(2017, 8, 13)}; }
DateRange Month() { return {CivilDate(2017, 8, 1), CivilDate(2017, 8, 31)}; }
DateRange HalfYear() {
  return {CivilDate(2017, 6, 1), CivilDate(2017, 11, 30)};
}

void BM_Week_Indexed(benchmark::State& state) {
  RunDateQuery(state, Week(), true);
}
void BM_Week_Scan(benchmark::State& state) {
  RunDateQuery(state, Week(), false);
}
void BM_Month_Indexed(benchmark::State& state) {
  RunDateQuery(state, Month(), true);
}
void BM_Month_Scan(benchmark::State& state) {
  RunDateQuery(state, Month(), false);
}
void BM_HalfYear_Indexed(benchmark::State& state) {
  RunDateQuery(state, HalfYear(), true);
}
void BM_HalfYear_Scan(benchmark::State& state) {
  RunDateQuery(state, HalfYear(), false);
}

BENCHMARK(BM_Week_Indexed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Week_Scan)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Month_Indexed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Month_Scan)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HalfYear_Indexed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HalfYear_Scan)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace agoraeo::bench

BENCHMARK_MAIN();
