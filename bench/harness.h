#ifndef AGORAEO_BENCH_HARNESS_H_
#define AGORAEO_BENCH_HARNESS_H_

/// Shared setup for the benchmark suite.  Each bench binary regenerates
/// one experiment row of DESIGN.md's experiment index; the helpers here
/// build archives, features, codes and EarthQube instances once per
/// process and cache them across benchmark repetitions.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "common/binary_code.h"
#include "common/random.h"
#include "earthqube/earthqube.h"
#include "milan/baselines.h"
#include "milan/trainer.h"
#include "tensor/tensor.h"

namespace agoraeo::bench {

/// A synthetic archive with features, cached by (size, seed).
struct ArchiveFixture {
  bigearthnet::ArchiveConfig config;
  std::unique_ptr<bigearthnet::ArchiveGenerator> generator;
  bigearthnet::Archive archive;
  bigearthnet::FeatureExtractor extractor;
  Tensor features;  ///< [n, kFeatureDim]
  std::vector<std::string> names;
  std::vector<bigearthnet::LabelSet> labels;
};

/// Builds (or returns the cached) fixture for `num_patches`.
const ArchiveFixture& GetArchive(size_t num_patches, uint64_t seed = 42);

/// Fast clustered binary codes approximating a trained hashing model's
/// output distribution: one center per scene, per-item bit flips.  Used
/// by pure data-structure benches (E1, E3) where code provenance does
/// not affect the measured quantity; quality benches (E2, E4) train the
/// real MiLaN model instead.
std::vector<BinaryCode> ClusteredCodes(const ArchiveFixture& fixture,
                                       size_t bits, double flip_rate = 0.08,
                                       uint64_t seed = 7);

/// Trains a (small) MiLaN model on the fixture and returns it; cached by
/// (fixture size, bits).
milan::MilanModel* GetTrainedMilan(const ArchiveFixture& fixture, size_t bits);

/// Builds an EarthQube instance with the fixture ingested; cached by
/// (size, indexes on/off, encoding).
earthqube::EarthQube* GetEarthQube(const ArchiveFixture& fixture,
                                   bool build_indexes,
                                   earthqube::LabelEncoding encoding);

/// Prints a section header for plain-table benches.
void PrintHeader(const std::string& experiment, const std::string& claim);

}  // namespace agoraeo::bench

#endif  // AGORAEO_BENCH_HARNESS_H_
