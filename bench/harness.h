#ifndef AGORAEO_BENCH_HARNESS_H_
#define AGORAEO_BENCH_HARNESS_H_

/// Shared setup for the benchmark suite.  Each bench binary regenerates
/// one experiment row of DESIGN.md's experiment index; the helpers here
/// build archives, features, codes and EarthQube instances once per
/// process and cache them across benchmark repetitions.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "common/binary_code.h"
#include "common/random.h"
#include "docstore/value.h"
#include "earthqube/earthqube.h"
#include "milan/baselines.h"
#include "milan/trainer.h"
#include "tensor/tensor.h"

namespace agoraeo::bench {

/// A synthetic archive with features, cached by (size, seed).
struct ArchiveFixture {
  bigearthnet::ArchiveConfig config;
  std::unique_ptr<bigearthnet::ArchiveGenerator> generator;
  bigearthnet::Archive archive;
  bigearthnet::FeatureExtractor extractor;
  Tensor features;  ///< [n, kFeatureDim]
  std::vector<std::string> names;
  std::vector<bigearthnet::LabelSet> labels;
};

/// Builds (or returns the cached) fixture for `num_patches`.
const ArchiveFixture& GetArchive(size_t num_patches, uint64_t seed = 42);

/// Fast clustered binary codes approximating a trained hashing model's
/// output distribution: one center per scene, per-item bit flips.  Used
/// by pure data-structure benches (E1, E3) where code provenance does
/// not affect the measured quantity; quality benches (E2, E4) train the
/// real MiLaN model instead.
std::vector<BinaryCode> ClusteredCodes(const ArchiveFixture& fixture,
                                       size_t bits, double flip_rate = 0.08,
                                       uint64_t seed = 7);

/// Trains a (small) MiLaN model on the fixture and returns it; cached by
/// (fixture size, bits).
milan::MilanModel* GetTrainedMilan(const ArchiveFixture& fixture, size_t bits);

/// Builds an EarthQube instance with the fixture ingested; cached by
/// (size, indexes on/off, encoding).
earthqube::EarthQube* GetEarthQube(const ArchiveFixture& fixture,
                                   bool build_indexes,
                                   earthqube::LabelEncoding encoding);

/// Prints a section header for plain-table benches.
void PrintHeader(const std::string& experiment, const std::string& claim);

/// Machine-readable benchmark reporting: collects every run and writes
/// BENCH_<suite>.json into the working directory on Finalize, so CI and
/// later PRs can track the perf trajectory without scraping console
/// tables.  One row per run: name, label, iterations, per-iteration
/// real/cpu time in ns, and all user counters (including the
/// items_per_second rate set via SetItemsProcessed).
///
/// Used as the display reporter (it tees to the normal console
/// reporter) because google-benchmark refuses custom file reporters
/// without --benchmark_out.
class JsonFileReporter : public benchmark::BenchmarkReporter {
 public:
  explicit JsonFileReporter(std::string suite);

  bool ReportContext(const Context& context) override;
  void ReportRuns(const std::vector<Run>& runs) override;
  void Finalize() override;

  /// Where the report lands ("BENCH_<suite>.json").
  const std::string& path() const { return path_; }

 private:
  std::string suite_;
  std::string path_;
  std::vector<docstore::Value> rows_;  ///< one JSON object per run
  std::unique_ptr<benchmark::BenchmarkReporter> console_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body that tees results
/// into BENCH_<suite>.json next to the normal console output:
///   int main(int argc, char** argv) {
///     return agoraeo::bench::RunBenchmarksWithJson("query_cache", argc, argv);
///   }
int RunBenchmarksWithJson(const std::string& suite, int argc, char** argv);

}  // namespace agoraeo::bench

#endif  // AGORAEO_BENCH_HARNESS_H_
