/// Experiment E15 — cost of the three-tier architecture (paper §3.2).
///
/// Measures the same query-panel searches (a) as direct in-process calls
/// against the EarthQube facade and (b) as JSON-over-HTTP round trips
/// through the back-end tier on loopback TCP, plus the health probe as
/// the floor of pure transport cost.  Expected shape: the HTTP tier adds
/// a roughly constant overhead (connection setup + JSON) that dominates
/// cheap indexed queries and becomes negligible for expensive ones —
/// which is why the paper's interactive demo can afford a REST tier.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/harness.h"
#include "netsvc/client.h"
#include "netsvc/earthqube_service.h"
#include "netsvc/server.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kArchive = 50000;

/// One server shared across benchmark repetitions.
struct Tier {
  netsvc::HttpServer server{4};
  std::unique_ptr<netsvc::EarthQubeService> service;
  uint16_t port = 0;
};

Tier* GetTier() {
  static Tier* tier = [] {
    const ArchiveFixture& fixture = GetArchive(kArchive);
    earthqube::EarthQube* system = GetEarthQube(
        fixture, true, earthqube::LabelEncoding::kAsciiCompressed);
    auto* t = new Tier();
    t->service = std::make_unique<netsvc::EarthQubeService>(system);
    t->service->RegisterRoutes(&t->server);
    if (!t->server.Start(0).ok()) std::abort();
    t->port = t->server.port();
    return t;
  }();
  return tier;
}

const char* kLabelQuery =
    R"({"labels":{"operator":"some","names":["Airports"]},"limit":50})";
const char* kDateQuery =
    R"({"date_range":{"begin":"2017-08-07","end":"2017-08-13"},"limit":50})";

earthqube::EarthQubeQuery InProcessLabelQuery() {
  earthqube::EarthQubeQuery q;
  q.label_filter = earthqube::LabelFilter::Some(
      bigearthnet::LabelSet({*bigearthnet::LabelIdFromName("Airports")}));
  q.limit = 50;
  return q;
}

earthqube::EarthQubeQuery InProcessDateQuery() {
  earthqube::EarthQubeQuery q;
  q.date_range = DateRange{CivilDate(2017, 8, 7), CivilDate(2017, 8, 13)};
  q.limit = 50;
  return q;
}

void BM_InProcess_LabelSearch(benchmark::State& state) {
  const ArchiveFixture& fixture = GetArchive(kArchive);
  earthqube::EarthQube* system = GetEarthQube(
      fixture, true, earthqube::LabelEncoding::kAsciiCompressed);
  const auto query = InProcessLabelQuery();
  for (auto _ : state) {
    auto response = system->Search(query);
    if (!response.ok()) std::abort();
    benchmark::DoNotOptimize(response);
  }
}

void BM_Http_LabelSearch(benchmark::State& state) {
  Tier* tier = GetTier();
  netsvc::HttpClient client;
  for (auto _ : state) {
    auto response = client.Post(tier->port, "/api/search", kLabelQuery);
    if (!response.ok() || response->status_code != 200) std::abort();
    benchmark::DoNotOptimize(response);
  }
}

void BM_InProcess_DateSearch(benchmark::State& state) {
  const ArchiveFixture& fixture = GetArchive(kArchive);
  earthqube::EarthQube* system = GetEarthQube(
      fixture, true, earthqube::LabelEncoding::kAsciiCompressed);
  const auto query = InProcessDateQuery();
  for (auto _ : state) {
    auto response = system->Search(query);
    if (!response.ok()) std::abort();
    benchmark::DoNotOptimize(response);
  }
}

void BM_Http_DateSearch(benchmark::State& state) {
  Tier* tier = GetTier();
  netsvc::HttpClient client;
  for (auto _ : state) {
    auto response = client.Post(tier->port, "/api/search", kDateQuery);
    if (!response.ok() || response->status_code != 200) std::abort();
    benchmark::DoNotOptimize(response);
  }
}

void BM_Http_HealthProbe(benchmark::State& state) {
  // Pure transport floor: TCP connect + trivial handler + JSON blip.
  Tier* tier = GetTier();
  netsvc::HttpClient client;
  for (auto _ : state) {
    auto response = client.Get(tier->port, "/health");
    if (!response.ok() || response->status_code != 200) std::abort();
    benchmark::DoNotOptimize(response);
  }
}

BENCHMARK(BM_Http_HealthProbe)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InProcess_LabelSearch)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Http_LabelSearch)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InProcess_DateSearch)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Http_DateSearch)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace agoraeo::bench

BENCHMARK_MAIN();
