/// Observability overhead on the warm query path: N closed-loop client
/// threads drive a Zipfian(1.0) stream over a pool of distinct requests
/// against one fully-warmed EarthQube (response cache ON, engine ON —
/// the production configuration where most requests are cache hits and
/// every instrumentation site fires), comparing
///
///   obs off   — ObsConfig{enable_metrics=false, enable_tracing=false}:
///               every record site is a null-pointer branch
///   obs on    — the default config: counters, stage histograms, the
///               HTTP-free internal path's gauges, slow-log threshold
///               checks
///
/// The headline is obs-on vs obs-off at 32 clients; the acceptance bar
/// is <= 3% throughput overhead.  An untimed audit asserts the
/// instrumented system actually counted the traffic (the bench must not
/// "win" by measuring dead instrumentation).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/random.h"
#include "earthqube/exec/execution_engine.h"
#include "earthqube/query_request.h"
#include "milan/milan_model.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kNumPatches = 10000;
constexpr size_t kRequestPool = 128;
constexpr double kZipfSkew = 1.0;
constexpr size_t kOpsPerClient = 32;

/// Same inverse-CDF Zipfian sampler as bench_exec_engine.
class ZipfianSampler {
 public:
  ZipfianSampler(size_t n, double skew, uint64_t seed)
      : rng_(seed, /*stream=*/31), cdf_(n) {
    double mass = 0.0;
    for (size_t r = 0; r < n; ++r) {
      mass += 1.0 / std::pow(static_cast<double>(r + 1), skew);
      cdf_[r] = mass;
    }
    for (double& c : cdf_) c /= mass;
  }

  size_t Next() {
    const double u = rng_.UniformDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

enum class Mode { kObsOff, kObsOn };

struct ObsBenchContext {
  std::unique_ptr<earthqube::EarthQube> system;
  std::vector<earthqube::QueryRequest> pool;
};

std::vector<earthqube::QueryRequest> BuildRequestPool(
    const ArchiveFixture& fixture) {
  // The interactive warm mix: mostly small CBIR reads plus some panel
  // scans — the requests a dashboard replays against a hot cache.
  std::vector<earthqube::QueryRequest> pool;
  pool.reserve(kRequestPool);
  for (size_t i = 0; i < kRequestPool; ++i) {
    const std::string& name = fixture.names[(i * 173) % fixture.names.size()];
    earthqube::QueryRequest request;
    request.projection = earthqube::Projection::kHitsOnly;
    request.page_size = 0;
    if (i % 4 <= 1) {
      request.similarity =
          earthqube::SimilaritySpec::NameRadius(name, 8, /*limit=*/50);
    } else if (i % 4 == 2) {
      request.similarity = earthqube::SimilaritySpec::NameKnn(name, 10);
    } else {
      earthqube::EarthQubeQuery panel;
      panel.seasons = {static_cast<Season>(i % 4)};
      request.panel = panel;
      request.similarity = earthqube::SimilaritySpec::NameKnn(name, 10);
      request.planner = earthqube::PlannerMode::kForcePreFilter;
    }
    pool.push_back(std::move(request));
  }
  return pool;
}

ObsBenchContext* GetContext(Mode mode) {
  static std::map<Mode, std::unique_ptr<ObsBenchContext>> cache;
  auto it = cache.find(mode);
  if (it != cache.end()) return it->second.get();

  const ArchiveFixture& fixture = GetArchive(kNumPatches);
  auto ctx = std::make_unique<ObsBenchContext>();

  earthqube::EarthQubeConfig config;
  if (mode == Mode::kObsOff) {
    config.obs.enable_metrics = false;
    config.obs.enable_tracing = false;
  }
  ctx->system = std::make_unique<earthqube::EarthQube>(config);
  if (!ctx->system->IngestArchive(fixture.archive).ok()) std::abort();

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 64;
  mconfig.hidden2 = 32;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  auto cbir = std::make_unique<earthqube::CbirService>(
      std::make_unique<milan::MilanModel>(mconfig), &fixture.extractor);
  if (!cbir->AddImages(fixture.names, fixture.features).ok()) std::abort();
  ctx->system->AttachCbir(std::move(cbir));

  ctx->pool = BuildRequestPool(fixture);
  // Warm every pool entry so the timed loop measures the cache-hit path
  // (plus the occasional Zipfian-tail miss), not cold index passes.
  for (const auto& request : ctx->pool) {
    if (!ctx->system->Execute(request).ok()) std::abort();
  }
  return cache.emplace(mode, std::move(ctx)).first->second.get();
}

void RunClosedLoop(benchmark::State& state, Mode mode) {
  ObsBenchContext* ctx = GetContext(mode);
  earthqube::EarthQube& system = *ctx->system;
  const size_t clients = static_cast<size_t>(state.range(0));

  uint64_t round = 0;
  for (auto _ : state) {
    ++round;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ZipfianSampler zipf(ctx->pool.size(), kZipfSkew,
                            /*seed=*/round * 1000 + c);
        for (size_t op = 0; op < kOpsPerClient; ++op) {
          const auto response = system.Execute(ctx->pool[zipf.Next()]);
          if (!response.ok()) std::abort();
          benchmark::DoNotOptimize(response->hits.size());
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * clients * kOpsPerClient));
}

void BM_WarmClosedLoopObsOff(benchmark::State& state) {
  RunClosedLoop(state, Mode::kObsOff);
}
void BM_WarmClosedLoopObsOn(benchmark::State& state) {
  RunClosedLoop(state, Mode::kObsOn);
}

BENCHMARK(BM_WarmClosedLoopObsOff)
    ->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_WarmClosedLoopObsOn)
    ->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Untimed audit: the obs-on system must have actually recorded the
/// bench traffic, and the obs-off system must expose an empty registry.
void VerifyInstrumentationCounted() {
  ObsBenchContext* on = GetContext(Mode::kObsOn);
  ObsBenchContext* off = GetContext(Mode::kObsOff);
  const std::string text = on->system->obs().registry().PrometheusText();
  if (text.find("agoraeo_engine_submitted_total") == std::string::npos &&
      text.find("agoraeo_cache_hits_total") == std::string::npos) {
    std::fprintf(stderr,
                 "obs-on registry is missing engine/cache counters:\n%s\n",
                 text.c_str());
    std::abort();
  }
  if (!off->system->obs().registry().PrometheusText().empty()) {
    std::fprintf(stderr, "obs-off registry should render empty\n");
    std::abort();
  }
  std::printf("instrumentation audit: obs-on registry populated, obs-off "
              "registry empty\n");
}

}  // namespace
}  // namespace agoraeo::bench

int main(int argc, char** argv) {
  const int rc =
      agoraeo::bench::RunBenchmarksWithJson("observability", argc, argv);
  if (rc == 0) agoraeo::bench::VerifyInstrumentationCounted();
  return rc;
}
