/// Experiment E4 — code length trade-off (the paper fixes 128 bits;
/// this ablation shows why that is a sensible operating point).
///
/// Sweeps K in {16, 32, 64, 128}: retrieval quality (P@10, mAP@10) of
/// trained MiLaN codes and the cost side (hash-table bucket count and
/// radius-lookup latency).  Expected shape: quality rises with K and
/// saturates; bucket count approaches one-item-per-bucket; mask-probe
/// counts grow with K at fixed radius.
#include <chrono>
#include <cstdio>

#include "bench/harness.h"
#include "index/hamming_table.h"
#include "milan/metrics.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kArchive = 4000;
constexpr size_t kNumQueries = 80;

}  // namespace
}  // namespace agoraeo::bench

int main() {
  using namespace agoraeo;
  using namespace agoraeo::bench;
  using Clock = std::chrono::steady_clock;

  PrintHeader("E4: Code length sweep",
              "128-bit codes balance retrieval quality against lookup "
              "cost; quality saturates with K");

  const ArchiveFixture& fixture = GetArchive(kArchive);
  std::printf("%6s %8s %8s %12s %14s %14s\n", "bits", "P@10", "mAP@10",
              "buckets", "radius4_us", "radius4_hits");

  for (size_t bits : {16, 32, 64, 128}) {
    milan::MilanModel* model = GetTrainedMilan(fixture, bits);
    const auto codes = model->HashBatch(fixture.features);

    auto relevant = [&](size_t q, size_t i) {
      return fixture.labels[q * 31 % fixture.labels.size()].ContainsAny(
          fixture.labels[i]);
    };
    auto rank = [&](size_t q) {
      const size_t query = q * 31 % codes.size();
      return milan::RankByHamming(codes[query], codes, query);
    };
    auto quality = milan::EvaluateRetrieval(kNumQueries, 10, rank, relevant);

    index::HammingHashTable table;
    for (size_t i = 0; i < codes.size(); ++i) {
      if (!table.Add(i, codes[i]).ok()) std::abort();
    }

    const uint32_t radius = 4;
    size_t hits = 0;
    const auto start = Clock::now();
    for (size_t q = 0; q < kNumQueries; ++q) {
      hits += table.RadiusSearch(codes[q * 31 % codes.size()], radius).size();
    }
    const double us =
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count() /
        kNumQueries;

    std::printf("%6zu %8.3f %8.3f %12zu %14.1f %14.1f\n", bits,
                quality.precision_at_k, quality.map_at_k, table.num_buckets(),
                us, static_cast<double>(hits) / kNumQueries);
  }
  std::printf("\nexpected shape: quality saturates with K; buckets -> N; "
              "probe cost grows with K at fixed radius\n");
  return 0;
}
