/// Experiments E10-E12 — the three demonstration scenarios of paper §4,
/// measured end-to-end against a fully built EarthQube instance
/// (archive ingested, MiLaN trained, CBIR index loaded).
///
///  E10 Label-based Exploration: industrial areas adjacent to inland
///      water bodies, with the label-statistics view.
///  E11 Spatial Exploration + Query-by-Existing-Example: SW-Portugal
///      rectangle, then CBIR from a result image.
///  E12 Query-by-New-Example: upload -> feature extraction -> on-the-fly
///      hashing -> radius retrieval.
///
/// Expected shape: every scenario completes in interactive time
/// (milliseconds for E10/E11 metadata+CBIR paths; E12 dominated by
/// pixel feature extraction, still well under a second).
#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace agoraeo::bench {
namespace {

using bigearthnet::LabelIdFromName;
using bigearthnet::LabelSet;
using earthqube::EarthQubeQuery;
using earthqube::GeoQuery;
using earthqube::LabelFilter;

constexpr size_t kArchive = 20000;
constexpr size_t kBits = 64;

earthqube::EarthQube* GetFullSystem() {
  static earthqube::EarthQube* system = nullptr;
  if (system == nullptr) {
    const ArchiveFixture& fixture = GetArchive(kArchive);
    system = GetEarthQube(fixture, true,
                          earthqube::LabelEncoding::kAsciiCompressed);
    milan::MilanModel* trained = GetTrainedMilan(fixture, kBits);
    // The CBIR service owns its model; reload the trained weights into a
    // fresh instance via serialization.
    const std::string tmp = "/tmp/agoraeo_bench_model.bin";
    if (!trained->Save(tmp).ok()) std::abort();
    auto loaded = milan::MilanModel::Load(tmp);
    if (!loaded.ok()) std::abort();
    auto cbir = std::make_unique<earthqube::CbirService>(
        std::move(loaded).value(), &fixture.extractor);
    if (!cbir->AddImages(fixture.names, fixture.features).ok()) std::abort();
    system->AttachCbir(std::move(cbir));
  }
  return system;
}

/// E10: label exploration with statistics.
void BM_Scenario_LabelExploration(benchmark::State& state) {
  earthqube::EarthQube* system = GetFullSystem();
  EarthQubeQuery query;
  query.label_filter = LabelFilter::AtLeastAndMore(
      LabelSet({*LabelIdFromName("Industrial or commercial units"),
                *LabelIdFromName("Water bodies")}));
  size_t matches = 0, labels_discovered = 0, iters = 0;
  for (auto _ : state) {
    auto response = system->Search(query);
    if (!response.ok()) std::abort();
    matches += response->panel.total();
    labels_discovered += response->statistics.bars().size();
    benchmark::DoNotOptimize(response);
    ++iters;
  }
  state.counters["matches"] = iters ? static_cast<double>(matches) / iters : 0;
  state.counters["labels_in_stats"] =
      iters ? static_cast<double>(labels_discovered) / iters : 0;
}

/// E11: geospatial query, then CBIR from the first result.
void BM_Scenario_SpatialCbir(benchmark::State& state) {
  earthqube::EarthQube* system = GetFullSystem();
  EarthQubeQuery geo_query;
  geo_query.geo = GeoQuery::Rect({{37.0, -9.5}, {38.5, -7.8}});
  size_t similar_found = 0, iters = 0;
  for (auto _ : state) {
    auto geo_response = system->Search(geo_query);
    if (!geo_response.ok() || geo_response->panel.total() == 0) std::abort();
    const std::string& name = geo_response->panel.entries()[0].name;
    auto cbir_response = system->NearestToArchiveImage(name, 20);
    if (!cbir_response.ok()) std::abort();
    similar_found += cbir_response->panel.total();
    benchmark::DoNotOptimize(cbir_response);
    ++iters;
  }
  state.counters["similar_found"] =
      iters ? static_cast<double>(similar_found) / iters : 0;
}

/// E12: upload a new image (pixels!) and retrieve by content.
void BM_Scenario_QueryByNewExample(benchmark::State& state) {
  earthqube::EarthQube* system = GetFullSystem();
  const ArchiveFixture& fixture = GetArchive(kArchive);
  // Pre-synthesise a handful of "uploads" outside the benchmark loop.
  bigearthnet::ArchiveConfig fresh_config;
  fresh_config.num_patches = 8;
  fresh_config.seed = 5000;
  bigearthnet::ArchiveGenerator fresh_gen(fresh_config);
  auto fresh = fresh_gen.Generate();
  if (!fresh.ok()) std::abort();
  std::vector<bigearthnet::Patch> uploads;
  for (const auto& meta : fresh->patches) {
    uploads.push_back(fresh_gen.SynthesizePatch(meta));
  }
  size_t found = 0, iters = 0, u = 0;
  for (auto _ : state) {
    auto response =
        system->SimilarToUploadedImage(uploads[u % uploads.size()], 14, 50);
    if (!response.ok()) std::abort();
    found += response->panel.total();
    benchmark::DoNotOptimize(response);
    ++iters;
    ++u;
  }
  state.counters["retrieved"] = iters ? static_cast<double>(found) / iters : 0;
  (void)fixture;
}

BENCHMARK(BM_Scenario_LabelExploration)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Scenario_SpatialCbir)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Scenario_QueryByNewExample)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace agoraeo::bench

BENCHMARK_MAIN();
