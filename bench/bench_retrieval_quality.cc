/// Experiment E2 — "highly accurate retrieval" (paper §2.2, via Roy et
/// al. [3]).
///
/// Reproduces the retrieval-quality table: precision@k and mAP@k of the
/// trained MiLaN codes versus data-independent LSH, median-threshold
/// projections, ITQ-lite, and the float-feature upper bound, all at the
/// same bit budget.  Relevance follows the BigEarthNet convention: a
/// retrieved image is relevant when it shares at least one CLC label
/// with the query.  Expected shape: float features >= MiLaN > ITQ >
/// median-threshold >= LSH.
#include <cstdio>

#include "bench/harness.h"
#include "index/hamming_table.h"
#include "index/product_quantizer.h"
#include "milan/baselines.h"
#include "milan/metrics.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kArchive = 4000;
constexpr size_t kBits = 64;
constexpr size_t kNumQueries = 100;

using milan::EvaluateRetrieval;
using milan::RankByHamming;
using milan::RankByL2;

struct MethodRow {
  std::string name;
  double p10, p20, map10, map20;
};

MethodRow EvaluateCodes(const std::string& name,
                        const std::vector<BinaryCode>& codes,
                        const ArchiveFixture& fixture) {
  auto relevant = [&](size_t q, size_t i) {
    return fixture.labels[q * 31 % fixture.labels.size()].ContainsAny(
        fixture.labels[i]);
  };
  auto rank = [&](size_t q) {
    const size_t query = q * 31 % codes.size();
    return RankByHamming(codes[query], codes, query);
  };
  auto q10 = EvaluateRetrieval(kNumQueries, 10, rank, relevant);
  auto q20 = EvaluateRetrieval(kNumQueries, 20, rank, relevant);
  return {name, q10.precision_at_k, q20.precision_at_k, q10.map_at_k,
          q20.map_at_k};
}

}  // namespace
}  // namespace agoraeo::bench

int main() {
  using namespace agoraeo;
  using namespace agoraeo::bench;

  PrintHeader("E2: Retrieval quality (paper Table analogue)",
              "MiLaN's learned codes retrieve more accurately than "
              "data-independent hashing at equal bit budget");

  const ArchiveFixture& fixture = GetArchive(kArchive);
  std::printf("archive: %zu patches, %zu-bit codes, %zu queries, "
              "relevance = shared CLC label\n\n",
              fixture.archive.patches.size(), kBits, kNumQueries);

  std::vector<MethodRow> rows;

  // MiLaN (trained).
  milan::MilanModel* model = GetTrainedMilan(fixture, kBits);
  rows.push_back(
      EvaluateCodes("MiLaN (ours)", model->HashBatch(fixture.features),
                    fixture));

  // ITQ-lite.
  milan::ItqHash itq(fixture.features, kBits, /*iterations=*/20, 301);
  rows.push_back(EvaluateCodes("ITQ-lite", itq.HashBatch(fixture.features),
                               fixture));

  // Median-threshold projection.
  milan::MedianThresholdHash median(fixture.features, kBits, 302);
  rows.push_back(EvaluateCodes("Median-threshold",
                               median.HashBatch(fixture.features), fixture));

  // Random-hyperplane LSH.
  milan::RandomHyperplaneLsh lsh(bigearthnet::kFeatureDim, kBits, 303);
  rows.push_back(
      EvaluateCodes("LSH (random hyperplane)",
                    lsh.HashBatch(fixture.features), fixture));

  // PQ (FAISS-style) at the same byte budget: 64 bits = 8 bytes = 8
  // subspaces x 256 centroids.
  {
    index::ProductQuantizer::Config pq_config;
    pq_config.num_subspaces = kBits / 8;
    pq_config.num_centroids = 256;
    pq_config.seed = 304;
    auto pq = index::ProductQuantizer::Train(fixture.features, pq_config);
    if (!pq.ok()) std::abort();
    index::PqIndex pq_index(std::move(pq).value());
    for (size_t i = 0; i < fixture.archive.patches.size(); ++i) {
      if (!pq_index.Add(i, fixture.features.Row(i)).ok()) std::abort();
    }
    auto relevant = [&](size_t q, size_t i) {
      return fixture.labels[q * 31 % fixture.labels.size()].ContainsAny(
          fixture.labels[i]);
    };
    auto rank = [&](size_t q) {
      const size_t query = q * 31 % fixture.labels.size();
      const auto hits =
          pq_index.KnnSearch(fixture.features.Row(query), 21);
      std::vector<size_t> order;
      for (const auto& h : hits) {
        if (h.id != query) order.push_back(h.id);
      }
      return order;
    };
    auto q10 = EvaluateRetrieval(kNumQueries, 10, rank, relevant);
    auto q20 = EvaluateRetrieval(kNumQueries, 20, rank, relevant);
    rows.push_back({"PQ (8 bytes, ADC)", q10.precision_at_k,
                    q20.precision_at_k, q10.map_at_k, q20.map_at_k});
  }

  // Two-stage: MiLaN Hamming shortlist (200) -> exact float re-ranking.
  {
    const auto codes = model->HashBatch(fixture.features);
    index::HammingHashTable table;
    index::TwoStageRetriever two_stage(&table,
                                       bigearthnet::kFeatureDim);
    for (size_t i = 0; i < codes.size(); ++i) {
      if (!table.Add(i, codes[i]).ok()) std::abort();
      two_stage.AddFeature(i, fixture.features.Row(i));
    }
    auto relevant = [&](size_t q, size_t i) {
      return fixture.labels[q * 31 % fixture.labels.size()].ContainsAny(
          fixture.labels[i]);
    };
    auto rank = [&](size_t q) {
      const size_t query = q * 31 % codes.size();
      const auto hits = two_stage.Search(codes[query],
                                         fixture.features.Row(query), 21,
                                         /*shortlist=*/200);
      std::vector<size_t> order;
      for (const auto& h : hits) {
        if (h.id != query) order.push_back(h.id);
      }
      return order;
    };
    auto q10 = EvaluateRetrieval(kNumQueries, 10, rank, relevant);
    auto q20 = EvaluateRetrieval(kNumQueries, 20, rank, relevant);
    rows.push_back({"MiLaN + float re-rank", q10.precision_at_k,
                    q20.precision_at_k, q10.map_at_k, q20.map_at_k});
  }

  // Float-feature exact ranking: the upper bound.
  {
    auto relevant = [&](size_t q, size_t i) {
      return fixture.labels[q * 31 % fixture.labels.size()].ContainsAny(
          fixture.labels[i]);
    };
    auto rank = [&](size_t q) {
      const size_t query = q * 31 % fixture.labels.size();
      return RankByL2(fixture.features.Row(query), fixture.features, query);
    };
    auto q10 = EvaluateRetrieval(kNumQueries, 10, rank, relevant);
    auto q20 = EvaluateRetrieval(kNumQueries, 20, rank, relevant);
    rows.push_back({"Float features (exact L2)", q10.precision_at_k,
                    q20.precision_at_k, q10.map_at_k, q20.map_at_k});
  }

  std::printf("%-30s %8s %8s %8s %8s\n", "method", "P@10", "P@20", "mAP@10",
              "mAP@20");
  for (const auto& row : rows) {
    std::printf("%-30s %8.3f %8.3f %8.3f %8.3f\n", row.name.c_str(), row.p10,
                row.p20, row.map10, row.map20);
  }
  std::printf("\nexpected shape: MiLaN >= ITQ/median > LSH; supervised MiLaN may exceed\nthe unsupervised float-feature ranking (it learns label structure)\n");
  return 0;
}
