/// Hybrid (metadata filter ∧ similarity) query execution: pre-filter
/// (docstore filter -> candidate allowlist -> restricted Hamming
/// search) versus post-filter (Hamming search -> metadata join ->
/// filter) across filter selectivities of ≈1%, 10% and 50% at 10k and
/// 100k codes.  The crossover this bench charts is what
/// EarthQubeConfig::prefilter_selectivity_threshold encodes: selective
/// filters favour pre-filtering (the restricted search touches only the
/// allowlist), broad filters favour post-filtering (most hits survive,
/// so the join is cheap and the full docstore pass is not).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>

#include "bench/harness.h"
#include "earthqube/query_request.h"
#include "milan/milan_model.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kKnn = 10;

/// An EarthQube with CBIR attached plus date windows calibrated to the
/// target selectivities; cached per archive size.  MiLaN stays
/// untrained: executor cost does not depend on retrieval quality.
struct HybridContext {
  earthqube::EarthQube system;
  std::vector<std::string> names;
  /// Selectivity percent -> calibrated acquisition-date window.
  std::map<int, DateRange> windows;
  std::map<int, double> achieved;  ///< measured selectivity per window
};

HybridContext* GetContext(size_t num_patches) {
  static std::map<size_t, std::unique_ptr<HybridContext>> cache;
  auto it = cache.find(num_patches);
  if (it != cache.end()) return it->second.get();

  const ArchiveFixture& fixture = GetArchive(num_patches);
  auto ctx = std::make_unique<HybridContext>();
  if (!ctx->system.IngestArchive(fixture.archive).ok()) std::abort();

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 64;
  mconfig.hidden2 = 32;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  auto cbir = std::make_unique<earthqube::CbirService>(
      std::make_unique<milan::MilanModel>(mconfig), &fixture.extractor);
  if (!cbir->AddImages(fixture.names, fixture.features).ok()) std::abort();
  ctx->system.AttachCbir(std::move(cbir));
  ctx->names = fixture.names;

  // Calibrate date windows: the p-th percentile of sorted acquisition
  // dates bounds a [min, quantile] range matching ~p% of the archive.
  std::vector<std::string> dates;
  dates.reserve(fixture.archive.patches.size());
  for (const auto& p : fixture.archive.patches) {
    dates.push_back(p.acquisition_date.ToString());
  }
  std::sort(dates.begin(), dates.end());
  for (int pct : {1, 10, 50}) {
    const size_t idx =
        std::min(dates.size() - 1, dates.size() * pct / 100);
    auto begin = CivilDate::Parse(dates.front());
    auto end = CivilDate::Parse(dates[idx]);
    if (!begin.ok() || !end.ok()) std::abort();
    const DateRange range{*begin, *end};
    ctx->windows[pct] = range;
    earthqube::EarthQubeQuery probe;
    probe.date_range = range;
    ctx->achieved[pct] =
        static_cast<double>(ctx->system.CountMatches(probe)) /
        static_cast<double>(fixture.archive.patches.size());
  }
  return cache.emplace(num_patches, std::move(ctx)).first->second.get();
}

void RunHybrid(benchmark::State& state, earthqube::PlannerMode mode) {
  const size_t num_patches = static_cast<size_t>(state.range(0));
  const int pct = static_cast<int>(state.range(1));
  HybridContext* ctx = GetContext(num_patches);

  earthqube::EarthQubeQuery panel;
  panel.date_range = ctx->windows.at(pct);

  earthqube::QueryRequest request;
  request.panel = panel;
  request.projection = earthqube::Projection::kHitsOnly;
  request.planner = mode;
  request.page_size = 0;

  size_t offset = 0;
  size_t hits = 0;
  std::string chosen;
  for (auto _ : state) {
    request.similarity = earthqube::SimilaritySpec::NameKnn(
        ctx->names[(offset++ * 131) % ctx->names.size()], kKnn);
    auto response = ctx->system.Execute(request);
    if (!response.ok()) std::abort();
    hits += response->hits.size();
    chosen = earthqube::StrategyToString(response->plan.strategy);
    benchmark::DoNotOptimize(*response);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["achieved_sel"] = ctx->achieved.at(pct);
  state.counters["avg_hits"] =
      state.iterations() > 0
          ? static_cast<double>(hits) / static_cast<double>(state.iterations())
          : 0.0;
  state.SetLabel(chosen);
}

void BM_HybridPreFilter(benchmark::State& state) {
  RunHybrid(state, earthqube::PlannerMode::kForcePreFilter);
}
void BM_HybridPostFilter(benchmark::State& state) {
  RunHybrid(state, earthqube::PlannerMode::kForcePostFilter);
}
void BM_HybridAutoPlanner(benchmark::State& state) {
  RunHybrid(state, earthqube::PlannerMode::kAuto);
}

#define HYBRID_ARGS                                              \
  ->Args({10000, 1})->Args({10000, 10})->Args({10000, 50})       \
      ->Args({100000, 1})->Args({100000, 10})->Args({100000, 50})\
      ->Unit(benchmark::kMicrosecond)

BENCHMARK(BM_HybridPreFilter) HYBRID_ARGS;
BENCHMARK(BM_HybridPostFilter) HYBRID_ARGS;
BENCHMARK(BM_HybridAutoPlanner) HYBRID_ARGS;

}  // namespace
}  // namespace agoraeo::bench

int main(int argc, char** argv) {
  return agoraeo::bench::RunBenchmarksWithJson("hybrid_query", argc, argv);
}
