/// The Hamming kernel layer, measured: every compiled+supported kernel
/// against the portable scalar reference, scanning 10k codes per pass
/// at 64/128/256/512 bits — the tentpole speedup evidence for the
/// runtime-dispatched SIMD layer.  Two levels:
///
///   BM_KernelScan/<kernel>/<bits>  — the raw kernel over the padded
///       flat layout in index-sized (256-code) blocks;
///   BM_IndexBatchRadius/<kernel>   — the same hardware path end to end
///       through LinearScanIndex::BatchRadiusSearch (single thread,
///       128-bit codes), i.e. what the service actually runs.
///
/// The dispatch self-check counters record which kernel the host
/// auto-selected (kernel_is_vector=1 when a vector ISA won) so a JSON
/// row can never silently report scalar-vs-scalar.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/random.h"
#include "common/simd/hamming_kernels.h"
#include "index/linear_scan.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kNumCodes = 10000;
constexpr size_t kCodeBlock = 256;  // mirrors the index's scan blocking
constexpr uint32_t kRadius = 8;

struct KernelFixture {
  simd::AlignedWordBuffer rows;
  simd::AlignedWordBuffer query;
  size_t stride = 0;
};

KernelFixture* GetKernelFixture(size_t bits) {
  static std::map<size_t, std::unique_ptr<KernelFixture>> cache;
  auto it = cache.find(bits);
  if (it != cache.end()) return it->second.get();
  const size_t wpc = (bits + 63) / 64;
  auto fx = std::make_unique<KernelFixture>();
  fx->stride = simd::PaddedStride(wpc);
  fx->rows.assign(kNumCodes * fx->stride, 0);
  fx->query.assign(fx->stride, 0);
  Rng rng(bits);
  for (size_t i = 0; i < kNumCodes; ++i) {
    for (size_t w = 0; w < wpc; ++w) {
      fx->rows[i * fx->stride + w] = rng.NextUint64();
    }
  }
  for (size_t w = 0; w < wpc; ++w) fx->query[w] = rng.NextUint64();
  return cache.emplace(bits, std::move(fx)).first->second.get();
}

/// One full pass over the 10k codes in index-sized blocks.
void BM_KernelScan(benchmark::State& state, const simd::HammingKernel* kernel,
                   size_t bits) {
  KernelFixture* fx = GetKernelFixture(bits);
  const size_t stride = fx->stride;
  alignas(64) uint32_t dist[kCodeBlock];
  uint64_t sink = 0;
  for (auto _ : state) {
    for (size_t block = 0; block < kNumCodes; block += kCodeBlock) {
      const size_t count = std::min(kNumCodes - block, kCodeBlock);
      kernel->batch(fx->rows.data() + block * stride, count, stride,
                    fx->query.data(), dist);
      sink += dist[0];
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kNumCodes));
  state.counters["code_bits"] = static_cast<double>(bits);
}

/// End to end through the index: a single-threaded batched radius scan
/// of 10k 128-bit codes with the named kernel forced for the run.
void BM_IndexBatchRadius(benchmark::State& state, std::string kernel_name) {
  static index::LinearScanIndex* idx = [] {
    auto* built = new index::LinearScanIndex();
    Rng rng(99);
    for (index::ItemId id = 0; id < kNumCodes; ++id) {
      BinaryCode code(128);
      for (size_t b = 0; b < 128; ++b) code.SetBit(b, rng.Bernoulli(0.5));
      if (!built->Add(id, code).ok()) std::abort();
    }
    return built;
  }();
  static const std::vector<BinaryCode>* queries = [] {
    auto* q = new std::vector<BinaryCode>();
    Rng rng(7);
    for (size_t i = 0; i < 16; ++i) {
      BinaryCode code(128);
      for (size_t b = 0; b < 128; ++b) code.SetBit(b, rng.Bernoulli(0.5));
      q->push_back(code);
    }
    return q;
  }();
  if (!simd::ForceKernel(kernel_name)) {
    state.SkipWithError(("kernel not usable: " + kernel_name).c_str());
    return;
  }
  size_t hits = 0;
  for (auto _ : state) {
    // nullptr pool: single thread — the per-core kernel speedup, not
    // the shard fan-out (bench_sharded_index measures that).
    const auto batch = idx->BatchRadiusSearch(*queries, kRadius, nullptr);
    for (const auto& slot : batch) hits += slot.size();
    benchmark::DoNotOptimize(batch);
  }
  simd::ForceKernel("");
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * queries->size() * kNumCodes));
  state.counters["avg_hits"] =
      state.iterations() > 0
          ? static_cast<double>(hits) /
                static_cast<double>(state.iterations() * queries->size())
          : 0.0;
}

void RegisterAll() {
  // Dispatch self-check, reported on every kernel-scan row: which
  // kernel auto-selection picked, and whether it is a vector ISA.
  const std::string active = simd::ActiveKernel()->name;
  const bool vector_active = active != "scalar" && active != "popcnt";
  for (const simd::HammingKernel* kernel : simd::CompiledKernels()) {
    if (!kernel->supported()) continue;
    for (size_t bits : {64, 128, 256, 512}) {
      const std::string name = std::string("BM_KernelScan/") + kernel->name +
                               "/" + std::to_string(bits);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [kernel, bits, vector_active](benchmark::State& state) {
            state.counters["auto_kernel_is_vector"] =
                vector_active ? 1.0 : 0.0;
            state.counters["hw_threads"] = static_cast<double>(
                std::thread::hardware_concurrency());
            BM_KernelScan(state, kernel, bits);
          })
          ->Unit(benchmark::kMicrosecond);
    }
    benchmark::RegisterBenchmark(
        (std::string("BM_IndexBatchRadius/") + kernel->name).c_str(),
        [name = std::string(kernel->name)](benchmark::State& state) {
          BM_IndexBatchRadius(state, name);
        })
        ->Unit(benchmark::kMicrosecond);
  }
}

}  // namespace
}  // namespace agoraeo::bench

int main(int argc, char** argv) {
  agoraeo::bench::RegisterAll();
  return agoraeo::bench::RunBenchmarksWithJson("simd_kernels", argc, argv);
}
