/// Experiment E3 — "retrieve all images ... within a small hamming
/// radius of the query image" (paper §3.3).
///
/// Sweeps the Hamming radius and charts latency + candidate counts for
/// the single hash table (mask enumeration / bucket-scan fallback) and
/// multi-index hashing.  Expected shape: mask-enumeration cost explodes
/// combinatorially with r (until the bucket-scan fallback caps it),
/// while MIH stays sub-linear; the crossover sits at small r.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "index/bk_tree.h"
#include "index/hamming_table.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kBits = 128;
constexpr size_t kArchive = 50000;

enum class Kind { kTable, kMih, kBk };

index::HammingIndex* GetIndex(Kind kind) {
  static std::unique_ptr<index::HammingIndex> table, multi, bk;
  auto& slot = kind == Kind::kMih ? multi
               : kind == Kind::kBk ? bk
                                   : table;
  if (slot == nullptr) {
    const ArchiveFixture& fixture = GetArchive(kArchive);
    const auto codes = ClusteredCodes(fixture, kBits);
    if (kind == Kind::kMih) {
      slot = std::make_unique<index::MultiIndexHashing>(4);
    } else if (kind == Kind::kBk) {
      slot = std::make_unique<index::BkTree>();
    } else {
      slot = std::make_unique<index::HammingHashTable>();
    }
    for (size_t i = 0; i < codes.size(); ++i) {
      if (!slot->Add(i, codes[i]).ok()) std::abort();
    }
  }
  return slot.get();
}

void RunSweep(benchmark::State& state, Kind kind) {
  const uint32_t radius = static_cast<uint32_t>(state.range(0));
  index::HammingIndex* idx = GetIndex(kind);
  const ArchiveFixture& fixture = GetArchive(kArchive);
  const auto codes = ClusteredCodes(fixture, kBits);

  size_t q = 0, results = 0, candidates = 0, probes = 0, queries = 0;
  for (auto _ : state) {
    index::SearchStats stats;
    auto hits =
        idx->RadiusSearch(codes[(q * 41) % codes.size()], radius, &stats);
    benchmark::DoNotOptimize(hits);
    results += stats.results;
    candidates += stats.candidates;
    probes += stats.buckets_probed;
    ++queries;
    ++q;
  }
  state.counters["radius"] = radius;
  state.counters["avg_results"] =
      queries ? static_cast<double>(results) / queries : 0;
  state.counters["avg_candidates"] =
      queries ? static_cast<double>(candidates) / queries : 0;
  state.counters["avg_probes"] =
      queries ? static_cast<double>(probes) / queries : 0;
}

void BM_HashTableRadius(benchmark::State& state) {
  RunSweep(state, Kind::kTable);
}
void BM_MihRadius(benchmark::State& state) { RunSweep(state, Kind::kMih); }
void BM_BkTreeRadius(benchmark::State& state) { RunSweep(state, Kind::kBk); }

BENCHMARK(BM_HashTableRadius)
    ->DenseRange(0, 6, 1)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MihRadius)
    ->DenseRange(0, 6, 1)->Arg(10)->Arg(14)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BkTreeRadius)
    ->DenseRange(0, 6, 1)->Arg(10)->Arg(14)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace agoraeo::bench

BENCHMARK_MAIN();
