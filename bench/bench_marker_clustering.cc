/// Experiment E13 — map-view marker clustering (paper §3.1: markers in
/// the zoomed-in view, marker cluster groups zoomed out).
///
/// Measures cluster-group construction latency versus zoom level and
/// result-set size.  Expected shape: linear in the number of markers,
/// independent of zoom (grid hashing), with cluster counts growing with
/// zoom.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "earthqube/result_panel.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kArchive = 50000;

std::vector<earthqube::ResultEntry> MakeEntries(size_t n) {
  const ArchiveFixture& fixture = GetArchive(kArchive);
  std::vector<earthqube::ResultEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n && i < fixture.archive.patches.size(); ++i) {
    const auto& p = fixture.archive.patches[i];
    earthqube::ResultEntry e;
    e.name = p.name;
    e.labels = p.labels;
    e.country = p.country;
    e.acquisition_date = p.acquisition_date.ToString();
    e.map_location = p.bounds.Center();
    entries.push_back(std::move(e));
  }
  return entries;
}

void BM_ClusterMarkers(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int zoom = static_cast<int>(state.range(1));
  const auto entries = MakeEntries(n);
  size_t clusters = 0, iters = 0;
  for (auto _ : state) {
    auto result = earthqube::ClusterMarkers(entries, zoom);
    benchmark::DoNotOptimize(result);
    clusters += result.size();
    ++iters;
  }
  state.counters["markers"] = static_cast<double>(entries.size());
  state.counters["zoom"] = zoom;
  state.counters["clusters"] =
      iters ? static_cast<double>(clusters) / iters : 0;
}

BENCHMARK(BM_ClusterMarkers)
    ->Args({1000, 3})->Args({1000, 8})->Args({1000, 14})
    ->Args({10000, 3})->Args({10000, 8})->Args({10000, 14})
    ->Args({50000, 3})->Args({50000, 8})->Args({50000, 14})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace agoraeo::bench

BENCHMARK_MAIN();
