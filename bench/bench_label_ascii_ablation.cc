/// Experiment E7 — the label -> ASCII-character compression (paper
/// §3.2: "we map each (potentially multi-word) CLC label to an ASCII
/// character, thereby avoiding the manipulation of long strings").
///
/// Ablation: identical label queries against a metadata collection
/// ingested with ASCII-compressed labels versus full multi-word label
/// strings, with and without the multikey index.  Expected shape: ASCII
/// wins clearly on the unindexed scan (string comparisons dominate) and
/// retains a smaller advantage on the indexed path (shorter index
/// keys).
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "docstore/index.h"
#include "earthqube/schema.h"

namespace agoraeo::bench {
namespace {

using bigearthnet::LabelIdFromName;
using bigearthnet::LabelSet;
using earthqube::EarthQubeQuery;
using earthqube::LabelFilter;
using earthqube::LabelEncoding;

constexpr size_t kArchive = 50000;

LabelSet QueryLabels() {
  // The longest label name in the nomenclature makes the string-length
  // effect visible.
  return LabelSet(
      {*LabelIdFromName("Land principally occupied by agriculture, with "
                        "significant areas of natural vegetation"),
       *LabelIdFromName("Pastures")});
}

void RunAblation(benchmark::State& state, LabelEncoding encoding,
                 bool indexed) {
  const ArchiveFixture& fixture = GetArchive(kArchive);
  earthqube::EarthQube* system = GetEarthQube(fixture, indexed, encoding);
  EarthQubeQuery query;
  query.label_filter = LabelFilter::AtLeastAndMore(QueryLabels());
  size_t matches = 0, iters = 0;
  for (auto _ : state) {
    auto response = system->Search(query);
    if (!response.ok()) std::abort();
    benchmark::DoNotOptimize(response);
    matches += response->panel.total();
    ++iters;
  }
  state.counters["matches"] = iters ? static_cast<double>(matches) / iters : 0;
}

/// Microbenchmark isolating the paper's actual claim: the cost of
/// evaluating the label predicate per document ("avoiding the
/// manipulation of long strings"), with the identical response-building
/// work of the end-to-end rows stripped away.
void RunFilterMatchMicro(benchmark::State& state, LabelEncoding encoding) {
  const ArchiveFixture& fixture = GetArchive(kArchive);
  std::vector<docstore::Document> docs;
  docs.reserve(fixture.archive.patches.size());
  for (const auto& meta : fixture.archive.patches) {
    docs.push_back(earthqube::MetadataToDocument(meta, encoding));
  }
  EarthQubeQuery query;
  query.label_filter = LabelFilter::AtLeastAndMore(QueryLabels());
  const docstore::Filter filter =
      query.ToFilter(encoding == LabelEncoding::kAsciiCompressed);
  size_t matches = 0;
  for (auto _ : state) {
    size_t m = 0;
    for (const auto& doc : docs) m += filter.Matches(doc);
    benchmark::DoNotOptimize(m);
    matches = m;
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["ns_per_doc"] = benchmark::Counter(
      static_cast<double>(docs.size()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void BM_FilterMatch_Ascii(benchmark::State& state) {
  RunFilterMatchMicro(state, LabelEncoding::kAsciiCompressed);
}
void BM_FilterMatch_FullStrings(benchmark::State& state) {
  RunFilterMatchMicro(state, LabelEncoding::kFullStrings);
}

/// Index-build microbenchmark: multikey index insertion cost depends on
/// the label key length (one index key per label per document).
void RunIndexBuildMicro(benchmark::State& state, LabelEncoding encoding) {
  const ArchiveFixture& fixture = GetArchive(kArchive);
  std::vector<docstore::Document> docs;
  for (const auto& meta : fixture.archive.patches) {
    docs.push_back(earthqube::MetadataToDocument(meta, encoding));
  }
  for (auto _ : state) {
    docstore::MultikeyIndex index(earthqube::kFieldLabels);
    for (size_t i = 0; i < docs.size(); ++i) {
      index.Insert(static_cast<docstore::DocId>(i), docs[i]);
    }
    benchmark::DoNotOptimize(index);
    state.counters["index_keys"] = static_cast<double>(index.num_keys());
  }
}

void BM_IndexBuild_Ascii(benchmark::State& state) {
  RunIndexBuildMicro(state, LabelEncoding::kAsciiCompressed);
}
void BM_IndexBuild_FullStrings(benchmark::State& state) {
  RunIndexBuildMicro(state, LabelEncoding::kFullStrings);
}

void BM_Ascii_Indexed(benchmark::State& state) {
  RunAblation(state, LabelEncoding::kAsciiCompressed, true);
}
void BM_FullStrings_Indexed(benchmark::State& state) {
  RunAblation(state, LabelEncoding::kFullStrings, true);
}
void BM_Ascii_Scan(benchmark::State& state) {
  RunAblation(state, LabelEncoding::kAsciiCompressed, false);
}
void BM_FullStrings_Scan(benchmark::State& state) {
  RunAblation(state, LabelEncoding::kFullStrings, false);
}

BENCHMARK(BM_FilterMatch_Ascii)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FilterMatch_FullStrings)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexBuild_Ascii)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexBuild_FullStrings)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ascii_Indexed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullStrings_Indexed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Ascii_Scan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullStrings_Scan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace agoraeo::bench

BENCHMARK_MAIN();
