/// Experiment E8 — MiLaN training (paper §2.2): throughput, convergence
/// and a loss-term ablation.
///
/// Part 1 (google-benchmark): samples/second of one training step for
/// varying batch sizes.
/// Part 2 (printed): loss trajectory of a short run, and a loss-term
/// ablation — triplet only, +bit-balance, +quantization — scored by
/// retrieval precision and by code statistics (mean bit activation and
/// quantization gap).  Expected shape: the composite loss converges;
/// bit balance moves activations toward 50%; quantization shrinks the
/// |output|-1 gap; retrieval quality does not degrade.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "milan/metrics.h"

namespace agoraeo::bench {
namespace {

constexpr size_t kArchive = 4000;

void BM_TrainStep(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const ArchiveFixture& fixture = GetArchive(kArchive);

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hash_bits = 128;
  mconfig.dropout = 0.0f;
  milan::MilanModel model(mconfig);
  milan::TripletSampler sampler(fixture.labels);
  milan::TrainConfig tconfig;
  tconfig.batch_size = batch;
  milan::Trainer trainer(&model, &fixture.features, &sampler, tconfig);

  for (auto _ : state) {
    auto loss = trainer.TrainStep();
    if (!loss.ok()) std::abort();
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(3 * batch));
}

BENCHMARK(BM_TrainStep)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

struct AblationRow {
  std::string name;
  float final_loss;
  double p10;
  double mean_bit_activation_gap;  ///< mean |activation rate - 0.5|
  double quantization_gap;         ///< mean ||output| - 1|
};

AblationRow RunAblation(const std::string& name, float balance_weight,
                        float quant_weight, const ArchiveFixture& fixture) {
  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 256;
  mconfig.hidden2 = 128;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  milan::MilanModel model(mconfig);
  milan::TripletSampler sampler(fixture.labels);
  milan::TrainConfig tconfig;
  tconfig.epochs = 6;
  tconfig.batches_per_epoch = 30;
  tconfig.batch_size = 24;
  tconfig.loss.balance_weight = balance_weight;
  tconfig.loss.quantization_weight = quant_weight;
  milan::Trainer trainer(&model, &fixture.features, &sampler, tconfig);
  auto result = trainer.Train();
  if (!result.ok()) std::abort();

  const auto codes = model.HashBatch(fixture.features);
  auto relevant = [&](size_t q, size_t i) {
    return fixture.labels[q * 31 % fixture.labels.size()].ContainsAny(
        fixture.labels[i]);
  };
  auto rank = [&](size_t q) {
    const size_t query = q * 31 % codes.size();
    return milan::RankByHamming(codes[query], codes, query);
  };
  auto quality = milan::EvaluateRetrieval(60, 10, rank, relevant);

  // Code statistics.
  double activation_gap = 0;
  for (size_t bit = 0; bit < 64; ++bit) {
    size_t on = 0;
    for (const auto& code : codes) on += code.GetBit(bit);
    activation_gap +=
        std::fabs(static_cast<double>(on) / codes.size() - 0.5);
  }
  activation_gap /= 64;

  const Tensor outputs = model.Forward(fixture.features, false);
  double quant_gap = 0;
  for (size_t i = 0; i < outputs.size(); ++i) {
    quant_gap += std::fabs(std::fabs(outputs[i]) - 1.0f);
  }
  quant_gap /= outputs.size();

  return {name, result->epochs.back().total, quality.precision_at_k,
          activation_gap, quant_gap};
}

void PrintAblationTable() {
  const ArchiveFixture& fixture = GetArchive(kArchive);
  PrintHeader("E8b: Loss-term ablation",
              "bit-balance balances activations; quantization shrinks "
              "the binarization gap; quality is preserved");
  std::printf("%-28s %12s %8s %14s %12s\n", "loss configuration",
              "final_loss", "P@10", "bit_act_gap", "quant_gap");
  for (const auto& row :
       {RunAblation("triplet only", 0.0f, 0.0f, fixture),
        RunAblation("+ bit balance", 0.5f, 0.0f, fixture),
        RunAblation("+ quantization (full)", 0.5f, 0.1f, fixture)}) {
    std::printf("%-28s %12.4f %8.3f %14.4f %12.4f\n", row.name.c_str(),
                row.final_loss, row.p10, row.mean_bit_activation_gap,
                row.quantization_gap);
  }

  // Convergence trace of the full configuration.
  PrintHeader("E8c: Convergence", "the composite loss decreases per epoch");
  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 256;
  mconfig.hidden2 = 128;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  milan::MilanModel model(mconfig);
  milan::TripletSampler sampler(fixture.labels);
  milan::TrainConfig tconfig;
  tconfig.epochs = 8;
  tconfig.batches_per_epoch = 30;
  tconfig.batch_size = 24;
  milan::Trainer trainer(&model, &fixture.features, &sampler, tconfig);
  auto result = trainer.Train();
  if (!result.ok()) std::abort();
  std::printf("%6s %10s %10s %10s %10s %16s\n", "epoch", "total", "triplet",
              "balance", "quant", "active_triplets");
  for (size_t e = 0; e < result->epochs.size(); ++e) {
    const auto& s = result->epochs[e];
    std::printf("%6zu %10.4f %10.4f %10.4f %10.4f %15.1f%%\n", e, s.total,
                s.triplet, s.balance, s.quantization,
                100.0f * s.active_triplet_fraction);
  }
}

}  // namespace
}  // namespace agoraeo::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  agoraeo::bench::PrintAblationTable();
  return 0;
}
