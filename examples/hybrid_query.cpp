/// Unified QueryRequest API v2: one request object combines the query
/// panel's metadata restrictions with similarity search.  The demo runs
/// the same hybrid (labels ∧ k-NN) request under both executor
/// strategies — pre-filter (filter -> candidate set -> restricted
/// Hamming search) and post-filter (Hamming search -> metadata join ->
/// filter) — shows that they agree, and lets the selectivity planner
/// pick on its own.
#include <cstdio>
#include <memory>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "earthqube/earthqube.h"
#include "milan/trainer.h"

using namespace agoraeo;

int main() {
  // --- Build the system (archive + MiLaN + CBIR). --------------------------
  bigearthnet::ArchiveConfig aconfig;
  aconfig.num_patches = 6000;
  aconfig.seed = 11;
  bigearthnet::ArchiveGenerator generator(aconfig);
  auto archive = generator.Generate();
  if (!archive.ok()) return 1;

  bigearthnet::FeatureExtractor extractor;
  const Tensor features = extractor.ExtractArchive(*archive, generator, 8);

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 128;
  mconfig.hidden2 = 64;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  auto model = std::make_unique<milan::MilanModel>(mconfig);
  std::vector<bigearthnet::LabelSet> labels;
  for (const auto& p : archive->patches) labels.push_back(p.labels);
  milan::TripletSampler sampler(labels);
  milan::TrainConfig tconfig;
  tconfig.epochs = 4;
  tconfig.batches_per_epoch = 25;
  tconfig.batch_size = 24;
  milan::Trainer trainer(model.get(), &features, &sampler, tconfig);
  if (!trainer.Train().ok()) return 1;

  earthqube::EarthQube system;
  if (!system.IngestArchive(*archive).ok()) return 1;
  auto cbir =
      std::make_unique<earthqube::CbirService>(std::move(model), &extractor);
  std::vector<std::string> names;
  for (const auto& p : archive->patches) names.push_back(p.name);
  if (!cbir->AddImages(names, features).ok()) return 1;
  system.AttachCbir(std::move(cbir));

  // --- One hybrid request: forest labels ∧ 20-NN of an archive image. ------
  const std::string& query_image = archive->patches[42].name;
  earthqube::EarthQubeQuery panel;
  panel.label_filter = earthqube::LabelFilter::SomeLevel2(31);  // forests

  earthqube::QueryRequest request;
  request.panel = panel;
  request.similarity = earthqube::SimilaritySpec::NameKnn(query_image, 20);
  request.page_size = 0;

  std::printf("hybrid query: forest labels ∧ 20-NN of %s\n\n",
              query_image.c_str());

  for (auto [mode, label] :
       {std::pair{earthqube::PlannerMode::kForcePreFilter, "pre-filter "},
        std::pair{earthqube::PlannerMode::kForcePostFilter, "post-filter"},
        std::pair{earthqube::PlannerMode::kAuto, "auto       "}}) {
    request.planner = mode;
    auto response = system.Execute(request);
    if (!response.ok()) {
      std::fprintf(stderr, "execute failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("%s -> %zu hits, strategy %s (est. selectivity %.4f)\n",
                label, response->hits.size(),
                earthqube::StrategyToString(response->plan.strategy),
                response->plan.estimated_selectivity);
    std::printf("  plan: %s\n", response->plan.description.c_str());
  }

  // --- The winning plan's results, joined with metadata. --------------------
  request.planner = earthqube::PlannerMode::kAuto;
  auto response = system.Execute(request);
  if (!response.ok()) return 1;
  std::printf("\ntop hits (distance | name | labels):\n");
  const auto& entries = response->panel.entries();
  for (size_t i = 0; i < std::min<size_t>(8, entries.size()); ++i) {
    std::printf("  %2u | %-44s | %s\n", response->hits[i].hamming_distance,
                entries[i].name.c_str(), entries[i].labels.ToString().c_str());
  }
  std::printf("\nlabel statistics over the retrieval:\n%s\n",
              response->statistics.RenderAscii(30).c_str());
  return 0;
}
