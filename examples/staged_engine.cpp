/// The staged execution engine end to end: a burst of concurrent
/// identical queries collapses onto one execution (singleflight), a
/// burst of distinct queries fuses into one micro-batched index pass,
/// and a bad archive name is served from the negative cache on repeat.
/// Engine counters are printed at each step, mirroring the "exec"
/// section of GET /api/v2/cache/stats.
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "earthqube/earthqube.h"
#include "earthqube/exec/execution_engine.h"
#include "milan/trainer.h"

using namespace agoraeo;

namespace {

void PrintStats(const earthqube::EarthQube& system, const char* moment) {
  const earthqube::ExecStats s = system.exec_engine()->Stats();
  std::printf(
      "[%s]\n  submitted %llu | coalesced %llu | flights %llu | direct %llu "
      "| batches %llu (%llu flights) | cache hits %llu | negative hits %llu\n",
      moment, static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.coalesced),
      static_cast<unsigned long long>(s.flights),
      static_cast<unsigned long long>(s.direct),
      static_cast<unsigned long long>(s.batches),
      static_cast<unsigned long long>(s.batched_flights),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.negative_hits));
}

earthqube::QueryRequest RadiusRequest(const std::string& name) {
  earthqube::QueryRequest request;
  request.similarity = earthqube::SimilaritySpec::NameRadius(name, 8, 25);
  request.projection = earthqube::Projection::kHitsOnly;
  request.page_size = 0;
  return request;
}

}  // namespace

int main() {
  // --- Build the system (archive + MiLaN + CBIR). --------------------------
  bigearthnet::ArchiveConfig aconfig;
  aconfig.num_patches = 4000;
  aconfig.seed = 11;
  bigearthnet::ArchiveGenerator generator(aconfig);
  auto archive = generator.Generate();
  if (!archive.ok()) return 1;

  bigearthnet::FeatureExtractor extractor;
  const Tensor features = extractor.ExtractArchive(*archive, generator, 2);

  earthqube::EarthQubeConfig config;
  // Leave the response cache off so the engine itself does the work
  // sharing — the interesting case for this demo.
  config.cache.enable_response_cache = false;
  earthqube::EarthQube system(config);
  if (!system.IngestArchive(*archive).ok()) return 1;

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 64;
  mconfig.hidden2 = 32;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  auto cbir = std::make_unique<earthqube::CbirService>(
      std::make_unique<milan::MilanModel>(mconfig), &extractor);
  std::vector<std::string> names;
  for (const auto& p : archive->patches) names.push_back(p.name);
  if (!cbir->AddImages(names, features).ok()) return 1;
  system.AttachCbir(std::move(cbir));
  std::printf("system ready: %zu patches indexed\n\n", names.size());

  // --- 1. Singleflight: 16 concurrent identical queries. -------------------
  {
    const earthqube::QueryRequest hot = RadiusRequest(names[7]);
    std::vector<std::thread> clients;
    for (int c = 0; c < 16; ++c) {
      clients.emplace_back([&] {
        auto response = system.Execute(hot);
        if (!response.ok()) std::exit(1);
      });
    }
    for (auto& t : clients) t.join();
    PrintStats(system, "after 16 concurrent identical queries");
  }

  // --- 2. Micro-batching: a deterministic burst of distinct queries. -------
  {
    earthqube::ExecutionEngine* engine = system.exec_engine();
    engine->Pause();  // admit the whole burst before any executes
    std::vector<earthqube::ExecutionEngine::Ticket> tickets;
    for (int i = 0; i < 12; ++i) {
      tickets.push_back(engine->Submit(RadiusRequest(names[i * 101])));
    }
    engine->Resume();
    for (auto& ticket : tickets) {
      if (!ticket.Get().ok()) return 1;
    }
    PrintStats(system, "after a 12-query distinct burst (one batched pass)");
  }

  // --- 3. Negative cache: repeated bad lookups stay cheap. -----------------
  {
    const earthqube::QueryRequest bad = RadiusRequest("no_such_patch_name");
    for (int i = 0; i < 3; ++i) {
      auto response = system.Execute(bad);
      if (response.ok() || !response.status().IsNotFound()) return 1;
    }
    PrintStats(system, "after 3 lookups of a bad archive name");
    std::printf("  (1 real resolution, 2 negative-cache replays)\n");
  }

  // --- 4. Async completion: the netsvc pipeline's entry point. -------------
  {
    std::promise<void> done;
    system.ExecuteAsync(RadiusRequest(names[3]),
                        [&](const StatusOr<earthqube::QueryResponse>& r) {
                          std::printf("\nasync completion: %zu hits, plan %s\n",
                                      r.ok() ? r->hits.size() : 0,
                                      r.ok() ? r->plan.description.c_str()
                                             : r.status().ToString().c_str());
                          done.set_value();
                        });
    done.get_future().wait();
  }
  return 0;
}
