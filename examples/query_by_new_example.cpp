/// Demo scenario 3 (paper §4, "Query-by-New-Example"):
///
///   "Sentinel satellites constantly collect new images of earth's
///    surface.  Unfortunately, these newly collected images do not have
///    any land cover class labels in the metadata.  Therefore, visitors
///    can upload such images to EarthQube to search for other images
///    with similar semantic content.  Based on the semantic search
///    results, one could design an automatic labeling process."
///
/// The example uploads freshly "acquired" (synthesised, never-indexed)
/// patches, retrieves semantically similar archive images via on-the-fly
/// MiLaN hashing, and then runs the automatic-labeling idea: predict the
/// upload's labels by majority vote over the retrieval, and score the
/// predictions against the (hidden) ground truth.
#include <cstdio>
#include <memory>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "earthqube/earthqube.h"
#include "milan/trainer.h"

using namespace agoraeo;

int main() {
  // --- Build the system. ----------------------------------------------------
  bigearthnet::ArchiveConfig aconfig;
  aconfig.num_patches = 8000;
  aconfig.seed = 3;
  bigearthnet::ArchiveGenerator generator(aconfig);
  auto archive = generator.Generate();
  if (!archive.ok()) return 1;

  bigearthnet::FeatureExtractor extractor;
  const Tensor features = extractor.ExtractArchive(*archive, generator, 8);

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 256;
  mconfig.hidden2 = 128;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  auto model = std::make_unique<milan::MilanModel>(mconfig);
  std::vector<bigearthnet::LabelSet> labels;
  for (const auto& p : archive->patches) labels.push_back(p.labels);
  milan::TripletSampler sampler(labels);
  milan::TrainConfig tconfig;
  tconfig.epochs = 6;
  tconfig.batches_per_epoch = 30;
  tconfig.batch_size = 24;
  milan::Trainer trainer(model.get(), &features, &sampler, tconfig);
  if (!trainer.Train().ok()) return 1;

  earthqube::EarthQube system;
  if (!system.IngestArchive(*archive).ok()) return 1;
  auto cbir =
      std::make_unique<earthqube::CbirService>(std::move(model), &extractor);
  std::vector<std::string> names;
  for (const auto& p : archive->patches) names.push_back(p.name);
  if (!cbir->AddImages(names, features).ok()) return 1;
  system.AttachCbir(std::move(cbir));
  std::printf("EarthQube ready: %zu archive images indexed\n\n",
              system.num_images());

  // --- New acquisitions: a different generator seed = unseen images. --------
  bigearthnet::ArchiveConfig fresh_config;
  fresh_config.num_patches = 5;
  fresh_config.seed = 9001;
  bigearthnet::ArchiveGenerator fresh_gen(fresh_config);
  auto fresh = fresh_gen.Generate();
  if (!fresh.ok()) return 1;

  size_t exact_hits = 0;
  for (size_t u = 0; u < fresh->patches.size(); ++u) {
    const auto& truth = fresh->patches[u];  // hidden from the system
    bigearthnet::Patch upload = fresh_gen.SynthesizePatch(truth);
    upload.meta.name = "upload_" + std::to_string(u);

    auto response = system.SimilarToUploadedImage(upload, /*radius=*/14, 25);
    if (!response.ok()) {
      std::fprintf(stderr, "upload %zu failed: %s\n", u,
                   response.status().ToString().c_str());
      return 1;
    }

    // Automatic labeling: every label carried by >= 50% of the retrieved
    // images becomes a predicted label.
    bigearthnet::LabelSet predicted;
    for (const auto& bar : response->statistics.bars()) {
      if (2 * bar.count >= response->panel.total()) predicted.Add(bar.label);
    }
    const bool hit = predicted.ContainsAny(truth.labels);
    exact_hits += hit;

    std::printf("upload %zu: %zu similar images retrieved\n", u,
                response->panel.total());
    std::printf("  true labels:      %s\n", truth.labels.ToString().c_str());
    std::printf("  predicted labels: %s  [%s]\n",
                predicted.empty() ? "(none)" : predicted.ToString().c_str(),
                hit ? "HIT" : "miss");
  }
  std::printf("\nautomatic labeling: %zu/%zu uploads received at least one "
              "correct label\n",
              exact_hits, fresh->patches.size());

  // Visitors can leave feedback about the session (feedback collection).
  if (!system.SubmitFeedback("query-by-new-example works on unlabeled "
                             "acquisitions!").ok()) {
    return 1;
  }
  std::printf("feedback stored (%zu entries total)\n",
              system.NumFeedbackEntries());
  return 0;
}
