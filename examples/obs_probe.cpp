/// Observability smoke probe, also run by CI: boots the HTTP service
/// over a panel-only EarthQube (no model training — the probe targets
/// the metrics plumbing, not CBIR quality), drives a handful of queries
/// through /api/v2/query, then scrapes
///
///   GET /metrics                    — every line must satisfy the
///                                     Prometheus text exposition grammar
///   GET /api/v2/metrics             — must parse as one JSON object
///   GET /api/v2/debug/slow_queries  — threshold is set to 0, so the
///                                     probe's own queries must appear
///
/// Exits non-zero on any malformed line or missing metric, which is the
/// CI failure signal.
///
/// Build & run:  ./build/obs_probe
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bigearthnet/archive_generator.h"
#include "common/logging.h"
#include "earthqube/earthqube.h"
#include "json/json.h"
#include "netsvc/client.h"
#include "netsvc/earthqube_service.h"
#include "netsvc/server.h"

using namespace agoraeo;

namespace {

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':' ||
                    (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
    if (!ok) return false;
  }
  return true;
}

/// `key="value"(,key="value")*` with exposition escapes inside values.
bool IsValidLabelBlock(const std::string& labels) {
  size_t i = 0;
  while (i < labels.size()) {
    const size_t eq = labels.find('=', i);
    if (eq == std::string::npos || eq == i) return false;
    if (!IsValidMetricName(labels.substr(i, eq - i))) return false;
    if (eq + 1 >= labels.size() || labels[eq + 1] != '"') return false;
    size_t j = eq + 2;
    while (j < labels.size() && labels[j] != '"') {
      if (labels[j] == '\\') ++j;  // escaped char
      ++j;
    }
    if (j >= labels.size()) return false;  // unterminated value
    i = j + 1;
    if (i == labels.size()) return true;
    if (labels[i] != ',') return false;
    ++i;
  }
  return false;  // trailing comma or empty block
}

bool IsValidSampleLine(const std::string& line) {
  size_t name_end = line.find('{');
  std::string rest;
  if (name_end != std::string::npos) {
    const size_t close = line.find('}', name_end);
    if (close == std::string::npos || close + 1 >= line.size() ||
        line[close + 1] != ' ') {
      return false;
    }
    if (!IsValidLabelBlock(line.substr(name_end + 1, close - name_end - 1))) {
      return false;
    }
    rest = line.substr(close + 2);
  } else {
    name_end = line.find(' ');
    if (name_end == std::string::npos) return false;
    rest = line.substr(name_end + 1);
  }
  if (!IsValidMetricName(line.substr(0, name_end))) return false;
  if (rest.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(rest.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool IsValidTypeLine(const std::string& line) {
  const std::string prefix = "# TYPE ";
  if (line.rfind(prefix, 0) != 0) return false;
  const size_t space = line.find(' ', prefix.size());
  if (space == std::string::npos) return false;
  if (!IsValidMetricName(line.substr(prefix.size(), space - prefix.size()))) {
    return false;
  }
  const std::string kind = line.substr(space + 1);
  return kind == "counter" || kind == "gauge" || kind == "summary";
}

int Fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "obs_probe FAILED: %s\n%s\n", what, detail.c_str());
  return 1;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);

  bigearthnet::ArchiveConfig aconfig;
  aconfig.num_patches = 500;
  aconfig.seed = 13;
  bigearthnet::ArchiveGenerator generator(aconfig);
  auto archive = generator.Generate();
  if (!archive.ok()) return Fail("archive generation", "");

  earthqube::EarthQubeConfig config;
  config.obs.slow_query_threshold_ns = 0;  // everything is "slow"
  earthqube::EarthQube system(config);
  if (!system.IngestArchive(*archive).ok()) return Fail("ingest", "");

  netsvc::EarthQubeService service(&system);
  netsvc::HttpServer server(2);
  service.RegisterRoutes(&server);
  if (!server.Start(0).ok()) return Fail("server start", "");

  netsvc::HttpClient client;
  const std::vector<std::string> bodies = {
      R"({"panel":{"seasons":["summer"]}})",
      R"({"panel":{"labels":{"operator":"some","names":["Pastures"]}},"limit":10})",
      R"({"panel":{"date_range":{"begin":"2017-07-01","end":"2017-08-31"}}})",
  };
  for (const std::string& body : bodies) {
    auto response = client.Post(server.port(), "/api/v2/query", body);
    if (!response.ok() || response->status_code != 200) {
      return Fail("query", response.ok() ? response->body
                                         : std::string(response.status().message()));
    }
  }

  // --- /metrics: every line must be exposition-grammar clean -----------------
  auto metrics = client.Get(server.port(), "/metrics");
  if (!metrics.ok() || metrics->status_code != 200) {
    return Fail("GET /metrics", metrics.ok() ? metrics->body : "");
  }
  size_t lines = 0;
  std::string text = metrics->body;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    ++lines;
    const bool ok =
        line[0] == '#' ? IsValidTypeLine(line) : IsValidSampleLine(line);
    if (!ok) return Fail("malformed exposition line", line);
  }
  if (lines == 0) return Fail("empty /metrics", "");
  if (text.find("agoraeo_http_requests_total") == std::string::npos) {
    return Fail("missing HTTP counters in /metrics", text);
  }

  // --- /api/v2/metrics: one JSON object --------------------------------------
  auto json_metrics = client.Get(server.port(), "/api/v2/metrics");
  if (!json_metrics.ok() || json_metrics->status_code != 200) {
    return Fail("GET /api/v2/metrics", "");
  }
  auto parsed = json::ParseObject(json_metrics->body);
  if (!parsed.ok()) return Fail("unparseable /api/v2/metrics", json_metrics->body);

  // --- slow queries: the probe's own traffic must be in the ring -------------
  auto slow = client.Get(server.port(), "/api/v2/debug/slow_queries");
  if (!slow.ok() || slow->status_code != 200) {
    return Fail("GET /api/v2/debug/slow_queries", "");
  }
  auto slow_doc = json::ParseObject(slow->body);
  if (!slow_doc.ok()) return Fail("unparseable slow_queries", slow->body);
  const docstore::Value* count = slow_doc->Get("count");
  if (count == nullptr || count->as_int64() <= 0) {
    return Fail("slow-query ring is empty at threshold 0", slow->body);
  }

  std::printf("obs_probe OK: %zu exposition lines valid, %lld slow queries "
              "recorded\n",
              lines, static_cast<long long>(count->as_int64()));
  server.Stop();
  return 0;
}
