/// Demo scenario 2 (paper §4, "Spatial Exploration and
/// Query-by-Existing-Example"):
///
///   "Visitors can submit a geospatial query covering the southwestern
///    tip of Portugal.  Then, they can visualize the images in the
///    query area using the render functionality.  Finally, they can
///    select an image and perform content-based image retrieval to
///    display similar images in the 10 countries."
#include <cstdio>
#include <memory>
#include <set>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "earthqube/earthqube.h"
#include "milan/trainer.h"

using namespace agoraeo;

int main() {
  // --- Build the system (archive + MiLaN + CBIR). --------------------------
  bigearthnet::ArchiveConfig aconfig;
  aconfig.num_patches = 8000;
  aconfig.seed = 2;
  bigearthnet::ArchiveGenerator generator(aconfig);
  auto archive = generator.Generate();
  if (!archive.ok()) return 1;

  bigearthnet::FeatureExtractor extractor;
  const Tensor features = extractor.ExtractArchive(*archive, generator, 8);

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 256;
  mconfig.hidden2 = 128;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  auto model = std::make_unique<milan::MilanModel>(mconfig);
  std::vector<bigearthnet::LabelSet> labels;
  for (const auto& p : archive->patches) labels.push_back(p.labels);
  milan::TripletSampler sampler(labels);
  milan::TrainConfig tconfig;
  tconfig.epochs = 6;
  tconfig.batches_per_epoch = 30;
  tconfig.batch_size = 24;
  milan::Trainer trainer(model.get(), &features, &sampler, tconfig);
  if (!trainer.Train().ok()) return 1;

  earthqube::EarthQube system;
  if (!system.IngestArchive(*archive).ok()) return 1;
  auto cbir =
      std::make_unique<earthqube::CbirService>(std::move(model), &extractor);
  std::vector<std::string> names;
  for (const auto& p : archive->patches) names.push_back(p.name);
  if (!cbir->AddImages(names, features).ok()) return 1;
  system.AttachCbir(std::move(cbir));

  // --- 1. Geospatial query: SW tip of Portugal. -----------------------------
  std::printf("step 1: rectangle over the southwestern tip of Portugal\n");
  earthqube::EarthQubeQuery geo_query;
  geo_query.geo = earthqube::GeoQuery::Rect({{37.0, -9.5}, {38.5, -7.8}});
  auto geo_response = system.Search(geo_query);
  if (!geo_response.ok() || geo_response->panel.total() == 0) {
    std::fprintf(stderr, "no images in the query area\n");
    return 1;
  }
  std::printf("  %zu images in the area (plan %s)\n",
              geo_response->panel.total(),
              geo_response->query_stats.plan.c_str());

  // --- 2. Render the first results on the map. ------------------------------
  std::printf("step 2: rendering result images (RGB previews)\n");
  const auto page = geo_response->panel.Page(0);
  for (size_t i = 0; i < std::min<size_t>(3, page.size()); ++i) {
    auto meta = system.GetMetadata(page[i]->name);
    if (!meta.ok()) return 1;
    bigearthnet::Patch patch = generator.SynthesizePatch(*meta);
    if (!system.StoreRenderedImage(patch).ok()) return 1;
    auto rgb = system.GetRenderedImage(page[i]->name);
    std::printf("  rendered %-44s (%zu RGB bytes)\n", page[i]->name.c_str(),
                rgb.ok() ? rgb->size() : 0);
  }

  // Marker clustering at two zoom levels (the map view behaviour).
  for (int zoom : {4, 10}) {
    auto clusters =
        earthqube::ClusterMarkers(geo_response->panel.entries(), zoom);
    std::printf("  map view at zoom %2d: %zu marker cluster groups\n", zoom,
                clusters.size());
  }

  // --- 3. Query-by-existing-example. ----------------------------------------
  const std::string& selected = page[0]->name;
  auto meta = system.GetMetadata(selected);
  if (!meta.ok()) return 1;
  std::printf("\nstep 3: CBIR from %s\n  labels: %s\n", selected.c_str(),
              meta->labels.ToString().c_str());
  auto similar = system.NearestToArchiveImage(selected, 15);
  if (!similar.ok()) return 1;

  std::set<std::string> countries;
  size_t shared = 0;
  for (const auto& entry : similar->panel.entries()) {
    if (entry.labels.ContainsAny(meta->labels)) ++shared;
    countries.insert(entry.country);
    std::printf("  -> %-44s %-11s [%s]\n", entry.name.c_str(),
                entry.country.c_str(), entry.labels.ToString().c_str());
  }
  std::printf("\n%zu/%zu retrieved images share a label with the query; "
              "results span %zu countries\n",
              shared, similar->panel.total(), countries.size());
  return 0;
}
