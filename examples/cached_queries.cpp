/// The query-cache subsystem end to end: a hot CBIR request is executed
/// repeatedly (first execution populates the response cache, repeats are
/// served from it), a hybrid pre-filter request exercises the
/// planner-level allowlist cache, and a late archive ingest bumps the
/// epoch — the very next queries see the new data instead of stale
/// cached results.  Cache counters are printed at each step, mirroring
/// what GET /api/v2/cache/stats serves over the wire.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "earthqube/earthqube.h"
#include "milan/trainer.h"

using namespace agoraeo;

namespace {

void PrintStats(const earthqube::EarthQube& system, const char* moment) {
  const cache::CacheStats responses = system.query_cache().ResponseStats();
  const cache::CacheStats allowlists = system.query_cache().AllowlistStats();
  std::printf(
      "[%s]\n  epoch %llu | response cache: %llu hits / %llu misses / "
      "%llu stale drops, %llu entries (%llu bytes)\n"
      "             | allowlist cache: %llu hits / %llu misses / "
      "%llu stale drops, %llu entries\n",
      moment, static_cast<unsigned long long>(system.query_cache().epoch()),
      static_cast<unsigned long long>(responses.hits),
      static_cast<unsigned long long>(responses.misses),
      static_cast<unsigned long long>(responses.stale_drops),
      static_cast<unsigned long long>(responses.entries),
      static_cast<unsigned long long>(responses.bytes),
      static_cast<unsigned long long>(allowlists.hits),
      static_cast<unsigned long long>(allowlists.misses),
      static_cast<unsigned long long>(allowlists.stale_drops),
      static_cast<unsigned long long>(allowlists.entries));
}

double MillisFor(const earthqube::EarthQube& system,
                 const earthqube::QueryRequest& request, bool* from_cache) {
  const auto start = std::chrono::steady_clock::now();
  auto response = system.Execute(request);
  const auto end = std::chrono::steady_clock::now();
  if (!response.ok()) {
    std::fprintf(stderr, "execute failed: %s\n",
                 response.status().ToString().c_str());
    std::exit(1);
  }
  *from_cache = response->served_from_cache;
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  // --- Build the system (archive + MiLaN + CBIR). --------------------------
  bigearthnet::ArchiveConfig aconfig;
  aconfig.num_patches = 6000;
  aconfig.seed = 11;
  bigearthnet::ArchiveGenerator generator(aconfig);
  auto archive = generator.Generate();
  if (!archive.ok()) return 1;

  bigearthnet::FeatureExtractor extractor;
  const Tensor features = extractor.ExtractArchive(*archive, generator, 8);

  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 128;
  mconfig.hidden2 = 64;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  auto model = std::make_unique<milan::MilanModel>(mconfig);
  std::vector<bigearthnet::LabelSet> labels;
  for (const auto& p : archive->patches) labels.push_back(p.labels);
  milan::TripletSampler sampler(labels);
  milan::TrainConfig tconfig;
  tconfig.epochs = 2;
  tconfig.batches_per_epoch = 20;
  tconfig.batch_size = 24;
  milan::Trainer trainer(model.get(), &features, &sampler, tconfig);
  if (!trainer.Train().ok()) return 1;

  // Cache knobs live on the config; defaults enable both caches.
  earthqube::EarthQubeConfig config;
  config.cache.response_capacity_bytes = 32u << 20;
  earthqube::EarthQube system(config);
  if (!system.IngestArchive(*archive).ok()) return 1;
  auto cbir =
      std::make_unique<earthqube::CbirService>(std::move(model), &extractor);
  std::vector<std::string> names;
  for (const auto& p : archive->patches) names.push_back(p.name);
  if (!cbir->AddImages(names, features).ok()) return 1;
  system.AttachCbir(std::move(cbir));

  // --- A hot CBIR request, repeated. ---------------------------------------
  earthqube::QueryRequest hot;
  hot.similarity =
      earthqube::SimilaritySpec::NameKnn(archive->patches[42].name, 20);

  bool from_cache = false;
  const double cold_ms = MillisFor(system, hot, &from_cache);
  std::printf("1st execution: %.3f ms (served_from_cache=%s)\n", cold_ms,
              from_cache ? "true" : "false");
  const double warm_ms = MillisFor(system, hot, &from_cache);
  std::printf("2nd execution: %.3f ms (served_from_cache=%s, %.0fx faster)\n",
              warm_ms, from_cache ? "true" : "false", cold_ms / warm_ms);
  PrintStats(system, "after hot CBIR repeats");

  // --- A hybrid pre-filter request: the allowlist cache kicks in. ----------
  earthqube::EarthQubeQuery panel;
  panel.label_filter = earthqube::LabelFilter::SomeLevel2(31);  // forests
  earthqube::QueryRequest hybrid;
  hybrid.panel = panel;
  hybrid.similarity =
      earthqube::SimilaritySpec::NameKnn(archive->patches[7].name, 10);
  hybrid.planner = earthqube::PlannerMode::kForcePreFilter;

  (void)MillisFor(system, hybrid, &from_cache);
  // A different similarity subject over the SAME panel filter: the
  // response cache misses, but the allowlist cache replays the filter.
  earthqube::QueryRequest hybrid2 = hybrid;
  hybrid2.similarity =
      earthqube::SimilaritySpec::NameKnn(archive->patches[99].name, 10);
  (void)MillisFor(system, hybrid2, &from_cache);
  PrintStats(system, "after hybrid pre-filter pair");

  // --- New data arrives: the epoch bump invalidates everything. ------------
  bigearthnet::ArchiveConfig bconfig;
  bconfig.num_patches = 500;
  bconfig.seed = 12;  // disjoint names from the first archive's seed
  bigearthnet::ArchiveGenerator late_generator(bconfig);
  auto late = late_generator.Generate();
  if (!late.ok()) return 1;
  // Guarantee disjoint patch names from the first archive (the metadata
  // collection's name index is unique).
  for (auto& patch : late->patches) patch.name = "LATE_" + patch.name;
  if (!system.IngestArchive(*late).ok()) return 1;

  const double post_ingest_ms = MillisFor(system, hot, &from_cache);
  std::printf(
      "after ingest:  %.3f ms (served_from_cache=%s — the bumped epoch "
      "forced a fresh execution)\n",
      post_ingest_ms, from_cache ? "true" : "false");
  PrintStats(system, "after ingest invalidation");
  return 0;
}
