/// Cluster mode end to end: three slot-sharded nodes on localhost, a
/// coordinator fanning one query tier over them, and a live slot
/// migration while the cluster keeps answering.
///
///   1. boot three ClusterNodes (full EarthQube stack each) on
///      ephemeral loopback ports and install an even slot table,
///   2. route a 3000-patch archive through the coordinator — each patch
///      lands on its slot owner only,
///   3. fan out panel, k-NN and hybrid queries and print the merged
///      answers (identical to a monolithic deployment),
///   4. migrate one slot from node 1 to node 3 live, show the MOVED
///      redirect a stale client sees, and query again.
///
/// Build & run:  ./build/examples/cluster_demo
#include <cstdio>
#include <memory>
#include <vector>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "cluster/cluster_node.h"
#include "cluster/coordinator.h"
#include "cluster/slot_table.h"
#include "common/logging.h"
#include "earthqube/cbir_service.h"
#include "earthqube/earthqube.h"
#include "json/json.h"
#include "milan/trainer.h"
#include "netsvc/client.h"

using namespace agoraeo;

namespace {

/// Prints the first rows of a /api/v2/query response body.
void PrintAnswer(const char* title, const std::string& body) {
  auto doc = json::ParseObject(body);
  if (!doc.ok()) return;
  std::printf("-- %s: total=%lld\n", title,
              static_cast<long long>(doc->Get("total")->as_int64()));
  const auto& results = doc->Get("results")->as_array();
  for (size_t i = 0; i < results.size() && i < 3; ++i) {
    const docstore::Document& row = results[i].as_document();
    const docstore::Value* distance = row.Get("distance");
    if (distance != nullptr) {
      std::printf("     %s  (distance %lld)\n",
                  row.Get("name")->as_string().c_str(),
                  static_cast<long long>(distance->as_int64()));
    } else {
      std::printf("     %s\n", row.Get("name")->as_string().c_str());
    }
  }
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kInfo);

  // --- archive + trained model (shared by all nodes) -----------------------
  std::printf("== generating archive and training MiLaN\n");
  bigearthnet::ArchiveConfig aconfig;
  aconfig.num_patches = 3000;
  aconfig.seed = 19;
  bigearthnet::ArchiveGenerator generator(aconfig);
  auto archive = generator.Generate();
  if (!archive.ok()) return 1;
  bigearthnet::FeatureExtractor extractor;
  Tensor features = extractor.ExtractArchive(*archive, generator, 4);
  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 64;
  mconfig.hidden2 = 32;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  std::vector<bigearthnet::LabelSet> labels;
  for (const auto& p : archive->patches) labels.push_back(p.labels);
  milan::TripletSampler sampler(labels);
  milan::TrainConfig tconfig;
  tconfig.epochs = 2;
  tconfig.batches_per_epoch = 12;
  tconfig.batch_size = 16;

  // Codes are computed ONCE; cluster nodes ingest precomputed codes and
  // never run the model themselves.
  auto reference = std::make_unique<milan::MilanModel>(mconfig);
  milan::Trainer trainer(reference.get(), &features, &sampler, tconfig);
  if (!trainer.Train().ok()) return 1;
  std::vector<BinaryCode> codes = reference->HashBatch(features);
  std::vector<std::string> names;
  for (const auto& patch : archive->patches) names.push_back(patch.name);

  // --- three nodes, one slot table -----------------------------------------
  std::printf("== booting 3 cluster nodes on localhost\n");
  std::vector<std::unique_ptr<earthqube::EarthQube>> systems;
  std::vector<std::unique_ptr<cluster::ClusterNode>> nodes;
  std::vector<cluster::NodeAddress> addresses;
  for (int i = 0; i < 3; ++i) {
    systems.push_back(std::make_unique<earthqube::EarthQube>());
    // Each node gets its own (untrained) model shell: only the code
    // index matters for serving, and codes arrive precomputed.
    systems.back()->AttachCbir(std::make_unique<earthqube::CbirService>(
        std::make_unique<milan::MilanModel>(mconfig), &extractor));
    cluster::ClusterNode::Options options;
    options.id = "node-" + std::to_string(i + 1);
    nodes.push_back(std::make_unique<cluster::ClusterNode>(
        systems.back().get(), options));
    if (!nodes.back()->Start(0).ok()) return 1;
    addresses.push_back(nodes.back()->address());
    std::printf("   %s listening on %s:%d\n", addresses.back().id.c_str(),
                addresses.back().host.c_str(), addresses.back().port);
  }
  const cluster::SlotTable table(addresses, cluster::kDefaultNumSlots);
  for (auto& node : nodes) node->SetTable(table);

  // --- routed ingest --------------------------------------------------------
  std::printf("== routing %zu patches through the coordinator\n",
              archive->patches.size());
  cluster::Coordinator coordinator;
  coordinator.AttachTable(table);
  if (!coordinator.IngestArchive(*archive, codes).ok()) return 1;
  for (int i = 0; i < 3; ++i) {
    std::printf("   %s holds %zu patches over %zu slots\n",
                nodes[i]->id().c_str(), systems[i]->num_images(),
                nodes[i]->owned_slot_count());
  }

  // --- fan-out queries ------------------------------------------------------
  std::printf("== fan-out queries (merged across all 3 nodes)\n");
  auto panel = coordinator.Query(
      R"({"panel":{"labels":{"operator":"some","names":["Airports",)"
      R"("Water bodies"]},"limit":40},"projection":"full"})");
  if (!panel.ok()) return 1;
  PrintAnswer("panel: airports|water", *panel);

  const std::string subject = names[17];
  auto knn = coordinator.Query(R"({"similarity":{"name":")" + subject +
                               R"(","k":8},"projection":"full"})");
  if (!knn.ok()) return 1;
  PrintAnswer(("8-NN of " + subject).c_str(), *knn);

  auto hybrid = coordinator.Query(
      R"({"panel":{"seasons":["summer"]},"similarity":{"name":")" + subject +
      R"(","radius":12},"projection":"full"})");
  if (!hybrid.ok()) return 1;
  PrintAnswer("hybrid: summer within radius 12", *hybrid);

  // --- live migration -------------------------------------------------------
  const size_t slot = cluster::SlotOf(subject, table.num_slots());
  const cluster::NodeAddress* owner = table.OwnerOfSlot(slot);
  cluster::ClusterNode* source = nullptr;
  for (auto& node : nodes) {
    if (node->id() == owner->id) source = node.get();
  }
  if (source == nullptr) return 1;
  const std::string target = owner->id == "node-3" ? "node-1" : "node-3";
  std::printf("== migrating slot %zu (%s's) from %s to %s\n", slot,
              subject.c_str(), owner->id.c_str(), target.c_str());
  if (!source->MigrateSlot(slot, target).ok()) return 1;
  std::printf("   source epoch now %llu, tombstoned slots: %zu\n",
              static_cast<unsigned long long>(source->epoch()),
              source->tombstoned_slots().size());

  // A stale client asking the OLD owner sees a MOVED redirect envelope.
  netsvc::HttpClient client;
  auto stale = client.Post(source->port(), "/api/v2/query",
                           R"({"similarity":{"name":")" + subject +
                               R"(","k":8}})");
  if (stale.ok() && stale->status_code == 308) {
    std::printf("   stale client got 308: %s\n", stale->body.c_str());
  }

  // The coordinator chases the epoch bump and keeps answering.
  auto after = coordinator.Query(R"({"similarity":{"name":")" + subject +
                                 R"(","k":8},"projection":"full"})");
  if (!after.ok()) return 1;
  PrintAnswer("same 8-NN after migration", *after);

  std::printf("== done\n");
  for (auto& node : nodes) node->Stop();
  return 0;
}
