/// Demo scenario 1 (paper §4, "Label-based Exploration"):
///
///   "Visitors can search for industrial areas adjacent to inland water
///    bodies using the label filtering functionality to detect possible
///    water pollution by industrial waste in 10 different European
///    countries.  By inspecting the label statistics view, visitors can
///    discover other land cover classes that fit the query description."
///
/// This example runs that session against a synthetic archive: the
/// AtLeast&More operator over {Industrial or commercial units, Water
/// bodies}, per-country breakdown, and the label-statistics view that
/// surfaces co-occurring land-cover classes.
#include <cstdio>
#include <map>

#include "bigearthnet/archive_generator.h"
#include "earthqube/earthqube.h"

using namespace agoraeo;

int main() {
  bigearthnet::ArchiveConfig aconfig;
  aconfig.num_patches = 20000;
  aconfig.seed = 1;
  bigearthnet::ArchiveGenerator generator(aconfig);
  auto archive = generator.Generate();
  if (!archive.ok()) return 1;

  earthqube::EarthQube system;
  if (!system.IngestArchive(*archive).ok()) return 1;
  std::printf("EarthQube loaded: %zu images across 10 countries\n\n",
              system.num_images());

  // The visitor switches the label panel off (full control), selects the
  // two Level-3 classes and the "At least & more" operator.
  const bigearthnet::LabelSet pollution_risk(
      {*bigearthnet::LabelIdFromName("Industrial or commercial units"),
       *bigearthnet::LabelIdFromName("Water bodies")});
  earthqube::EarthQubeQuery query;
  query.label_filter = earthqube::LabelFilter::AtLeastAndMore(pollution_risk);

  auto response = system.Search(query);
  if (!response.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }

  std::printf("query: At least & more {Industrial or commercial units, "
              "Water bodies}\n");
  std::printf("matches: %zu images (plan %s, %zu docs examined)\n\n",
              response->panel.total(), response->query_stats.plan.c_str(),
              response->query_stats.docs_examined);

  // Country breakdown — where is the pollution risk?
  std::map<std::string, size_t> by_country;
  for (const auto& entry : response->panel.entries()) {
    ++by_country[entry.country];
  }
  std::printf("per-country breakdown:\n");
  for (const auto& [country, count] : by_country) {
    std::printf("  %-14s %zu\n", country.c_str(), count);
  }

  // The label-statistics view (Figure 2-4): which other classes co-occur
  // with industrial waterfronts?
  std::printf("\nlabel statistics view:\n%s",
              response->statistics.RenderAscii(36).c_str());

  std::printf("\ndiscovery: classes beyond the two selected ones (candidate "
              "irrigation/pollution pathways):\n");
  for (const auto& bar : response->statistics.bars()) {
    if (pollution_risk.Contains(bar.label)) continue;
    std::printf("  %-60s %zu images\n", bar.label_name.c_str(), bar.count);
  }

  // The visitor adds the first page of results to the download cart and
  // exports the names.
  earthqube::DownloadCart cart;
  cart.AddPage(response->panel, 0);
  std::printf("\ndownload cart: %zu images queued for download\n", cart.size());
  return 0;
}
