/// Quickstart: the full AgoraEO/EarthQube pipeline in one file.
///
///   1. Synthesise a BigEarthNet-like archive (metadata + labels + geo).
///   2. Extract "deep" feature vectors for every patch.
///   3. Train MiLaN (triplet + bit-balance + quantization losses).
///   4. Build the EarthQube back end: metadata collections with indexes
///      plus the CBIR hash-table index over 128-bit binary codes.
///   5. Run a label query, a geospatial query, and a similarity search.
///
/// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "common/logging.h"
#include "earthqube/earthqube.h"
#include "milan/trainer.h"

using namespace agoraeo;

int main() {
  SetLogLevel(LogLevel::kInfo);

  // --- 1. Archive ---------------------------------------------------------
  std::printf("== 1. synthesising a BigEarthNet-like archive\n");
  bigearthnet::ArchiveConfig aconfig;
  aconfig.num_patches = 5000;
  aconfig.seed = 42;
  bigearthnet::ArchiveGenerator generator(aconfig);
  auto archive_or = generator.Generate();
  if (!archive_or.ok()) {
    std::fprintf(stderr, "archive: %s\n", archive_or.status().ToString().c_str());
    return 1;
  }
  const bigearthnet::Archive& archive = *archive_or;
  std::printf("   %zu patches across %zu scenes in 10 countries\n",
              archive.patches.size(), archive.scene_centers.size());

  // --- 2. Features ---------------------------------------------------------
  std::printf("== 2. extracting %zu-d feature vectors\n",
              bigearthnet::kFeatureDim);
  bigearthnet::FeatureExtractor extractor;
  const Tensor features = extractor.ExtractArchive(archive, generator, 8);

  // --- 3. MiLaN ------------------------------------------------------------
  std::printf("== 3. training MiLaN (128-bit deep hashing)\n");
  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 256;
  mconfig.hidden2 = 128;
  mconfig.hash_bits = 128;
  mconfig.dropout = 0.0f;
  auto model = std::make_unique<milan::MilanModel>(mconfig);

  std::vector<bigearthnet::LabelSet> labels;
  for (const auto& p : archive.patches) labels.push_back(p.labels);
  milan::TripletSampler sampler(labels);
  milan::TrainConfig tconfig;
  tconfig.epochs = 12;
  tconfig.batches_per_epoch = 40;
  tconfig.batch_size = 32;
  milan::Trainer trainer(model.get(), &features, &sampler, tconfig);
  auto train_result = trainer.Train();
  if (!train_result.ok()) {
    std::fprintf(stderr, "training: %s\n",
                 train_result.status().ToString().c_str());
    return 1;
  }
  std::printf("   loss %.4f -> %.4f over %zu epochs\n",
              train_result->epochs.front().total,
              train_result->epochs.back().total, train_result->epochs.size());

  // --- 4. EarthQube ---------------------------------------------------------
  std::printf("== 4. building the EarthQube back end\n");
  earthqube::EarthQube system;
  if (auto s = system.IngestArchive(archive); !s.ok()) {
    std::fprintf(stderr, "ingest: %s\n", s.ToString().c_str());
    return 1;
  }
  auto cbir =
      std::make_unique<earthqube::CbirService>(std::move(model), &extractor);
  std::vector<std::string> names;
  for (const auto& p : archive.patches) names.push_back(p.name);
  if (auto s = cbir->AddImages(names, features); !s.ok()) {
    std::fprintf(stderr, "cbir index: %s\n", s.ToString().c_str());
    return 1;
  }
  system.AttachCbir(std::move(cbir));
  std::printf("   metadata indexed (name PK, labels multikey, geohash), "
              "%zu codes in the hash table\n",
              system.cbir()->num_indexed());

  // --- 5a. Label query -------------------------------------------------------
  std::printf("== 5a. label query: images with coniferous forest\n");
  earthqube::EarthQubeQuery label_query;
  label_query.label_filter = earthqube::LabelFilter::Some(
      bigearthnet::LabelSet({*bigearthnet::LabelIdFromName("Coniferous forest")}));
  auto label_response = system.Search(label_query);
  if (!label_response.ok()) return 1;
  std::printf("   %zu matches (plan: %s)\n", label_response->panel.total(),
              label_response->query_stats.plan.c_str());

  // --- 5b. Geo query -----------------------------------------------------------
  std::printf("== 5b. geospatial query: a rectangle over Switzerland\n");
  earthqube::EarthQubeQuery geo_query;
  geo_query.geo = earthqube::GeoQuery::Rect({{46.0, 6.5}, {47.5, 10.0}});
  auto geo_response = system.Search(geo_query);
  if (!geo_response.ok()) return 1;
  std::printf("   %zu matches (plan: %s)\n", geo_response->panel.total(),
              geo_response->query_stats.plan.c_str());

  // --- 5c. CBIR ---------------------------------------------------------------
  const std::string& query_image = archive.patches[7].name;
  std::printf("== 5c. similarity search for %s\n", query_image.c_str());
  std::printf("   query labels: %s\n",
              archive.patches[7].labels.ToString().c_str());
  auto similar = system.NearestToArchiveImage(query_image, 5);
  if (!similar.ok()) return 1;
  for (const auto& entry : similar->panel.entries()) {
    std::printf("   -> %-42s [%s]\n", entry.name.c_str(),
                entry.labels.ToString().c_str());
  }
  std::printf("\nlabel statistics of the retrieval:\n%s",
              similar->statistics.RenderAscii(30).c_str());
  std::printf("\nquickstart complete.\n");
  return 0;
}
