/// The AgoraEO ecosystem loop (paper §1: "offer, discover, combine, and
/// efficiently execute EO-related assets").  This example:
///
///   1. offers the demo's assets (BigEarthNet dataset, MiLaN algorithm,
///      EarthQube tool) in the Agora asset catalog,
///   2. discovers them back with tag and text queries,
///   3. combines EarthQube capabilities into an executable pipeline
///      (search -> CBIR -> label statistics), and
///   4. executes it, printing the per-step trace.
///
/// Build & run:  ./build/examples/agora_ecosystem
#include <cstdio>
#include <memory>

#include "agora/catalog.h"
#include "agora/earthqube_ops.h"
#include "agora/pipeline.h"
#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "common/logging.h"
#include "earthqube/earthqube.h"
#include "milan/trainer.h"

using namespace agoraeo;

int main() {
  SetLogLevel(LogLevel::kInfo);

  // --- back end (condensed quickstart) -------------------------------------
  std::printf("== preparing EarthQube (archive + MiLaN + indexes)\n");
  bigearthnet::ArchiveConfig aconfig;
  aconfig.num_patches = 4000;
  aconfig.seed = 7;
  bigearthnet::ArchiveGenerator generator(aconfig);
  auto archive = generator.Generate();
  if (!archive.ok()) return 1;
  earthqube::EarthQube system;
  if (!system.IngestArchive(*archive).ok()) return 1;

  bigearthnet::FeatureExtractor extractor;
  Tensor features = extractor.ExtractArchive(*archive, generator, 4);
  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 128;
  mconfig.hidden2 = 64;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  auto model = std::make_unique<milan::MilanModel>(mconfig);
  std::vector<bigearthnet::LabelSet> labels;
  for (const auto& p : archive->patches) labels.push_back(p.labels);
  milan::TripletSampler sampler(labels);
  milan::TrainConfig tconfig;
  tconfig.epochs = 6;
  tconfig.batches_per_epoch = 25;
  milan::Trainer trainer(model.get(), &features, &sampler, tconfig);
  if (!trainer.Train().ok()) return 1;
  auto cbir = std::make_unique<earthqube::CbirService>(
      std::move(model), new bigearthnet::FeatureExtractor());
  std::vector<std::string> names;
  for (const auto& p : archive->patches) names.push_back(p.name);
  if (!cbir->AddImages(names, features).ok()) return 1;
  system.AttachCbir(std::move(cbir));

  // --- 1. offer ---------------------------------------------------------------
  std::printf("\n== 1. offering assets in the Agora catalog\n");
  agora::AssetCatalog catalog;
  if (!agora::OfferStandardAssets(&catalog, archive->patches.size(), 64)
           .ok()) {
    return 1;
  }
  std::printf("   catalog holds %zu assets\n", catalog.size());

  // --- 2. discover -------------------------------------------------------------
  std::printf("\n== 2. discovering assets\n");
  agora::DiscoveryQuery by_tag;
  by_tag.any_tags = {"cbir", "deep-hashing"};
  for (const auto& asset : catalog.Discover(by_tag)) {
    std::printf("   by tag   : %-22s v%d  (%s)\n", asset.name.c_str(),
                asset.version, agora::AssetKindToString(asset.kind));
  }
  agora::DiscoveryQuery by_text;
  by_text.text = "sentinel";
  for (const auto& asset : catalog.Discover(by_text)) {
    std::printf("   by text  : %-22s v%d  (%s)\n", asset.name.c_str(),
                asset.version, agora::AssetKindToString(asset.kind));
  }

  // --- 3. combine ----------------------------------------------------------------
  std::printf("\n== 3. combining a pipeline: search -> cbir -> statistics\n");
  agora::OperatorRegistry registry;
  if (!agora::RegisterEarthQubeOperators(&system, &registry).ok()) return 1;
  for (const std::string& op : registry.OperatorNames()) {
    auto sig = registry.Signature(op);
    std::printf("   operator %-22s %s\n", op.c_str(),
                sig.ok() ? sig->c_str() : "?");
  }

  docstore::Document search_params;
  search_params.Set("labels",
                    docstore::MakeStringArray({"Coniferous forest"}));
  search_params.Set("label_operator", docstore::Value("some"));
  search_params.Set("limit", docstore::Value(30));
  docstore::Document cbir_params;
  cbir_params.Set("rank", docstore::Value(0));
  cbir_params.Set("k", docstore::Value(15));

  agora::Pipeline pipeline;
  pipeline.Add("earthqube.search", search_params)
      .Add("earthqube.cbir", cbir_params)
      .Add("earthqube.statistics");
  if (!pipeline.Validate(registry).ok()) return 1;

  // --- 4. execute -----------------------------------------------------------------
  std::printf("\n== 4. executing\n");
  auto result = pipeline.Execute(registry, std::any{});
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  for (const auto& step : result->trace) {
    std::printf("   step %-24s %8.2f ms\n", step.op.c_str(), step.millis);
  }
  std::printf("\nlabel statistics of the CBIR result set:\n%s\n",
              std::any_cast<std::string>(result->output).c_str());
  return 0;
}
