/// Three-tier EarthQube (paper Section 3.2): this example stands up the
/// complete architecture in one process —
///
///   data tier      : the embedded docstore with the four collections
///   back-end tier  : the HTTP/JSON server wrapping the EarthQube facade
///   user interface : an HTTP client playing the browser's role
///
/// — and drives the same interactions the demo's UI would issue: a
/// health probe, a label search, a date-range search, a content-based
/// similarity search, patch metadata fetches and feedback submission,
/// all as real JSON over real loopback TCP.
///
/// Build & run:  ./build/examples/three_tier_server
#include <cstdio>
#include <memory>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "common/logging.h"
#include "earthqube/earthqube.h"
#include "json/json.h"
#include "milan/trainer.h"
#include "netsvc/client.h"
#include "netsvc/earthqube_service.h"
#include "netsvc/server.h"

using namespace agoraeo;

namespace {

/// Pretty-prints the interesting parts of a /api/search response.
void PrintSearchResponse(const char* title, const std::string& body) {
  auto parsed = json::ParseObject(body);
  if (!parsed.ok()) {
    std::printf("   (unparseable response: %s)\n", body.c_str());
    return;
  }
  std::printf("   %s: total=%lld plan=%s\n", title,
              static_cast<long long>(parsed->Get("total")->as_int64()),
              parsed->Get("plan")->as_string().c_str());
  const auto& results = parsed->Get("results")->as_array();
  for (size_t i = 0; i < results.size() && i < 3; ++i) {
    const auto& r = results[i].as_document();
    std::string labels;
    for (const auto& l : r.Get("labels")->as_array()) {
      if (!labels.empty()) labels += ", ";
      labels += l.as_string();
    }
    std::printf("     %zu. %s  [%s]\n", i + 1,
                r.Get("name")->as_string().c_str(), labels.c_str());
  }
  const auto& bars = parsed->Get("label_statistics")->as_array();
  if (!bars.empty()) {
    const auto& top = bars[0].as_document();
    std::printf("     dominant land cover: %s (%lld occurrences)\n",
                top.Get("label")->as_string().c_str(),
                static_cast<long long>(top.Get("count")->as_int64()));
  }
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kInfo);

  // --- data + back-end tiers ------------------------------------------------
  std::printf("== building the data tier (synthetic BigEarthNet archive)\n");
  bigearthnet::ArchiveConfig aconfig;
  aconfig.num_patches = 4000;
  aconfig.seed = 2022;
  bigearthnet::ArchiveGenerator generator(aconfig);
  auto archive = generator.Generate();
  if (!archive.ok()) return 1;

  earthqube::EarthQube system;
  if (!system.IngestArchive(*archive).ok()) return 1;

  std::printf("== training MiLaN for the CBIR endpoint\n");
  bigearthnet::FeatureExtractor extractor;
  Tensor features = extractor.ExtractArchive(*archive, generator, 4);
  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 128;
  mconfig.hidden2 = 64;
  mconfig.hash_bits = 64;
  mconfig.dropout = 0.0f;
  auto model = std::make_unique<milan::MilanModel>(mconfig);
  std::vector<bigearthnet::LabelSet> labels;
  for (const auto& p : archive->patches) labels.push_back(p.labels);
  milan::TripletSampler sampler(labels);
  milan::TrainConfig tconfig;
  tconfig.epochs = 6;
  tconfig.batches_per_epoch = 25;
  milan::Trainer trainer(model.get(), &features, &sampler, tconfig);
  if (!trainer.Train().ok()) return 1;
  auto cbir = std::make_unique<earthqube::CbirService>(
      std::move(model), new bigearthnet::FeatureExtractor());
  std::vector<std::string> names;
  for (const auto& p : archive->patches) names.push_back(p.name);
  if (!cbir->AddImages(names, features).ok()) return 1;
  system.AttachCbir(std::move(cbir));

  std::printf("== starting the back-end HTTP tier\n");
  netsvc::HttpServer server(4);
  netsvc::EarthQubeService service(&system);
  service.RegisterRoutes(&server);
  if (!server.Start(0).ok()) return 1;
  const uint16_t port = server.port();

  // --- UI tier ----------------------------------------------------------------
  netsvc::HttpClient ui;

  std::printf("\n== UI tier: GET /health\n");
  auto health = ui.Get(port, "/health");
  std::printf("   %d %s\n", health->status_code, health->body.c_str());

  std::printf("\n== UI tier: industrial areas near inland water (scenario 1)\n");
  auto s1 = ui.Post(port, "/api/search",
                    R"({"labels":{"operator":"at_least_and_more",)"
                    R"("names":["Industrial or commercial units",)"
                    R"("Water bodies"]},"limit":50})");
  PrintSearchResponse("label search", s1->body);

  std::printf("\n== UI tier: August 2017 acquisitions (date-range index)\n");
  auto s2 = ui.Post(port, "/api/search",
                    R"({"date_range":{"begin":"2017-08-01",)"
                    R"("end":"2017-08-31"},"limit":40})");
  PrintSearchResponse("date search", s2->body);

  std::printf("\n== UI tier: similarity search from an archive image\n");
  docstore::Document req;
  req.Set("name", docstore::Value(archive->patches[10].name));
  req.Set("k", docstore::Value(5));
  auto s3 = ui.Post(port, "/api/similar/by_name", json::Serialize(req));
  PrintSearchResponse("similar images", s3->body);

  std::printf("\n== UI tier: patch metadata + feedback\n");
  auto meta = ui.Get(
      port, "/api/patch/" + netsvc::UrlEncode(archive->patches[10].name));
  std::printf("   metadata: %s\n", meta->body.c_str());
  auto fb = ui.Post(port, "/api/feedback",
                    R"({"text":"found my burnt-forest study area fast"})");
  std::printf("   feedback stored: HTTP %d\n", fb->status_code);
  auto count = ui.Get(port, "/api/feedback/count");
  std::printf("   feedback count: %s\n", count->body.c_str());

  std::printf("\n== shutting down (served %zu requests)\n",
              server.requests_served());
  server.Stop();
  return 0;
}
