#include <gtest/gtest.h>

#include <memory>

#include "agora/asset.h"
#include "agora/catalog.h"
#include "agora/earthqube_ops.h"
#include "agora/pipeline.h"
#include "bigearthnet/archive_generator.h"

namespace agoraeo::agora {
namespace {

using docstore::Document;
using docstore::Value;

// ---------------------------------------------------------------------------
// Asset model
// ---------------------------------------------------------------------------

TEST(AssetKindTest, RoundTripStrings) {
  for (AssetKind kind : {AssetKind::kDataset, AssetKind::kAlgorithm,
                         AssetKind::kModel, AssetKind::kTool}) {
    auto back = AssetKindFromString(AssetKindToString(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(AssetKindFromString("spacecraft").ok());
}

TEST(AssetTest, DocumentRoundTrip) {
  Asset asset;
  asset.id = "ast_7";
  asset.kind = AssetKind::kModel;
  asset.name = "milan-bigearthnet";
  asset.version = 3;
  asset.owner = "tu-berlin";
  asset.description = "trained checkpoint";
  asset.tags = {"deep-hashing", "checkpoint"};
  asset.registered_on = CivilDate(2022, 9, 5);
  asset.metadata.Set("hash_bits", Value(128));

  auto back = DocumentToAsset(AssetToDocument(asset));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, "ast_7");
  EXPECT_EQ(back->kind, AssetKind::kModel);
  EXPECT_EQ(back->name, asset.name);
  EXPECT_EQ(back->version, 3);
  EXPECT_EQ(back->tags, asset.tags);
  EXPECT_EQ(back->metadata.Get("hash_bits")->as_int64(), 128);
}

TEST(AssetTest, MalformedDocumentRejected) {
  EXPECT_TRUE(DocumentToAsset(Document()).status().IsCorruption());
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

TEST(CatalogTest, OfferAssignsIdsAndVersions) {
  AssetCatalog catalog;
  auto v1 = catalog.Offer(AssetKind::kDataset, "bigearthnet", "tu-berlin",
                          "v1", {"eo"});
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->version, 1);
  auto v2 = catalog.Offer(AssetKind::kDataset, "bigearthnet", "tu-berlin",
                          "v2", {"eo"});
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->version, 2);
  EXPECT_NE(v1->id, v2->id);
  EXPECT_EQ(catalog.size(), 2u);
}

TEST(CatalogTest, EmptyNameRejected) {
  AssetCatalog catalog;
  EXPECT_TRUE(catalog.Offer(AssetKind::kTool, "", "x", "y", {})
                  .status()
                  .IsInvalidArgument());
}

TEST(CatalogTest, LookupLatestAndSpecific) {
  AssetCatalog catalog;
  ASSERT_TRUE(catalog.Offer(AssetKind::kModel, "m", "o", "first", {}).ok());
  ASSERT_TRUE(catalog.Offer(AssetKind::kModel, "m", "o", "second", {}).ok());
  auto latest = catalog.Lookup("m");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->description, "second");
  auto first = catalog.Lookup("m", 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->description, "first");
  EXPECT_TRUE(catalog.Lookup("m", 9).status().IsNotFound());
  EXPECT_TRUE(catalog.Lookup("ghost").status().IsNotFound());
  EXPECT_EQ(catalog.Versions("m").size(), 2u);
}

TEST(CatalogTest, DiscoveryByKindTagOwnerText) {
  AssetCatalog catalog;
  ASSERT_TRUE(catalog.Offer(AssetKind::kDataset, "bigearthnet", "tu-berlin",
                            "Sentinel archive", {"eo", "sentinel"})
                  .ok());
  ASSERT_TRUE(catalog.Offer(AssetKind::kAlgorithm, "milan", "tu-berlin",
                            "deep hashing", {"eo", "hashing"})
                  .ok());
  ASSERT_TRUE(catalog.Offer(AssetKind::kTool, "earthqube", "dfki",
                            "search engine", {"eo", "browser"})
                  .ok());

  DiscoveryQuery by_kind;
  by_kind.kinds = {AssetKind::kAlgorithm};
  auto algorithms = catalog.Discover(by_kind);
  ASSERT_EQ(algorithms.size(), 1u);
  EXPECT_EQ(algorithms[0].name, "milan");

  DiscoveryQuery by_tag;
  by_tag.any_tags = {"hashing", "browser"};
  EXPECT_EQ(catalog.Discover(by_tag).size(), 2u);

  DiscoveryQuery by_all_tags;
  by_all_tags.all_tags = {"eo", "sentinel"};
  ASSERT_EQ(catalog.Discover(by_all_tags).size(), 1u);
  EXPECT_EQ(catalog.Discover(by_all_tags)[0].name, "bigearthnet");

  DiscoveryQuery by_owner;
  by_owner.owner = "dfki";
  ASSERT_EQ(catalog.Discover(by_owner).size(), 1u);
  EXPECT_EQ(catalog.Discover(by_owner)[0].name, "earthqube");

  DiscoveryQuery by_text;
  by_text.text = "SEARCH";
  ASSERT_EQ(catalog.Discover(by_text).size(), 1u);
  EXPECT_EQ(catalog.Discover(by_text)[0].name, "earthqube");

  DiscoveryQuery everything;
  EXPECT_EQ(catalog.Discover(everything).size(), 3u);
}

TEST(CatalogTest, LatestOnlyCollapsesVersions) {
  AssetCatalog catalog;
  ASSERT_TRUE(catalog.Offer(AssetKind::kModel, "m", "o", "first", {"x"}).ok());
  ASSERT_TRUE(catalog.Offer(AssetKind::kModel, "m", "o", "second", {"x"}).ok());
  DiscoveryQuery query;
  query.any_tags = {"x"};
  auto latest = catalog.Discover(query);
  ASSERT_EQ(latest.size(), 1u);
  EXPECT_EQ(latest[0].version, 2);
  query.latest_only = false;
  EXPECT_EQ(catalog.Discover(query).size(), 2u);
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

OperatorRegistry ArithmeticRegistry() {
  OperatorRegistry registry;
  EXPECT_TRUE(registry
                  .Register("add",
                            [](const std::any& in,
                               const Document& params) -> StatusOr<std::any> {
                              const int base = std::any_cast<int>(in);
                              const Value* amount = params.Get("amount");
                              return std::any(
                                  base + static_cast<int>(
                                             amount ? amount->as_int64() : 1));
                            },
                            "int -> int")
                  .ok());
  EXPECT_TRUE(registry
                  .Register("double",
                            [](const std::any& in,
                               const Document&) -> StatusOr<std::any> {
                              return std::any(std::any_cast<int>(in) * 2);
                            },
                            "int -> int")
                  .ok());
  EXPECT_TRUE(registry
                  .Register("fail",
                            [](const std::any&,
                               const Document&) -> StatusOr<std::any> {
                              return Status::Internal("boom");
                            })
                  .ok());
  return registry;
}

TEST(RegistryTest, RegisterLookupDuplicates) {
  OperatorRegistry registry = ArithmeticRegistry();
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_TRUE(registry.Lookup("add").ok());
  EXPECT_TRUE(registry.Lookup("ghost").status().IsNotFound());
  EXPECT_TRUE(registry
                  .Register("add",
                            [](const std::any&, const Document&)
                                -> StatusOr<std::any> { return std::any(0); })
                  .IsAlreadyExists());
  EXPECT_EQ(*registry.Signature("add"), "int -> int");
  EXPECT_EQ(registry.OperatorNames().size(), 3u);
}

TEST(PipelineTest, ExecutesStepsInOrder) {
  OperatorRegistry registry = ArithmeticRegistry();
  Document add5;
  add5.Set("amount", Value(5));
  Pipeline pipeline;
  pipeline.Add("add", add5).Add("double").Add("add");
  auto result = pipeline.Execute(registry, std::any(10));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::any_cast<int>(result->output), 31);  // (10+5)*2 + 1
  ASSERT_EQ(result->trace.size(), 3u);
  EXPECT_EQ(result->trace[1].op, "double");
}

TEST(PipelineTest, EmptyPipelineRejected) {
  OperatorRegistry registry = ArithmeticRegistry();
  Pipeline pipeline;
  EXPECT_TRUE(
      pipeline.Execute(registry, std::any(1)).status().IsFailedPrecondition());
}

TEST(PipelineTest, UnknownOperatorFailsValidation) {
  OperatorRegistry registry = ArithmeticRegistry();
  Pipeline pipeline;
  pipeline.Add("ghost");
  EXPECT_TRUE(pipeline.Validate(registry).IsNotFound());
  // Execute validates everything before running anything.
  EXPECT_TRUE(pipeline.Execute(registry, std::any(1)).status().IsNotFound());
}

TEST(PipelineTest, StepErrorIsPrefixed) {
  OperatorRegistry registry = ArithmeticRegistry();
  Pipeline pipeline;
  pipeline.Add("add").Add("fail").Add("double");
  auto result = pipeline.Execute(registry, std::any(1));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  EXPECT_NE(result.status().message().find("step 'fail'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// EarthQube operators
// ---------------------------------------------------------------------------

class EarthQubeOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bigearthnet::ArchiveConfig config;
    config.num_patches = 1500;
    config.seed = 404;
    bigearthnet::ArchiveGenerator generator(config);
    auto archive = generator.Generate();
    ASSERT_TRUE(archive.ok());
    system_ = std::make_unique<earthqube::EarthQube>();
    ASSERT_TRUE(system_->IngestArchive(*archive).ok());
    ASSERT_TRUE(RegisterEarthQubeOperators(system_.get(), &registry_).ok());
  }

  std::unique_ptr<earthqube::EarthQube> system_;
  OperatorRegistry registry_;
};

TEST_F(EarthQubeOpsTest, SearchOperatorByLabels) {
  Document params;
  params.Set("labels", docstore::MakeStringArray({"Coniferous forest"}));
  Pipeline pipeline;
  pipeline.Add("earthqube.search", params);
  auto result = pipeline.Execute(registry_, std::any());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& response =
      std::any_cast<const earthqube::SearchResponse&>(result->output);
  EXPECT_GT(response.panel.total(), 0u);
}

TEST_F(EarthQubeOpsTest, SearchThenNamesPipeline) {
  Document params;
  params.Set("country", Value("Portugal"));
  params.Set("limit", Value(20));
  Pipeline pipeline;
  pipeline.Add("earthqube.search", params).Add("earthqube.names");
  auto result = pipeline.Execute(registry_, std::any());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& names =
      std::any_cast<const std::vector<std::string>&>(result->output);
  EXPECT_LE(names.size(), 20u);
  EXPECT_GT(names.size(), 0u);
}

TEST_F(EarthQubeOpsTest, StatisticsOperatorRendersChart) {
  Document params;
  params.Set("labels", docstore::MakeStringArray({"Pastures"}));
  Pipeline pipeline;
  pipeline.Add("earthqube.search", params).Add("earthqube.statistics");
  auto result = pipeline.Execute(registry_, std::any());
  ASSERT_TRUE(result.ok());
  const auto& chart = std::any_cast<const std::string&>(result->output);
  EXPECT_NE(chart.find("Pastures"), std::string::npos);
}

TEST_F(EarthQubeOpsTest, CbirOperatorRequiresSearchResponse) {
  Pipeline pipeline;
  pipeline.Add("earthqube.cbir");
  auto result = pipeline.Execute(registry_, std::any(42));
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(EarthQubeOpsTest, UnknownLabelIsError) {
  Document params;
  params.Set("labels", docstore::MakeStringArray({"Volcano"}));
  Pipeline pipeline;
  pipeline.Add("earthqube.search", params);
  EXPECT_FALSE(pipeline.Execute(registry_, std::any()).ok());
}

TEST(StandardAssetsTest, OffersFourAssets) {
  AssetCatalog catalog;
  ASSERT_TRUE(OfferStandardAssets(&catalog, 590326, 128).ok());
  EXPECT_EQ(catalog.size(), 4u);
  auto dataset = catalog.Lookup("bigearthnet");
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->metadata.Get("patches")->as_int64(), 590326);
  auto model = catalog.Lookup("milan-bigearthnet");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->metadata.Get("hash_bits")->as_int64(), 128);
  DiscoveryQuery cbir;
  cbir.any_tags = {"cbir"};
  EXPECT_EQ(catalog.Discover(cbir).size(), 2u);  // milan + earthqube
}

}  // namespace
}  // namespace agoraeo::agora
