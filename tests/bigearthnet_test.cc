#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/clc_labels.h"
#include "bigearthnet/feature_extractor.h"
#include "bigearthnet/patch.h"
#include "bigearthnet/spectral_model.h"

namespace agoraeo::bigearthnet {
namespace {

// ---------------------------------------------------------------------------
// CLC nomenclature
// ---------------------------------------------------------------------------

TEST(ClcLabelsTest, Exactly43Labels) {
  EXPECT_EQ(AllLabels().size(), 43u);
  EXPECT_EQ(kNumLabels, 43);
}

TEST(ClcLabelsTest, FiveLevel1Classes) {
  auto level1 = AllLevel1Codes();
  EXPECT_EQ(level1, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ClcLabelsTest, Level2CodesAreConsistentWithLevel1) {
  for (const auto& label : AllLabels()) {
    EXPECT_EQ(label.level2_code / 10, label.level1_code) << label.name;
    EXPECT_EQ(label.clc_code / 100, label.level1_code) << label.name;
    EXPECT_EQ(label.clc_code / 10, label.level2_code) << label.name;
  }
}

TEST(ClcLabelsTest, AsciiKeysAreUnique) {
  std::set<char> keys;
  for (const auto& label : AllLabels()) keys.insert(label.ascii_key);
  EXPECT_EQ(keys.size(), 43u);
}

TEST(ClcLabelsTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& label : AllLabels()) names.insert(label.name);
  EXPECT_EQ(names.size(), 43u);
}

TEST(ClcLabelsTest, LookupByClcCode) {
  auto id = LabelIdFromClcCode(312);
  ASSERT_TRUE(id.ok());
  EXPECT_STREQ(LabelById(*id).name, "Coniferous forest");
  EXPECT_FALSE(LabelIdFromClcCode(999).ok());
}

TEST(ClcLabelsTest, LookupByName) {
  auto id = LabelIdFromName("Sea and ocean");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(LabelById(*id).clc_code, 523);
  EXPECT_FALSE(LabelIdFromName("Desert").ok());
}

TEST(ClcLabelsTest, ForestLevel2HasThreeClasses) {
  auto forests = LabelsUnderLevel2(31);
  ASSERT_EQ(forests.size(), 3u);
  std::set<std::string> names;
  for (LabelId id : forests) names.insert(LabelById(id).name);
  EXPECT_TRUE(names.count("Broad-leaved forest"));
  EXPECT_TRUE(names.count("Coniferous forest"));
  EXPECT_TRUE(names.count("Mixed forest"));
}

TEST(ClcLabelsTest, Level1Partition) {
  // Every label belongs to exactly one Level-1 class; the five classes
  // partition the nomenclature.
  size_t total = 0;
  for (int code : AllLevel1Codes()) total += LabelsUnderLevel1(code).size();
  EXPECT_EQ(total, 43u);
  EXPECT_EQ(LabelsUnderLevel1(1).size(), 11u);  // Artificial surfaces
  EXPECT_EQ(LabelsUnderLevel1(2).size(), 11u);  // Agricultural areas
  // Forest & semi-natural has 11 classes in BigEarthNet-43: the CLC
  // nomenclature's 12th ("Glaciers and perpetual snow", code 335) does not
  // occur in the archive's 10 countries and is excluded.
  EXPECT_EQ(LabelsUnderLevel1(3).size(), 11u);
  EXPECT_EQ(LabelsUnderLevel1(4).size(), 5u);   // Wetlands
  EXPECT_EQ(LabelsUnderLevel1(5).size(), 5u);   // Water bodies
}

// One parameterized check per label: table row is internally consistent
// and lookups invert.
class LabelTableTest : public ::testing::TestWithParam<int> {};

TEST_P(LabelTableTest, RowConsistent) {
  const LabelId id = GetParam();
  const ClcLabel& label = LabelById(id);
  EXPECT_EQ(label.id, id);
  EXPECT_EQ(*LabelIdFromClcCode(label.clc_code), id);
  EXPECT_EQ(*LabelIdFromName(label.name), id);
  EXPECT_EQ(*LabelIdFromAsciiKey(label.ascii_key), id);
  EXPECT_GT(std::string(label.name).size(), 3u);
  EXPECT_LE(label.color_rgb, 0xFFFFFFu);
}

INSTANTIATE_TEST_SUITE_P(All43, LabelTableTest, ::testing::Range(0, 43));

// ---------------------------------------------------------------------------
// LabelSet
// ---------------------------------------------------------------------------

TEST(LabelSetTest, SortsAndDeduplicates) {
  LabelSet set({5, 2, 5, 40, 2});
  EXPECT_EQ(set.ids(), (std::vector<LabelId>{2, 5, 40}));
  EXPECT_EQ(set.size(), 3u);
}

TEST(LabelSetTest, ContainsOperations) {
  LabelSet set({2, 5, 40});
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(6));
  EXPECT_TRUE(set.ContainsAll(LabelSet({2, 40})));
  EXPECT_FALSE(set.ContainsAll(LabelSet({2, 41})));
  EXPECT_TRUE(set.ContainsAny(LabelSet({41, 40})));
  EXPECT_FALSE(set.ContainsAny(LabelSet({41, 42})));
  EXPECT_FALSE(set.ContainsAny(LabelSet()));
}

TEST(LabelSetTest, AddKeepsSorted) {
  LabelSet set;
  set.Add(10);
  set.Add(3);
  set.Add(10);
  set.Add(7);
  EXPECT_EQ(set.ids(), (std::vector<LabelId>{3, 7, 10}));
}

TEST(LabelSetTest, AsciiKeysRoundTrip) {
  LabelSet set({0, 5, 23, 42});
  const std::string keys = set.ToAsciiKeys();
  EXPECT_EQ(keys.size(), 4u);
  auto back = LabelSet::FromAsciiKeys(keys);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, set);
}

TEST(LabelSetTest, FromAsciiRejectsUnknownKey) {
  EXPECT_FALSE(LabelSet::FromAsciiKeys("~").ok());
}

TEST(LabelSetTest, ToStringNamesLabels) {
  LabelSet set({23});
  EXPECT_EQ(set.ToString(), "Coniferous forest");
}

// ---------------------------------------------------------------------------
// Sentinel band geometry
// ---------------------------------------------------------------------------

TEST(BandGeometryTest, ResolutionsMatchPaper) {
  // 4 bands at 10 m -> 120 px, 6 at 20 m -> 60 px, 2 at 60 m -> 20 px.
  int count10 = 0, count20 = 0, count60 = 0;
  for (int b = 0; b < kNumS2Bands; ++b) {
    const S2Band band = static_cast<S2Band>(b);
    switch (S2BandResolution(band)) {
      case 10:
        ++count10;
        EXPECT_EQ(S2BandPixels(band), 120);
        break;
      case 20:
        ++count20;
        EXPECT_EQ(S2BandPixels(band), 60);
        break;
      case 60:
        ++count60;
        EXPECT_EQ(S2BandPixels(band), 20);
        break;
      default:
        FAIL() << "unexpected resolution";
    }
  }
  EXPECT_EQ(count10, 4);
  EXPECT_EQ(count20, 6);
  EXPECT_EQ(count60, 2);
}

TEST(BandGeometryTest, BandNames) {
  EXPECT_STREQ(S2BandName(S2Band::kB02), "B02");
  EXPECT_STREQ(S2BandName(S2Band::kB8A), "B8A");
  EXPECT_STREQ(S1ChannelName(S1Channel::kVV), "VV");
  EXPECT_STREQ(S1ChannelName(S1Channel::kVH), "VH");
}

// ---------------------------------------------------------------------------
// Spectral model
// ---------------------------------------------------------------------------

TEST(SpectralModelTest, WaterHasNegativeNdvi) {
  SpectralModel model;
  auto water = LabelIdFromName("Water bodies");
  ASSERT_TRUE(water.ok());
  const auto& sig = model.signature(*water);
  const float nir = sig.s2_dn[static_cast<size_t>(S2Band::kB08)];
  const float red = sig.s2_dn[static_cast<size_t>(S2Band::kB04)];
  EXPECT_LT(nir, red);  // NDVI < 0
}

TEST(SpectralModelTest, ForestHasHighNdvi) {
  SpectralModel model;
  for (const char* name : {"Broad-leaved forest", "Coniferous forest"}) {
    const auto& sig = model.signature(*LabelIdFromName(name));
    const float nir = sig.s2_dn[static_cast<size_t>(S2Band::kB08)];
    const float red = sig.s2_dn[static_cast<size_t>(S2Band::kB04)];
    EXPECT_GT((nir - red) / (nir + red), 0.5f) << name;
  }
}

TEST(SpectralModelTest, UrbanBrighterThanWater) {
  SpectralModel model;
  const auto& urban = model.signature(*LabelIdFromName("Continuous urban fabric"));
  const auto& water = model.signature(*LabelIdFromName("Sea and ocean"));
  for (int b = 0; b < kNumS2Bands; ++b) {
    EXPECT_GT(urban.s2_dn[static_cast<size_t>(b)],
              water.s2_dn[static_cast<size_t>(b)]);
  }
  // Urban backscatter is much stronger than water's.
  EXPECT_GT(urban.s1_dn[0], water.s1_dn[0] + 1000);
}

TEST(SpectralModelTest, BurntAreasShowSwirSignature) {
  SpectralModel model;
  const auto& burnt = model.signature(*LabelIdFromName("Burnt areas"));
  const float nir = burnt.s2_dn[static_cast<size_t>(S2Band::kB08)];
  const float swir = burnt.s2_dn[static_cast<size_t>(S2Band::kB12)];
  EXPECT_GT(swir, nir);  // post-fire SWIR rise
}

TEST(SpectralModelTest, DistinctClassesAreDistinct) {
  SpectralModel model;
  for (LabelId a = 0; a < kNumLabels; ++a) {
    for (LabelId b = a + 1; b < kNumLabels; ++b) {
      float diff = 0;
      for (int band = 0; band < kNumS2Bands; ++band) {
        diff += std::fabs(model.signature(a).s2_dn[static_cast<size_t>(band)] -
                          model.signature(b).s2_dn[static_cast<size_t>(band)]);
      }
      EXPECT_GT(diff, 1.0f) << "classes " << a << " and " << b;
    }
  }
}

TEST(SpectralModelTest, BlendIsConvex) {
  SpectralModel model;
  LabelSet labels({22, 39});  // broadleaf forest + water bodies
  const auto blend = model.Blend(labels);
  for (int b = 0; b < kNumS2Bands; ++b) {
    const float lo = std::min(model.signature(22).s2_dn[static_cast<size_t>(b)],
                              model.signature(39).s2_dn[static_cast<size_t>(b)]);
    const float hi = std::max(model.signature(22).s2_dn[static_cast<size_t>(b)],
                              model.signature(39).s2_dn[static_cast<size_t>(b)]);
    EXPECT_GE(blend.s2_dn[static_cast<size_t>(b)], lo - 1e-3f);
    EXPECT_LE(blend.s2_dn[static_cast<size_t>(b)], hi + 1e-3f);
  }
}

TEST(SpectralModelTest, BlendWeightsShiftTowardDominantClass) {
  SpectralModel model;
  LabelSet labels({22, 39});
  const auto mostly_forest = model.Blend(labels, {0.9f, 0.1f});
  const auto mostly_water = model.Blend(labels, {0.1f, 0.9f});
  const size_t nir = static_cast<size_t>(S2Band::kB08);
  EXPECT_GT(mostly_forest.s2_dn[nir], mostly_water.s2_dn[nir]);
}

// ---------------------------------------------------------------------------
// Countries & themes
// ---------------------------------------------------------------------------

TEST(CountriesTest, TenCountriesWithValidExtents) {
  const auto& countries = BigEarthNetCountries();
  EXPECT_EQ(countries.size(), 10u);
  std::set<std::string> names;
  for (const Country& c : countries) {
    names.insert(c.name);
    EXPECT_TRUE(c.extent.IsValid()) << c.name;
  }
  for (const char* expected :
       {"Austria", "Belgium", "Finland", "Ireland", "Kosovo", "Lithuania",
        "Luxembourg", "Portugal", "Serbia", "Switzerland"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(CountriesTest, LookupByName) {
  auto c = CountryByName("Portugal");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE((*c)->has_coast);
  EXPECT_FALSE(CountryByName("Germany").ok());  // not in BigEarthNet
}

TEST(ThemesTest, FrequenciesArePositiveAndLabelsValid) {
  for (const SceneTheme& theme : SceneThemes()) {
    EXPECT_GT(theme.frequency, 0.0) << theme.name;
    EXPECT_FALSE(theme.core_labels.empty()) << theme.name;
    for (LabelId id : theme.core_labels) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, kNumLabels);
    }
    for (LabelId id : theme.satellite_labels) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, kNumLabels);
    }
  }
}

TEST(ThemesTest, ScenarioThemesExist) {
  // The demo scenarios need: industrial near inland water; coastal
  // beaches with conifers; burnt forest.
  bool industrial_water = false, coastal = false, burnt = false;
  for (const SceneTheme& theme : SceneThemes()) {
    const std::string name = theme.name;
    if (name == "industrial_waterfront") industrial_water = true;
    if (name == "coastal_beach") coastal = true;
    if (name == "burnt_forest") burnt = true;
  }
  EXPECT_TRUE(industrial_water);
  EXPECT_TRUE(coastal);
  EXPECT_TRUE(burnt);
}

// ---------------------------------------------------------------------------
// Archive generation
// ---------------------------------------------------------------------------

ArchiveConfig SmallConfig() {
  ArchiveConfig config;
  config.num_patches = 2000;
  config.seed = 7;
  config.patches_per_scene = 40;
  return config;
}

TEST(ArchiveGeneratorTest, GeneratesRequestedCount) {
  ArchiveGenerator gen(SmallConfig());
  auto archive = gen.Generate();
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ(archive->patches.size(), 2000u);
  EXPECT_EQ(archive->scene_centers.size(), archive->scene_themes.size());
}

TEST(ArchiveGeneratorTest, DeterministicForSameSeed) {
  ArchiveGenerator a(SmallConfig()), b(SmallConfig());
  auto archive_a = a.Generate();
  auto archive_b = b.Generate();
  ASSERT_TRUE(archive_a.ok() && archive_b.ok());
  for (size_t i = 0; i < archive_a->patches.size(); ++i) {
    EXPECT_EQ(archive_a->patches[i].name, archive_b->patches[i].name);
    EXPECT_TRUE(archive_a->patches[i].labels == archive_b->patches[i].labels);
  }
}

TEST(ArchiveGeneratorTest, DifferentSeedsDiffer) {
  ArchiveConfig other = SmallConfig();
  other.seed = 8;
  auto a = ArchiveGenerator(SmallConfig()).Generate();
  auto b = ArchiveGenerator(other).Generate();
  ASSERT_TRUE(a.ok() && b.ok());
  size_t same = 0;
  for (size_t i = 0; i < a->patches.size(); ++i) {
    if (a->patches[i].labels == b->patches[i].labels) ++same;
  }
  EXPECT_LT(same, a->patches.size() / 2);
}

TEST(ArchiveGeneratorTest, NamesAreUnique) {
  auto archive = ArchiveGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(archive.ok());
  std::set<std::string> names;
  for (const auto& p : archive->patches) names.insert(p.name);
  EXPECT_EQ(names.size(), archive->patches.size());
}

TEST(ArchiveGeneratorTest, EveryPatchHasLabelsAndValidGeo) {
  auto archive = ArchiveGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(archive.ok());
  for (const auto& p : archive->patches) {
    EXPECT_FALSE(p.labels.empty()) << p.name;
    EXPECT_LE(p.labels.size(), 10u) << p.name;
    EXPECT_TRUE(p.bounds.IsValid()) << p.name;
    // Patch footprint is ~1.2 km in latitude.
    EXPECT_NEAR(p.bounds.max.lat - p.bounds.min.lat, 1.2 / 111.0, 1e-6);
  }
}

TEST(ArchiveGeneratorTest, DatesWithinWindowAndSeasonsConsistent) {
  auto archive = ArchiveGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(archive.ok());
  const DateRange window{CivilDate(2017, 6, 1), CivilDate(2018, 5, 31)};
  for (const auto& p : archive->patches) {
    EXPECT_TRUE(window.Contains(p.acquisition_date)) << p.name;
    EXPECT_EQ(p.season, p.acquisition_date.GetSeason()) << p.name;
  }
}

TEST(ArchiveGeneratorTest, PatchesLieWithinTheirCountry) {
  auto archive = ArchiveGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(archive.ok());
  size_t outside = 0;
  for (const auto& p : archive->patches) {
    auto country = CountryByName(p.country);
    ASSERT_TRUE(country.ok()) << p.country;
    // Scene jitter is Gaussian; allow a small overshoot fraction.
    if (!(*country)->extent.Contains(p.bounds.Center())) ++outside;
  }
  EXPECT_LT(static_cast<double>(outside) / archive->patches.size(), 0.05);
}

TEST(ArchiveGeneratorTest, ScenesShareCountryDateAndCorrelatedLabels) {
  auto archive = ArchiveGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(archive.ok());
  std::map<int, std::vector<const PatchMetadata*>> by_scene;
  for (const auto& p : archive->patches) by_scene[p.scene_id].push_back(&p);

  for (const auto& [scene, patches] : by_scene) {
    if (patches.size() < 2) continue;
    for (size_t i = 1; i < patches.size(); ++i) {
      EXPECT_EQ(patches[i]->country, patches[0]->country);
      EXPECT_EQ(patches[i]->acquisition_date.ToString(),
                patches[0]->acquisition_date.ToString());
    }
  }
  // Label correlation: within a scene, patch pairs share a label far more
  // often than across scenes.
  Rng rng(71);
  size_t within_shared = 0, within_total = 0;
  size_t across_shared = 0, across_total = 0;
  const auto& patches = archive->patches;
  for (int trial = 0; trial < 3000; ++trial) {
    size_t i = rng.UniformInt(static_cast<uint32_t>(patches.size()));
    size_t j = rng.UniformInt(static_cast<uint32_t>(patches.size()));
    if (i == j) continue;
    const bool shared = patches[i].labels.ContainsAny(patches[j].labels);
    if (patches[i].scene_id == patches[j].scene_id) {
      within_total++;
      within_shared += shared;
    } else {
      across_total++;
      across_shared += shared;
    }
  }
  // Sampling random pairs rarely hits the same scene; sample within-scene
  // pairs directly instead.
  within_shared = within_total = 0;
  for (const auto& [scene, scene_patches] : by_scene) {
    for (size_t i = 0; i + 1 < scene_patches.size() && i < 5; ++i) {
      within_total++;
      within_shared += scene_patches[i]->labels.ContainsAny(
          scene_patches[i + 1]->labels);
    }
  }
  ASSERT_GT(within_total, 0u);
  ASSERT_GT(across_total, 0u);
  const double within_rate =
      static_cast<double>(within_shared) / within_total;
  const double across_rate =
      static_cast<double>(across_shared) / across_total;
  EXPECT_GT(within_rate, across_rate + 0.2);
}

TEST(ArchiveGeneratorTest, CountryRestrictionHonoured) {
  ArchiveConfig config = SmallConfig();
  config.countries = {"Portugal", "Ireland"};
  auto archive = ArchiveGenerator(config).Generate();
  ASSERT_TRUE(archive.ok());
  for (const auto& p : archive->patches) {
    EXPECT_TRUE(p.country == "Portugal" || p.country == "Ireland");
  }
}

TEST(ArchiveGeneratorTest, UnknownCountryRejected) {
  ArchiveConfig config = SmallConfig();
  config.countries = {"Atlantis"};
  EXPECT_TRUE(ArchiveGenerator(config).Generate().status().IsNotFound());
}

TEST(ArchiveGeneratorTest, ZeroPatchesRejected) {
  ArchiveConfig config;
  config.num_patches = 0;
  EXPECT_TRUE(
      ArchiveGenerator(config).Generate().status().IsInvalidArgument());
}

TEST(ArchiveGeneratorTest, CoastalThemesOnlyInCoastalCountries) {
  ArchiveConfig config = SmallConfig();
  config.num_patches = 4000;
  auto archive = ArchiveGenerator(config).Generate();
  ASSERT_TRUE(archive.ok());
  const auto& themes = SceneThemes();
  std::map<int, std::string> scene_country;
  for (const auto& p : archive->patches) {
    scene_country[p.scene_id] = p.country;
  }
  for (size_t scene = 0; scene < archive->scene_themes.size(); ++scene) {
    const SceneTheme& theme =
        themes[static_cast<size_t>(archive->scene_themes[scene])];
    if (!theme.coastal_only) continue;
    auto country = CountryByName(scene_country[static_cast<int>(scene)]);
    ASSERT_TRUE(country.ok());
    EXPECT_TRUE((*country)->has_coast)
        << "coastal theme " << theme.name << " in " << (*country)->name;
  }
}

// ---------------------------------------------------------------------------
// Patch synthesis
// ---------------------------------------------------------------------------

TEST(PatchSynthesisTest, BandGeometryAndDeterminism) {
  ArchiveGenerator gen(SmallConfig());
  auto archive = gen.Generate();
  ASSERT_TRUE(archive.ok());
  const PatchMetadata& meta = archive->patches[0];
  Patch patch = gen.SynthesizePatch(meta);
  ASSERT_EQ(patch.s2_bands.size(), 12u);
  ASSERT_EQ(patch.s1_channels.size(), 2u);
  for (int b = 0; b < kNumS2Bands; ++b) {
    const S2Band band = static_cast<S2Band>(b);
    EXPECT_EQ(patch.s2_bands[b].width, S2BandPixels(band));
    EXPECT_EQ(patch.s2_bands[b].height, S2BandPixels(band));
    EXPECT_EQ(patch.s2_bands[b].resolution_m, S2BandResolution(band));
    EXPECT_EQ(patch.s2_bands[b].name, S2BandName(band));
  }
  EXPECT_EQ(patch.s1_channels[0].width, 120);

  // Determinism.
  Patch again = gen.SynthesizePatch(meta);
  EXPECT_EQ(patch.s2(S2Band::kB04).pixels, again.s2(S2Band::kB04).pixels);
  EXPECT_EQ(patch.s1(S1Channel::kVV).pixels, again.s1(S1Channel::kVV).pixels);
}

TEST(PatchSynthesisTest, WaterPatchIsDarkForestIsBright) {
  ArchiveConfig config = SmallConfig();
  config.num_patches = 4000;
  ArchiveGenerator gen(config);
  auto archive = gen.Generate();
  ASSERT_TRUE(archive.ok());

  auto water_id = *LabelIdFromName("Water bodies");
  auto forest_id = *LabelIdFromName("Coniferous forest");
  const PatchMetadata* water_patch = nullptr;
  const PatchMetadata* forest_patch = nullptr;
  for (const auto& p : archive->patches) {
    if (p.labels.size() == 1 && p.labels.Contains(water_id)) water_patch = &p;
    if (p.labels.size() == 1 && p.labels.Contains(forest_id))
      forest_patch = &p;
    if (water_patch && forest_patch) break;
  }
  ASSERT_NE(water_patch, nullptr) << "no pure water patch generated";
  ASSERT_NE(forest_patch, nullptr) << "no pure conifer patch generated";

  auto mean_nir = [&](const PatchMetadata& meta) {
    Patch patch = gen.SynthesizePatch(meta);
    const auto& nir = patch.s2(S2Band::kB08);
    double sum = 0;
    for (uint16_t v : nir.pixels) sum += v;
    return sum / nir.pixels.size();
  };
  EXPECT_GT(mean_nir(*forest_patch), mean_nir(*water_patch) * 3);
}

TEST(PatchSynthesisTest, LabelWeightsSumToOne) {
  ArchiveGenerator gen(SmallConfig());
  auto archive = gen.Generate();
  ASSERT_TRUE(archive.ok());
  for (size_t i = 0; i < 50; ++i) {
    const auto weights = gen.LabelWeightsFor(archive->patches[i]);
    EXPECT_EQ(weights.size(), archive->patches[i].labels.size());
    float total = 0;
    for (float w : weights) {
      EXPECT_GT(w, 0.0f);
      total += w;
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(PatchSynthesisTest, RenderRgbShapeAndRange) {
  ArchiveGenerator gen(SmallConfig());
  auto archive = gen.Generate();
  ASSERT_TRUE(archive.ok());
  Patch patch = gen.SynthesizePatch(archive->patches[0]);
  auto rgb = RenderRgb(patch);
  EXPECT_EQ(rgb.size(), 120u * 120u * 3u);
}

// ---------------------------------------------------------------------------
// Feature extraction
// ---------------------------------------------------------------------------

class FeatureExtractionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ArchiveConfig config;
    config.num_patches = 600;
    config.seed = 21;
    config.patches_per_scene = 30;
    gen_ = std::make_unique<ArchiveGenerator>(config);
    auto archive = gen_->Generate();
    ASSERT_TRUE(archive.ok());
    archive_ = std::move(archive).value();
  }

  std::unique_ptr<ArchiveGenerator> gen_;
  Archive archive_;
  FeatureExtractor extractor_;
};

TEST_F(FeatureExtractionTest, DimensionsAndRange) {
  const Tensor f =
      extractor_.ExtractFromMetadata(archive_.patches[0], *gen_);
  EXPECT_EQ(f.shape(), (std::vector<size_t>{kFeatureDim}));
  EXPECT_GE(f.Min(), -1.0f);  // tanh squashed
  EXPECT_LE(f.Max(), 1.0f);
}

TEST_F(FeatureExtractionTest, DeterministicPerPatch) {
  const Tensor a = extractor_.ExtractFromMetadata(archive_.patches[3], *gen_);
  const Tensor b = extractor_.ExtractFromMetadata(archive_.patches[3], *gen_);
  EXPECT_EQ(a, b);
}

TEST_F(FeatureExtractionTest, PixelAndFastPathsAgreeApproximately) {
  // The two paths share calibration: same patch's vectors must be far
  // closer to each other than vectors of unrelated patches.
  double same = 0, cross = 0;
  int n = 10;
  for (int i = 0; i < n; ++i) {
    const auto& meta = archive_.patches[static_cast<size_t>(i)];
    Patch patch = gen_->SynthesizePatch(meta);
    const Tensor pixel_f = extractor_.ExtractFromPixels(patch);
    const Tensor fast_f = extractor_.ExtractFromMetadata(meta, *gen_);
    same += std::sqrt(pixel_f.SquaredDistance(fast_f));
    const auto& other =
        archive_.patches[archive_.patches.size() - 1 - static_cast<size_t>(i)];
    const Tensor other_f = extractor_.ExtractFromMetadata(other, *gen_);
    cross += std::sqrt(pixel_f.SquaredDistance(other_f));
  }
  EXPECT_LT(same / n, cross / n);
}

TEST_F(FeatureExtractionTest, MetricPropertySameLabelsCloser) {
  // Average distance between same-label-set patches must be smaller than
  // between disjoint-label patches: the property MiLaN training needs.
  std::vector<Tensor> features;
  for (size_t i = 0; i < 300; ++i) {
    features.push_back(
        extractor_.ExtractFromMetadata(archive_.patches[i], *gen_));
  }
  double same_sum = 0, diff_sum = 0;
  size_t same_n = 0, diff_n = 0;
  for (size_t i = 0; i < 300; ++i) {
    for (size_t j = i + 1; j < 300; ++j) {
      const double d = features[i].SquaredDistance(features[j]);
      if (archive_.patches[i].labels == archive_.patches[j].labels) {
        same_sum += d;
        ++same_n;
      } else if (!archive_.patches[i].labels.ContainsAny(
                     archive_.patches[j].labels)) {
        diff_sum += d;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 10u);
  ASSERT_GT(diff_n, 10u);
  EXPECT_LT(same_sum / same_n, 0.5 * (diff_sum / diff_n));
}

TEST_F(FeatureExtractionTest, ExtractArchiveMatchesPerPatch) {
  const Tensor all = extractor_.ExtractArchive(archive_, *gen_, 4);
  EXPECT_EQ(all.shape(),
            (std::vector<size_t>{archive_.patches.size(), kFeatureDim}));
  for (size_t i : {size_t{0}, size_t{17}, size_t{599}}) {
    const Tensor row = all.Row(i);
    const Tensor single =
        extractor_.ExtractFromMetadata(archive_.patches[i], *gen_);
    EXPECT_EQ(row, single) << "row " << i;
  }
}

TEST_F(FeatureExtractionTest, RawFeatureCount) {
  Patch patch = gen_->SynthesizePatch(archive_.patches[0]);
  EXPECT_EQ(extractor_.RawFromPixels(patch).size(), kRawFeatureDim);
  EXPECT_EQ(extractor_.RawFromMetadata(archive_.patches[0], *gen_).size(),
            kRawFeatureDim);
}

TEST(PatchNameHashTest, StableAndSpreads) {
  EXPECT_EQ(PatchNameHash("abc"), PatchNameHash("abc"));
  EXPECT_NE(PatchNameHash("abc"), PatchNameHash("abd"));
  EXPECT_NE(PatchNameHash(""), PatchNameHash("a"));
}

}  // namespace
}  // namespace agoraeo::bigearthnet
