#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/simd/hamming_kernels.h"
#include "index/bk_tree.h"
#include "index/hamming_table.h"
#include "index/linear_scan.h"
#include "index/segmented_index.h"
#include "index/sharded_index.h"

namespace agoraeo::simd {
namespace {

/// Restores automatic kernel selection when a test scope ends, so a
/// failing forced-kernel test can't leak its selection into the rest of
/// the process.
struct KernelGuard {
  ~KernelGuard() { ForceKernel(""); }
};

const HammingKernel* Scalar() { return KernelByName("scalar"); }

TEST(PaddedStrideTest, RoundsToKernelFriendlyWidths) {
  EXPECT_EQ(PaddedStride(0), 0u);
  EXPECT_EQ(PaddedStride(1), 1u);
  EXPECT_EQ(PaddedStride(2), 2u);
  EXPECT_EQ(PaddedStride(3), 4u);
  EXPECT_EQ(PaddedStride(4), 4u);
  EXPECT_EQ(PaddedStride(5), 8u);
  EXPECT_EQ(PaddedStride(8), 8u);
  EXPECT_EQ(PaddedStride(9), 16u);
  EXPECT_EQ(PaddedStride(16), 16u);
}

TEST(KernelRegistryTest, ScalarAlwaysCompiledAndSupported) {
  ASSERT_NE(Scalar(), nullptr);
  EXPECT_TRUE(Scalar()->supported());
  // The active kernel must always be one the host can actually run.
  EXPECT_TRUE(ActiveKernel()->supported());
}

TEST(KernelRegistryTest, ForceKernelRejectsUnknownNames) {
  KernelGuard guard;
  EXPECT_FALSE(ForceKernel("no-such-kernel"));
  EXPECT_FALSE(KernelForced());
  EXPECT_TRUE(ForceKernel("scalar"));
  EXPECT_TRUE(KernelForced());
  EXPECT_EQ(std::string(ActiveKernel()->name), "scalar");
  EXPECT_TRUE(ForceKernel(""));
  EXPECT_FALSE(KernelForced());
}

TEST(KernelRegistryTest, DispatchCountsAdvanceWithScans) {
  KernelGuard guard;
  ASSERT_TRUE(ForceKernel("scalar"));
  const auto& kernels = CompiledKernels();
  size_t scalar_index = kernels.size();
  for (size_t i = 0; i < kernels.size(); ++i) {
    if (std::string(kernels[i]->name) == "scalar") scalar_index = i;
  }
  ASSERT_LT(scalar_index, kernels.size());
  const uint64_t before = DispatchCount(scalar_index);

  index::LinearScanIndex idx;
  Rng rng(7);
  for (index::ItemId id = 0; id < 10; ++id) {
    BinaryCode code(128);
    for (size_t b = 0; b < 128; ++b) code.SetBit(b, rng.Bernoulli(0.5));
    ASSERT_TRUE(idx.Add(id, code).ok());
  }
  BinaryCode query(128);
  idx.RadiusSearch(query, 8);
  idx.KnnSearch(query, 3);
  EXPECT_GE(DispatchCount(scalar_index), before + 2);
}

// ---------------------------------------------------------------------------
// Kernel/scalar fuzz parity: every compiled+supported kernel must be
// byte-identical to the scalar reference for batch and pair distances,
// across code widths including non-power-of-two word counts and row
// counts that leave partial vector tails.
// ---------------------------------------------------------------------------

TEST(KernelParityTest, BatchAndPairMatchScalarAcrossWidths) {
  Rng rng(42);
  // words-per-code for 64/128/192/256/512-bit codes plus padding cases.
  const size_t kWidths[] = {1, 2, 3, 4, 5, 8, 9, 16};
  const size_t kRowCounts[] = {0, 1, 2, 3, 5, 7, 8, 9, 63, 257};
  for (size_t wpc : kWidths) {
    const size_t stride = PaddedStride(wpc);
    for (size_t n : kRowCounts) {
      AlignedWordBuffer rows(n * stride, 0);
      AlignedWordBuffer query(stride, 0);
      for (size_t i = 0; i < n; ++i) {
        for (size_t w = 0; w < wpc; ++w) {
          rows[i * stride + w] = rng.NextUint64();
        }
      }
      for (size_t w = 0; w < wpc; ++w) query[w] = rng.NextUint64();

      std::vector<uint32_t> expect(n, 0);
      Scalar()->batch(rows.data(), n, stride, query.data(), expect.data());
      // Scalar pair over the unpadded width must agree with the padded
      // batch row (zero tails XOR to zero).
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(expect[i], Scalar()->pair(rows.data() + i * stride,
                                            query.data(), wpc))
            << "wpc=" << wpc << " row=" << i;
      }

      for (const HammingKernel* kernel : CompiledKernels()) {
        if (!kernel->supported()) continue;
        std::vector<uint32_t> got(n, 0xdeadbeef);
        kernel->batch(rows.data(), n, stride, query.data(), got.data());
        ASSERT_EQ(got, expect)
            << "kernel=" << kernel->name << " wpc=" << wpc << " n=" << n;
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(kernel->pair(rows.data() + i * stride, query.data(), wpc),
                    static_cast<uint64_t>(expect[i]))
              << "kernel=" << kernel->name << " wpc=" << wpc << " row=" << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace agoraeo::simd

namespace agoraeo::index {
namespace {

BinaryCode RandomCode(size_t bits, Rng* rng) {
  BinaryCode code(bits);
  for (size_t i = 0; i < bits; ++i) code.SetBit(i, rng->Bernoulli(0.5));
  return code;
}

std::vector<std::unique_ptr<HammingIndex>> AllIndexKinds() {
  std::vector<std::unique_ptr<HammingIndex>> kinds;
  kinds.push_back(std::make_unique<LinearScanIndex>());
  kinds.push_back(std::make_unique<HammingHashTable>());
  kinds.push_back(std::make_unique<MultiIndexHashing>(4));
  kinds.push_back(std::make_unique<BkTree>());
  kinds.push_back(std::make_unique<ShardedHammingIndex>(
      4, [] { return std::make_unique<LinearScanIndex>(); },
      /*seal_threshold=*/64));
  kinds.push_back(std::make_unique<SegmentedHammingIndex>(
      [] { return std::make_unique<LinearScanIndex>(); },
      /*seal_threshold=*/64));
  return kinds;
}

/// Flattens a search result list for equality checks.
std::vector<std::pair<ItemId, uint32_t>> Flat(
    const std::vector<SearchResult>& results) {
  std::vector<std::pair<ItemId, uint32_t>> out;
  out.reserve(results.size());
  for (const SearchResult& r : results) out.emplace_back(r.id, r.distance);
  return out;
}

// ---------------------------------------------------------------------------
// Forced-dispatch matrix: every supported kernel, driven through the
// full index stack (all four kinds plus the sharded and segmented
// wrappers), must reproduce the forced-scalar results exactly on plain,
// batched and candidate-restricted searches.
// ---------------------------------------------------------------------------

TEST(KernelIndexMatrixTest, AllKernelsMatchScalarThroughFullStack) {
  simd::KernelGuard guard;
  constexpr size_t kBits = 192;  // 3 words: padded stride exercises tails
  constexpr size_t kItems = 700;
  constexpr uint32_t kRadius = 70;
  constexpr size_t kK = 12;

  Rng rng(1234);
  std::vector<BinaryCode> codes;
  codes.reserve(kItems);
  for (size_t i = 0; i < kItems; ++i) codes.push_back(RandomCode(kBits, &rng));
  std::vector<ItemId> ids(kItems);
  for (size_t i = 0; i < kItems; ++i) ids[i] = static_cast<ItemId>(i);
  const std::vector<BinaryCode> queries(codes.begin(), codes.begin() + 8);
  std::vector<ItemId> allowed_sparse_ids, allowed_dense_ids;
  for (size_t i = 0; i < kItems; i += 13) allowed_sparse_ids.push_back(i);
  for (size_t i = 0; i < kItems; ++i) {
    if (i % 3 != 0) allowed_dense_ids.push_back(i);
  }
  const CandidateSet sparse(allowed_sparse_ids);
  const CandidateSet dense(allowed_dense_ids);

  struct Expected {
    std::vector<std::pair<ItemId, uint32_t>> radius, knn;
    std::vector<std::pair<ItemId, uint32_t>> radius_sparse, radius_dense;
    std::vector<std::pair<ItemId, uint32_t>> knn_sparse, knn_dense;
    std::vector<std::vector<std::pair<ItemId, uint32_t>>> batch_radius;
    std::vector<std::vector<std::pair<ItemId, uint32_t>>> batch_knn;
  };

  auto run = [&](HammingIndex* idx) {
    Expected e;
    e.radius = Flat(idx->RadiusSearch(queries[0], kRadius));
    e.knn = Flat(idx->KnnSearch(queries[0], kK));
    e.radius_sparse = Flat(idx->RadiusSearchIn(queries[0], kRadius, sparse));
    e.radius_dense = Flat(idx->RadiusSearchIn(queries[0], kRadius, dense));
    e.knn_sparse = Flat(idx->KnnSearchIn(queries[0], kK, sparse));
    e.knn_dense = Flat(idx->KnnSearchIn(queries[0], kK, dense));
    for (const auto& hits : idx->BatchRadiusSearch(queries, kRadius)) {
      e.batch_radius.push_back(Flat(hits));
    }
    for (const auto& hits : idx->BatchKnnSearch(queries, kK)) {
      e.batch_knn.push_back(Flat(hits));
    }
    return e;
  };

  // Reference pass: everything forced through the scalar kernel.
  ASSERT_TRUE(simd::ForceKernel("scalar"));
  std::vector<Expected> reference;
  {
    auto kinds = AllIndexKinds();
    for (auto& idx : kinds) {
      ASSERT_TRUE(idx->BatchAdd(ids, codes).ok());
      reference.push_back(run(idx.get()));
    }
  }

  for (const simd::HammingKernel* kernel : simd::CompiledKernels()) {
    if (!kernel->supported()) continue;
    ASSERT_TRUE(simd::ForceKernel(kernel->name));
    auto kinds = AllIndexKinds();
    for (size_t kind = 0; kind < kinds.size(); ++kind) {
      ASSERT_TRUE(kinds[kind]->BatchAdd(ids, codes).ok());
      const Expected got = run(kinds[kind].get());
      const Expected& want = reference[kind];
      EXPECT_EQ(got.radius, want.radius)
          << kernel->name << " / " << kinds[kind]->Name();
      EXPECT_EQ(got.knn, want.knn)
          << kernel->name << " / " << kinds[kind]->Name();
      EXPECT_EQ(got.radius_sparse, want.radius_sparse)
          << kernel->name << " / " << kinds[kind]->Name();
      EXPECT_EQ(got.radius_dense, want.radius_dense)
          << kernel->name << " / " << kinds[kind]->Name();
      EXPECT_EQ(got.knn_sparse, want.knn_sparse)
          << kernel->name << " / " << kinds[kind]->Name();
      EXPECT_EQ(got.knn_dense, want.knn_dense)
          << kernel->name << " / " << kinds[kind]->Name();
      EXPECT_EQ(got.batch_radius, want.batch_radius)
          << kernel->name << " / " << kinds[kind]->Name();
      EXPECT_EQ(got.batch_knn, want.batch_knn)
          << kernel->name << " / " << kinds[kind]->Name();
    }
  }
}

// ---------------------------------------------------------------------------
// BatchAdd validation: a mixed-width or empty-code batch must be
// rejected up front and leave the index untouched.
// ---------------------------------------------------------------------------

TEST(LinearScanBatchAddTest, RejectsMixedWidthBatchAtomically) {
  LinearScanIndex idx;
  Rng rng(5);
  std::vector<ItemId> ids = {0, 1, 2};
  std::vector<BinaryCode> mixed = {RandomCode(128, &rng),
                                   RandomCode(64, &rng),
                                   RandomCode(128, &rng)};
  const Status status = idx.BatchAdd(ids, mixed);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(idx.size(), 0u);  // nothing from the bad batch was added

  // The index is still fully usable with a uniform batch afterwards.
  std::vector<BinaryCode> uniform = {RandomCode(128, &rng),
                                     RandomCode(128, &rng),
                                     RandomCode(128, &rng)};
  ASSERT_TRUE(idx.BatchAdd(ids, uniform).ok());
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.RadiusSearch(uniform[1], 0).size(), 1u);
}

TEST(LinearScanBatchAddTest, RejectsEmptyCodeInBatch) {
  LinearScanIndex idx;
  Rng rng(6);
  ASSERT_TRUE(idx.Add(0, RandomCode(64, &rng)).ok());
  std::vector<ItemId> ids = {1, 2};
  std::vector<BinaryCode> batch = {RandomCode(64, &rng), BinaryCode()};
  EXPECT_FALSE(idx.BatchAdd(ids, batch).ok());
  EXPECT_EQ(idx.size(), 1u);  // only the pre-existing item remains
}

TEST(LinearScanBatchAddTest, RejectsWidthMismatchAgainstExistingItems) {
  LinearScanIndex idx;
  Rng rng(8);
  ASSERT_TRUE(idx.Add(0, RandomCode(128, &rng)).ok());
  // Uniform batch, but of the wrong width for this index.
  std::vector<ItemId> ids = {1, 2};
  std::vector<BinaryCode> batch = {RandomCode(64, &rng),
                                   RandomCode(64, &rng)};
  EXPECT_FALSE(idx.BatchAdd(ids, batch).ok());
  EXPECT_EQ(idx.size(), 1u);
}

}  // namespace
}  // namespace agoraeo::index
