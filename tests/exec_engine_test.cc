/// Tests for the staged execution engine: miss coalescing
/// (singleflight), micro-batched index passes, negative caching,
/// deferred completion, admission control, and byte-parity between the
/// engine and the synchronous execution path.  The concurrency tests
/// here are part of the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "earthqube/earthqube.h"
#include "earthqube/exec/execution_engine.h"
#include "milan/trainer.h"

namespace agoraeo::earthqube {
namespace {

/// A small archive + CBIR stack behind one EarthQube.  Shared setup
/// with the facade tests, parameterised on the engine/cache config.
class EngineFixture {
 public:
  explicit EngineFixture(EarthQubeConfig system_config = {}) {
    bigearthnet::ArchiveConfig config;
    config.num_patches = 300;
    config.seed = 29;
    generator_ = std::make_unique<bigearthnet::ArchiveGenerator>(config);
    auto archive = generator_->Generate();
    if (!archive.ok()) std::abort();
    archive_ = std::move(archive).value();

    features_ = extractor_.ExtractArchive(archive_, *generator_, 2);
    system_ = std::make_unique<EarthQube>(system_config);
    if (!system_->IngestArchive(archive_).ok()) std::abort();

    milan::MilanConfig mconfig;
    mconfig.feature_dim = bigearthnet::kFeatureDim;
    mconfig.hidden1 = 32;
    mconfig.hidden2 = 16;
    mconfig.hash_bits = 32;
    mconfig.dropout = 0.0f;
    auto cbir = std::make_unique<CbirService>(
        std::make_unique<milan::MilanModel>(mconfig), &extractor_);
    std::vector<std::string> names;
    for (const auto& p : archive_.patches) names.push_back(p.name);
    if (!cbir->AddImages(names, features_).ok()) std::abort();
    system_->AttachCbir(std::move(cbir));
  }

  EarthQube& system() { return *system_; }
  const bigearthnet::Archive& archive() const { return archive_; }
  const Tensor& features() const { return features_; }

 private:
  std::unique_ptr<bigearthnet::ArchiveGenerator> generator_;
  bigearthnet::Archive archive_;
  bigearthnet::FeatureExtractor extractor_;
  Tensor features_;
  std::unique_ptr<EarthQube> system_;
};

void ExpectSameResponse(const QueryResponse& a, const QueryResponse& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].patch_name, b.hits[i].patch_name);
    EXPECT_EQ(a.hits[i].hamming_distance, b.hits[i].hamming_distance);
  }
  ASSERT_EQ(a.panel.total(), b.panel.total());
  for (size_t i = 0; i < a.panel.entries().size(); ++i) {
    EXPECT_EQ(a.panel.entries()[i].name, b.panel.entries()[i].name);
  }
  EXPECT_EQ(a.plan.strategy, b.plan.strategy);
  EXPECT_EQ(a.plan.description, b.plan.description);
  EXPECT_EQ(a.query_stats.plan, b.query_stats.plan);
  EXPECT_EQ(a.query_stats.docs_examined, b.query_stats.docs_examined);
  EXPECT_EQ(a.page, b.page);
  EXPECT_EQ(a.page_size, b.page_size);
  EXPECT_EQ(a.cursor, b.cursor);
}

QueryRequest NameRadiusRequest(const std::string& name, uint32_t radius) {
  QueryRequest request;
  request.similarity = SimilaritySpec::NameRadius(name, radius);
  request.projection = Projection::kHitsOnly;
  request.page_size = 0;
  return request;
}

// --- coalescer ---------------------------------------------------------------

TEST(ExecEngineTest, IdenticalConcurrentMissesExecuteOnce) {
  EngineFixture fixture;
  EarthQube& system = fixture.system();
  ExecutionEngine* engine = system.exec_engine();
  ASSERT_NE(engine, nullptr);
  const QueryRequest request =
      NameRadiusRequest(fixture.archive().patches[5].name, 8);

  // Pause the workers so every submission is admitted before any
  // executes: the N identical misses MUST collapse onto one flight.
  constexpr size_t kWaiters = 16;
  engine->Pause();
  std::vector<ExecutionEngine::Ticket> tickets;
  tickets.reserve(kWaiters);
  for (size_t i = 0; i < kWaiters; ++i) tickets.push_back(engine->Submit(request));
  const ExecStats admitted = engine->Stats();
  engine->Resume();

  std::vector<QueryResponse> responses;
  for (ExecutionEngine::Ticket& ticket : tickets) {
    auto response = ticket.Get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    responses.push_back(std::move(response).value());
  }

  // Exactly one underlying execution, N-1 coalesced waiters, one
  // response-cache miss and one put.
  EXPECT_EQ(admitted.flights, 1u);
  EXPECT_EQ(admitted.coalesced, kWaiters - 1);
  const cache::CacheStats cache_stats = system.query_cache().ResponseStats();
  EXPECT_EQ(cache_stats.misses, 1u);
  EXPECT_EQ(cache_stats.hits, 0u);
  EXPECT_EQ(cache_stats.puts, 1u);
  EXPECT_EQ(engine->Stats().completed, kWaiters);

  // All waiters share the leader's fresh response.
  for (const QueryResponse& response : responses) {
    EXPECT_FALSE(response.served_from_cache);
    ExpectSameResponse(response, responses.front());
  }
}

TEST(ExecEngineTest, ConcurrentSubmittersFromManyThreads) {
  EngineFixture fixture;
  EarthQube& system = fixture.system();
  // A hot Zipfian-ish mix from many threads; validates thread safety
  // (TSan job) and engine-vs-sync parity under real concurrency.
  EarthQubeConfig sync_config;
  sync_config.exec.enable = false;
  sync_config.cache.enable_response_cache = false;
  EngineFixture sync_fixture(sync_config);

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 24;
  std::vector<std::string> names;
  for (size_t i = 0; i < 6; ++i) {
    names.push_back(fixture.archive().patches[i * 31].name);
  }
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const std::string& name = names[(t + i) % names.size()];
        const QueryRequest request = NameRadiusRequest(name, 8);
        auto engine_response = fixture.system().Execute(request);
        if (!engine_response.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto sync_response = sync_fixture.system().Execute(request);
        if (!sync_response.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
  const ExecStats stats = system.exec_engine()->Stats();
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
}

// --- micro-batcher -----------------------------------------------------------

TEST(ExecEngineTest, DistinctMissesShareOneBatchedIndexPass) {
  EngineFixture fixture;
  EarthQube& system = fixture.system();
  ExecutionEngine* engine = system.exec_engine();

  EarthQubeConfig sync_config;
  sync_config.exec.enable = false;
  EngineFixture sync_fixture(sync_config);

  constexpr size_t kDistinct = 12;
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < kDistinct; ++i) {
    requests.push_back(
        NameRadiusRequest(fixture.archive().patches[i * 7].name, 8));
  }

  engine->Pause();
  std::vector<ExecutionEngine::Ticket> tickets;
  for (const QueryRequest& request : requests) {
    tickets.push_back(engine->Submit(request));
  }
  engine->Resume();

  std::vector<QueryResponse> responses;
  for (ExecutionEngine::Ticket& ticket : tickets) {
    auto response = ticket.Get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    responses.push_back(std::move(response).value());
  }

  // All distinct in-flight misses were fused into one batched pass.
  const ExecStats stats = engine->Stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_flights, kDistinct);
  EXPECT_EQ(stats.direct, 0u);

  // Byte-parity with the synchronous path, slot by slot.
  for (size_t i = 0; i < kDistinct; ++i) {
    auto sync_response = sync_fixture.system().Execute(requests[i]);
    ASSERT_TRUE(sync_response.ok());
    ExpectSameResponse(responses[i], *sync_response);
  }
}

TEST(ExecEngineTest, HybridPreFilterMissesShareOneRestrictedPass) {
  EngineFixture fixture;
  ExecutionEngine* engine = fixture.system().exec_engine();

  EarthQubeConfig sync_config;
  sync_config.exec.enable = false;
  EngineFixture sync_fixture(sync_config);

  // Same panel filter (the shared allowlist), distinct subjects, pinned
  // pre-filter so the planner choice is uniform.
  EarthQubeQuery panel;
  panel.seasons = {fixture.archive().patches[0].season};
  constexpr size_t kDistinct = 6;
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < kDistinct; ++i) {
    QueryRequest request;
    request.panel = panel;
    request.similarity =
        SimilaritySpec::NameRadius(fixture.archive().patches[i * 13].name, 10);
    request.planner = PlannerMode::kForcePreFilter;
    request.page_size = 0;
    requests.push_back(std::move(request));
  }

  engine->Pause();
  std::vector<ExecutionEngine::Ticket> tickets;
  for (const QueryRequest& request : requests) {
    tickets.push_back(engine->Submit(request));
  }
  engine->Resume();

  std::vector<QueryResponse> responses;
  for (ExecutionEngine::Ticket& ticket : tickets) {
    auto response = ticket.Get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    responses.push_back(std::move(response).value());
  }

  const ExecStats stats = engine->Stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_flights, kDistinct);
  // One shared docstore filter pass: the allowlist cache saw at most
  // one miss for the shared panel fingerprint.
  EXPECT_LE(fixture.system().query_cache().AllowlistStats().misses, 1u);

  for (size_t i = 0; i < kDistinct; ++i) {
    auto sync_response = sync_fixture.system().Execute(requests[i]);
    ASSERT_TRUE(sync_response.ok());
    ExpectSameResponse(responses[i], *sync_response);
  }
}

TEST(ExecEngineTest, MaxBatchBoundsOnePass) {
  EarthQubeConfig config;
  config.exec.max_batch = 4;
  EngineFixture fixture(config);
  ExecutionEngine* engine = fixture.system().exec_engine();

  constexpr size_t kDistinct = 10;
  engine->Pause();
  std::vector<ExecutionEngine::Ticket> tickets;
  for (size_t i = 0; i < kDistinct; ++i) {
    tickets.push_back(engine->Submit(
        NameRadiusRequest(fixture.archive().patches[i * 11].name, 8)));
  }
  engine->Resume();
  for (ExecutionEngine::Ticket& ticket : tickets) {
    ASSERT_TRUE(ticket.Get().ok());
  }
  const ExecStats stats = engine->Stats();
  // 10 flights at max_batch 4 -> at least 3 groups, none larger than 4.
  EXPECT_GE(stats.batches + stats.direct, 3u);
  EXPECT_EQ(stats.batched_flights + stats.direct, kDistinct);
}

TEST(ExecEngineTest, IngestPreventsCoalescingOntoStaleFlight) {
  EngineFixture fixture;
  EarthQube& system = fixture.system();
  ExecutionEngine* engine = system.exec_engine();
  const QueryRequest request =
      NameRadiusRequest(fixture.archive().patches[4].name, 8);

  engine->Pause();
  ExecutionEngine::Ticket before_ingest = engine->Submit(request);
  // The epoch bumps while the first flight is still queued: the second
  // submission must NOT share its (pre-ingest) execution.
  bigearthnet::Archive extra;
  bigearthnet::PatchMetadata twin = fixture.archive().patches[0];
  twin.name = "twin_for_epoch_guard";
  extra.patches.push_back(twin);
  ASSERT_TRUE(system.IngestArchive(extra).ok());
  ExecutionEngine::Ticket after_ingest = engine->Submit(request);
  const ExecStats admitted = engine->Stats();
  engine->Resume();

  ASSERT_TRUE(before_ingest.Get().ok());
  ASSERT_TRUE(after_ingest.Get().ok());
  EXPECT_EQ(admitted.flights, 2u);
  EXPECT_EQ(admitted.coalesced, 0u);
}

// --- negative cache ----------------------------------------------------------

TEST(ExecEngineTest, NotFoundSubjectsAreNegativeCached) {
  EngineFixture fixture;
  EarthQube& system = fixture.system();
  const QueryRequest request = NameRadiusRequest("no_such_patch", 8);

  auto first = system.Execute(request);
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsNotFound());
  EXPECT_EQ(system.query_cache().NegativeStats().puts, 1u);

  auto second = system.Execute(request);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsNotFound());
  EXPECT_EQ(second.status().message(), first.status().message());
  // Served from the negative cache: no second execution.
  EXPECT_EQ(system.query_cache().NegativeStats().hits, 1u);
  EXPECT_EQ(system.exec_engine()->Stats().negative_hits, 1u);

  // An ingest bumps the epoch: the remembered NotFound is dropped and
  // the (still unknown) name is re-resolved fresh.
  bigearthnet::Archive extra;
  bigearthnet::PatchMetadata twin = fixture.archive().patches[0];
  twin.name = "twin_of_patch_0";
  extra.patches.push_back(twin);
  ASSERT_TRUE(system.IngestArchive(extra).ok());

  auto third = system.Execute(request);
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsNotFound());
  EXPECT_GE(system.query_cache().NegativeStats().stale_drops, 1u);
}

TEST(ExecEngineTest, NegativeEntriesExpireByTtl) {
  // Injected clock: no sleeping.
  auto now = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::now());
  EarthQubeConfig config;
  config.cache.negative_ttl = std::chrono::milliseconds(50);
  config.cache.clock = [now] { return *now; };
  EngineFixture fixture(config);
  EarthQube& system = fixture.system();
  const QueryRequest request = NameRadiusRequest("still_missing", 8);

  ASSERT_FALSE(system.Execute(request).ok());
  ASSERT_FALSE(system.Execute(request).ok());
  EXPECT_EQ(system.query_cache().NegativeStats().hits, 1u);

  *now += std::chrono::milliseconds(60);
  ASSERT_FALSE(system.Execute(request).ok());
  EXPECT_EQ(system.query_cache().NegativeStats().hits, 1u);
  EXPECT_GE(system.query_cache().NegativeStats().expired_drops, 1u);
}

// --- async + admission control ----------------------------------------------

TEST(ExecEngineTest, AsyncCallbackDeliversResponse) {
  EngineFixture fixture;
  EarthQube& system = fixture.system();
  const QueryRequest request =
      NameRadiusRequest(fixture.archive().patches[2].name, 8);

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  StatusOr<QueryResponse> delivered = Status::Internal("pending");
  system.ExecuteAsync(request, [&](const StatusOr<QueryResponse>& response) {
    std::lock_guard<std::mutex> lock(mu);
    delivered = response;
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();

  auto direct = system.Execute(request);
  ASSERT_TRUE(direct.ok());
  // The replay comes from the cache; normalise the flag for parity.
  QueryResponse normalised = *direct;
  normalised.served_from_cache = false;
  ExpectSameResponse(*delivered, normalised);
}

TEST(ExecEngineTest, AdmissionQueueOverflowRejects) {
  EarthQubeConfig config;
  config.exec.max_queue = 2;
  config.exec.coalesce = false;  // force distinct flights per submit
  config.exec.micro_batch = false;
  EngineFixture fixture(config);
  ExecutionEngine* engine = fixture.system().exec_engine();

  engine->Pause();
  std::vector<ExecutionEngine::Ticket> tickets;
  for (size_t i = 0; i < 4; ++i) {
    tickets.push_back(engine->Submit(
        NameRadiusRequest(fixture.archive().patches[i].name, 8)));
  }
  engine->Resume();

  size_t rejected = 0;
  for (ExecutionEngine::Ticket& ticket : tickets) {
    auto response = ticket.Get();
    if (!response.ok()) {
      EXPECT_TRUE(response.status().IsFailedPrecondition());
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 2u);
  EXPECT_EQ(engine->Stats().rejected, 2u);
}

TEST(ExecEngineTest, InvalidRequestFailsAtAdmission) {
  EngineFixture fixture;
  QueryRequest bad;  // neither panel nor similarity
  auto response = fixture.system().Execute(bad);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsInvalidArgument());
}

// --- flight -> response-cache pre-warm ---------------------------------------

TEST(ExecEngineTest, FlightCompletionPreWarmsResponseCache) {
  EngineFixture fixture;
  EarthQube& system = fixture.system();
  ExecutionEngine* engine = system.exec_engine();
  ASSERT_NE(engine, nullptr);
  const QueryRequest request =
      NameRadiusRequest(fixture.archive().patches[9].name, 8);

  // A coalesced flight: N identical concurrent misses, one execution.
  constexpr size_t kWaiters = 6;
  engine->Pause();
  std::vector<ExecutionEngine::Ticket> tickets;
  for (size_t i = 0; i < kWaiters; ++i) {
    tickets.push_back(engine->Submit(request));
  }
  engine->Resume();
  for (ExecutionEngine::Ticket& ticket : tickets) {
    ASSERT_TRUE(ticket.Get().ok());
  }

  // The leader's completion drained the shared response into the
  // response cache before waking its waiters.
  const ExecStats after_flight = engine->Stats();
  EXPECT_EQ(after_flight.flight_warms, 1u);
  EXPECT_EQ(after_flight.warm_from_flight_hits, 0u);

  // The next identical submission is an admission-time cache hit,
  // attributed to the flight's pre-warm.
  auto warm = system.Execute(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->served_from_cache);
  const ExecStats after_hit = engine->Stats();
  EXPECT_EQ(after_hit.cache_hits, after_flight.cache_hits + 1);
  EXPECT_EQ(after_hit.warm_from_flight_hits, 1u);
  EXPECT_EQ(after_hit.flight_warms, 1u);  // a cache hit warms nothing new
}

TEST(ExecEngineTest, MicroBatchedFlightsPreWarmResponseCache) {
  EngineFixture fixture;
  EarthQube& system = fixture.system();
  ExecutionEngine* engine = system.exec_engine();
  ASSERT_NE(engine, nullptr);

  // Distinct compatible misses fuse into one batched pass; every flight
  // of the pass drains its own response into the cache.
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < 4; ++i) {
    requests.push_back(
        NameRadiusRequest(fixture.archive().patches[20 + i].name, 8));
  }
  auto batch = system.ExecuteBatch(requests);
  ASSERT_TRUE(batch.ok());
  const ExecStats after_batch = engine->Stats();
  EXPECT_GE(after_batch.batches, 1u);
  EXPECT_EQ(after_batch.flight_warms, requests.size());

  // Replaying any member of the batch hits warm-from-flight.
  auto warm = system.Execute(requests[2]);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->served_from_cache);
  EXPECT_EQ(engine->Stats().warm_from_flight_hits, 1u);
}

// --- engine-off parity -------------------------------------------------------

TEST(ExecEngineTest, EngineOffStillServesAllShapes) {
  EarthQubeConfig config;
  config.exec.enable = false;
  EngineFixture fixture(config);
  EarthQube& system = fixture.system();
  ASSERT_EQ(system.exec_engine(), nullptr);

  const QueryRequest cbir =
      NameRadiusRequest(fixture.archive().patches[1].name, 8);
  ASSERT_TRUE(system.Execute(cbir).ok());

  auto batch = system.ExecuteBatch({cbir, cbir});
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);

  std::mutex mu;
  bool called = false;
  system.ExecuteAsync(cbir, [&](const StatusOr<QueryResponse>& response) {
    std::lock_guard<std::mutex> lock(mu);
    called = response.ok();
  });
  // Engine off: the callback completes inline.
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_TRUE(called);
}

TEST(ExecEngineTest, EngineOffExecuteBatchStillDedupes) {
  EarthQubeConfig config;
  config.exec.enable = false;
  EngineFixture fixture(config);
  EarthQube& system = fixture.system();
  QueryRequest a = NameRadiusRequest(fixture.archive().patches[6].name, 9);
  QueryRequest b = NameRadiusRequest(fixture.archive().patches[17].name, 9);

  auto batch = system.ExecuteBatch({a, b, a, a, b});
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 5u);
  // Two distinct requests -> two executions: duplicates fanned out, not
  // re-executed and not served from the cache (same contract as the
  // engine's coalescer).
  const cache::CacheStats stats = system.query_cache().ResponseStats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.puts, 2u);
  ExpectSameResponse((*batch)[0], (*batch)[2]);
  ExpectSameResponse((*batch)[1], (*batch)[4]);
  EXPECT_EQ((*batch)[2].served_from_cache, (*batch)[0].served_from_cache);
}

}  // namespace
}  // namespace agoraeo::earthqube
