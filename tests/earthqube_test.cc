#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <set>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "earthqube/earthqube.h"
#include "earthqube/zip_writer.h"
#include "earthqube/query.h"
#include "earthqube/result_panel.h"
#include "earthqube/schema.h"
#include "earthqube/statistics.h"
#include "milan/trainer.h"

namespace agoraeo::earthqube {
namespace {

using bigearthnet::LabelIdFromName;
using bigearthnet::LabelSet;
using bigearthnet::PatchMetadata;

PatchMetadata SampleMeta() {
  PatchMetadata meta;
  meta.name = "S2A_MSIL2A_20170717T113321_42_7";
  meta.labels = LabelSet({2, 39});  // industrial + water bodies
  meta.country = "Portugal";
  meta.acquisition_date = CivilDate(2017, 7, 17);
  meta.season = Season::kSummer;
  meta.bounds = {{38.0, -9.0}, {38.011, -8.989}};
  return meta;
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

TEST(SchemaTest, MetadataRoundTripAscii) {
  const PatchMetadata meta = SampleMeta();
  auto doc = MetadataToDocument(meta, LabelEncoding::kAsciiCompressed);
  auto back = DocumentToMetadata(doc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name, meta.name);
  EXPECT_TRUE(back->labels == meta.labels);
  EXPECT_EQ(back->country, meta.country);
  EXPECT_EQ(back->acquisition_date, meta.acquisition_date);
  EXPECT_EQ(back->season, Season::kSummer);
  EXPECT_NEAR(back->bounds.min.lat, 38.0, 1e-12);
}

TEST(SchemaTest, AsciiEncodingStoresSingleCharLabels) {
  auto doc = MetadataToDocument(SampleMeta(), LabelEncoding::kAsciiCompressed);
  const auto* labels = doc.GetPath(kFieldLabels);
  ASSERT_NE(labels, nullptr);
  for (const auto& v : labels->as_array()) {
    EXPECT_EQ(v.as_string().size(), 1u);
  }
  const auto* key = doc.GetPath(kFieldLabelsKey);
  ASSERT_NE(key, nullptr);
  EXPECT_EQ(key->as_string().size(), 2u);
}

TEST(SchemaTest, FullStringEncodingStoresNames) {
  auto doc = MetadataToDocument(SampleMeta(), LabelEncoding::kFullStrings);
  const auto* labels = doc.GetPath(kFieldLabels);
  ASSERT_NE(labels, nullptr);
  bool found = false;
  for (const auto& v : labels->as_array()) {
    if (v.as_string() == "Industrial or commercial units") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SchemaTest, SatelliteParsedFromName) {
  EXPECT_EQ(SatelliteFromName("S2A_MSIL2A_x"), "S2A");
  EXPECT_EQ(SatelliteFromName("S2B_MSIL2A_x"), "S2B");
}

TEST(SchemaTest, MalformedDocumentRejected) {
  docstore::Document empty;
  EXPECT_TRUE(DocumentToMetadata(empty).status().IsCorruption());
}

TEST(SchemaTest, ImageDocumentRoundTrip) {
  bigearthnet::ArchiveConfig config;
  config.num_patches = 10;
  config.seed = 77;
  bigearthnet::ArchiveGenerator gen(config);
  auto archive = gen.Generate();
  ASSERT_TRUE(archive.ok());
  bigearthnet::Patch patch = gen.SynthesizePatch(archive->patches[0]);
  auto doc = PatchToImageDocument(patch);
  auto back = ImageDocumentToPatch(doc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->meta.name, patch.meta.name);
  ASSERT_EQ(back->s2_bands.size(), 12u);
  EXPECT_EQ(back->s2_bands[3].pixels, patch.s2_bands[3].pixels);
  EXPECT_EQ(back->s1_channels[1].pixels, patch.s1_channels[1].pixels);
}

// ---------------------------------------------------------------------------
// Query translation
// ---------------------------------------------------------------------------

TEST(QueryTest, EmptyQueryMatchesEverything) {
  EarthQubeQuery query;
  EXPECT_EQ(query.ToFilter().op(), docstore::Filter::Op::kTrue);
}

TEST(QueryTest, SomeCompilesToIn) {
  EarthQubeQuery query;
  query.label_filter = LabelFilter::Some(LabelSet({2, 39}));
  auto filter = query.ToFilter();
  EXPECT_EQ(filter.op(), docstore::Filter::Op::kIn);
  EXPECT_EQ(filter.path(), kFieldLabels);
  EXPECT_EQ(filter.values().size(), 2u);
}

TEST(QueryTest, ExactlyCompilesToLabelsKeyEquality) {
  EarthQubeQuery query;
  query.label_filter = LabelFilter::Exactly(LabelSet({2, 39}));
  auto filter = query.ToFilter();
  EXPECT_EQ(filter.op(), docstore::Filter::Op::kEq);
  EXPECT_EQ(filter.path(), kFieldLabelsKey);
}

TEST(QueryTest, AtLeastCompilesToAll) {
  EarthQubeQuery query;
  query.label_filter = LabelFilter::AtLeastAndMore(LabelSet({2, 39}));
  auto filter = query.ToFilter();
  EXPECT_EQ(filter.op(), docstore::Filter::Op::kAll);
}

TEST(QueryTest, DisabledLabelFilterIgnored) {
  EarthQubeQuery query;
  query.label_filter.enabled = false;
  query.label_filter.labels = LabelSet({2});
  EXPECT_EQ(query.ToFilter().op(), docstore::Filter::Op::kTrue);
}

TEST(QueryTest, SomeLevel2ExpandsHierarchy) {
  auto filter = LabelFilter::SomeLevel2(31);  // Forests
  EXPECT_EQ(filter.labels.size(), 3u);
}

TEST(QueryTest, CompoundQueryIsConjunction) {
  EarthQubeQuery query;
  query.geo = GeoQuery::Rect({{37, -10}, {39, -8}});
  query.date_range = DateRange{CivilDate(2017, 6, 1), CivilDate(2017, 8, 31)};
  query.satellites = {"S2A"};
  query.seasons = {Season::kSummer};
  query.label_filter = LabelFilter::Some(LabelSet({42}));
  auto filter = query.ToFilter();
  EXPECT_EQ(filter.op(), docstore::Filter::Op::kAnd);
  EXPECT_EQ(filter.children().size(), 6u);  // geo + 2 dates + sat + season + labels
}

TEST(QueryTest, OperatorNames) {
  EXPECT_STREQ(LabelOperatorToString(LabelOperator::kSome), "Some");
  EXPECT_STREQ(LabelOperatorToString(LabelOperator::kExactly), "Exactly");
  EXPECT_STREQ(LabelOperatorToString(LabelOperator::kAtLeastAndMore),
               "At least & more");
}

// ---------------------------------------------------------------------------
// Label statistics
// ---------------------------------------------------------------------------

TEST(StatisticsTest, CountsAndOrdering) {
  std::vector<LabelSet> retrievals = {LabelSet({2, 39}), LabelSet({39}),
                                      LabelSet({39, 11})};
  auto stats = LabelStatistics::FromLabelSets(retrievals);
  EXPECT_EQ(stats.num_images(), 3u);
  EXPECT_EQ(stats.total_occurrences(), 5u);
  EXPECT_EQ(stats.CountOf(39), 3u);
  EXPECT_EQ(stats.CountOf(2), 1u);
  EXPECT_EQ(stats.CountOf(22), 0u);
  ASSERT_FALSE(stats.bars().empty());
  EXPECT_EQ(stats.bars()[0].label, 39);  // most frequent first
  auto dominant = stats.DominantLabel();
  ASSERT_TRUE(dominant.ok());
  EXPECT_EQ(*dominant, 39);
}

TEST(StatisticsTest, EmptyStatistics) {
  auto stats = LabelStatistics::FromLabelSets({});
  EXPECT_EQ(stats.num_images(), 0u);
  EXPECT_TRUE(stats.DominantLabel().status().IsNotFound());
  EXPECT_EQ(stats.RenderAscii(), "(no labels)\n");
}

TEST(StatisticsTest, AsciiChartMentionsLabelsAndColors) {
  auto stats = LabelStatistics::FromLabelSets({LabelSet({39})});
  const std::string chart = stats.RenderAscii(20);
  EXPECT_NE(chart.find("Water bodies"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Result panel / cart / clustering
// ---------------------------------------------------------------------------

std::vector<ResultEntry> MakeEntries(size_t n) {
  std::vector<ResultEntry> entries;
  for (size_t i = 0; i < n; ++i) {
    ResultEntry e;
    e.name = "patch_" + std::to_string(i);
    e.labels = LabelSet({static_cast<int>(i % 43)});
    e.country = "Portugal";
    e.acquisition_date = "2017-07-17";
    e.map_location = {38.0 + (i % 10) * 0.001, -9.0 + (i / 10) * 0.001};
    entries.push_back(e);
  }
  return entries;
}

TEST(ResultPanelTest, Pagination) {
  ResultPanel panel(MakeEntries(123));
  EXPECT_EQ(panel.total(), 123u);
  EXPECT_EQ(panel.num_pages(), 3u);
  EXPECT_EQ(panel.Page(0).size(), kPageSize);
  EXPECT_EQ(panel.Page(1).size(), kPageSize);
  EXPECT_EQ(panel.Page(2).size(), 23u);
  EXPECT_TRUE(panel.Page(3).empty());
  EXPECT_EQ(panel.Page(1)[0]->name, "patch_50");
}

TEST(ResultPanelTest, NamesAsTextOnePerLine) {
  ResultPanel panel(MakeEntries(3));
  EXPECT_EQ(panel.NamesAsText(), "patch_0\npatch_1\npatch_2\n");
}

TEST(ResultPanelTest, RenderLimit) {
  EXPECT_TRUE(ResultPanel(MakeEntries(1000)).CanRenderOnMap());
  EXPECT_FALSE(ResultPanel(MakeEntries(1001)).CanRenderOnMap());
}

TEST(ResultPanelTest, FindByName) {
  ResultPanel panel(MakeEntries(10));
  ASSERT_NE(panel.FindByName("patch_7"), nullptr);
  EXPECT_EQ(panel.FindByName("patch_7")->name, "patch_7");
  EXPECT_EQ(panel.FindByName("ghost"), nullptr);
}

TEST(DownloadCartTest, DeduplicatesAcrossSearches) {
  DownloadCart cart;
  ResultPanel first(MakeEntries(60));
  ResultPanel second(MakeEntries(10));  // same names as first 10
  cart.AddPage(first, 0);
  EXPECT_EQ(cart.size(), 50u);
  cart.AddPage(first, 1);
  EXPECT_EQ(cart.size(), 60u);
  cart.AddPage(second, 0);  // all duplicates
  EXPECT_EQ(cart.size(), 60u);
  EXPECT_TRUE(cart.Contains("patch_0"));
  EXPECT_FALSE(cart.Contains("ghost"));
  cart.Clear();
  EXPECT_EQ(cart.size(), 0u);
}

TEST(MarkerClusteringTest, LowZoomCollapsesHighZoomSeparates) {
  auto entries = MakeEntries(100);
  auto coarse = ClusterMarkers(entries, 1);
  auto fine = ClusterMarkers(entries, 18);
  EXPECT_LE(coarse.size(), fine.size());
  EXPECT_EQ(coarse.size(), 1u);  // all within one huge cell

  // Counts must sum to the number of entries at every zoom.
  for (const auto& clusters : {coarse, fine}) {
    size_t total = 0;
    for (const auto& c : clusters) total += c.count;
    EXPECT_EQ(total, entries.size());
  }
}

TEST(MarkerClusteringTest, ClusterCentersAreMeans) {
  std::vector<ResultEntry> entries = MakeEntries(2);
  entries[0].map_location = {38.0, -9.0};
  entries[1].map_location = {38.0002, -9.0002};
  auto clusters = ClusterMarkers(entries, 5);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_NEAR(clusters[0].center.lat, 38.0001, 1e-6);
  EXPECT_NEAR(clusters[0].center.lon, -9.0001, 1e-6);
}

// ---------------------------------------------------------------------------
// EarthQube facade
// ---------------------------------------------------------------------------

class EarthQubeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bigearthnet::ArchiveConfig aconfig;
    aconfig.num_patches = 1200;
    aconfig.seed = 91;
    aconfig.patches_per_scene = 30;
    generator_ = new bigearthnet::ArchiveGenerator(aconfig);
    auto archive = generator_->Generate();
    ASSERT_TRUE(archive.ok());
    archive_ = new bigearthnet::Archive(std::move(archive).value());

    extractor_ = new bigearthnet::FeatureExtractor();
    features_ = new Tensor(extractor_->ExtractArchive(*archive_, *generator_, 4));

    system_ = new EarthQube();
    ASSERT_TRUE(system_->IngestArchive(*archive_).ok());

    // Train a small MiLaN and attach CBIR.
    milan::MilanConfig mconfig;
    mconfig.feature_dim = bigearthnet::kFeatureDim;
    mconfig.hidden1 = 128;
    mconfig.hidden2 = 64;
    mconfig.hash_bits = 32;
    mconfig.dropout = 0.0f;
    auto model = std::make_unique<milan::MilanModel>(mconfig);
    std::vector<LabelSet> labels;
    for (const auto& p : archive_->patches) labels.push_back(p.labels);
    milan::TripletSampler sampler(labels);
    milan::TrainConfig tconfig;
    tconfig.epochs = 5;
    tconfig.batches_per_epoch = 20;
    tconfig.batch_size = 16;
    milan::Trainer trainer(model.get(), features_, &sampler, tconfig);
    ASSERT_TRUE(trainer.Train().ok());

    auto cbir = std::make_unique<CbirService>(std::move(model), extractor_);
    std::vector<std::string> names;
    for (const auto& p : archive_->patches) names.push_back(p.name);
    ASSERT_TRUE(cbir->AddImages(names, *features_).ok());
    system_->AttachCbir(std::move(cbir));
  }

  static void TearDownTestSuite() {
    delete system_;
    delete features_;
    delete extractor_;
    delete archive_;
    delete generator_;
    system_ = nullptr;
  }

  static bigearthnet::ArchiveGenerator* generator_;
  static bigearthnet::Archive* archive_;
  static bigearthnet::FeatureExtractor* extractor_;
  static Tensor* features_;
  static EarthQube* system_;
};

bigearthnet::ArchiveGenerator* EarthQubeTest::generator_ = nullptr;
bigearthnet::Archive* EarthQubeTest::archive_ = nullptr;
bigearthnet::FeatureExtractor* EarthQubeTest::extractor_ = nullptr;
Tensor* EarthQubeTest::features_ = nullptr;
EarthQube* EarthQubeTest::system_ = nullptr;

TEST_F(EarthQubeTest, IngestedAllPatches) {
  EXPECT_EQ(system_->num_images(), archive_->patches.size());
}

TEST_F(EarthQubeTest, EmptyQueryReturnsEverything) {
  EarthQubeQuery query;
  auto response = system_->Search(query);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->panel.total(), archive_->patches.size());
  EXPECT_EQ(response->statistics.num_images(), archive_->patches.size());
}

TEST_F(EarthQubeTest, LimitIsRespected) {
  EarthQubeQuery query;
  query.limit = 25;
  auto response = system_->Search(query);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->panel.total(), 25u);
}

TEST_F(EarthQubeTest, CountrySearchViaGeo) {
  // Portugal's extent as a rectangle query.
  auto country = bigearthnet::CountryByName("Portugal");
  ASSERT_TRUE(country.ok());
  EarthQubeQuery query;
  query.geo = GeoQuery::Rect((*country)->extent);
  auto response = system_->Search(query);
  ASSERT_TRUE(response.ok());
  // Every result's center is inside (or extremely near) the extent.
  for (const auto& e : response->panel.entries()) {
    EXPECT_TRUE(e.country == "Portugal" ||
                (*country)->extent.Contains(e.map_location))
        << e.name << " from " << e.country;
  }
  // Cross-check the count against metadata.
  size_t expected = 0;
  for (const auto& p : archive_->patches) {
    if ((*country)->extent.Intersects(p.bounds)) ++expected;
  }
  EXPECT_EQ(response->panel.total(), expected);
}

TEST_F(EarthQubeTest, GeoQueryUsesIndex) {
  EarthQubeQuery query;
  query.geo = GeoQuery::Rect({{38.0, -9.5}, {39.0, -8.0}});
  auto response = system_->Search(query);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->query_stats.plan.find("geo"), std::string::npos)
      << response->query_stats.plan;
}

TEST_F(EarthQubeTest, LabelOperatorsAgreeWithGroundTruth) {
  const LabelSet targets({2, 39});  // industrial + water bodies
  size_t expect_some = 0, expect_exactly = 0, expect_atleast = 0;
  for (const auto& p : archive_->patches) {
    if (p.labels.ContainsAny(targets)) ++expect_some;
    if (p.labels == targets) ++expect_exactly;
    if (p.labels.ContainsAll(targets)) ++expect_atleast;
  }
  EarthQubeQuery query;
  query.label_filter = LabelFilter::Some(targets);
  EXPECT_EQ(system_->CountMatches(query), expect_some);
  query.label_filter = LabelFilter::Exactly(targets);
  EXPECT_EQ(system_->CountMatches(query), expect_exactly);
  query.label_filter = LabelFilter::AtLeastAndMore(targets);
  EXPECT_EQ(system_->CountMatches(query), expect_atleast);
  // Exactly <= AtLeast <= Some, and the scenario labels do co-occur.
  EXPECT_LE(expect_exactly, expect_atleast);
  EXPECT_LE(expect_atleast, expect_some);
  EXPECT_GT(expect_atleast, 0u) << "industrial_waterfront theme missing";
}

TEST_F(EarthQubeTest, SeasonAndSatelliteAndDateFilters) {
  EarthQubeQuery query;
  query.seasons = {Season::kSummer};
  query.satellites = {"S2A"};
  query.date_range = DateRange{CivilDate(2017, 6, 1), CivilDate(2017, 8, 31)};
  auto response = system_->Search(query);
  ASSERT_TRUE(response.ok());
  size_t expected = 0;
  for (const auto& p : archive_->patches) {
    if (p.season == Season::kSummer &&
        SatelliteFromName(p.name) == "S2A" &&
        p.acquisition_date >= CivilDate(2017, 6, 1) &&
        p.acquisition_date <= CivilDate(2017, 8, 31)) {
      ++expected;
    }
  }
  EXPECT_EQ(response->panel.total(), expected);
}

TEST_F(EarthQubeTest, SimilarToArchiveImageExcludesSelfAndSorts) {
  const std::string& name = archive_->patches[10].name;
  auto response = system_->SimilarToArchiveImage(name, /*radius=*/8);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->panel.FindByName(name), nullptr);  // self excluded
  EXPECT_EQ(response->query_stats.plan, "CBIR");
}

TEST_F(EarthQubeTest, SimilaritySearchFindsSemanticNeighbors) {
  // For several queries, retrieved images share labels with the query far
  // more often than random pairs would.
  size_t shared = 0, total = 0;
  for (size_t q = 0; q < 20; ++q) {
    const auto& meta = archive_->patches[q * 7];
    auto response = system_->NearestToArchiveImage(meta.name, 10);
    ASSERT_TRUE(response.ok());
    for (const auto& e : response->panel.entries()) {
      ++total;
      if (e.labels.ContainsAny(meta.labels)) ++shared;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(shared) / total, 0.6);
}

TEST_F(EarthQubeTest, BatchSimilarMatchesSequentialQueries) {
  std::vector<std::string> names;
  for (size_t i = 0; i < 6; ++i) names.push_back(archive_->patches[i * 9].name);
  names.push_back(names[0]);  // duplicate query in the same batch
  constexpr uint32_t kRadius = 8;

  auto batch = system_->BatchSimilarToArchiveImages(names, kRadius);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    auto single = system_->cbir()->QueryByName(names[i], kRadius);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*batch)[i].size(), single->size()) << "query " << i;
    for (size_t j = 0; j < single->size(); ++j) {
      EXPECT_EQ((*batch)[i][j].patch_name, (*single)[j].patch_name)
          << "query " << i << " hit " << j;
      EXPECT_EQ((*batch)[i][j].hamming_distance, (*single)[j].hamming_distance)
          << "query " << i << " hit " << j;
    }
  }
}

TEST_F(EarthQubeTest, BatchNearestMatchesSequentialKnn) {
  std::vector<std::string> names = {archive_->patches[3].name,
                                    archive_->patches[44].name,
                                    archive_->patches[100].name};
  constexpr size_t kK = 12;
  auto batch = system_->BatchNearestToArchiveImages(names, kK);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    auto single = system_->cbir()->KnnByName(names[i], kK);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*batch)[i].size(), single->size()) << "query " << i;
    for (size_t j = 0; j < single->size(); ++j) {
      EXPECT_EQ((*batch)[i][j].patch_name, (*single)[j].patch_name)
          << "query " << i << " hit " << j;
    }
    // Self is excluded from every batch slot.
    for (const auto& hit : (*batch)[i]) {
      EXPECT_NE(hit.patch_name, names[i]);
    }
  }
}

TEST_F(EarthQubeTest, BatchQueriesEdgeCases) {
  // Any unknown name fails the whole batch with NotFound.
  EXPECT_TRUE(system_
                  ->BatchSimilarToArchiveImages(
                      {archive_->patches[0].name, "ghost_patch"}, 4)
                  .status()
                  .IsNotFound());
  // An empty batch succeeds with an empty result.
  auto empty = system_->BatchSimilarToArchiveImages({}, 4);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  // k == 0 asks for no neighbours and must return none (not the k+1
  // self-match overfetch leaking through).
  auto zero_knn = system_->cbir()->KnnByName(archive_->patches[0].name, 0);
  ASSERT_TRUE(zero_knn.ok());
  EXPECT_TRUE(zero_knn->empty());
  auto zero_batch = system_->BatchNearestToArchiveImages(
      {archive_->patches[0].name, archive_->patches[1].name}, 0);
  ASSERT_TRUE(zero_batch.ok());
  ASSERT_EQ(zero_batch->size(), 2u);
  EXPECT_TRUE((*zero_batch)[0].empty());
  EXPECT_TRUE((*zero_batch)[1].empty());
}

TEST_F(EarthQubeTest, CbirQueryBatchAmortizedInferenceMatchesSingle) {
  // Batch query-by-feature: one forward pass for the matrix must yield
  // exactly the per-row single-query results.
  constexpr size_t kBatch = 5;
  const size_t dim = features_->shape()[1];
  Tensor batch_features({kBatch, dim});
  for (size_t q = 0; q < kBatch; ++q) {
    batch_features.SetRow(q, features_->Row(q * 13));
  }
  CbirService* cbir = system_->cbir();
  auto batch = cbir->QueryBatch(batch_features, /*radius=*/8);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), kBatch);
  for (size_t q = 0; q < kBatch; ++q) {
    const auto single = cbir->QueryByFeature(features_->Row(q * 13), 8);
    ASSERT_EQ((*batch)[q].size(), single.size()) << "query " << q;
    for (size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ((*batch)[q][j].patch_name, single[j].patch_name)
          << "query " << q << " hit " << j;
      EXPECT_EQ((*batch)[q][j].hamming_distance, single[j].hamming_distance)
          << "query " << q << " hit " << j;
    }
  }
  // Shape validation: rank-1 input is rejected.
  EXPECT_TRUE(
      cbir->QueryBatch(features_->Row(0), 8).status().IsInvalidArgument());
}

TEST_F(EarthQubeTest, QueryByNewExample) {
  // Synthesise a patch that is NOT part of the ingested archive by using
  // metadata from the archive but treating pixels as an upload.
  bigearthnet::Patch upload =
      generator_->SynthesizePatch(archive_->patches[33]);
  upload.meta.name = "uploaded_by_visitor";
  auto response = system_->SimilarToUploadedImage(upload, /*radius=*/10);
  ASSERT_TRUE(response.ok());
  EXPECT_GT(response->panel.total(), 0u);
  // The original archive twin should be among the closest results.
  EXPECT_NE(response->panel.FindByName(archive_->patches[33].name), nullptr);
}

TEST_F(EarthQubeTest, UnknownImageNameIsNotFound) {
  EXPECT_TRUE(
      system_->SimilarToArchiveImage("ghost_patch", 4).status().IsNotFound());
  EXPECT_TRUE(system_->GetMetadata("ghost_patch").status().IsNotFound());
}

TEST_F(EarthQubeTest, MetadataLookup) {
  auto meta = system_->GetMetadata(archive_->patches[5].name);
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->labels == archive_->patches[5].labels);
}

TEST_F(EarthQubeTest, ImagePayloadStoreAndLoad) {
  bigearthnet::Patch patch = generator_->SynthesizePatch(archive_->patches[2]);
  ASSERT_TRUE(system_->StorePatchPixels(patch).ok());
  EXPECT_TRUE(system_->StorePatchPixels(patch).IsAlreadyExists());
  auto loaded = system_->LoadPatchPixels(patch.meta.name);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->s2_bands[0].pixels, patch.s2_bands[0].pixels);
}

TEST_F(EarthQubeTest, RenderedImageStoreAndGet) {
  bigearthnet::Patch patch = generator_->SynthesizePatch(archive_->patches[4]);
  ASSERT_TRUE(system_->StoreRenderedImage(patch).ok());
  auto rgb = system_->GetRenderedImage(patch.meta.name);
  ASSERT_TRUE(rgb.ok());
  EXPECT_EQ(rgb->size(), 120u * 120u * 3u);
}

TEST_F(EarthQubeTest, FeedbackCollection) {
  const size_t before = system_->NumFeedbackEntries();
  ASSERT_TRUE(system_->SubmitFeedback("lovely beaches in the demo").ok());
  EXPECT_EQ(system_->NumFeedbackEntries(), before + 1);
}

TEST_F(EarthQubeTest, CbirWithoutServiceFailsGracefully) {
  EarthQube bare;
  EXPECT_TRUE(
      bare.SimilarToArchiveImage("x", 4).status().IsFailedPrecondition());
}


// ---------------------------------------------------------------------------
// ZipWriter / download export
// ---------------------------------------------------------------------------

TEST(ZipWriterTest, EmptyArchiveIsValid) {
  ZipWriter zip;
  const auto bytes = zip.Finish();
  ASSERT_GE(bytes.size(), 22u);
  // End-of-central-directory signature.
  EXPECT_EQ(bytes[0], 0x50);
  EXPECT_EQ(bytes[1], 0x4b);
  auto entries = ZipExtractAll(bytes);
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

TEST(ZipWriterTest, RoundTripsEntries) {
  ZipWriter zip;
  ASSERT_TRUE(zip.Add("a/metadata.json", std::string("{\"x\":1}")).ok());
  std::vector<uint8_t> binary = {0, 1, 2, 255, 254, 0, 42};
  ASSERT_TRUE(zip.Add("a/bands.bin", binary).ok());
  ASSERT_TRUE(zip.Add("manifest.txt", std::string("a\n")).ok());
  const auto bytes = zip.Finish();
  // Local-header magic "PK\3\4" first.
  ASSERT_GE(bytes.size(), 4u);
  EXPECT_EQ(bytes[2], 0x03);
  EXPECT_EQ(bytes[3], 0x04);

  auto entries = ZipExtractAll(bytes);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].first, "a/metadata.json");
  EXPECT_EQ((*entries)[1].first, "a/bands.bin");
  EXPECT_EQ((*entries)[1].second, binary);
  EXPECT_EQ(std::string((*entries)[2].second.begin(),
                        (*entries)[2].second.end()),
            "a\n");
}

TEST(ZipWriterTest, RejectsBadNamesAndDuplicates) {
  ZipWriter zip;
  EXPECT_TRUE(zip.Add("", std::string("x")).IsInvalidArgument());
  EXPECT_TRUE(zip.Add("/abs/path", std::string("x")).IsInvalidArgument());
  EXPECT_TRUE(zip.Add("back\\slash", std::string("x")).IsInvalidArgument());
  ASSERT_TRUE(zip.Add("ok.txt", std::string("x")).ok());
  EXPECT_TRUE(zip.Add("ok.txt", std::string("y")).IsAlreadyExists());
}

TEST(ZipWriterTest, ExtractDetectsCorruption) {
  ZipWriter zip;
  ASSERT_TRUE(zip.Add("f.bin", std::vector<uint8_t>(100, 7)).ok());
  auto bytes = zip.Finish();
  // Flip a payload byte: the CRC check must catch it.
  bytes[40] ^= 0xFF;
  EXPECT_TRUE(ZipExtractAll(bytes).status().IsCorruption());
  // Truncation must be detected, not crash.
  std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + 10);
  EXPECT_FALSE(ZipExtractAll(truncated).ok());
}

TEST(ZipWriterTest, DeterministicOutput) {
  auto build = [] {
    ZipWriter zip;
    (void)!zip.Add("x.txt", std::string("hello")).ok();
    return zip.Finish();
  };
  EXPECT_EQ(build(), build());
}

// ---------------------------------------------------------------------------
// Unified QueryRequest validation + paging cursor
// ---------------------------------------------------------------------------

TEST(QueryRequestTest, ValidationRules) {
  QueryRequest empty;
  EXPECT_TRUE(empty.Validate().IsInvalidArgument());

  QueryRequest panel_only;
  panel_only.panel = EarthQubeQuery{};
  EXPECT_TRUE(panel_only.Validate().ok());

  // Hits-only projection makes no sense without a similarity spec.
  panel_only.projection = Projection::kHitsOnly;
  EXPECT_TRUE(panel_only.Validate().IsInvalidArgument());

  QueryRequest conflicting;
  SimilaritySpec both = SimilaritySpec::NameRadius("x", 4);
  both.k = 5;  // radius AND k
  conflicting.similarity = both;
  EXPECT_TRUE(conflicting.Validate().IsInvalidArgument());

  SimilaritySpec no_mode;
  no_mode.archive_name = "x";
  conflicting.similarity = no_mode;
  EXPECT_TRUE(conflicting.Validate().IsInvalidArgument());

  SimilaritySpec two_subjects = SimilaritySpec::NameRadius("x", 4);
  two_subjects.code = BinaryCode(32);
  conflicting.similarity = two_subjects;
  EXPECT_TRUE(conflicting.Validate().IsInvalidArgument());

  QueryRequest ok;
  ok.similarity = SimilaritySpec::NameKnn("x", 5);
  EXPECT_TRUE(ok.Validate().ok());
}

TEST(QueryRequestTest, CursorRoundTrip) {
  const std::string token = EncodeCursor({7, 25});
  auto decoded = DecodeCursor(token);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->page, 7u);
  EXPECT_EQ(decoded->page_size, 25u);

  EXPECT_TRUE(DecodeCursor("not base64!").status().IsInvalidArgument());
  EXPECT_TRUE(DecodeCursor("aGVsbG8=").status().IsInvalidArgument());
  EXPECT_TRUE(DecodeCursor("").status().IsInvalidArgument());
}

TEST(QueryRequestTest, CursorPageWindowOverflowRejected) {
  // A crafted v3 cursor with page = 2^64-2, page_size = 1 would wrap
  // need = page*page_size + page_size + 1 to 0 and turn the windowing
  // bounds check into an out-of-bounds read; the decoder must reject it.
  const uint64_t kMax = std::numeric_limits<uint64_t>::max();
  const auto wrapped =
      DecodeCursor(EncodeCursor({kMax - 1, 1, "deadbeefdeadbeef"}));
  EXPECT_TRUE(wrapped.status().IsInvalidArgument());
  EXPECT_TRUE(IsCursorRejection(wrapped.status()));

  const auto wide = DecodeCursor(EncodeCursor({2, kMax / 2}));
  EXPECT_TRUE(wide.status().IsInvalidArgument());

  // The same window is rejected when it arrives as raw request fields.
  QueryRequest overflow;
  overflow.similarity = SimilaritySpec::NameKnn("x", 5);
  overflow.page = kMax - 1;
  overflow.page_size = 1;
  EXPECT_TRUE(overflow.Validate().IsInvalidArgument());
  overflow.page = 7;
  overflow.page_size = 25;
  EXPECT_TRUE(overflow.Validate().ok());
}

TEST(QueryRequestTest, CursorRejectionRequiresCursorTag) {
  // Every decoder failure maps to the 410 cursor_expired envelope...
  EXPECT_TRUE(IsCursorRejection(DecodeCursor("not base64!").status()));
  EXPECT_TRUE(IsCursorRejection(DecodeCursor("aGVsbG8=").status()));
  // ...but an unrelated InvalidArgument that merely mentions base64
  // (e.g. a cluster wire blob failing to decode) must stay a plain 400.
  EXPECT_FALSE(IsCursorRejection(
      Status::InvalidArgument("payload is not valid base64")));
  EXPECT_FALSE(IsCursorRejection(Status::InvalidArgument("cursor")));
  EXPECT_FALSE(
      IsCursorRejection(Status::NotFound("cursor: page window out of range")));
}

// ---------------------------------------------------------------------------
// Hybrid (filter ∧ similarity) execution and the selectivity planner
// ---------------------------------------------------------------------------

/// A small EarthQube with a CBIR service of the given kind.  The MiLaN
/// model stays untrained: hybrid parity and planner behaviour depend
/// only on codes being deterministic, not on retrieval quality.
class HybridFixture {
 public:
  explicit HybridFixture(CbirIndexKind kind,
                         EarthQubeConfig system_config = {},
                         size_t num_shards = 1) {
    bigearthnet::ArchiveConfig config;
    config.num_patches = 400;
    config.seed = 17;
    generator_ = std::make_unique<bigearthnet::ArchiveGenerator>(config);
    auto archive = generator_->Generate();
    if (!archive.ok()) std::abort();
    archive_ = std::move(archive).value();

    features_ = extractor_.ExtractArchive(archive_, *generator_, 2);
    system_ = std::make_unique<EarthQube>(system_config);
    if (!system_->IngestArchive(archive_).ok()) std::abort();

    milan::MilanConfig mconfig;
    mconfig.feature_dim = bigearthnet::kFeatureDim;
    mconfig.hidden1 = 32;
    mconfig.hidden2 = 16;
    mconfig.hash_bits = 32;
    mconfig.dropout = 0.0f;
    CbirConfig cbir_config;
    cbir_config.index_kind = kind;
    cbir_config.num_shards = num_shards;
    auto cbir = std::make_unique<CbirService>(
        std::make_unique<milan::MilanModel>(mconfig), &extractor_,
        cbir_config);
    std::vector<std::string> names;
    for (const auto& p : archive_.patches) names.push_back(p.name);
    if (!cbir->AddImages(names, features_).ok()) std::abort();
    system_->AttachCbir(std::move(cbir));
  }

  EarthQube& system() { return *system_; }
  const bigearthnet::Archive& archive() const { return archive_; }
  const Tensor& features() const { return features_; }

 private:
  std::unique_ptr<bigearthnet::ArchiveGenerator> generator_;
  bigearthnet::Archive archive_;
  bigearthnet::FeatureExtractor extractor_;
  Tensor features_;
  std::unique_ptr<EarthQube> system_;
};

std::vector<std::pair<std::string, uint32_t>> HitList(
    const QueryResponse& response) {
  std::vector<std::pair<std::string, uint32_t>> out;
  for (const CbirResult& hit : response.hits) {
    out.emplace_back(hit.patch_name, hit.hamming_distance);
  }
  return out;
}

TEST(HybridPlannerTest, PreAndPostFilterParityOnAllIndexKinds) {
  for (CbirIndexKind kind :
       {CbirIndexKind::kHashTable, CbirIndexKind::kMultiIndex,
        CbirIndexKind::kLinearScan, CbirIndexKind::kBkTree}) {
    HybridFixture fixture(kind);
    const std::string& query_name = fixture.archive().patches[3].name;

    EarthQubeQuery panel;
    panel.seasons = {Season::kSummer, Season::kAutumn};

    std::vector<SimilaritySpec> specs = {
        SimilaritySpec::NameRadius(query_name, 10),
        SimilaritySpec::NameRadius(query_name, 14, /*limit=*/12),
        SimilaritySpec::NameKnn(query_name, 9),
    };
    for (size_t s = 0; s < specs.size(); ++s) {
      QueryRequest pre;
      pre.panel = panel;
      pre.similarity = specs[s];
      pre.planner = PlannerMode::kForcePreFilter;
      pre.page_size = 0;
      QueryRequest post = pre;
      post.planner = PlannerMode::kForcePostFilter;

      auto pre_response = fixture.system().Execute(pre);
      auto post_response = fixture.system().Execute(post);
      ASSERT_TRUE(pre_response.ok()) << pre_response.status().ToString();
      ASSERT_TRUE(post_response.ok()) << post_response.status().ToString();
      EXPECT_EQ(pre_response->plan.strategy, QueryPlan::Strategy::kPreFilter);
      EXPECT_EQ(post_response->plan.strategy,
                QueryPlan::Strategy::kPostFilter);
      EXPECT_EQ(HitList(*pre_response), HitList(*post_response))
          << "kind " << static_cast<int>(kind) << " spec " << s;
      // The joined panels agree too (same entries, same order).
      ASSERT_EQ(pre_response->panel.total(), post_response->panel.total());
      for (size_t i = 0; i < pre_response->panel.entries().size(); ++i) {
        EXPECT_EQ(pre_response->panel.entries()[i].name,
                  post_response->panel.entries()[i].name);
      }
    }
  }
}

TEST(HybridPlannerTest, HybridRadiusEqualsFilterIntersection) {
  HybridFixture fixture(CbirIndexKind::kHashTable);
  EarthQube& system = fixture.system();
  const std::string& query_name = fixture.archive().patches[10].name;

  EarthQubeQuery panel;
  panel.seasons = {Season::kWinter};

  QueryRequest hybrid;
  hybrid.panel = panel;
  hybrid.similarity = SimilaritySpec::NameRadius(query_name, 12);
  hybrid.page_size = 0;
  auto response = system.Execute(hybrid);
  ASSERT_TRUE(response.ok());

  // Ground truth: CBIR radius hits intersected with the filter matches.
  auto cbir_only = system.SimilarToArchiveImage(query_name, 12);
  ASSERT_TRUE(cbir_only.ok());
  auto filter_only = system.Search(panel);
  ASSERT_TRUE(filter_only.ok());
  std::set<std::string> allowed;
  for (const auto& e : filter_only->panel.entries()) allowed.insert(e.name);

  std::vector<std::string> expected;
  for (const auto& e : cbir_only->panel.entries()) {
    if (allowed.count(e.name)) expected.push_back(e.name);
  }
  std::vector<std::string> actual;
  for (const CbirResult& hit : response->hits) {
    actual.push_back(hit.patch_name);
  }
  EXPECT_EQ(actual, expected);
  EXPECT_FALSE(response->plan.description.empty());
}

TEST(HybridPlannerTest, AutoPlannerFollowsSelectivityThreshold) {
  HybridFixture fixture(CbirIndexKind::kLinearScan);
  EarthQube& system = fixture.system();
  const std::string& query_name = fixture.archive().patches[0].name;

  // An unfiltered panel (selectivity ~1.0) must post-filter.
  QueryRequest broad;
  broad.panel = EarthQubeQuery{};
  broad.similarity = SimilaritySpec::NameKnn(query_name, 5);
  auto broad_response = system.Execute(broad);
  ASSERT_TRUE(broad_response.ok());
  EXPECT_EQ(broad_response->plan.strategy, QueryPlan::Strategy::kPostFilter);
  EXPECT_GT(broad_response->plan.estimated_selectivity,
            system.config().prefilter_selectivity_threshold);

  // An exact-label-set panel (hash-indexed, few documents) should fall
  // below the threshold and pre-filter.
  EarthQubeQuery narrow_panel;
  narrow_panel.label_filter =
      LabelFilter::Exactly(fixture.archive().patches[0].labels);
  QueryRequest narrow;
  narrow.panel = narrow_panel;
  narrow.similarity = SimilaritySpec::NameKnn(query_name, 5);
  auto narrow_response = system.Execute(narrow);
  ASSERT_TRUE(narrow_response.ok());
  if (narrow_response->plan.estimated_selectivity <=
      system.config().prefilter_selectivity_threshold) {
    EXPECT_EQ(narrow_response->plan.strategy,
              QueryPlan::Strategy::kPreFilter);
  }
}

// ---------------------------------------------------------------------------
// The partitioned index through the whole stack: a sharded EarthQube
// answers byte-identically to an unsharded one on every query shape
// ---------------------------------------------------------------------------

TEST(ShardedExecutionTest, ShardedSystemMatchesUnshardedOnAllShapes) {
  for (CbirIndexKind kind :
       {CbirIndexKind::kHashTable, CbirIndexKind::kLinearScan}) {
    HybridFixture plain(kind);
    HybridFixture sharded(kind, EarthQubeConfig{}, /*num_shards=*/4);
    const std::string& query_name = plain.archive().patches[7].name;

    EarthQubeQuery panel;
    panel.seasons = {Season::kSummer, Season::kAutumn};

    std::vector<QueryRequest> shapes;
    {
      QueryRequest cbir_radius;
      cbir_radius.similarity = SimilaritySpec::NameRadius(query_name, 11);
      cbir_radius.page_size = 0;
      shapes.push_back(cbir_radius);
      QueryRequest cbir_knn;
      cbir_knn.similarity = SimilaritySpec::NameKnn(query_name, 8);
      cbir_knn.page_size = 0;
      shapes.push_back(cbir_knn);
      QueryRequest hybrid_pre = cbir_radius;
      hybrid_pre.panel = panel;
      hybrid_pre.planner = PlannerMode::kForcePreFilter;
      shapes.push_back(hybrid_pre);
      QueryRequest hybrid_post = hybrid_pre;
      hybrid_post.planner = PlannerMode::kForcePostFilter;
      shapes.push_back(hybrid_post);
    }
    for (size_t s = 0; s < shapes.size(); ++s) {
      auto want = plain.system().Execute(shapes[s]);
      auto got = sharded.system().Execute(shapes[s]);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(HitList(*got), HitList(*want))
          << "kind " << static_cast<int>(kind) << " shape " << s;
      ASSERT_EQ(got->panel.total(), want->panel.total());
      for (size_t i = 0; i < got->panel.entries().size(); ++i) {
        EXPECT_EQ(got->panel.entries()[i].name, want->panel.entries()[i].name);
      }
    }

    // The batch path (the engine's micro-batched fan-out across shards).
    std::vector<std::string> names;
    for (size_t i = 0; i < 12; ++i) {
      names.push_back(plain.archive().patches[i * 17].name);
    }
    auto want_batch = plain.system().BatchSimilarToArchiveImages(names, 10);
    auto got_batch = sharded.system().BatchSimilarToArchiveImages(names, 10);
    ASSERT_TRUE(want_batch.ok());
    ASSERT_TRUE(got_batch.ok());
    ASSERT_EQ(got_batch->size(), want_batch->size());
    for (size_t i = 0; i < want_batch->size(); ++i) {
      ASSERT_EQ((*got_batch)[i].size(), (*want_batch)[i].size()) << i;
      for (size_t j = 0; j < (*want_batch)[i].size(); ++j) {
        EXPECT_EQ((*got_batch)[i][j].patch_name,
                  (*want_batch)[i][j].patch_name);
        EXPECT_EQ((*got_batch)[i][j].hamming_distance,
                  (*want_batch)[i][j].hamming_distance);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Histogram-fed planner regression at the bench_hybrid_query crossover
// points: ~1% selectivity must pre-filter, ~50% must post-filter, and
// the histogram estimate must stay close to the true filter count
// ---------------------------------------------------------------------------

TEST(HybridPlannerTest, HistogramEstimatesMatchCrossoverDecisions) {
  // A larger archive than HybridFixture's: scenes share one acquisition
  // date (~48 patches each), so sub-threshold date selectivities only
  // exist once a single scene is a small fraction of the collection.
  bigearthnet::ArchiveConfig config;
  config.num_patches = 1600;
  config.seed = 41;
  bigearthnet::ArchiveGenerator generator(config);
  auto generated = generator.Generate();
  ASSERT_TRUE(generated.ok());
  const bigearthnet::Archive archive = std::move(generated).value();

  EarthQube system;
  ASSERT_TRUE(system.IngestArchive(archive).ok());
  bigearthnet::FeatureExtractor extractor;
  const Tensor features = extractor.ExtractArchive(archive, generator, 2);
  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 32;
  mconfig.hidden2 = 16;
  mconfig.hash_bits = 32;
  mconfig.dropout = 0.0f;
  auto cbir = std::make_unique<CbirService>(
      std::make_unique<milan::MilanModel>(mconfig), &extractor,
      CbirIndexKind::kLinearScan);
  std::vector<std::string> names;
  for (const auto& p : archive.patches) names.push_back(p.name);
  ASSERT_TRUE(cbir->AddImages(names, features).ok());
  system.AttachCbir(std::move(cbir));
  const std::string& query_name = archive.patches[3].name;

  // Calibrate date windows to ~1% and ~50% of the archive, the same way
  // bench_hybrid_query does.
  std::vector<std::string> dates;
  for (const auto& p : archive.patches) {
    dates.push_back(p.acquisition_date.ToString());
  }
  std::sort(dates.begin(), dates.end());
  for (int pct : {1, 50}) {
    const size_t idx = std::min(dates.size() - 1, dates.size() * pct / 100);
    auto begin = CivilDate::Parse(dates.front());
    auto end = CivilDate::Parse(dates[idx]);
    ASSERT_TRUE(begin.ok());
    ASSERT_TRUE(end.ok());
    EarthQubeQuery panel;
    panel.date_range = DateRange{*begin, *end};

    const size_t truth = system.CountMatches(panel);
    QueryRequest request;
    request.panel = panel;
    request.similarity = SimilaritySpec::NameKnn(query_name, 6);
    request.page_size = 0;
    auto response = system.Execute(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();

    // The histogram estimate is an upper bound on the true count and
    // within a small factor of it (date ordinals are integers, so the
    // only slack is bucket-edge rounding).
    EXPECT_GE(response->plan.estimated_filter_matches, truth);
    EXPECT_LE(response->plan.estimated_filter_matches,
              std::max<size_t>(3 * truth + 30, 1));

    // And the auto planner lands on the strategy the bench measures as
    // faster on each side of the crossover.
    if (pct == 1) {
      EXPECT_EQ(response->plan.strategy, QueryPlan::Strategy::kPreFilter)
          << "achieved selectivity "
          << response->plan.estimated_selectivity;
    } else {
      EXPECT_EQ(response->plan.strategy, QueryPlan::Strategy::kPostFilter)
          << "achieved selectivity "
          << response->plan.estimated_selectivity;
    }
  }
}

TEST(HybridPlannerTest, ExecutePagingAndCursor) {
  HybridFixture fixture(CbirIndexKind::kHashTable);
  EarthQube& system = fixture.system();

  QueryRequest request;
  request.panel = EarthQubeQuery{};
  request.page_size = 30;
  auto first = system.Execute(request);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->total(), fixture.archive().patches.size());
  ASSERT_FALSE(first->cursor.empty());

  auto cursor = DecodeCursor(first->cursor);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor->page, 1u);
  EXPECT_EQ(cursor->page_size, 30u);

  // The final page carries no continuation cursor.
  QueryRequest last = request;
  last.page = (first->total() - 1) / 30;
  auto last_response = system.Execute(last);
  ASSERT_TRUE(last_response.ok());
  EXPECT_TRUE(last_response->cursor.empty());
}

// ---------------------------------------------------------------------------
// Query cache
// ---------------------------------------------------------------------------

/// Asserts two responses are identical in every caller-visible field
/// except served_from_cache.
void ExpectSameResponse(const QueryResponse& a, const QueryResponse& b) {
  EXPECT_EQ(HitList(a), HitList(b));
  ASSERT_EQ(a.panel.total(), b.panel.total());
  for (size_t i = 0; i < a.panel.entries().size(); ++i) {
    EXPECT_EQ(a.panel.entries()[i].name, b.panel.entries()[i].name);
  }
  EXPECT_EQ(a.plan.strategy, b.plan.strategy);
  EXPECT_EQ(a.plan.description, b.plan.description);
  EXPECT_EQ(a.query_stats.plan, b.query_stats.plan);
  EXPECT_EQ(a.query_stats.docs_examined, b.query_stats.docs_examined);
  EXPECT_EQ(a.page, b.page);
  EXPECT_EQ(a.page_size, b.page_size);
  EXPECT_EQ(a.cursor, b.cursor);
}

TEST(QueryCacheTest, RequestFingerprintCanonicalizesAndDistinguishes) {
  QueryRequest request;
  EarthQubeQuery panel;
  panel.satellites = {"S2A", "S2B"};
  panel.seasons = {Season::kSummer, Season::kWinter};
  request.panel = panel;
  request.similarity = SimilaritySpec::NameKnn("img", 5);
  const auto fp = QueryCache::RequestFingerprint(request);
  ASSERT_TRUE(fp.has_value());

  // Order-insensitive filter terms canonicalize to one fingerprint.
  QueryRequest permuted = request;
  permuted.panel->satellites = {"S2B", "S2A"};
  permuted.panel->seasons = {Season::kWinter, Season::kSummer};
  EXPECT_EQ(QueryCache::RequestFingerprint(permuted), fp);

  // Paging, planner and projection are part of the key.
  QueryRequest paged = request;
  paged.page = 1;
  EXPECT_NE(QueryCache::RequestFingerprint(paged), fp);
  QueryRequest pinned = request;
  pinned.planner = PlannerMode::kForcePreFilter;
  EXPECT_NE(QueryCache::RequestFingerprint(pinned), fp);
  QueryRequest hits_only = request;
  hits_only.projection = Projection::kHitsOnly;
  EXPECT_NE(QueryCache::RequestFingerprint(hits_only), fp);

  // Uploaded-patch subjects are not fingerprintable.
  QueryRequest upload;
  upload.similarity =
      SimilaritySpec::PatchRadius(bigearthnet::Patch{}, /*radius=*/4);
  EXPECT_FALSE(QueryCache::RequestFingerprint(upload).has_value());
}

TEST(QueryCacheTest, RepeatedQueryServedFromCacheIdentically) {
  HybridFixture fixture(CbirIndexKind::kHashTable);
  EarthQube& system = fixture.system();
  const std::string& name = fixture.archive().patches[7].name;

  QueryRequest request;
  request.similarity = SimilaritySpec::NameRadius(name, 10);
  auto first = system.Execute(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->served_from_cache);

  auto second = system.Execute(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->served_from_cache);
  ExpectSameResponse(*first, *second);

  const cache::CacheStats stats = system.query_cache().ResponseStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryCacheTest, DisabledCachesNeverServeOrStore) {
  EarthQubeConfig config;
  config.cache.enable_response_cache = false;
  config.cache.enable_allowlist_cache = false;
  HybridFixture fixture(CbirIndexKind::kHashTable, config);
  EarthQube& system = fixture.system();
  const std::string& name = fixture.archive().patches[7].name;

  QueryRequest request;
  request.similarity = SimilaritySpec::NameRadius(name, 10);
  auto first = system.Execute(request);
  auto second = system.Execute(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(first->served_from_cache);
  EXPECT_FALSE(second->served_from_cache);
  ExpectSameResponse(*first, *second);
  EXPECT_EQ(system.query_cache().ResponseStats().puts, 0u);
  EXPECT_EQ(system.query_cache().ResponseStats().hits, 0u);
}

/// The stale-hit correctness guard for the response cache: after a new
/// archive lands, the very next identical query must see the new data.
TEST(QueryCacheTest, IngestInvalidatesResponseCache) {
  HybridFixture fixture(CbirIndexKind::kHashTable);
  EarthQube& system = fixture.system();
  const auto& patch0 = fixture.archive().patches[0];

  QueryRequest request;
  request.similarity = SimilaritySpec::NameRadius(patch0.name, 6);
  auto warm = system.Execute(request);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(system.Execute(request)->served_from_cache);

  // A twin of patch 0 arrives: same features (so Hamming distance 0 to
  // the query), new name, ingested as a fresh archive.
  bigearthnet::Archive extra;
  bigearthnet::PatchMetadata twin = patch0;
  twin.name = "twin_of_patch_0";
  extra.patches.push_back(twin);
  ASSERT_TRUE(
      system.cbir()->AddImage(twin.name, fixture.features().Row(0)).ok());
  ASSERT_TRUE(system.IngestArchive(extra).ok());

  auto fresh = system.Execute(request);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->served_from_cache);
  // Similarity responses are windowed; the twin ties with many other
  // distance-0 hits, so walk every page of the fresh ranking.
  std::set<std::string> hit_names;
  for (const CbirResult& hit : fresh->hits) hit_names.insert(hit.patch_name);
  QueryRequest next = request;
  while (!fresh->cursor.empty()) {
    ++next.page;
    fresh = system.Execute(next);
    ASSERT_TRUE(fresh.ok());
    for (const CbirResult& hit : fresh->hits) hit_names.insert(hit.patch_name);
  }
  EXPECT_TRUE(hit_names.count("twin_of_patch_0"))
      << "stale cached response hid the newly ingested twin";
  EXPECT_GE(system.query_cache().ResponseStats().stale_drops, 1u);
}

/// Same guard for the allowlist cache: the response cache is disabled so
/// the pre-filter leg's cached allowlist is what must invalidate.
TEST(QueryCacheTest, IngestInvalidatesAllowlistCache) {
  EarthQubeConfig config;
  config.cache.enable_response_cache = false;
  HybridFixture fixture(CbirIndexKind::kHashTable, config);
  EarthQube& system = fixture.system();
  const auto& patch0 = fixture.archive().patches[0];

  QueryRequest request;
  EarthQubeQuery panel;
  panel.seasons = {patch0.season};
  request.panel = panel;
  request.similarity = SimilaritySpec::NameRadius(patch0.name, 6);
  request.planner = PlannerMode::kForcePreFilter;
  request.page_size = 0;

  auto warm = system.Execute(request);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  auto replay = system.Execute(request);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->served_from_cache);
  EXPECT_EQ(system.query_cache().AllowlistStats().hits, 1u);
  ExpectSameResponse(*warm, *replay);

  // The twin matches the season filter, so a fresh allowlist must
  // include it; a stale one cannot.
  bigearthnet::Archive extra;
  bigearthnet::PatchMetadata twin = patch0;
  twin.name = "twin_of_patch_0";
  extra.patches.push_back(twin);
  ASSERT_TRUE(
      system.cbir()->AddImage(twin.name, fixture.features().Row(0)).ok());
  ASSERT_TRUE(system.IngestArchive(extra).ok());

  auto fresh = system.Execute(request);
  ASSERT_TRUE(fresh.ok());
  std::set<std::string> hit_names;
  for (const CbirResult& hit : fresh->hits) hit_names.insert(hit.patch_name);
  QueryRequest next = request;
  while (!fresh->cursor.empty()) {
    ++next.page;
    fresh = system.Execute(next);
    ASSERT_TRUE(fresh.ok());
    for (const CbirResult& hit : fresh->hits) hit_names.insert(hit.patch_name);
  }
  EXPECT_TRUE(hit_names.count("twin_of_patch_0"))
      << "stale cached allowlist excluded the newly ingested twin";
  EXPECT_GE(system.query_cache().AllowlistStats().stale_drops, 1u);
}

TEST(QueryCacheTest, ExecuteBatchDedupesIdenticalRequests) {
  HybridFixture fixture(CbirIndexKind::kHashTable);
  EarthQube& system = fixture.system();
  const std::string& name_a = fixture.archive().patches[3].name;
  const std::string& name_b = fixture.archive().patches[11].name;

  // Full-panel projection keeps this off the homogeneous hits-only fast
  // path, so the general (deduping) path executes.
  QueryRequest a;
  a.similarity = SimilaritySpec::NameRadius(name_a, 10);
  QueryRequest b;
  b.similarity = SimilaritySpec::NameKnn(name_b, 5);
  const std::vector<QueryRequest> requests = {a, b, a, a, b, a};

  auto batch = system.ExecuteBatch(requests);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), requests.size());

  // Two distinct requests -> exactly two executions: the response cache
  // saw two misses and zero hits (duplicates were fanned out, not
  // re-executed, not even served from cache).
  const cache::CacheStats stats = system.query_cache().ResponseStats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.puts, 2u);

  ExpectSameResponse((*batch)[0], (*batch)[2]);
  ExpectSameResponse((*batch)[0], (*batch)[3]);
  ExpectSameResponse((*batch)[0], (*batch)[5]);
  ExpectSameResponse((*batch)[1], (*batch)[4]);
  EXPECT_EQ((*batch)[2].served_from_cache, (*batch)[0].served_from_cache);

  // Slot results match what a lone Execute returns.
  auto solo = system.Execute(a);
  ASSERT_TRUE(solo.ok());
  ExpectSameResponse(*solo, (*batch)[0]);
}

}  // namespace
}  // namespace agoraeo::earthqube
