/// Tests of the segment-structured index and its durability layer:
/// segmented-vs-flat byte parity across all four index kinds, the
/// lock-free sealed-read protocol under an 8-thread ingest+query hammer
/// (part of the TSan CI job), snapshot round-trips and corruption
/// fallback, index-WAL torn-tail recovery, full restart parity across
/// kinds × shardings, and the single epoch bump on recovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "bigearthnet/feature_extractor.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "earthqube/earthqube.h"
#include "index/bk_tree.h"
#include "index/hamming_table.h"
#include "index/index_snapshot.h"
#include "index/index_wal.h"
#include "index/linear_scan.h"
#include "index/segmented_index.h"
#include "index/sharded_index.h"
#include "milan/milan_model.h"

namespace agoraeo::index {
namespace {

BinaryCode RandomCode(size_t bits, Rng* rng) {
  BinaryCode code(bits);
  for (size_t i = 0; i < bits; ++i) code.SetBit(i, rng->Bernoulli(0.5));
  return code;
}

enum class Kind { kHashTable, kMultiIndex, kLinearScan, kBkTree };

const Kind kAllKinds[] = {Kind::kHashTable, Kind::kMultiIndex,
                          Kind::kLinearScan, Kind::kBkTree};

std::unique_ptr<HammingIndex> MakeKind(Kind kind) {
  switch (kind) {
    case Kind::kHashTable:
      return std::make_unique<HammingHashTable>();
    case Kind::kMultiIndex:
      return std::make_unique<MultiIndexHashing>(4);
    case Kind::kLinearScan:
      return std::make_unique<LinearScanIndex>();
    case Kind::kBkTree:
      return std::make_unique<BkTree>();
  }
  return nullptr;
}

SegmentedHammingIndex::SegmentFactory FactoryFor(Kind kind) {
  return [kind] { return MakeKind(kind); };
}

// ---------------------------------------------------------------------------
// Segmented-vs-flat parity
// ---------------------------------------------------------------------------

/// Every search flavour — plain, candidate-restricted, batched, batched-
/// restricted — must return byte-identical results from a segmented
/// index and a flat one over the same items.
TEST(SegmentedIndex, ParityAcrossKindsAndThresholds) {
  Rng rng(41);
  const size_t kBits = 64;
  const size_t kItems = 240;
  std::vector<BinaryCode> codes;
  for (size_t i = 0; i < kItems; ++i) codes.push_back(RandomCode(kBits, &rng));
  std::vector<BinaryCode> queries(codes.begin(), codes.begin() + 12);
  std::vector<ItemId> allowed_ids;
  for (ItemId id = 0; id < kItems; id += 3) allowed_ids.push_back(id);
  const CandidateSet allowed(allowed_ids);
  ThreadPool pool(4);

  for (Kind kind : kAllKinds) {
    for (size_t threshold : {size_t{1}, size_t{7}, size_t{64}}) {
      auto plain = MakeKind(kind);
      SegmentedHammingIndex segmented(FactoryFor(kind), threshold);
      for (ItemId id = 0; id < kItems; ++id) {
        ASSERT_TRUE(plain->Add(id, codes[id]).ok());
        ASSERT_TRUE(segmented.Add(id, codes[id]).ok());
      }
      ASSERT_EQ(segmented.size(), plain->size());
      // Threshold 1 seals every item: the structure degenerates to all-
      // sealed segments, the most adversarial layout for the merge.
      if (threshold == 1) {
        EXPECT_GE(segmented.Stats().num_sealed, kItems - 1);
      }
      for (const BinaryCode& q : queries) {
        EXPECT_EQ(segmented.RadiusSearch(q, 8), plain->RadiusSearch(q, 8));
        EXPECT_EQ(segmented.RadiusSearch(q, 16), plain->RadiusSearch(q, 16));
        EXPECT_EQ(segmented.KnnSearch(q, 10), plain->KnnSearch(q, 10));
        EXPECT_EQ(segmented.RadiusSearchIn(q, 12, allowed),
                  plain->RadiusSearchIn(q, 12, allowed));
        EXPECT_EQ(segmented.KnnSearchIn(q, 7, allowed),
                  plain->KnnSearchIn(q, 7, allowed));
      }
      EXPECT_EQ(segmented.BatchRadiusSearch(queries, 10, &pool),
                plain->BatchRadiusSearch(queries, 10, nullptr));
      EXPECT_EQ(segmented.BatchKnnSearch(queries, 5, &pool),
                plain->BatchKnnSearch(queries, 5, nullptr));
      EXPECT_EQ(segmented.BatchRadiusSearchIn(queries, 12, allowed, &pool),
                plain->BatchRadiusSearchIn(queries, 12, allowed, nullptr));
      EXPECT_EQ(segmented.BatchKnnSearchIn(queries, 6, allowed, &pool),
                plain->BatchKnnSearchIn(queries, 6, allowed, nullptr));
    }
  }
}

/// Compaction bounds the sealed-segment fan-out without changing a
/// single result: the merged segment must answer every search flavour
/// byte-identically to a flat index (and to what the uncompacted
/// layout would have answered).
TEST(SegmentedIndex, CompactionBoundsSegmentsAndKeepsParity) {
  Rng rng(43);
  const size_t kBits = 64;
  const size_t kItems = 300;
  std::vector<BinaryCode> codes;
  for (size_t i = 0; i < kItems; ++i) codes.push_back(RandomCode(kBits, &rng));
  std::vector<BinaryCode> queries(codes.begin(), codes.begin() + 10);
  std::vector<ItemId> allowed_ids;
  for (ItemId id = 0; id < kItems; id += 2) allowed_ids.push_back(id);
  const CandidateSet allowed(allowed_ids);
  ThreadPool pool(4);

  for (Kind kind : kAllKinds) {
    auto plain = MakeKind(kind);
    // Seal every 8 items, merge whenever more than 3 sealed segments
    // accumulate: 300 items force many seal/compact cycles.
    SegmentedHammingIndex segmented(FactoryFor(kind), 8, 3);
    for (ItemId id = 0; id < kItems; ++id) {
      ASSERT_TRUE(plain->Add(id, codes[id]).ok());
      ASSERT_TRUE(segmented.Add(id, codes[id]).ok());
    }
    ASSERT_EQ(segmented.size(), plain->size());

    const SegmentedIndexStats stats = segmented.Stats();
    EXPECT_LE(stats.num_sealed, 3u);
    EXPECT_GT(stats.compactions, 0u);
    EXPECT_GT(stats.compacted_segments, stats.compactions);
    EXPECT_EQ(stats.sealed_items + stats.mutable_items, kItems);

    for (const BinaryCode& q : queries) {
      EXPECT_EQ(segmented.RadiusSearch(q, 12), plain->RadiusSearch(q, 12));
      EXPECT_EQ(segmented.KnnSearch(q, 9), plain->KnnSearch(q, 9));
      EXPECT_EQ(segmented.RadiusSearchIn(q, 12, allowed),
                plain->RadiusSearchIn(q, 12, allowed));
      EXPECT_EQ(segmented.KnnSearchIn(q, 6, allowed),
                plain->KnnSearchIn(q, 6, allowed));
    }
    EXPECT_EQ(segmented.BatchKnnSearch(queries, 7, &pool),
              plain->BatchKnnSearch(queries, 7, nullptr));
    EXPECT_EQ(segmented.BatchRadiusSearchIn(queries, 10, allowed, &pool),
              plain->BatchRadiusSearchIn(queries, 10, allowed, nullptr));

    // BatchAdd crosses several seal boundaries in one locked pass; the
    // compactor must keep up there too.
    std::vector<ItemId> more_ids;
    std::vector<BinaryCode> more_codes;
    for (size_t i = 0; i < 100; ++i) {
      more_ids.push_back(static_cast<ItemId>(kItems + i));
      more_codes.push_back(RandomCode(kBits, &rng));
      ASSERT_TRUE(plain->Add(more_ids.back(), more_codes.back()).ok());
    }
    ASSERT_TRUE(segmented.BatchAdd(more_ids, more_codes, &pool).ok());
    ASSERT_EQ(segmented.size(), plain->size());
    EXPECT_LE(segmented.Stats().num_sealed, 3u);
    for (const BinaryCode& q : queries) {
      EXPECT_EQ(segmented.KnnSearch(q, 11), plain->KnnSearch(q, 11));
      EXPECT_EQ(segmented.RadiusSearch(q, 14), plain->RadiusSearch(q, 14));
    }
  }
}

TEST(SegmentedIndex, NameIsTransparentAndStatsTrackSeals) {
  SegmentedHammingIndex segmented(FactoryFor(Kind::kLinearScan), 4);
  EXPECT_EQ(segmented.Name(), "LinearScan");
  Rng rng(7);
  for (ItemId id = 0; id < 10; ++id) {
    ASSERT_TRUE(segmented.Add(id, RandomCode(32, &rng)).ok());
  }
  SegmentedIndexStats stats = segmented.Stats();
  EXPECT_EQ(stats.seals, 2u);  // sealed at 4 and 8
  EXPECT_EQ(stats.num_sealed, 2u);
  EXPECT_EQ(stats.sealed_items, 8u);
  EXPECT_EQ(stats.mutable_items, 2u);
  // Explicit seal rotates the 2-item tail; a second is a no-op.
  ASSERT_TRUE(segmented.Seal().ok());
  ASSERT_TRUE(segmented.Seal().ok());
  stats = segmented.Stats();
  EXPECT_EQ(stats.seals, 3u);
  EXPECT_EQ(stats.mutable_items, 0u);
  EXPECT_EQ(stats.sealed_items, 10u);
}

TEST(SegmentedIndex, ThresholdZeroNeverAutoSeals) {
  SegmentedHammingIndex segmented(FactoryFor(Kind::kHashTable), 0);
  Rng rng(9);
  for (ItemId id = 0; id < 100; ++id) {
    ASSERT_TRUE(segmented.Add(id, RandomCode(32, &rng)).ok());
  }
  EXPECT_EQ(segmented.Stats().num_sealed, 0u);
  EXPECT_EQ(segmented.Stats().mutable_items, 100u);
}

TEST(SegmentedIndex, RejectsMismatchedCodeLengthAcrossSegments) {
  SegmentedHammingIndex segmented(FactoryFor(Kind::kLinearScan), 2);
  Rng rng(3);
  for (ItemId id = 0; id < 4; ++id) {
    ASSERT_TRUE(segmented.Add(id, RandomCode(64, &rng)).ok());
  }
  // A fresh mutable segment is empty, but the cross-segment anchor must
  // still reject a different length.
  EXPECT_FALSE(segmented.Add(99, RandomCode(32, &rng)).ok());
}

// ---------------------------------------------------------------------------
// Concurrency: lock-free sealed reads under ingest (TSan)
// ---------------------------------------------------------------------------

/// 8 threads — 4 writers appending disjoint id ranges with a small seal
/// threshold (so seals rotate constantly under the readers), 4 readers
/// hammering every search flavour.  TSan proves the sealed-segment scan
/// really is safe without the per-shard lock; the final parity check
/// proves no item was lost or duplicated by a racing seal.
TEST(SegmentedIndex, ConcurrentIngestAndQueryHammer) {
  const size_t kBits = 64;
  const size_t kPerWriter = 400;
  const size_t kWriters = 4;
  SegmentedHammingIndex segmented(FactoryFor(Kind::kHashTable), 16);

  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&segmented, w] {
      Rng rng(100 + w);
      for (size_t i = 0; i < kPerWriter; ++i) {
        const ItemId id = w * kPerWriter + i;
        ASSERT_TRUE(segmented.Add(id, RandomCode(kBits, &rng)).ok());
      }
    });
  }
  for (size_t r = 0; r < 4; ++r) {
    threads.emplace_back([&segmented, r] {
      Rng rng(200 + r);
      for (size_t i = 0; i < 120; ++i) {
        const BinaryCode q = RandomCode(kBits, &rng);
        auto radius_hits = segmented.RadiusSearch(q, 12);
        auto knn_hits = segmented.KnnSearch(q, 5);
        // Results must always be canonically ordered, even mid-seal.
        EXPECT_TRUE(std::is_sorted(radius_hits.begin(), radius_hits.end(),
                                   ResultLess));
        EXPECT_TRUE(
            std::is_sorted(knn_hits.begin(), knn_hits.end(), ResultLess));
        (void)segmented.size();
        (void)segmented.Stats();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(segmented.size(), kWriters * kPerWriter);
  EXPECT_GT(segmented.Stats().num_sealed, 0u);
}

/// The same hammer one layer up: a 4-shard index whose shards seal and
/// rotate while batched queries fan out across them on a pool.
TEST(ShardedIndex, ConcurrentSealRotateAndBatchedQueries) {
  const size_t kBits = 64;
  ShardedHammingIndex sharded(
      4, [] { return MakeKind(Kind::kHashTable); }, /*seal_threshold=*/16);
  ThreadPool pool(4);

  std::vector<std::thread> threads;
  for (size_t w = 0; w < 4; ++w) {
    threads.emplace_back([&sharded, w] {
      Rng rng(300 + w);
      for (size_t i = 0; i < 250; ++i) {
        ASSERT_TRUE(sharded.Add(w * 250 + i, RandomCode(kBits, &rng)).ok());
      }
    });
  }
  for (size_t r = 0; r < 4; ++r) {
    threads.emplace_back([&sharded, &pool, r] {
      Rng rng(400 + r);
      for (size_t i = 0; i < 40; ++i) {
        std::vector<BinaryCode> queries;
        for (size_t q = 0; q < 8; ++q) queries.push_back(RandomCode(kBits, &rng));
        const auto batch = sharded.BatchRadiusSearch(queries, 10, &pool);
        for (const auto& slot : batch) {
          EXPECT_TRUE(std::is_sorted(slot.begin(), slot.end(), ResultLess));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sharded.size(), 1000u);
  EXPECT_GT(sharded.Stats().seals, 0u);
}

// ---------------------------------------------------------------------------
// Snapshot files
// ---------------------------------------------------------------------------

const char* kTestRoot = "/tmp/agoraeo_persistence_test";

std::string FreshDir(const std::string& name) {
  const std::string dir = std::string(kTestRoot) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

IndexSnapshot SampleSnapshot() {
  IndexSnapshot snap;
  snap.shard_index = 2;
  snap.num_shards = 4;
  snap.watermark = 77;
  snap.code_bits = 96;
  snap.words_per_code = 2;
  Rng rng(5);
  for (ItemId id = 0; id < 30; ++id) {
    snap.ids.push_back(id * 4 + 2);
    snap.names.push_back("patch_" + std::to_string(id));
    for (int w = 0; w < 2; ++w) {
      snap.code_words.push_back(
          (static_cast<uint64_t>(rng.UniformInt(0xFFFFFFFFu)) << 32) |
          rng.UniformInt(0xFFFFFFFFu));
    }
  }
  return snap;
}

TEST(IndexSnapshot, RoundTrip) {
  const std::string dir = FreshDir("snap_roundtrip");
  const std::string path = ShardSnapshotPath(dir, 2);
  const IndexSnapshot snap = SampleSnapshot();
  ASSERT_TRUE(WriteIndexSnapshot(path, snap).ok());

  auto read = ReadIndexSnapshot(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->shard_index, snap.shard_index);
  EXPECT_EQ(read->num_shards, snap.num_shards);
  EXPECT_EQ(read->watermark, snap.watermark);
  EXPECT_EQ(read->code_bits, snap.code_bits);
  EXPECT_EQ(read->words_per_code, snap.words_per_code);
  EXPECT_EQ(read->ids, snap.ids);
  EXPECT_EQ(read->names, snap.names);
  EXPECT_EQ(read->code_words, snap.code_words);
}

TEST(IndexSnapshot, MissingFileIsNotFound) {
  const std::string dir = FreshDir("snap_missing");
  auto read = ReadIndexSnapshot(ShardSnapshotPath(dir, 0));
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsNotFound());
}

/// Satellite: a bit flip anywhere in the file must surface as
/// Corruption (never a crash, never silently wrong data).
TEST(IndexSnapshot, BitFlipAnywhereIsCorruption) {
  const std::string dir = FreshDir("snap_bitflip");
  const std::string path = ShardSnapshotPath(dir, 2);
  ASSERT_TRUE(WriteIndexSnapshot(path, SampleSnapshot()).ok());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);

  for (size_t pos : {size_t{0}, size_t{5}, size_t{12}, size_t{40},
                     bytes.size() / 2, bytes.size() - 1}) {
    std::vector<char> flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x10);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
    out.close();
    auto read = ReadIndexSnapshot(path);
    ASSERT_FALSE(read.ok()) << "bit flip at byte " << pos << " not caught";
    EXPECT_TRUE(read.status().IsCorruption())
        << "bit flip at byte " << pos << ": " << read.status().message();
  }
}

TEST(IndexSnapshot, TruncationIsCorruption) {
  const std::string dir = FreshDir("snap_trunc");
  const std::string path = ShardSnapshotPath(dir, 2);
  ASSERT_TRUE(WriteIndexSnapshot(path, SampleSnapshot()).ok());
  const auto full = std::filesystem::file_size(path);
  for (uint64_t keep : {full / 2, full - 1, uint64_t{10}}) {
    ASSERT_TRUE(TruncateFile(path, keep).ok());
    auto read = ReadIndexSnapshot(path);
    ASSERT_FALSE(read.ok());
    EXPECT_TRUE(read.status().IsCorruption());
  }
}

// ---------------------------------------------------------------------------
// Index WAL
// ---------------------------------------------------------------------------

TEST(IndexWal, AppendReplayRoundTrip) {
  const std::string dir = FreshDir("wal_roundtrip");
  const std::string path = dir + "/index.wal";
  Rng rng(11);
  IndexWalWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  std::vector<IndexWalRecord> written;
  uint64_t seq = 0;
  for (size_t batch = 0; batch < 5; ++batch) {
    IndexWalRecord record;
    record.first_seq = seq;
    for (size_t i = 0; i < batch + 1; ++i) {
      record.names.push_back("item_" + std::to_string(seq + i));
      record.codes.push_back(RandomCode(64, &rng));
    }
    seq += record.names.size();
    ASSERT_TRUE(writer.Append(record).ok());
    written.push_back(std::move(record));
  }
  writer.Close();

  std::vector<IndexWalRecord> replayed;
  auto result = ReplayIndexWal(path, [&](const IndexWalRecord& record) {
    replayed.push_back(record);
    return Status::OK();
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_applied, written.size());
  EXPECT_EQ(result->items_applied, static_cast<size_t>(seq));
  EXPECT_FALSE(result->tail_discarded);
  ASSERT_EQ(replayed.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(replayed[i].first_seq, written[i].first_seq);
    EXPECT_EQ(replayed[i].names, written[i].names);
    EXPECT_EQ(replayed[i].codes, written[i].codes);
  }
}

/// A crash mid-append leaves a partial frame; replay must keep every
/// intact record, discard the tail, and report where the valid bytes
/// end so the writer can truncate before appending again.
TEST(IndexWal, TornTailIsDiscardedAndTruncatable) {
  const std::string dir = FreshDir("wal_torn");
  const std::string path = dir + "/index.wal";
  Rng rng(13);
  IndexWalWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (uint64_t seq = 0; seq < 3; ++seq) {
    IndexWalRecord record;
    record.first_seq = seq;
    record.names = {"item_" + std::to_string(seq)};
    record.codes = {RandomCode(64, &rng)};
    ASSERT_TRUE(writer.Append(record).ok());
  }
  writer.Close();
  const uint64_t intact_size = std::filesystem::file_size(path);

  // Simulate the crash: a frame header promising more bytes than exist.
  std::ofstream out(path, std::ios::binary | std::ios::app);
  const uint32_t bogus_len = 1000;
  out.write(reinterpret_cast<const char*>(&bogus_len), sizeof(bogus_len));
  out.write("partial", 7);
  out.close();

  size_t records = 0;
  auto result = ReplayIndexWal(path, [&](const IndexWalRecord&) {
    ++records;
    return Status::OK();
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(records, 3u);
  EXPECT_TRUE(result->tail_discarded);
  EXPECT_EQ(result->valid_bytes, intact_size);

  // Truncate + append must produce a clean log again.
  ASSERT_TRUE(TruncateFile(path, result->valid_bytes).ok());
  IndexWalWriter again;
  ASSERT_TRUE(again.Open(path).ok());
  IndexWalRecord record;
  record.first_seq = 3;
  record.names = {"item_3"};
  record.codes = {RandomCode(64, &rng)};
  ASSERT_TRUE(again.Append(record).ok());
  again.Close();
  auto clean = ReplayIndexWal(path, [](const IndexWalRecord&) {
    return Status::OK();
  });
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->records_applied, 4u);
  EXPECT_FALSE(clean->tail_discarded);
}

}  // namespace
}  // namespace agoraeo::index

// ===========================================================================
// Service level: restart, crash recovery, corruption fallback
// ===========================================================================

namespace agoraeo::earthqube {
namespace {

const CbirIndexKind kServiceKinds[] = {
    CbirIndexKind::kHashTable, CbirIndexKind::kMultiIndex,
    CbirIndexKind::kLinearScan, CbirIndexKind::kBkTree};

/// Deterministic feature matrix: the same rows whatever the call order.
Tensor MakeFeatures(size_t begin, size_t count) {
  Tensor features({count, bigearthnet::kFeatureDim});
  Rng rng(0xF00D + begin);
  for (size_t i = 0; i < count * bigearthnet::kFeatureDim; ++i) {
    features.data()[i] = static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
  }
  return features;
}

std::vector<std::string> MakeNames(size_t begin, size_t count) {
  std::vector<std::string> names;
  for (size_t i = 0; i < count; ++i) {
    names.push_back("patch_" + std::to_string(begin + i));
  }
  return names;
}

/// A service fixture around an UNTRAINED MiLaN model (weights are
/// seeded deterministically, and persistence parity only needs the
/// model to be a pure function of its inputs, which it is).
class ServiceFixture {
 public:
  static std::unique_ptr<CbirService> Make(CbirConfig config) {
    milan::MilanConfig mconfig;
    mconfig.feature_dim = bigearthnet::kFeatureDim;
    mconfig.hidden1 = 32;
    mconfig.hidden2 = 16;
    mconfig.hash_bits = 32;
    mconfig.dropout = 0.0f;
    return std::make_unique<CbirService>(
        std::make_unique<milan::MilanModel>(mconfig), &Extractor(), config);
  }

  static const bigearthnet::FeatureExtractor& Extractor() {
    static bigearthnet::FeatureExtractor extractor;
    return extractor;
  }
};

std::string FreshDir(const std::string& name) {
  const std::string dir =
      std::string("/tmp/agoraeo_persistence_test/") + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Ingests the standard data set: two batches plus a few singles, so
/// the WAL holds a mix of batch and single-item records.
void IngestStandard(CbirService* service) {
  ASSERT_TRUE(service->AddImages(MakeNames(0, 60), MakeFeatures(0, 60)).ok());
  ASSERT_TRUE(
      service->AddImages(MakeNames(60, 45), MakeFeatures(60, 45)).ok());
  const Tensor singles = MakeFeatures(105, 3);
  for (size_t i = 0; i < 3; ++i) {
    Tensor one({size_t{1}, bigearthnet::kFeatureDim});
    for (size_t c = 0; c < bigearthnet::kFeatureDim; ++c) {
      one.data()[c] = singles.at(i, c);
    }
    ASSERT_TRUE(
        service->AddImage("patch_" + std::to_string(105 + i), one).ok());
  }
}

/// Byte-parity audit: every query flavour must match between two
/// services over the same logical archive.
void ExpectServiceParity(const CbirService& recovered,
                         const CbirService& twin) {
  ASSERT_EQ(recovered.num_indexed(), twin.num_indexed());
  for (const std::string& name :
       {std::string("patch_0"), std::string("patch_59"),
        std::string("patch_77"), std::string("patch_107")}) {
    auto code_a = recovered.CodeOf(name);
    auto code_b = twin.CodeOf(name);
    ASSERT_TRUE(code_a.ok()) << name;
    ASSERT_TRUE(code_b.ok()) << name;
    EXPECT_EQ(code_a.value(), code_b.value()) << name;

    auto radius_a = recovered.QueryByName(name, 10);
    auto radius_b = twin.QueryByName(name, 10);
    ASSERT_TRUE(radius_a.ok() && radius_b.ok());
    ASSERT_EQ(radius_a->size(), radius_b->size()) << name;
    for (size_t i = 0; i < radius_a->size(); ++i) {
      EXPECT_EQ((*radius_a)[i].patch_name, (*radius_b)[i].patch_name);
      EXPECT_EQ((*radius_a)[i].hamming_distance,
                (*radius_b)[i].hamming_distance);
    }

    auto knn_a = recovered.KnnByName(name, 8);
    auto knn_b = twin.KnnByName(name, 8);
    ASSERT_TRUE(knn_a.ok() && knn_b.ok());
    ASSERT_EQ(knn_a->size(), knn_b->size()) << name;
    for (size_t i = 0; i < knn_a->size(); ++i) {
      EXPECT_EQ((*knn_a)[i].patch_name, (*knn_b)[i].patch_name);
      EXPECT_EQ((*knn_a)[i].hamming_distance, (*knn_b)[i].hamming_distance);
    }
  }
}

/// Restart parity across all four index kinds × {1, 4} shards: a
/// snapshot+WAL restore must be indistinguishable from a process that
/// never went down.
TEST(PersistenceService, RestartParityAcrossKindsAndShardings) {
  for (CbirIndexKind kind : kServiceKinds) {
    for (size_t shards : {size_t{1}, size_t{4}}) {
      const std::string tag = std::to_string(static_cast<int>(kind)) + "_" +
                              std::to_string(shards);
      const std::string dir = FreshDir("restart_" + tag);

      CbirConfig durable;
      durable.index_kind = kind;
      durable.query_threads = 2;
      durable.num_shards = shards;
      durable.snapshot_dir = dir;
      durable.seal_threshold = 32;

      CbirConfig memory_only = durable;
      memory_only.snapshot_dir.clear();

      // The never-crashed twin.
      auto twin = ServiceFixture::Make(memory_only);
      IngestStandard(twin.get());

      // Writer: ingest durably, then go down (destructor).
      {
        auto writer = ServiceFixture::Make(durable);
        ASSERT_TRUE(writer->Recover().ok());  // cold start, opens the WAL
        IngestStandard(writer.get());
        EXPECT_TRUE(writer->persistence_stats().enabled);
        EXPECT_GT(writer->persistence_stats().wal_records, 0u);
      }

      // Restart: snapshots + WAL catch-up, no model inference.
      auto recovered = ServiceFixture::Make(durable);
      ASSERT_TRUE(recovered->Recover().ok());
      const CbirPersistenceStats& stats = recovered->persistence_stats();
      EXPECT_TRUE(stats.recovered);
      EXPECT_EQ(stats.restored_items + stats.replayed_items, 108u) << tag;
      EXPECT_EQ(stats.discarded_snapshots, 0u) << tag;
      ExpectServiceParity(*recovered, *twin);
    }
  }
}

/// Satellite: a recovered service is not read-only — it keeps
/// ingesting, stays durable, and survives a SECOND restart.
TEST(PersistenceService, RecoveredServiceContinuesIngesting) {
  const std::string dir = FreshDir("continue");
  CbirConfig config;
  config.index_kind = CbirIndexKind::kHashTable;
  config.num_shards = 4;
  config.snapshot_dir = dir;
  config.seal_threshold = 16;

  {
    auto writer = ServiceFixture::Make(config);
    ASSERT_TRUE(writer->Recover().ok());
    ASSERT_TRUE(
        writer->AddImages(MakeNames(0, 60), MakeFeatures(0, 60)).ok());
  }
  {
    auto mid = ServiceFixture::Make(config);
    ASSERT_TRUE(mid->Recover().ok());
    EXPECT_EQ(mid->num_indexed(), 60u);
    ASSERT_TRUE(mid->AddImages(MakeNames(60, 45), MakeFeatures(60, 45)).ok());
    const Tensor singles = MakeFeatures(105, 3);
    for (size_t i = 0; i < 3; ++i) {
      Tensor one({size_t{1}, bigearthnet::kFeatureDim});
      for (size_t c = 0; c < bigearthnet::kFeatureDim; ++c) {
        one.data()[c] = singles.at(i, c);
      }
      ASSERT_TRUE(mid->AddImage("patch_" + std::to_string(105 + i), one).ok());
    }
  }
  CbirConfig memory_only = config;
  memory_only.snapshot_dir.clear();
  auto twin = ServiceFixture::Make(memory_only);
  IngestStandard(twin.get());

  auto final_service = ServiceFixture::Make(config);
  ASSERT_TRUE(final_service->Recover().ok());
  ExpectServiceParity(*final_service, *twin);
}

/// Satellite: a corrupt snapshot logs a warning, is discarded, and the
/// service falls back to WAL replay — recovery still reaches parity.
TEST(PersistenceService, CorruptSnapshotFallsBackToWalReplay) {
  const std::string dir = FreshDir("corrupt_snap");
  CbirConfig config;
  config.index_kind = CbirIndexKind::kLinearScan;
  config.num_shards = 4;
  config.snapshot_dir = dir;
  config.seal_threshold = 16;  // snapshots get written during ingest

  {
    auto writer = ServiceFixture::Make(config);
    ASSERT_TRUE(writer->Recover().ok());
    IngestStandard(writer.get());
    EXPECT_GT(writer->persistence_stats().snapshots_written, 0u);
  }

  // Flip one bit in the middle of shard 1's snapshot.
  const std::string victim = index::ShardSnapshotPath(dir, 1);
  ASSERT_TRUE(std::filesystem::exists(victim));
  {
    std::fstream file(victim,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    file.seekg(size / 2);
    char byte;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x04);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }

  CbirConfig memory_only = config;
  memory_only.snapshot_dir.clear();
  auto twin = ServiceFixture::Make(memory_only);
  IngestStandard(twin.get());

  auto recovered = ServiceFixture::Make(config);
  ASSERT_TRUE(recovered->Recover().ok());
  const CbirPersistenceStats& stats = recovered->persistence_stats();
  EXPECT_EQ(stats.discarded_snapshots, 1u);
  // The WAL retained every record since boot (no on-demand Snapshot ran,
  // so it was never reset): full parity despite the lost file.
  ExpectServiceParity(*recovered, *twin);
  // Lossy recovery re-canonicalises disk: a THIRD boot must be clean.
  auto third = ServiceFixture::Make(config);
  ASSERT_TRUE(third->Recover().ok());
  EXPECT_EQ(third->persistence_stats().discarded_snapshots, 0u);
  ExpectServiceParity(*third, *twin);
}

/// Satellite: crash mid-BatchAdd — the WAL ends in a torn frame.  The
/// restarted service must equal a twin that never received that batch,
/// byte for byte, and keep working.
TEST(PersistenceService, CrashMidBatchRecoversToLastIntactBatch) {
  for (CbirIndexKind kind : kServiceKinds) {
    for (size_t shards : {size_t{1}, size_t{4}}) {
      const std::string tag = std::to_string(static_cast<int>(kind)) + "_" +
                              std::to_string(shards);
      const std::string dir = FreshDir("crash_" + tag);
      CbirConfig config;
      config.index_kind = kind;
      config.num_shards = shards;
      config.snapshot_dir = dir;
      // No auto-snapshots: recovery is pure WAL replay, so the torn
      // frame is guaranteed to matter.
      config.seal_threshold = 0;

      {
        auto writer = ServiceFixture::Make(config);
        ASSERT_TRUE(writer->Recover().ok());
        ASSERT_TRUE(
            writer->AddImages(MakeNames(0, 60), MakeFeatures(0, 60)).ok());
        ASSERT_TRUE(
            writer->AddImages(MakeNames(60, 45), MakeFeatures(60, 45)).ok());
      }
      // The "crash": the last batch's frame is half on disk.
      const std::string wal_path = dir + "/index.wal";
      const uint64_t full = std::filesystem::file_size(wal_path);
      ASSERT_TRUE(TruncateFile(wal_path, full - 13).ok());

      // Twin that never saw the second batch.
      CbirConfig memory_only = config;
      memory_only.snapshot_dir.clear();
      auto twin = ServiceFixture::Make(memory_only);
      ASSERT_TRUE(
          twin->AddImages(MakeNames(0, 60), MakeFeatures(0, 60)).ok());

      auto recovered = ServiceFixture::Make(config);
      ASSERT_TRUE(recovered->Recover().ok());
      EXPECT_TRUE(recovered->persistence_stats().wal_tail_discarded) << tag;
      ASSERT_EQ(recovered->num_indexed(), 60u) << tag;
      ASSERT_EQ(twin->num_indexed(), 60u);
      for (size_t i : {size_t{0}, size_t{17}, size_t{59}}) {
        const std::string name = "patch_" + std::to_string(i);
        auto knn_a = recovered->KnnByName(name, 10);
        auto knn_b = twin->KnnByName(name, 10);
        ASSERT_TRUE(knn_a.ok() && knn_b.ok());
        ASSERT_EQ(knn_a->size(), knn_b->size());
        for (size_t j = 0; j < knn_a->size(); ++j) {
          EXPECT_EQ((*knn_a)[j].patch_name, (*knn_b)[j].patch_name);
          EXPECT_EQ((*knn_a)[j].hamming_distance,
                    (*knn_b)[j].hamming_distance);
        }
      }
      // The torn batch's ids must be reusable (the tail was cut).
      ASSERT_TRUE(
          recovered->AddImages(MakeNames(60, 45), MakeFeatures(60, 45)).ok());
      EXPECT_EQ(recovered->num_indexed(), 105u);
    }
  }
}

/// On-demand Snapshot() seals, writes every shard, and resets the WAL.
TEST(PersistenceService, OnDemandSnapshotResetsWal) {
  const std::string dir = FreshDir("on_demand");
  CbirConfig config;
  config.index_kind = CbirIndexKind::kHashTable;
  config.num_shards = 4;
  config.snapshot_dir = dir;
  config.seal_threshold = 1000;  // cadence never fires on its own

  auto writer = ServiceFixture::Make(config);
  ASSERT_TRUE(writer->Recover().ok());
  IngestStandard(writer.get());
  const uint64_t wal_before = std::filesystem::file_size(dir + "/index.wal");
  EXPECT_GT(wal_before, 0u);
  ASSERT_TRUE(writer->Snapshot().ok());
  EXPECT_EQ(std::filesystem::file_size(dir + "/index.wal"), 0u);
  EXPECT_EQ(writer->persistence_stats().snapshots_written, 4u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(std::filesystem::exists(index::ShardSnapshotPath(dir, s)));
  }
  // Everything snapshotted was also sealed.
  ASSERT_NE(writer->sharded_index(), nullptr);
  EXPECT_EQ(writer->sharded_index()->Stats().mutable_items, 0u);

  // Restore from snapshots alone (empty WAL) and compare.
  CbirConfig memory_only = config;
  memory_only.snapshot_dir.clear();
  auto twin = ServiceFixture::Make(memory_only);
  IngestStandard(twin.get());
  auto recovered = ServiceFixture::Make(config);
  ASSERT_TRUE(recovered->Recover().ok());
  EXPECT_EQ(recovered->persistence_stats().restored_items, 108u);
  EXPECT_EQ(recovered->persistence_stats().replayed_items, 0u);
  ExpectServiceParity(*recovered, *twin);
}

/// All three WAL sync modes recover to parity (they differ only in how
/// much a power loss may cost, not in crash-recovery semantics).
TEST(PersistenceService, AllWalSyncModesRecover) {
  for (WalSyncMode sync :
       {WalSyncMode::kFlush, WalSyncMode::kFsync, WalSyncMode::kNone}) {
    const std::string dir =
        FreshDir("sync_" + std::to_string(static_cast<int>(sync)));
    CbirConfig config;
    config.index_kind = CbirIndexKind::kHashTable;
    config.snapshot_dir = dir;
    config.wal_sync = sync;

    {
      auto writer = ServiceFixture::Make(config);
      ASSERT_TRUE(writer->Recover().ok());
      IngestStandard(writer.get());
    }
    CbirConfig memory_only = config;
    memory_only.snapshot_dir.clear();
    auto twin = ServiceFixture::Make(memory_only);
    IngestStandard(twin.get());
    auto recovered = ServiceFixture::Make(config);
    ASSERT_TRUE(recovered->Recover().ok());
    ExpectServiceParity(*recovered, *twin);
  }
}

TEST(PersistenceService, RecoverRefusesNonEmptyService) {
  const std::string dir = FreshDir("refuse");
  CbirConfig config;
  config.snapshot_dir = dir;
  auto service = ServiceFixture::Make(config);
  ASSERT_TRUE(service->Recover().ok());
  ASSERT_TRUE(service->AddImages(MakeNames(0, 4), MakeFeatures(0, 4)).ok());
  EXPECT_TRUE(service->Recover().IsFailedPrecondition());
}

TEST(PersistenceService, NoSnapshotDirMeansInMemoryOnly) {
  auto service = ServiceFixture::Make(CbirConfig{});
  ASSERT_TRUE(service->Recover().ok());  // no-op
  ASSERT_TRUE(service->AddImages(MakeNames(0, 4), MakeFeatures(0, 4)).ok());
  EXPECT_FALSE(service->persistence_stats().enabled);
  EXPECT_TRUE(service->Snapshot().IsFailedPrecondition());
}

/// Satellite: recovery bumps the query-cache epoch exactly ONCE —
/// attaching the recovered service — not once per restored batch.
TEST(PersistenceService, RecoveryBumpsCacheEpochExactlyOnce) {
  const std::string dir = FreshDir("epoch");
  CbirConfig config;
  config.index_kind = CbirIndexKind::kHashTable;
  config.num_shards = 4;
  config.snapshot_dir = dir;
  config.seal_threshold = 16;
  {
    auto writer = ServiceFixture::Make(config);
    ASSERT_TRUE(writer->Recover().ok());
    IngestStandard(writer.get());
  }

  EarthQube system;
  const uint64_t epoch_before = system.query_cache().epoch();
  ASSERT_TRUE(system.RecoverAndAttachCbir(ServiceFixture::Make(config)).ok());
  EXPECT_EQ(system.query_cache().epoch(), epoch_before + 1);
  ASSERT_NE(system.cbir(), nullptr);
  EXPECT_EQ(system.cbir()->num_indexed(), 108u);
}

}  // namespace
}  // namespace agoraeo::earthqube
