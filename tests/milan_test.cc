#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "common/byte_buffer.h"
#include "milan/baselines.h"
#include "milan/losses.h"
#include "milan/metrics.h"
#include "milan/milan_model.h"
#include "milan/trainer.h"
#include "milan/triplet_sampler.h"

namespace agoraeo::milan {
namespace {

using bigearthnet::LabelSet;

// ---------------------------------------------------------------------------
// Losses: values
// ---------------------------------------------------------------------------

TEST(TripletLossTest, ZeroWhenWellSeparated) {
  // anchor == positive, negative far: violation = 0 - large + margin < 0.
  Tensor outputs({3, 4}, {1, 1, 1, 1,      // anchor
                          1, 1, 1, 1,      // positive
                          -1, -1, -1, -1}); // negative
  auto result = TripletLoss(outputs, 1, /*margin=*/2.0f);
  EXPECT_EQ(result.value, 0.0f);
  EXPECT_EQ(result.active, 0u);
  EXPECT_EQ(result.grad.L2Norm(), 0.0f);
}

TEST(TripletLossTest, PenalisesInvertedTriplet) {
  // anchor near negative, far from positive.
  Tensor outputs({3, 2}, {0, 0,     // anchor
                          2, 0,     // positive (d^2 = 4)
                          0, 0});   // negative (d^2 = 0)
  auto result = TripletLoss(outputs, 1, 1.0f);
  EXPECT_FLOAT_EQ(result.value, 5.0f);  // 4 - 0 + 1
  EXPECT_EQ(result.active, 1u);
  EXPECT_GT(result.grad.L2Norm(), 0.0f);
}

TEST(TripletLossTest, GradientMatchesFiniteDifference) {
  Rng rng(1);
  const size_t batch = 3, k = 5;
  Tensor outputs = Tensor::RandomNormal({3 * batch, k}, 0.8f, &rng);
  const float margin = 1.0f;
  auto analytic = TripletLoss(outputs, batch, margin);
  const float eps = 1e-3f;
  for (size_t i = 0; i < outputs.size(); i += 4) {
    Tensor plus = outputs, minus = outputs;
    plus[i] += eps;
    minus[i] -= eps;
    const float numeric = (TripletLoss(plus, batch, margin).value -
                           TripletLoss(minus, batch, margin).value) /
                          (2 * eps);
    EXPECT_NEAR(analytic.grad[i], numeric, 5e-3f) << "component " << i;
  }
}

TEST(BitBalanceLossTest, ZeroForPerfectlyBalancedBits) {
  // Two rows that are exact negations: every bit's mean is 0; with
  // beta=0 the loss vanishes.
  Tensor outputs({2, 4}, {1, -1, 1, -1, -1, 1, -1, 1});
  auto result = BitBalanceLoss(outputs, /*beta=*/0.0f);
  EXPECT_FLOAT_EQ(result.value, 0.0f);
}

TEST(BitBalanceLossTest, PenalisesConstantBits) {
  Tensor outputs = Tensor::Full({4, 8}, 1.0f);  // all bits always on
  auto result = BitBalanceLoss(outputs, 0.0f);
  EXPECT_FLOAT_EQ(result.value, 1.0f);  // ||mu||^2 / K = 8/8
  EXPECT_GT(result.grad.L2Norm(), 0.0f);
}

TEST(BitBalanceLossTest, IndependenceTermPenalisesCorrelatedBits) {
  // Two identical columns = perfectly correlated bits.
  Rng rng(2);
  Tensor outputs({16, 2});
  for (size_t i = 0; i < 16; ++i) {
    const float v = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
    outputs.at(i, 0) = v;
    outputs.at(i, 1) = v;
  }
  const float without = BitBalanceLoss(outputs, 0.0f).value;
  const float with = BitBalanceLoss(outputs, 1.0f).value;
  EXPECT_GT(with, without);
}

TEST(BitBalanceLossTest, GradientMatchesFiniteDifference) {
  Rng rng(3);
  Tensor outputs = Tensor::RandomNormal({6, 4}, 0.7f, &rng);
  const float beta = 0.5f;
  auto analytic = BitBalanceLoss(outputs, beta);
  const float eps = 1e-3f;
  for (size_t i = 0; i < outputs.size(); i += 3) {
    Tensor plus = outputs, minus = outputs;
    plus[i] += eps;
    minus[i] -= eps;
    const float numeric = (BitBalanceLoss(plus, beta).value -
                           BitBalanceLoss(minus, beta).value) /
                          (2 * eps);
    EXPECT_NEAR(analytic.grad[i], numeric, 2e-3f) << "component " << i;
  }
}

TEST(QuantizationLossTest, ZeroAtSignValues) {
  Tensor outputs({2, 3}, {1, -1, 1, -1, 1, -1});
  EXPECT_FLOAT_EQ(QuantizationLoss(outputs).value, 0.0f);
}

TEST(QuantizationLossTest, MaximalAtZero) {
  Tensor outputs({1, 4});
  auto result = QuantizationLoss(outputs);
  EXPECT_FLOAT_EQ(result.value, 1.0f);  // (|0|-1)^2 = 1 everywhere
}

TEST(QuantizationLossTest, GradientPullsTowardSigns) {
  Tensor outputs({1, 2}, {0.5f, -0.3f});
  auto result = QuantizationLoss(outputs);
  EXPECT_LT(result.grad[0], 0.0f);  // 0.5 should rise toward +1
  EXPECT_GT(result.grad[1], 0.0f);  // -0.3 should fall toward -1
}

TEST(QuantizationLossTest, GradientMatchesFiniteDifference) {
  Rng rng(4);
  Tensor outputs = Tensor::RandomNormal({4, 6}, 0.6f, &rng);
  auto analytic = QuantizationLoss(outputs);
  const float eps = 1e-3f;
  for (size_t i = 0; i < outputs.size(); i += 5) {
    Tensor plus = outputs, minus = outputs;
    plus[i] += eps;
    minus[i] -= eps;
    const float numeric =
        (QuantizationLoss(plus).value - QuantizationLoss(minus).value) /
        (2 * eps);
    EXPECT_NEAR(analytic.grad[i], numeric, 2e-3f);
  }
}

TEST(MilanLossTest, CombinesWeightedTerms) {
  Rng rng(5);
  const size_t batch = 4;
  Tensor outputs = Tensor::RandomNormal({3 * batch, 8}, 0.5f, &rng);
  MilanLossConfig config;
  config.triplet_weight = 1.0f;
  config.balance_weight = 0.5f;
  config.quantization_weight = 0.25f;
  auto combined = MilanLoss(outputs, batch, config);
  EXPECT_NEAR(combined.total,
              combined.triplet + 0.5f * combined.balance +
                  0.25f * combined.quantization,
              1e-5f);
  EXPECT_EQ(combined.grad.shape(), outputs.shape());
}

TEST(MilanLossTest, FullCompositeGradientCheck) {
  Rng rng(6);
  const size_t batch = 2;
  Tensor outputs = Tensor::RandomNormal({3 * batch, 4}, 0.6f, &rng);
  MilanLossConfig config;
  auto analytic = MilanLoss(outputs, batch, config);
  const float eps = 1e-3f;
  for (size_t i = 0; i < outputs.size(); i += 2) {
    Tensor plus = outputs, minus = outputs;
    plus[i] += eps;
    minus[i] -= eps;
    const float numeric = (MilanLoss(plus, batch, config).total -
                           MilanLoss(minus, batch, config).total) /
                          (2 * eps);
    EXPECT_NEAR(analytic.grad[i], numeric, 5e-3f) << "component " << i;
  }
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

TEST(MilanModelTest, ArchitectureShape) {
  MilanConfig config;
  config.feature_dim = 128;
  config.hash_bits = 64;
  MilanModel model(config);
  Rng rng(7);
  Tensor input = Tensor::RandomNormal({5, 128}, 1.0f, &rng);
  Tensor out = model.Forward(input, false);
  EXPECT_EQ(out.shape(), (std::vector<size_t>{5, 64}));
  EXPECT_LE(out.Max(), 1.0f);
  EXPECT_GE(out.Min(), -1.0f);
}

TEST(MilanModelTest, HashProducesRequestedBits) {
  MilanConfig config;
  config.feature_dim = 16;
  config.hidden1 = 32;
  config.hidden2 = 16;
  config.hash_bits = 48;
  MilanModel model(config);
  Rng rng(8);
  Tensor feature = Tensor::RandomNormal({16}, 1.0f, &rng);
  BinaryCode code = model.HashOne(feature);
  EXPECT_EQ(code.size(), 48u);
  // Deterministic inference.
  EXPECT_EQ(model.HashOne(feature), code);
}

TEST(MilanModelTest, HashBatchMatchesHashOne) {
  MilanConfig config;
  config.feature_dim = 8;
  config.hidden1 = 16;
  config.hidden2 = 8;
  config.hash_bits = 16;
  config.dropout = 0.0f;
  MilanModel model(config);
  Rng rng(9);
  Tensor batch = Tensor::RandomNormal({4, 8}, 1.0f, &rng);
  auto codes = model.HashBatch(batch);
  ASSERT_EQ(codes.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(codes[i], model.HashOne(batch.Row(i))) << "row " << i;
  }
}

TEST(MilanModelTest, SaveLoadRoundTrip) {
  const std::string path = "/tmp/agoraeo_milan_model.bin";
  MilanConfig config;
  config.feature_dim = 12;
  config.hidden1 = 24;
  config.hidden2 = 12;
  config.hash_bits = 32;
  MilanModel model(config);
  Rng rng(10);
  Tensor feature = Tensor::RandomNormal({12}, 1.0f, &rng);
  const BinaryCode before = model.HashOne(feature);
  ASSERT_TRUE(model.Save(path).ok());

  auto loaded = MilanModel::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->config().hash_bits, 32u);
  EXPECT_EQ((*loaded)->HashOne(feature), before);
  std::remove(path.c_str());
}

TEST(MilanModelTest, LoadRejectsCorruptFile) {
  const std::string path = "/tmp/agoraeo_milan_bad.bin";
  ASSERT_TRUE(WriteFileBytes(path, {9, 9, 9, 9, 9, 9, 9, 9}).ok());
  EXPECT_FALSE(MilanModel::Load(path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Triplet sampler
// ---------------------------------------------------------------------------

std::vector<LabelSet> ToyCorpus() {
  // Items 0-3: forest-ish; 4-7: water-ish; 8-9: urban.
  return {LabelSet({22}),     LabelSet({22, 24}), LabelSet({23}),
          LabelSet({22, 23}), LabelSet({39}),     LabelSet({39, 38}),
          LabelSet({42}),     LabelSet({39, 42}), LabelSet({0, 1}),
          LabelSet({1})};
}

TEST(TripletSamplerTest, TripletsAreValid) {
  TripletSampler sampler(ToyCorpus());
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    auto t = sampler.Sample(&rng);
    ASSERT_TRUE(t.ok());
    EXPECT_NE(t->anchor, t->positive);
    EXPECT_TRUE(sampler.Similar(t->anchor, t->positive));
    EXPECT_FALSE(sampler.Similar(t->anchor, t->negative));
  }
}

TEST(TripletSamplerTest, BatchSampling) {
  TripletSampler sampler(ToyCorpus());
  Rng rng(12);
  auto batch = sampler.SampleBatch(32, &rng);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 32u);
}

TEST(TripletSamplerTest, FailsOnHomogeneousCorpus) {
  // Everyone shares label 5: no valid negative exists.
  std::vector<LabelSet> corpus(10, LabelSet({5}));
  TripletSampler sampler(corpus);
  Rng rng(13);
  EXPECT_TRUE(sampler.Sample(&rng).status().IsFailedPrecondition());
}

TEST(TripletSamplerTest, FailsOnTinyCorpus) {
  TripletSampler sampler({LabelSet({1}), LabelSet({2})});
  Rng rng(14);
  EXPECT_FALSE(sampler.Sample(&rng).ok());
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, PrecisionAtK) {
  std::vector<bool> rel = {true, false, true, true, false};
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 5), 0.6);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 10), 0.6);  // truncates to list size
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, 5), 0.0);
}

TEST(MetricsTest, AveragePrecision) {
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecision({true, false, true}), (1.0 + 2.0 / 3.0) / 2.0,
              1e-12);
  EXPECT_DOUBLE_EQ(AveragePrecision({false, false}), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision({true, true, true}), 1.0);
}

TEST(MetricsTest, RankByHammingOrdersByDistance) {
  BinaryCode query = BinaryCode::FromBitString("0000");
  std::vector<BinaryCode> db = {
      BinaryCode::FromBitString("1111"),  // d=4
      BinaryCode::FromBitString("0001"),  // d=1
      BinaryCode::FromBitString("0011"),  // d=2
      BinaryCode::FromBitString("0000"),  // d=0
  };
  auto ranked = RankByHamming(query, db, /*exclude_index=*/SIZE_MAX);
  EXPECT_EQ(ranked, (std::vector<size_t>{3, 1, 2, 0}));
  auto excluded = RankByHamming(query, db, 3);
  EXPECT_EQ(excluded, (std::vector<size_t>{1, 2, 0}));
}

TEST(MetricsTest, RankByL2) {
  Tensor db({3, 2}, {0, 0, 3, 0, 1, 0});
  Tensor query({2}, {0.9f, 0});
  auto ranked = RankByL2(query, db, SIZE_MAX);
  EXPECT_EQ(ranked, (std::vector<size_t>{2, 0, 1}));
}

TEST(MetricsTest, EvaluateRetrievalAggregates) {
  // Two queries with hand-built rankings.
  auto rank_fn = [](size_t q) {
    return q == 0 ? std::vector<size_t>{1, 2} : std::vector<size_t>{2, 1};
  };
  auto is_relevant = [](size_t /*q*/, size_t i) { return i == 1; };
  auto quality = EvaluateRetrieval(2, 2, rank_fn, is_relevant);
  EXPECT_EQ(quality.num_queries, 2u);
  EXPECT_DOUBLE_EQ(quality.precision_at_k, 0.5);
  EXPECT_DOUBLE_EQ(quality.map_at_k, (1.0 + 0.5) / 2.0);
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

TEST(BaselinesTest, LshIsDeterministicPerSeed) {
  RandomHyperplaneLsh a(16, 32, 77), b(16, 32, 77), c(16, 32, 78);
  Rng rng(15);
  Tensor f = Tensor::RandomNormal({16}, 1.0f, &rng);
  EXPECT_EQ(a.Hash(f), b.Hash(f));
  EXPECT_NE(a.Hash(f), c.Hash(f));
  EXPECT_EQ(a.Hash(f).size(), 32u);
}

TEST(BaselinesTest, LshPreservesSimilarityInExpectation) {
  // Nearby vectors get closer codes than far vectors.
  RandomHyperplaneLsh lsh(32, 64, 79);
  Rng rng(16);
  double near_dist = 0, far_dist = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Tensor base = Tensor::RandomNormal({32}, 1.0f, &rng);
    Tensor near = base;
    for (size_t i = 0; i < near.size(); ++i) {
      near[i] += static_cast<float>(rng.Normal(0.0, 0.1));
    }
    Tensor far = Tensor::RandomNormal({32}, 1.0f, &rng);
    near_dist += lsh.Hash(base).HammingDistance(lsh.Hash(near));
    far_dist += lsh.Hash(base).HammingDistance(lsh.Hash(far));
  }
  EXPECT_LT(near_dist, far_dist * 0.6);
}

TEST(BaselinesTest, MedianThresholdBalancesBits) {
  Rng rng(17);
  Tensor training = Tensor::RandomNormal({400, 16}, 1.0f, &rng);
  MedianThresholdHash hasher(training, 32, 80);
  auto codes = hasher.HashBatch(training);
  // Each bit should be set for roughly half the training items.
  for (size_t bit = 0; bit < 32; ++bit) {
    size_t on = 0;
    for (const auto& code : codes) {
      if (code.GetBit(bit)) ++on;
    }
    EXPECT_NEAR(static_cast<double>(on) / codes.size(), 0.5, 0.1)
        << "bit " << bit;
  }
}

TEST(BaselinesTest, ItqHashesAndIsDeterministic) {
  Rng rng(18);
  Tensor training = Tensor::RandomNormal({200, 16}, 1.0f, &rng);
  ItqHash itq(training, 8, 10, 81);
  Tensor f = training.Row(0);
  EXPECT_EQ(itq.Hash(f).size(), 8u);
  EXPECT_EQ(itq.Hash(f), itq.Hash(f));
  auto batch = itq.HashBatch(training);
  EXPECT_EQ(batch.size(), 200u);
  EXPECT_EQ(batch[0], itq.Hash(training.Row(0)));
}

// ---------------------------------------------------------------------------
// Training end-to-end: MiLaN beats LSH on the synthetic archive
// ---------------------------------------------------------------------------

class TrainingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bigearthnet::ArchiveConfig config;
    config.num_patches = 800;
    config.seed = 31;
    config.patches_per_scene = 25;
    generator_ = std::make_unique<bigearthnet::ArchiveGenerator>(config);
    auto archive = generator_->Generate();
    ASSERT_TRUE(archive.ok());
    archive_ = std::move(archive).value();

    bigearthnet::FeatureExtractor extractor;
    features_ = extractor.ExtractArchive(archive_, *generator_, 4);

    std::vector<LabelSet> labels;
    for (const auto& p : archive_.patches) labels.push_back(p.labels);
    sampler_ = std::make_unique<TripletSampler>(std::move(labels));
  }

  std::unique_ptr<bigearthnet::ArchiveGenerator> generator_;
  bigearthnet::Archive archive_;
  Tensor features_;
  std::unique_ptr<TripletSampler> sampler_;
};

TEST_F(TrainingTest, LossDecreasesOverTraining) {
  MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 128;
  mconfig.hidden2 = 64;
  mconfig.hash_bits = 32;
  mconfig.dropout = 0.0f;
  MilanModel model(mconfig);

  TrainConfig tconfig;
  tconfig.epochs = 6;
  tconfig.batches_per_epoch = 20;
  tconfig.batch_size = 16;
  tconfig.learning_rate = 5e-4f;
  Trainer trainer(&model, &features_, sampler_.get(), tconfig);
  auto result = trainer.Train();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->epochs.size(), 6u);
  EXPECT_LT(result->epochs.back().total, result->epochs.front().total);
  EXPECT_GT(result->samples_seen, 0u);
}

TEST_F(TrainingTest, TrainedCodesBeatLshAtRetrieval) {
  MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 128;
  mconfig.hidden2 = 64;
  mconfig.hash_bits = 32;
  mconfig.dropout = 0.0f;
  MilanModel model(mconfig);

  TrainConfig tconfig;
  tconfig.epochs = 8;
  tconfig.batches_per_epoch = 25;
  tconfig.batch_size = 24;
  tconfig.learning_rate = 1e-3f;
  Trainer trainer(&model, &features_, sampler_.get(), tconfig);
  ASSERT_TRUE(trainer.Train().ok());

  const auto milan_codes = model.HashBatch(features_);
  RandomHyperplaneLsh lsh(bigearthnet::kFeatureDim, 32, 83);
  const auto lsh_codes = lsh.HashBatch(features_);

  auto relevant = [&](size_t q, size_t i) {
    return archive_.patches[q].labels.ContainsAny(archive_.patches[i].labels);
  };
  const size_t num_queries = 40, k = 10;
  auto milan_quality = EvaluateRetrieval(
      num_queries, k,
      [&](size_t q) { return RankByHamming(milan_codes[q], milan_codes, q); },
      relevant);
  auto lsh_quality = EvaluateRetrieval(
      num_queries, k,
      [&](size_t q) { return RankByHamming(lsh_codes[q], lsh_codes, q); },
      relevant);
  // The paper's claim (via [3]): learned codes are more accurate than
  // data-independent hashing at the same bit budget.
  EXPECT_GT(milan_quality.precision_at_k, lsh_quality.precision_at_k);
  EXPECT_GT(milan_quality.precision_at_k, 0.5);
}

TEST_F(TrainingTest, BitBalanceImprovesWithTraining) {
  MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 64;
  mconfig.hidden2 = 32;
  mconfig.hash_bits = 16;
  mconfig.dropout = 0.0f;
  MilanModel model(mconfig);

  auto mean_bit_activation = [&]() {
    const auto codes = model.HashBatch(features_);
    double acc = 0;
    for (size_t bit = 0; bit < 16; ++bit) {
      size_t on = 0;
      for (const auto& code : codes) on += code.GetBit(bit);
      acc += std::fabs(static_cast<double>(on) / codes.size() - 0.5);
    }
    return acc / 16;  // mean deviation from 50% activation
  };

  TrainConfig tconfig;
  tconfig.epochs = 6;
  tconfig.batches_per_epoch = 20;
  tconfig.batch_size = 16;
  tconfig.loss.balance_weight = 2.0f;
  const double before = mean_bit_activation();
  Trainer trainer(&model, &features_, sampler_.get(), tconfig);
  ASSERT_TRUE(trainer.Train().ok());
  const double after = mean_bit_activation();
  EXPECT_LE(after, before + 0.02);  // balance does not degrade; usually improves
  EXPECT_LT(after, 0.2);            // bits end near 50% activation
}

}  // namespace
}  // namespace agoraeo::milan
