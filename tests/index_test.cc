#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <thread>

#include "common/random.h"
#include "common/thread_pool.h"
#include "milan/baselines.h"
#include "index/hamming_table.h"
#include "index/bk_tree.h"
#include "index/ivf_index.h"
#include "index/product_quantizer.h"
#include "index/linear_scan.h"

namespace agoraeo::index {
namespace {

BinaryCode RandomCode(size_t bits, Rng* rng) {
  BinaryCode code(bits);
  for (size_t i = 0; i < bits; ++i) code.SetBit(i, rng->Bernoulli(0.5));
  return code;
}

/// Flips exactly `flips` random distinct bits of `base`.
BinaryCode Perturb(const BinaryCode& base, size_t flips, Rng* rng) {
  BinaryCode code = base;
  auto positions = rng->SampleWithoutReplacement(base.size(), flips);
  for (size_t pos : positions) code.FlipBit(pos);
  return code;
}

// ---------------------------------------------------------------------------
// LinearScanIndex (the reference implementation)
// ---------------------------------------------------------------------------

TEST(LinearScanTest, RadiusSearchExact) {
  LinearScanIndex idx;
  Rng rng(1);
  BinaryCode query = RandomCode(64, &rng);
  ASSERT_TRUE(idx.Add(0, query).ok());                      // d = 0
  ASSERT_TRUE(idx.Add(1, Perturb(query, 3, &rng)).ok());    // d = 3
  ASSERT_TRUE(idx.Add(2, Perturb(query, 10, &rng)).ok());   // d = 10

  auto r2 = idx.RadiusSearch(query, 2);
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0].id, 0u);
  auto r5 = idx.RadiusSearch(query, 5);
  ASSERT_EQ(r5.size(), 2u);
  EXPECT_EQ(r5[1].id, 1u);
  EXPECT_EQ(r5[1].distance, 3u);
  auto r64 = idx.RadiusSearch(query, 64);
  EXPECT_EQ(r64.size(), 3u);
}

TEST(LinearScanTest, KnnOrderedAndTiedById) {
  LinearScanIndex idx;
  BinaryCode zero(16);
  BinaryCode one(16);
  one.SetBit(0, true);
  ASSERT_TRUE(idx.Add(5, one).ok());
  ASSERT_TRUE(idx.Add(3, one).ok());  // same distance, lower id
  ASSERT_TRUE(idx.Add(9, zero).ok());
  auto knn = idx.KnnSearch(zero, 3);
  ASSERT_EQ(knn.size(), 3u);
  EXPECT_EQ(knn[0].id, 9u);
  EXPECT_EQ(knn[0].distance, 0u);
  EXPECT_EQ(knn[1].id, 3u);  // tie broken by id
  EXPECT_EQ(knn[2].id, 5u);
}

TEST(LinearScanTest, KnnFewerThanK) {
  LinearScanIndex idx;
  Rng rng(2);
  ASSERT_TRUE(idx.Add(0, RandomCode(32, &rng)).ok());
  EXPECT_EQ(idx.KnnSearch(RandomCode(32, &rng), 10).size(), 1u);
}

TEST(LinearScanTest, RejectsMismatchedLengths) {
  LinearScanIndex idx;
  Rng rng(3);
  ASSERT_TRUE(idx.Add(0, RandomCode(64, &rng)).ok());
  EXPECT_TRUE(idx.Add(1, RandomCode(32, &rng)).IsInvalidArgument());
  EXPECT_TRUE(idx.Add(2, BinaryCode()).IsInvalidArgument());
}

TEST(FloatLinearScanTest, ExactNeighbors) {
  FloatLinearScan idx(2);
  idx.Add(0, Tensor({2}, {0, 0}));
  idx.Add(1, Tensor({2}, {1, 0}));
  idx.Add(2, Tensor({2}, {5, 5}));
  auto knn = idx.KnnSearch(Tensor({2}, {0.4f, 0}), 2);
  ASSERT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn[0].id, 0u);
  EXPECT_EQ(knn[1].id, 1u);
  EXPECT_NEAR(knn[0].distance, 0.16f, 1e-5f);
}

// ---------------------------------------------------------------------------
// HammingHashTable
// ---------------------------------------------------------------------------

TEST(HammingHashTableTest, ExactLookupRadiusZero) {
  HammingHashTable idx;
  Rng rng(4);
  BinaryCode a = RandomCode(128, &rng);
  BinaryCode b = Perturb(a, 1, &rng);
  ASSERT_TRUE(idx.Add(1, a).ok());
  ASSERT_TRUE(idx.Add(2, a).ok());  // same bucket
  ASSERT_TRUE(idx.Add(3, b).ok());
  auto hits = idx.RadiusSearch(a, 0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_EQ(hits[1].id, 2u);
  EXPECT_EQ(idx.num_buckets(), 2u);
  EXPECT_EQ(idx.size(), 3u);
}

TEST(HammingHashTableTest, ProbeCountBinomialSums) {
  EXPECT_EQ(HammingHashTable::ProbeCount(128, 0), 1u);
  EXPECT_EQ(HammingHashTable::ProbeCount(128, 1), 129u);
  EXPECT_EQ(HammingHashTable::ProbeCount(128, 2), 1u + 128u + 8128u);
  EXPECT_EQ(HammingHashTable::ProbeCount(4, 4), 16u);  // whole space
  EXPECT_EQ(HammingHashTable::ProbeCount(512, 60), SIZE_MAX);  // saturates
}

TEST(HammingHashTableTest, StatsReportProbeStrategy) {
  HammingHashTable idx;
  Rng rng(5);
  for (ItemId i = 0; i < 100; ++i) {
    ASSERT_TRUE(idx.Add(i, RandomCode(32, &rng)).ok());
  }
  // Small radius: mask enumeration (probes = 1 + 32 = 33).
  SearchStats stats;
  idx.RadiusSearch(RandomCode(32, &rng), 1, &stats);
  EXPECT_EQ(stats.buckets_probed, 33u);
  // Large radius: bucket scan (probes = number of buckets).
  idx.RadiusSearch(RandomCode(32, &rng), 20, &stats);
  EXPECT_EQ(stats.buckets_probed, idx.num_buckets());
}

// ---------------------------------------------------------------------------
// MultiIndexHashing
// ---------------------------------------------------------------------------

TEST(MultiIndexHashingTest, SubstringGuarantee) {
  // Construct a code pair at distance exactly r and verify MIH finds it
  // for every r in a sweep.
  for (uint32_t r = 0; r <= 16; r += 4) {
    MultiIndexHashing idx(4);
    Rng rng(6 + r);
    BinaryCode base = RandomCode(128, &rng);
    BinaryCode far = Perturb(base, r, &rng);
    ASSERT_TRUE(idx.Add(1, far).ok());
    auto hits = idx.RadiusSearch(base, r);
    ASSERT_EQ(hits.size(), 1u) << "radius " << r;
    EXPECT_EQ(hits[0].distance, r);
  }
}

TEST(MultiIndexHashingTest, RejectsOversizedSubstrings) {
  MultiIndexHashing idx(1);  // 128-bit single substring > 64 bits
  Rng rng(7);
  EXPECT_TRUE(idx.Add(0, RandomCode(128, &rng)).IsInvalidArgument());
}

TEST(MultiIndexHashingTest, UnevenSplitWorks) {
  MultiIndexHashing idx(3);  // 64 = 22 + 21 + 21
  Rng rng(8);
  BinaryCode base = RandomCode(64, &rng);
  ASSERT_TRUE(idx.Add(0, base).ok());
  ASSERT_TRUE(idx.Add(1, Perturb(base, 5, &rng)).ok());
  auto hits = idx.RadiusSearch(base, 6);
  EXPECT_EQ(hits.size(), 2u);
}

// ---------------------------------------------------------------------------
// Cross-implementation equivalence (property tests)
// ---------------------------------------------------------------------------

struct EquivalenceParams {
  size_t bits;
  size_t n_items;
  uint32_t radius;
};

class IndexEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParams> {};

TEST_P(IndexEquivalenceTest, AllIndexesReturnIdenticalRadiusResults) {
  const auto& params = GetParam();
  Rng rng(1000 + params.bits + params.radius);

  LinearScanIndex reference;
  HammingHashTable table;
  MultiIndexHashing mih(4);
  BkTree bk;

  // Clustered codes so radius searches have non-trivial results.
  std::vector<BinaryCode> centers;
  for (int c = 0; c < 5; ++c) centers.push_back(RandomCode(params.bits, &rng));
  for (ItemId i = 0; i < params.n_items; ++i) {
    const BinaryCode code = Perturb(
        centers[i % centers.size()],
        rng.UniformInt(static_cast<uint32_t>(params.bits / 8)), &rng);
    ASSERT_TRUE(reference.Add(i, code).ok());
    ASSERT_TRUE(table.Add(i, code).ok());
    ASSERT_TRUE(mih.Add(i, code).ok());
    ASSERT_TRUE(bk.Add(i, code).ok());
  }

  for (int q = 0; q < 10; ++q) {
    const BinaryCode query =
        Perturb(centers[static_cast<size_t>(q) % centers.size()],
                rng.UniformInt(4), &rng);
    const auto expected = reference.RadiusSearch(query, params.radius);
    const auto from_table = table.RadiusSearch(query, params.radius);
    const auto from_mih = mih.RadiusSearch(query, params.radius);
    const auto from_bk = bk.RadiusSearch(query, params.radius);
    EXPECT_EQ(from_table, expected) << "hash table, query " << q;
    EXPECT_EQ(from_mih, expected) << "MIH, query " << q;
    EXPECT_EQ(from_bk, expected) << "BK-tree, query " << q;
  }
}

TEST_P(IndexEquivalenceTest, KnnMatchesReferenceDistances) {
  const auto& params = GetParam();
  Rng rng(2000 + params.bits + params.radius);

  LinearScanIndex reference;
  HammingHashTable table;
  MultiIndexHashing mih(4);
  BkTree bk;
  std::vector<BinaryCode> centers;
  for (int c = 0; c < 4; ++c) centers.push_back(RandomCode(params.bits, &rng));
  for (ItemId i = 0; i < params.n_items; ++i) {
    const BinaryCode code =
        Perturb(centers[i % centers.size()],
                rng.UniformInt(static_cast<uint32_t>(params.bits / 6)), &rng);
    ASSERT_TRUE(reference.Add(i, code).ok());
    ASSERT_TRUE(table.Add(i, code).ok());
    ASSERT_TRUE(mih.Add(i, code).ok());
    ASSERT_TRUE(bk.Add(i, code).ok());
  }
  const size_t k = 7;
  for (int q = 0; q < 5; ++q) {
    const BinaryCode query = RandomCode(params.bits, &rng);
    const auto expected = reference.KnnSearch(query, k);
    const auto from_table = table.KnnSearch(query, k);
    const auto from_mih = mih.KnnSearch(query, k);
    // Distances must agree exactly (ids may differ only on equal
    // distance; our tie-break is deterministic so full equality holds).
    EXPECT_EQ(from_table, expected) << "hash table knn, query " << q;
    EXPECT_EQ(from_mih, expected) << "MIH knn, query " << q;
    EXPECT_EQ(bk.KnnSearch(query, k), expected) << "BK knn, query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexEquivalenceTest,
    ::testing::Values(EquivalenceParams{32, 200, 2},
                      EquivalenceParams{32, 200, 6},
                      EquivalenceParams{64, 300, 3},
                      EquivalenceParams{64, 300, 8},
                      EquivalenceParams{128, 400, 4},
                      EquivalenceParams{128, 400, 10}));

// ---------------------------------------------------------------------------
// Candidate-restricted search (the hybrid-query pre-filter leg)
// ---------------------------------------------------------------------------

/// Builds one index of each kind over the same clustered codes.
struct AllKinds {
  LinearScanIndex scan;
  HammingHashTable table;
  MultiIndexHashing mih{4};
  BkTree bk;
  std::vector<HammingIndex*> all;

  AllKinds(size_t bits, size_t n_items, Rng* rng) {
    std::vector<BinaryCode> centers;
    for (int c = 0; c < 5; ++c) centers.push_back(RandomCode(bits, rng));
    for (ItemId i = 0; i < n_items; ++i) {
      const BinaryCode code =
          Perturb(centers[i % centers.size()],
                  rng->UniformInt(static_cast<uint32_t>(bits / 8)), rng);
      for (HammingIndex* idx :
           {static_cast<HammingIndex*>(&scan), static_cast<HammingIndex*>(&table),
            static_cast<HammingIndex*>(&mih), static_cast<HammingIndex*>(&bk)}) {
        // Not ASSERT_TRUE: gtest assertions only early-return inside the
        // constructor instead of failing the test.
        if (!idx->Add(i, code).ok()) std::abort();
      }
    }
    all = {&scan, &table, &mih, &bk};
  }
};

TEST(RestrictedSearchTest, RadiusSearchInEqualsPostFilteredRadiusSearch) {
  Rng rng(77);
  constexpr size_t kBits = 64;
  constexpr size_t kItems = 300;
  AllKinds kinds(kBits, kItems, &rng);

  // Allowlists of varied density, including ids absent from the index.
  for (double density : {0.02, 0.25, 0.9}) {
    std::vector<ItemId> ids;
    for (ItemId i = 0; i < kItems + 20; ++i) {
      if (rng.Bernoulli(density)) ids.push_back(i);
    }
    const CandidateSet allowed(ids);
    for (int q = 0; q < 8; ++q) {
      const BinaryCode query = RandomCode(kBits, &rng);
      for (HammingIndex* idx : kinds.all) {
        auto expected = idx->RadiusSearch(query, 8);
        expected.erase(
            std::remove_if(expected.begin(), expected.end(),
                           [&](const SearchResult& r) {
                             return !allowed.Contains(r.id);
                           }),
            expected.end());
        EXPECT_EQ(idx->RadiusSearchIn(query, 8, allowed), expected)
            << idx->Name() << " density " << density << " query " << q;
      }
    }
  }
}

TEST(RestrictedSearchTest, KnnSearchInReturnsNearestAllowed) {
  Rng rng(78);
  constexpr size_t kBits = 64;
  constexpr size_t kItems = 250;
  AllKinds kinds(kBits, kItems, &rng);

  for (double density : {0.05, 0.5}) {
    std::vector<ItemId> ids;
    for (ItemId i = 0; i < kItems; ++i) {
      if (rng.Bernoulli(density)) ids.push_back(i);
    }
    const CandidateSet allowed(ids);
    for (int q = 0; q < 6; ++q) {
      const BinaryCode query = RandomCode(kBits, &rng);
      // Reference: rank everything, keep the first k allowed.
      const size_t k = 9;
      auto ranked = kinds.scan.KnnSearch(query, kItems);
      std::vector<SearchResult> expected;
      for (const SearchResult& r : ranked) {
        if (expected.size() >= k) break;
        if (allowed.Contains(r.id)) expected.push_back(r);
      }
      for (HammingIndex* idx : kinds.all) {
        EXPECT_EQ(idx->KnnSearchIn(query, k, allowed), expected)
            << idx->Name() << " density " << density << " query " << q;
      }
    }
  }
}

TEST(RestrictedSearchTest, EmptyAndFullAllowlists) {
  Rng rng(79);
  constexpr size_t kBits = 32;
  constexpr size_t kItems = 120;
  AllKinds kinds(kBits, kItems, &rng);

  std::vector<ItemId> everyone;
  for (ItemId i = 0; i < kItems; ++i) everyone.push_back(i);
  const CandidateSet all_ids(everyone);
  const CandidateSet none;

  const BinaryCode query = RandomCode(kBits, &rng);
  for (HammingIndex* idx : kinds.all) {
    EXPECT_TRUE(idx->RadiusSearchIn(query, 6, none).empty()) << idx->Name();
    EXPECT_TRUE(idx->KnnSearchIn(query, 5, none).empty()) << idx->Name();
    // A full allowlist restricts nothing.
    EXPECT_EQ(idx->RadiusSearchIn(query, 6, all_ids),
              idx->RadiusSearch(query, 6))
        << idx->Name();
    EXPECT_EQ(idx->KnnSearchIn(query, 5, all_ids), idx->KnnSearch(query, 5))
        << idx->Name();
  }
}

TEST(IndexStressTest, EmptyIndexReturnsNothing) {
  HammingHashTable table;
  MultiIndexHashing mih(4);
  LinearScanIndex scan;
  BkTree bk;
  Rng rng(9);
  const BinaryCode query = RandomCode(64, &rng);
  EXPECT_TRUE(table.RadiusSearch(query, 5).empty());
  EXPECT_TRUE(mih.RadiusSearch(query, 5).empty());
  EXPECT_TRUE(scan.RadiusSearch(query, 5).empty());
  EXPECT_TRUE(bk.RadiusSearch(query, 5).empty());
  EXPECT_TRUE(table.KnnSearch(query, 3).empty());
  EXPECT_TRUE(mih.KnnSearch(query, 3).empty());
  EXPECT_TRUE(scan.KnnSearch(query, 3).empty());
  EXPECT_TRUE(bk.KnnSearch(query, 3).empty());
}

TEST(IndexStressTest, DuplicateCodesAllReturned) {
  HammingHashTable table;
  Rng rng(10);
  const BinaryCode code = RandomCode(64, &rng);
  for (ItemId i = 0; i < 50; ++i) ASSERT_TRUE(table.Add(i, code).ok());
  EXPECT_EQ(table.RadiusSearch(code, 0).size(), 50u);
  EXPECT_EQ(table.num_buckets(), 1u);
  EXPECT_EQ(table.KnnSearch(code, 10).size(), 10u);
}


// ---------------------------------------------------------------------------
// Batch search (BatchRadiusSearch / BatchKnnSearch)
// ---------------------------------------------------------------------------

/// All four HammingIndex kinds loaded with identical clustered codes.
struct IndexSet {
  std::vector<std::unique_ptr<HammingIndex>> indexes;
  std::vector<BinaryCode> queries;
};

IndexSet BuildIndexSet(size_t bits, size_t n_items, size_t n_queries,
                       uint64_t seed, bool with_duplicates = false) {
  IndexSet set;
  set.indexes.push_back(std::make_unique<LinearScanIndex>());
  set.indexes.push_back(std::make_unique<HammingHashTable>());
  set.indexes.push_back(std::make_unique<MultiIndexHashing>(4));
  set.indexes.push_back(std::make_unique<BkTree>());

  Rng rng(seed);
  std::vector<BinaryCode> centers;
  for (int c = 0; c < 5; ++c) centers.push_back(RandomCode(bits, &rng));
  for (ItemId i = 0; i < n_items; ++i) {
    // Duplicate codes force (distance, id) ties across many ids.
    const BinaryCode code =
        with_duplicates && i % 3 != 0
            ? centers[i % centers.size()]
            : Perturb(centers[i % centers.size()],
                      rng.UniformInt(static_cast<uint32_t>(bits / 8)), &rng);
    for (auto& idx : set.indexes) {
      EXPECT_TRUE(idx->Add(i, code).ok());
    }
  }
  for (size_t q = 0; q < n_queries; ++q) {
    // Include exact-duplicate queries (exercises the hash table's dedup).
    if (q % 4 == 3 && q > 0) {
      set.queries.push_back(set.queries[q - 1]);
    } else {
      set.queries.push_back(
          Perturb(centers[q % centers.size()], rng.UniformInt(4), &rng));
    }
  }
  return set;
}

TEST(BatchSearchTest, BatchEqualsSequentialForEveryKind) {
  IndexSet set = BuildIndexSet(64, 300, 13, 71);
  constexpr uint32_t kRadius = 8;
  constexpr size_t kK = 9;
  for (auto& idx : set.indexes) {
    const auto batch_radius = idx->BatchRadiusSearch(set.queries, kRadius);
    const auto batch_knn = idx->BatchKnnSearch(set.queries, kK);
    ASSERT_EQ(batch_radius.size(), set.queries.size()) << idx->Name();
    ASSERT_EQ(batch_knn.size(), set.queries.size()) << idx->Name();
    for (size_t q = 0; q < set.queries.size(); ++q) {
      EXPECT_EQ(batch_radius[q], idx->RadiusSearch(set.queries[q], kRadius))
          << idx->Name() << " radius, query " << q;
      EXPECT_EQ(batch_knn[q], idx->KnnSearch(set.queries[q], kK))
          << idx->Name() << " knn, query " << q;
    }
  }
}

TEST(BatchSearchTest, BatchedRestrictedEqualsSequentialRestricted) {
  // The execution engine's micro-batched pre-filter pass: many query
  // codes against one shared allowlist must equal per-query restricted
  // searches, with and without a pool.
  IndexSet set = BuildIndexSet(64, 300, 13, 74);
  constexpr uint32_t kRadius = 8;
  constexpr size_t kK = 7;
  Rng rng(75);
  std::vector<ItemId> ids;
  for (ItemId i = 0; i < 320; ++i) {
    if (rng.Bernoulli(0.3)) ids.push_back(i);
  }
  const CandidateSet allowed(ids);
  ThreadPool pool(3);
  for (auto& idx : set.indexes) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      const auto batch_radius =
          idx->BatchRadiusSearchIn(set.queries, kRadius, allowed, p);
      const auto batch_knn = idx->BatchKnnSearchIn(set.queries, kK, allowed, p);
      ASSERT_EQ(batch_radius.size(), set.queries.size()) << idx->Name();
      for (size_t q = 0; q < set.queries.size(); ++q) {
        EXPECT_EQ(batch_radius[q],
                  idx->RadiusSearchIn(set.queries[q], kRadius, allowed))
            << idx->Name() << " restricted radius, query " << q;
        EXPECT_EQ(batch_knn[q], idx->KnnSearchIn(set.queries[q], kK, allowed))
            << idx->Name() << " restricted knn, query " << q;
      }
    }
  }
}

TEST(BatchSearchTest, EmptyBatchReturnsEmpty) {
  IndexSet set = BuildIndexSet(64, 50, 0, 72);
  const std::vector<BinaryCode> empty;
  ThreadPool pool(2);
  for (auto& idx : set.indexes) {
    std::vector<SearchStats> stats;
    EXPECT_TRUE(idx->BatchRadiusSearch(empty, 5, &pool, &stats).empty())
        << idx->Name();
    EXPECT_TRUE(stats.empty());
    EXPECT_TRUE(idx->BatchKnnSearch(empty, 3, &pool).empty()) << idx->Name();
  }
}

TEST(BatchSearchTest, ResultsIndependentOfThreadCount) {
  IndexSet set = BuildIndexSet(128, 400, 17, 73);
  constexpr uint32_t kRadius = 10;
  constexpr size_t kK = 6;
  for (auto& idx : set.indexes) {
    const auto expected_radius = idx->BatchRadiusSearch(set.queries, kRadius);
    const auto expected_knn = idx->BatchKnnSearch(set.queries, kK);
    for (size_t threads : {1, 2, 4, 8}) {
      ThreadPool pool(threads);
      EXPECT_EQ(idx->BatchRadiusSearch(set.queries, kRadius, &pool),
                expected_radius)
          << idx->Name() << " radius with " << threads << " threads";
      EXPECT_EQ(idx->BatchKnnSearch(set.queries, kK, &pool), expected_knn)
          << idx->Name() << " knn with " << threads << " threads";
    }
  }
}

TEST(BatchSearchTest, TieOrderingIsCanonicalAcrossKinds) {
  // Regression for the (distance, id) contract under heavy ties: many
  // items share identical codes, so whole runs of results differ only by
  // id.  Every kind (single-query and batch) must produce the exact same
  // canonically ordered list.
  IndexSet set = BuildIndexSet(32, 240, 11, 74, /*with_duplicates=*/true);
  constexpr uint32_t kRadius = 6;
  constexpr size_t kK = 25;
  ThreadPool pool(3);
  auto& reference = set.indexes[0];
  const auto expected_radius =
      reference->BatchRadiusSearch(set.queries, kRadius);
  const auto expected_knn = reference->BatchKnnSearch(set.queries, kK);
  for (size_t q = 0; q < set.queries.size(); ++q) {
    // The reference result itself must be (distance, id) sorted.
    EXPECT_TRUE(std::is_sorted(expected_radius[q].begin(),
                               expected_radius[q].end(), ResultLess))
        << "query " << q;
    EXPECT_TRUE(std::is_sorted(expected_knn[q].begin(), expected_knn[q].end(),
                               ResultLess))
        << "query " << q;
  }
  for (size_t i = 1; i < set.indexes.size(); ++i) {
    auto& idx = set.indexes[i];
    EXPECT_EQ(idx->BatchRadiusSearch(set.queries, kRadius, &pool),
              expected_radius)
        << idx->Name();
    EXPECT_EQ(idx->BatchKnnSearch(set.queries, kK, &pool), expected_knn)
        << idx->Name();
    for (size_t q = 0; q < set.queries.size(); ++q) {
      EXPECT_EQ(idx->RadiusSearch(set.queries[q], kRadius),
                expected_radius[q])
          << idx->Name() << " single-query radius, query " << q;
      EXPECT_EQ(idx->KnnSearch(set.queries[q], kK), expected_knn[q])
          << idx->Name() << " single-query knn, query " << q;
    }
  }
}

TEST(BatchSearchTest, ConcurrentBatchesShareOnePool) {
  // Regression for per-call completion tracking: many batch calls
  // running concurrently on ONE shared query pool must each return
  // their own correct results (waiting on global pool quiescence would
  // couple and potentially starve them).
  IndexSet set = BuildIndexSet(64, 300, 16, 77);
  constexpr uint32_t kRadius = 8;
  auto& idx = set.indexes[0];  // LinearScan: sharded override
  const auto expected = idx->BatchRadiusSearch(set.queries, kRadius);
  ThreadPool shared_pool(4);
  std::vector<std::thread> callers;
  std::vector<int> ok(6, 0);
  for (size_t c = 0; c < ok.size(); ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 5; ++round) {
        if (idx->BatchRadiusSearch(set.queries, kRadius, &shared_pool) !=
            expected) {
          return;  // leaves ok[c] == 0
        }
      }
      ok[c] = 1;
    });
  }
  for (auto& t : callers) t.join();
  for (size_t c = 0; c < ok.size(); ++c) {
    EXPECT_EQ(ok[c], 1) << "caller " << c;
  }
}

TEST(BatchSearchTest, BatchStatsMatchSingleQueryCounters) {
  IndexSet set = BuildIndexSet(64, 200, 7, 75);
  constexpr uint32_t kRadius = 7;
  for (auto& idx : set.indexes) {
    std::vector<SearchStats> batch_stats;
    const auto batch =
        idx->BatchRadiusSearch(set.queries, kRadius, nullptr, &batch_stats);
    ASSERT_EQ(batch_stats.size(), set.queries.size()) << idx->Name();
    for (size_t q = 0; q < set.queries.size(); ++q) {
      EXPECT_EQ(batch_stats[q].results, batch[q].size())
          << idx->Name() << " query " << q;
      SearchStats single;
      idx->RadiusSearch(set.queries[q], kRadius, &single);
      EXPECT_EQ(batch_stats[q].results, single.results)
          << idx->Name() << " query " << q;
      EXPECT_EQ(batch_stats[q].candidates, single.candidates)
          << idx->Name() << " query " << q;
    }
  }
}

// ---------------------------------------------------------------------------
// BkTree specifics
// ---------------------------------------------------------------------------

TEST(BkTreeTest, DuplicateCodesShareOneNode) {
  BkTree bk;
  Rng rng(31);
  const BinaryCode code = RandomCode(64, &rng);
  ASSERT_TRUE(bk.Add(1, code).ok());
  ASSERT_TRUE(bk.Add(2, code).ok());
  EXPECT_EQ(bk.size(), 2u);
  EXPECT_EQ(bk.Depth(), 1u);
  auto hits = bk.RadiusSearch(code, 0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].distance, 0u);
  EXPECT_EQ(hits[1].distance, 0u);
}

TEST(BkTreeTest, RejectsMismatchedCodeLength) {
  BkTree bk;
  Rng rng(32);
  ASSERT_TRUE(bk.Add(1, RandomCode(64, &rng)).ok());
  EXPECT_TRUE(bk.Add(2, RandomCode(32, &rng)).IsInvalidArgument());
  EXPECT_TRUE(bk.Add(3, BinaryCode()).IsInvalidArgument());
}

TEST(BkTreeTest, PruningVisitsFewerNodesThanScanAtSmallRadius) {
  BkTree bk;
  LinearScanIndex scan;
  Rng rng(33);
  std::vector<BinaryCode> centers;
  for (int c = 0; c < 8; ++c) centers.push_back(RandomCode(128, &rng));
  for (ItemId i = 0; i < 2000; ++i) {
    const BinaryCode code = Perturb(centers[i % 8], rng.UniformInt(10u), &rng);
    ASSERT_TRUE(bk.Add(i, code).ok());
    ASSERT_TRUE(scan.Add(i, code).ok());
  }
  SearchStats bk_stats;
  const auto hits = bk.RadiusSearch(centers[0], 4, &bk_stats);
  EXPECT_FALSE(hits.empty());
  // Triangle-inequality pruning must skip a large share of the nodes.
  EXPECT_LT(bk_stats.buckets_probed, 2000u / 2);
}

TEST(BkTreeTest, DepthGrowsLogarithmically) {
  BkTree bk;
  Rng rng(34);
  for (ItemId i = 0; i < 5000; ++i) {
    ASSERT_TRUE(bk.Add(i, RandomCode(64, &rng)).ok());
  }
  // Random 64-bit codes give a bushy tree; depth far below item count.
  EXPECT_LT(bk.Depth(), 64u);
  EXPECT_GT(bk.Depth(), 2u);
}


// ---------------------------------------------------------------------------
// Product quantization
// ---------------------------------------------------------------------------

namespace {

/// Gaussian mixture in d dimensions: `clusters` centers, per-point noise.
Tensor ClusteredFloats(size_t n, size_t d, size_t clusters, float noise,
                       Rng* rng) {
  Tensor centers = Tensor::RandomNormal({clusters, d}, 3.0f, rng);
  Tensor out({n, d});
  for (size_t i = 0; i < n; ++i) {
    const size_t c = i % clusters;
    for (size_t j = 0; j < d; ++j) {
      out[i * d + j] =
          centers[c * d + j] + static_cast<float>(noise * rng->Normal());
    }
  }
  return out;
}

}  // namespace

TEST(ProductQuantizerTest, TrainRejectsBadConfigs) {
  Rng rng(41);
  Tensor data = Tensor::RandomNormal({300, 32}, 1.0f, &rng);
  ProductQuantizer::Config config;
  config.num_subspaces = 5;  // does not divide 32
  EXPECT_FALSE(ProductQuantizer::Train(data, config).ok());
  config.num_subspaces = 8;
  config.num_centroids = 300;  // > 256
  EXPECT_FALSE(ProductQuantizer::Train(data, config).ok());
  config.num_centroids = 256;  // n < K
  Tensor tiny = Tensor::RandomNormal({100, 32}, 1.0f, &rng);
  EXPECT_FALSE(ProductQuantizer::Train(tiny, config).ok());
}

TEST(ProductQuantizerTest, EncodeDecodeReducesError) {
  Rng rng(42);
  Tensor data = ClusteredFloats(2000, 32, 16, 0.15f, &rng);
  ProductQuantizer::Config config;
  config.num_subspaces = 4;
  config.num_centroids = 32;
  auto pq = ProductQuantizer::Train(data, config);
  ASSERT_TRUE(pq.ok());

  // Reconstruction must be far better than quantizing to the data mean
  // (a 1-centroid codebook): measure relative error on held-in rows.
  double err = 0.0, scale = 0.0;
  for (size_t i = 0; i < 100; ++i) {
    const Tensor row = data.Row(i * 17 % 2000);
    const Tensor rec = pq->Decode(pq->Encode(row));
    for (size_t j = 0; j < row.size(); ++j) {
      const double d = row[j] - rec[j];
      err += d * d;
      scale += row[j] * row[j];
    }
  }
  EXPECT_LT(err / scale, 0.05) << "relative quantization error too high";
}

TEST(ProductQuantizerTest, AdcMatchesExplicitDecode) {
  Rng rng(43);
  Tensor data = ClusteredFloats(600, 16, 8, 0.3f, &rng);
  ProductQuantizer::Config config;
  config.num_subspaces = 4;
  config.num_centroids = 16;
  auto pq = ProductQuantizer::Train(data, config);
  ASSERT_TRUE(pq.ok());
  const Tensor query = data.Row(5);
  const auto table = pq->BuildAdcTable(query);
  for (size_t i = 0; i < 20; ++i) {
    const auto code = pq->Encode(data.Row(i * 29 % 600));
    const Tensor rec = pq->Decode(code);
    float direct = 0.0f;
    for (size_t j = 0; j < query.size(); ++j) {
      const float d = query[j] - rec[j];
      direct += d * d;
    }
    EXPECT_NEAR(pq->AdcDistance(table, code), direct, 1e-3f) << i;
  }
}

TEST(PqIndexTest, KnnFindsTrueClusterNeighbours) {
  Rng rng(44);
  constexpr size_t kN = 3000, kD = 32, kClusters = 10;
  Tensor data = ClusteredFloats(kN, kD, kClusters, 0.1f, &rng);
  ProductQuantizer::Config config;
  config.num_subspaces = 8;
  config.num_centroids = 64;
  auto pq = ProductQuantizer::Train(data, config);
  ASSERT_TRUE(pq.ok());
  PqIndex index(std::move(pq).value());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(index.Add(i, data.Row(i)).ok());
  }
  // Query with cluster-0 points: the 10 nearest by ADC must be almost
  // entirely cluster-0 members (ids ≡ 0 mod kClusters).
  size_t correct = 0, total = 0;
  for (size_t q = 0; q < 10; ++q) {
    const auto hits = index.KnnSearch(data.Row(q * kClusters), 10);
    ASSERT_EQ(hits.size(), 10u);
    for (const auto& h : hits) {
      correct += (h.id % kClusters == 0);
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(PqIndexTest, RejectsWrongDimension) {
  Rng rng(45);
  Tensor data = Tensor::RandomNormal({300, 16}, 1.0f, &rng);
  ProductQuantizer::Config config;
  config.num_subspaces = 4;
  config.num_centroids = 16;
  auto pq = ProductQuantizer::Train(data, config);
  ASSERT_TRUE(pq.ok());
  PqIndex index(std::move(pq).value());
  Tensor wrong = Tensor::RandomNormal({8}, 1.0f, &rng);
  EXPECT_TRUE(index.Add(0, wrong).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Two-stage retrieval (Hamming shortlist -> float re-rank)
// ---------------------------------------------------------------------------

TEST(TwoStageTest, RerankingImprovesOverPureHamming) {
  Rng rng(46);
  constexpr size_t kN = 2000, kD = 32, kClusters = 8, kBits = 16;
  Tensor data = ClusteredFloats(kN, kD, kClusters, 0.2f, &rng);

  // A deliberately coarse binary sketch (16-bit LSH) so Hamming ranking
  // alone is noticeably lossy.
  milan::RandomHyperplaneLsh lsh(kD, kBits, /*seed=*/9);
  HammingHashTable table;
  TwoStageRetriever two_stage(&table, kD);
  FloatLinearScan exact(kD);
  for (size_t i = 0; i < kN; ++i) {
    const Tensor row = data.Row(i);
    ASSERT_TRUE(table.Add(i, lsh.Hash(row)).ok());
    two_stage.AddFeature(i, row);
    exact.Add(i, row);
  }

  size_t hamming_correct = 0, reranked_correct = 0, total = 0;
  for (size_t q = 0; q < 20; ++q) {
    const size_t qi = q * 31 % kN;
    const Tensor qf = data.Row(qi);
    const BinaryCode qc = lsh.Hash(qf);
    // Ground truth: exact float top-10.
    const auto truth = exact.KnnSearch(qf, 10);
    std::set<ItemId> truth_ids;
    for (const auto& t : truth) truth_ids.insert(t.id);

    const auto hamming_only = table.KnnSearch(qc, 10);
    for (const auto& h : hamming_only) {
      hamming_correct += truth_ids.count(h.id);
    }
    const auto reranked = two_stage.Search(qc, qf, 10, /*shortlist=*/200);
    ASSERT_LE(reranked.size(), 10u);
    for (const auto& h : reranked) reranked_correct += truth_ids.count(h.id);
    total += 10;
  }
  const double hamming_recall =
      static_cast<double>(hamming_correct) / static_cast<double>(total);
  const double reranked_recall =
      static_cast<double>(reranked_correct) / static_cast<double>(total);
  EXPECT_GT(reranked_recall, hamming_recall)
      << "re-ranking must improve recall@10";
  EXPECT_GT(reranked_recall, 0.7);
}

TEST(TwoStageTest, ShortlistOfEverythingEqualsExactSearch) {
  Rng rng(47);
  constexpr size_t kN = 500, kD = 16;
  Tensor data = ClusteredFloats(kN, kD, 5, 0.3f, &rng);
  milan::RandomHyperplaneLsh lsh(kD, 32, 11);
  HammingHashTable table;
  TwoStageRetriever two_stage(&table, kD);
  FloatLinearScan exact(kD);
  for (size_t i = 0; i < kN; ++i) {
    const Tensor row = data.Row(i);
    ASSERT_TRUE(table.Add(i, lsh.Hash(row)).ok());
    two_stage.AddFeature(i, row);
    exact.Add(i, row);
  }
  const Tensor qf = data.Row(3);
  const auto truth = exact.KnnSearch(qf, 5);
  const auto got = two_stage.Search(lsh.Hash(qf), qf, 5, /*shortlist=*/kN);
  ASSERT_EQ(got.size(), truth.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, truth[i].id) << i;
    EXPECT_FLOAT_EQ(got[i].distance, truth[i].distance) << i;
  }
}


// ---------------------------------------------------------------------------
// IVF-Flat
// ---------------------------------------------------------------------------

TEST(IvfFlatTest, TrainRejectsBadConfigs) {
  Rng rng(51);
  Tensor data = Tensor::RandomNormal({30, 16}, 1.0f, &rng);
  IvfFlatIndex::Config config;
  config.nlist = 64;  // more cells than training rows
  EXPECT_FALSE(IvfFlatIndex::Train(data, config).ok());
  config.nlist = 0;
  EXPECT_FALSE(IvfFlatIndex::Train(data, config).ok());
}

TEST(IvfFlatTest, FullProbeMatchesExactScan) {
  Rng rng(52);
  Tensor data = ClusteredFloats(800, 16, 6, 0.3f, &rng);
  IvfFlatIndex::Config config;
  config.nlist = 16;
  auto ivf = IvfFlatIndex::Train(data, config);
  ASSERT_TRUE(ivf.ok());
  FloatLinearScan exact(16);
  for (size_t i = 0; i < 800; ++i) {
    ASSERT_TRUE(ivf->Add(i, data.Row(i)).ok());
    exact.Add(i, data.Row(i));
  }
  for (size_t q = 0; q < 10; ++q) {
    const Tensor query = data.Row(q * 67 % 800);
    const auto truth = exact.KnnSearch(query, 8);
    const auto got = ivf->KnnSearch(query, 8, /*nprobe=*/16);
    ASSERT_EQ(got.size(), truth.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, truth[i].id) << "query " << q << " rank " << i;
    }
  }
}

TEST(IvfFlatTest, RecallRisesWithNprobe) {
  Rng rng(53);
  constexpr size_t kN = 4000, kD = 32;
  Tensor data = ClusteredFloats(kN, kD, 24, 0.25f, &rng);
  IvfFlatIndex::Config config;
  config.nlist = 48;
  auto ivf = IvfFlatIndex::Train(data, config);
  ASSERT_TRUE(ivf.ok());
  FloatLinearScan exact(kD);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(ivf->Add(i, data.Row(i)).ok());
    exact.Add(i, data.Row(i));
  }
  auto recall_at = [&](size_t nprobe) {
    size_t hit = 0, total = 0;
    for (size_t q = 0; q < 25; ++q) {
      const Tensor query = data.Row(q * 151 % kN);
      const auto truth = exact.KnnSearch(query, 10);
      std::set<ItemId> truth_ids;
      for (const auto& t : truth) truth_ids.insert(t.id);
      for (const auto& h : ivf->KnnSearch(query, 10, nprobe)) {
        hit += truth_ids.count(h.id);
      }
      total += truth.size();
    }
    return static_cast<double>(hit) / static_cast<double>(total);
  };
  const double r1 = recall_at(1);
  const double r4 = recall_at(4);
  const double r48 = recall_at(48);
  EXPECT_LE(r1, r4 + 1e-9);
  EXPECT_GT(r4, 0.5);
  EXPECT_DOUBLE_EQ(r48, 1.0);  // full probe == exact
  // Probing fewer cells must actually scan fewer candidates.
  const Tensor probe_query = data.Row(0);
  EXPECT_LT(ivf->CandidatesForProbe(probe_query, 4),
            ivf->CandidatesForProbe(probe_query, 48));
}

TEST(IvfFlatTest, BatchKnnMatchesSequential) {
  Rng rng(76);
  Tensor data = ClusteredFloats(600, 16, 6, 0.3f, &rng);
  IvfFlatIndex::Config config;
  config.nlist = 12;
  auto ivf = IvfFlatIndex::Train(data, config);
  ASSERT_TRUE(ivf.ok());
  for (size_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(ivf->Add(i, data.Row(i)).ok());
  }
  Tensor queries({8, 16});
  for (size_t q = 0; q < 8; ++q) queries.SetRow(q, data.Row(q * 71 % 600));
  ThreadPool pool(3);
  const auto batch = ivf->BatchKnnSearch(queries, 5, /*nprobe=*/4, &pool);
  ASSERT_EQ(batch.size(), 8u);
  for (size_t q = 0; q < 8; ++q) {
    const auto single = ivf->KnnSearch(queries.Row(q), 5, 4);
    ASSERT_EQ(batch[q].size(), single.size()) << "query " << q;
    for (size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batch[q][i].id, single[i].id) << "query " << q << " rank " << i;
      EXPECT_FLOAT_EQ(batch[q][i].distance, single[i].distance)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(IvfFlatTest, RejectsWrongDimension) {
  Rng rng(54);
  Tensor data = Tensor::RandomNormal({100, 8}, 1.0f, &rng);
  IvfFlatIndex::Config config;
  config.nlist = 4;
  auto ivf = IvfFlatIndex::Train(data, config);
  ASSERT_TRUE(ivf.ok());
  Tensor wrong = Tensor::RandomNormal({16}, 1.0f, &rng);
  EXPECT_TRUE(ivf->Add(0, wrong).IsInvalidArgument());
}

}  // namespace
}  // namespace agoraeo::index
