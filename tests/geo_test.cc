#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "geo/geo.h"

namespace agoraeo::geo {
namespace {

TEST(GeoPointTest, Validation) {
  EXPECT_TRUE(IsValidPoint({0, 0}));
  EXPECT_TRUE(IsValidPoint({90, 180}));
  EXPECT_TRUE(IsValidPoint({-90, -180}));
  EXPECT_FALSE(IsValidPoint({91, 0}));
  EXPECT_FALSE(IsValidPoint({0, 181}));
  EXPECT_FALSE(IsValidPoint({-90.01, 0}));
}

TEST(HaversineTest, ZeroForSamePoint) {
  GeoPoint berlin{52.52, 13.405};
  EXPECT_EQ(HaversineMeters(berlin, berlin), 0.0);
}

TEST(HaversineTest, KnownDistances) {
  // Berlin <-> Lisbon: ~2313 km.
  GeoPoint berlin{52.52, 13.405};
  GeoPoint lisbon{38.7223, -9.1393};
  EXPECT_NEAR(HaversineMeters(berlin, lisbon), 2313000, 15000);
  // One degree of latitude at the equator: ~111.2 km.
  EXPECT_NEAR(HaversineMeters({0, 0}, {1, 0}), 111195, 200);
}

TEST(HaversineTest, Symmetry) {
  GeoPoint a{47.3, 8.5}, b{41.9, 21.0};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(BoundingBoxTest, ContainsAndIntersects) {
  BoundingBox box{{40, -10}, {50, 10}};
  EXPECT_TRUE(box.Contains({45, 0}));
  EXPECT_TRUE(box.Contains({40, -10}));  // boundary inclusive
  EXPECT_FALSE(box.Contains({39.99, 0}));
  EXPECT_FALSE(box.Contains({45, 11}));

  BoundingBox overlap{{45, 5}, {55, 15}};
  BoundingBox disjoint{{60, 20}, {70, 30}};
  BoundingBox touching{{50, 10}, {60, 20}};
  EXPECT_TRUE(box.Intersects(overlap));
  EXPECT_TRUE(overlap.Intersects(box));
  EXPECT_FALSE(box.Intersects(disjoint));
  EXPECT_TRUE(box.Intersects(touching));  // shared corner counts
}

TEST(BoundingBoxTest, CenterAndValidity) {
  BoundingBox box{{40, -10}, {50, 10}};
  EXPECT_EQ(box.Center().lat, 45);
  EXPECT_EQ(box.Center().lon, 0);
  EXPECT_TRUE(box.IsValid());
  BoundingBox inverted{{50, 10}, {40, -10}};
  EXPECT_FALSE(inverted.IsValid());
}

TEST(CircleTest, ContainsByDistance) {
  Circle c{{48.0, 11.0}, 50000};  // 50 km around Munich-ish
  EXPECT_TRUE(c.Contains({48.1, 11.1}));
  EXPECT_FALSE(c.Contains({49.0, 13.0}));
}

TEST(CircleTest, BoundsContainCircle) {
  Circle c{{48.0, 11.0}, 30000};
  BoundingBox bounds = c.Bounds();
  // Sample circle boundary points; all must fall inside the bounds.
  for (int deg = 0; deg < 360; deg += 15) {
    const double rad = deg * M_PI / 180.0;
    const double dlat = (c.radius_meters / kEarthRadiusMeters) * 180.0 / M_PI;
    const double dlon = dlat / std::cos(c.center.lat * M_PI / 180.0);
    GeoPoint p{c.center.lat + dlat * std::sin(rad),
               c.center.lon + dlon * std::cos(rad)};
    EXPECT_TRUE(bounds.Contains(p)) << "angle " << deg;
  }
}

TEST(PolygonTest, TriangleContainment) {
  Polygon tri{{{0, 0}, {0, 10}, {10, 0}}};
  EXPECT_TRUE(tri.Contains({2, 2}));
  EXPECT_FALSE(tri.Contains({6, 6}));
  EXPECT_FALSE(tri.Contains({-1, 0}));
}

TEST(PolygonTest, ConcavePolygon) {
  // A "U" shape: the notch must be outside.
  Polygon u{{{0, 0}, {0, 10}, {10, 10}, {10, 7}, {3, 7}, {3, 3}, {10, 3},
             {10, 0}}};
  EXPECT_TRUE(u.Contains({1, 5}));    // inside the left bar
  EXPECT_FALSE(u.Contains({6, 5}));   // inside the notch
  EXPECT_TRUE(u.Contains({9, 8.5}));  // upper arm
  EXPECT_TRUE(u.Contains({9, 1.5}));  // lower arm
}

TEST(PolygonTest, DegenerateIsEmpty) {
  Polygon line{{{0, 0}, {1, 1}}};
  EXPECT_FALSE(line.IsValid());
  EXPECT_FALSE(line.Contains({0.5, 0.5}));
}

TEST(PolygonTest, BoundsCoverVertices) {
  Polygon p{{{1, 2}, {5, -3}, {-2, 7}}};
  BoundingBox b = p.Bounds();
  EXPECT_EQ(b.min.lat, -2);
  EXPECT_EQ(b.min.lon, -3);
  EXPECT_EQ(b.max.lat, 5);
  EXPECT_EQ(b.max.lon, 7);
}

// --- geohash ---------------------------------------------------------------

TEST(GeohashTest, KnownValue) {
  // Well-known reference: (57.64911, 10.40744) -> "u4pruydqqvj".
  auto hash = GeohashEncode({57.64911, 10.40744}, 11);
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(*hash, "u4pruydqqvj");
}

TEST(GeohashTest, PrefixPropertyAcrossPrecisions) {
  GeoPoint p{48.8584, 2.2945};
  auto full = GeohashEncode(p, 9);
  ASSERT_TRUE(full.ok());
  for (int precision = 1; precision < 9; ++precision) {
    auto shorter = GeohashEncode(p, precision);
    ASSERT_TRUE(shorter.ok());
    EXPECT_EQ(*shorter, full->substr(0, precision));
  }
}

TEST(GeohashTest, InvalidArguments) {
  EXPECT_FALSE(GeohashEncode({91, 0}, 5).ok());
  EXPECT_FALSE(GeohashEncode({0, 0}, 0).ok());
  EXPECT_FALSE(GeohashEncode({0, 0}, 13).ok());
  EXPECT_FALSE(GeohashDecodeBounds("").ok());
  EXPECT_FALSE(GeohashDecodeBounds("abi").ok());  // 'i' not in base32
}

TEST(GeohashTest, DecodeBoundsContainOriginal) {
  Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    GeoPoint p{rng.Uniform(-85, 85), rng.Uniform(-179, 179)};
    for (int precision : {3, 5, 8}) {
      auto hash = GeohashEncode(p, precision);
      ASSERT_TRUE(hash.ok());
      auto bounds = GeohashDecodeBounds(*hash);
      ASSERT_TRUE(bounds.ok());
      EXPECT_TRUE(bounds->Contains(p))
          << "precision " << precision << " point " << p.lat << "," << p.lon;
    }
  }
}

TEST(GeohashTest, DecodeCenterReencodesToSameCell) {
  Rng rng(56);
  for (int trial = 0; trial < 30; ++trial) {
    GeoPoint p{rng.Uniform(-85, 85), rng.Uniform(-179, 179)};
    auto hash = GeohashEncode(p, 6);
    ASSERT_TRUE(hash.ok());
    auto center = GeohashDecode(*hash);
    ASSERT_TRUE(center.ok());
    auto rehash = GeohashEncode(*center, 6);
    ASSERT_TRUE(rehash.ok());
    EXPECT_EQ(*rehash, *hash);
  }
}

TEST(GeohashTest, CellSizeShrinksWithPrecision) {
  GeoPoint p{47.0, 8.0};
  double prev_area = 1e18;
  for (int precision = 1; precision <= 8; ++precision) {
    auto bounds = GeohashDecodeBounds(*GeohashEncode(p, precision));
    ASSERT_TRUE(bounds.ok());
    const double area = (bounds->max.lat - bounds->min.lat) *
                        (bounds->max.lon - bounds->min.lon);
    EXPECT_LT(area, prev_area);
    prev_area = area;
  }
}

TEST(GeohashTest, NeighborsIncludeSelfAndAreAdjacent) {
  auto neighbors = GeohashNeighbors("u4pru");
  ASSERT_TRUE(neighbors.ok());
  EXPECT_EQ((*neighbors)[0], "u4pru");
  EXPECT_EQ(neighbors->size(), 9u);  // mid-latitude: all 8 neighbours
  auto self_bounds = GeohashDecodeBounds("u4pru");
  for (size_t i = 1; i < neighbors->size(); ++i) {
    auto b = GeohashDecodeBounds((*neighbors)[i]);
    ASSERT_TRUE(b.ok());
    // Every neighbour cell touches the self cell (expanded marginally
    // for floating point).
    BoundingBox padded = *self_bounds;
    padded.min.lat -= 1e-9;
    padded.min.lon -= 1e-9;
    padded.max.lat += 1e-9;
    padded.max.lon += 1e-9;
    EXPECT_TRUE(padded.Intersects(*b)) << (*neighbors)[i];
  }
}

TEST(GeohashTest, CoverContainsAllPointsInBox) {
  BoundingBox box{{47.0, 8.0}, {47.5, 9.0}};
  auto cover = GeohashCover(box, 5);
  ASSERT_FALSE(cover.empty());
  Rng rng(57);
  for (int trial = 0; trial < 100; ++trial) {
    GeoPoint p{rng.Uniform(box.min.lat, box.max.lat),
               rng.Uniform(box.min.lon, box.max.lon)};
    auto hash = GeohashEncode(p, 5);
    ASSERT_TRUE(hash.ok());
    // The point's cell (or one of its prefixes) must be in the cover.
    bool covered = false;
    for (const std::string& cell : cover) {
      if (hash->compare(0, cell.size(), cell) == 0) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "point " << p.lat << "," << p.lon;
  }
}

TEST(GeohashTest, CoverRespectsMaxCells) {
  BoundingBox europe{{35.0, -10.0}, {70.0, 30.0}};
  auto cover = GeohashCover(europe, 8, /*max_cells=*/64);
  EXPECT_LE(cover.size(), 64u);
  EXPECT_FALSE(cover.empty());
}

class GeohashPrecisionTest : public ::testing::TestWithParam<int> {};

TEST_P(GeohashPrecisionTest, RoundTripAtEveryPrecision) {
  const int precision = GetParam();
  Rng rng(58 + precision);
  for (int trial = 0; trial < 10; ++trial) {
    GeoPoint p{rng.Uniform(-80, 80), rng.Uniform(-170, 170)};
    auto hash = GeohashEncode(p, precision);
    ASSERT_TRUE(hash.ok());
    EXPECT_EQ(hash->size(), static_cast<size_t>(precision));
    auto bounds = GeohashDecodeBounds(*hash);
    ASSERT_TRUE(bounds.ok());
    EXPECT_TRUE(bounds->Contains(p));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, GeohashPrecisionTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace agoraeo::geo
