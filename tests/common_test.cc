#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <set>
#include <thread>

#include "common/binary_code.h"
#include "common/byte_buffer.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/time_util.h"

namespace agoraeo {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing patch");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing patch");
  EXPECT_EQ(s.ToString(), "NotFound: missing patch");
}

TEST(StatusTest, AllFactoryHelpersProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> so(42);
  ASSERT_TRUE(so.ok());
  EXPECT_EQ(so.value(), 42);
  EXPECT_EQ(*so, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> so(Status::InvalidArgument("bad"));
  EXPECT_FALSE(so.ok());
  EXPECT_TRUE(so.status().IsInvalidArgument());
  EXPECT_EQ(so.value_or(-1), -1);
}

TEST(StatusOrTest, OkStatusConstructionBecomesInternalError) {
  StatusOr<int> so(Status::OK());
  EXPECT_FALSE(so.ok());
  EXPECT_TRUE(so.status().IsInternal());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> so(std::string("hello"));
  std::string v = std::move(so).value();
  EXPECT_EQ(v, "hello");
}

StatusOr<int> HelperReturnsDouble(StatusOr<int> input) {
  AGORAEO_ASSIGN_OR_RETURN(int v, input);
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnMacroPropagatesValueAndError) {
  auto ok = HelperReturnsDouble(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = HelperReturnsDouble(Status::NotFound("no"));
  EXPECT_TRUE(err.status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123, 5), b(123, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint32(), b.NextUint32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint32() == b.NextUint32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17u), 17u);
  }
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(29);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(31);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto parts = StrSplit("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, "-"), "x-y-z");
  EXPECT_EQ(StrSplit(StrJoin(parts, ","), ','), parts);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(StrTrim("  hello \t\n"), "hello");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("x"), "x");
}

TEST(StringUtilTest, LowerStartsEndsContains) {
  EXPECT_EQ(StrToLower("AbC"), "abc");
  EXPECT_TRUE(StrStartsWith("S2A_MSIL2A", "S2A"));
  EXPECT_FALSE(StrStartsWith("S2", "S2A"));
  EXPECT_TRUE(StrEndsWith("patch.zip", ".zip"));
  EXPECT_TRUE(StrContains("Coniferous forest", "forest"));
  EXPECT_FALSE(StrContains("forest", "Coniferous"));
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%05.1f", 3.25), "003.2");
}

TEST(StringUtilTest, PadLeftAndThousands) {
  EXPECT_EQ(PadLeft("7", 3, '0'), "007");
  EXPECT_EQ(PadLeft("1234", 3), "1234");
  EXPECT_EQ(WithThousandsSeparators(590326), "590,326");
  EXPECT_EQ(WithThousandsSeparators(-1200), "-1,200");
  EXPECT_EQ(WithThousandsSeparators(7), "7");
}

// ---------------------------------------------------------------------------
// CivilDate / Season
// ---------------------------------------------------------------------------

TEST(CivilDateTest, OrdinalRoundTrip) {
  for (int64_t days : {-1000L, 0L, 1L, 17167L, 20000L}) {
    CivilDate d = CivilDate::FromOrdinal(days);
    EXPECT_EQ(d.ToOrdinal(), days) << d.ToString();
  }
}

TEST(CivilDateTest, KnownEpoch) {
  EXPECT_EQ(CivilDate(1970, 1, 1).ToOrdinal(), 0);
  EXPECT_EQ(CivilDate(1970, 1, 2).ToOrdinal(), 1);
  EXPECT_EQ(CivilDate(2017, 6, 1).ToOrdinal(), 17318);
}

TEST(CivilDateTest, ParseValid) {
  auto d = CivilDate::Parse("2017-06-15");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->year(), 2017);
  EXPECT_EQ(d->month(), 6);
  EXPECT_EQ(d->day(), 15);
  EXPECT_EQ(d->ToString(), "2017-06-15");
}

TEST(CivilDateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(CivilDate::Parse("not a date").ok());
  EXPECT_FALSE(CivilDate::Parse("2017-02-30").ok());
  EXPECT_FALSE(CivilDate::Parse("2017-13-01").ok());
  EXPECT_FALSE(CivilDate::Parse("2017-06-15x").ok());
}

TEST(CivilDateTest, LeapYears) {
  EXPECT_TRUE(CivilDate::IsLeapYear(2020));
  EXPECT_FALSE(CivilDate::IsLeapYear(2019));
  EXPECT_FALSE(CivilDate::IsLeapYear(1900));
  EXPECT_TRUE(CivilDate::IsLeapYear(2000));
  EXPECT_EQ(CivilDate::DaysInMonth(2020, 2), 29);
  EXPECT_EQ(CivilDate::DaysInMonth(2019, 2), 28);
  EXPECT_TRUE(CivilDate(2020, 2, 29).IsValid());
  EXPECT_FALSE(CivilDate(2019, 2, 29).IsValid());
}

TEST(CivilDateTest, Ordering) {
  EXPECT_LT(CivilDate(2017, 6, 1), CivilDate(2018, 5, 31));
  EXPECT_LE(CivilDate(2017, 6, 1), CivilDate(2017, 6, 1));
  EXPECT_GT(CivilDate(2018, 1, 1), CivilDate(2017, 12, 31));
}

TEST(CivilDateTest, Seasons) {
  EXPECT_EQ(CivilDate(2017, 12, 15).GetSeason(), Season::kWinter);
  EXPECT_EQ(CivilDate(2018, 1, 15).GetSeason(), Season::kWinter);
  EXPECT_EQ(CivilDate(2018, 4, 15).GetSeason(), Season::kSpring);
  EXPECT_EQ(CivilDate(2017, 7, 15).GetSeason(), Season::kSummer);
  EXPECT_EQ(CivilDate(2017, 10, 15).GetSeason(), Season::kAutumn);
}

TEST(SeasonTest, RoundTripStrings) {
  for (Season s : {Season::kWinter, Season::kSpring, Season::kSummer,
                   Season::kAutumn}) {
    auto back = SeasonFromString(SeasonToString(s));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, s);
  }
  EXPECT_TRUE(SeasonFromString("fall").ok());
  EXPECT_FALSE(SeasonFromString("monsoon").ok());
}

TEST(DateRangeTest, ContainsAndNumDays) {
  DateRange range{CivilDate(2017, 6, 1), CivilDate(2018, 5, 31)};
  EXPECT_TRUE(range.Contains(CivilDate(2017, 6, 1)));
  EXPECT_TRUE(range.Contains(CivilDate(2018, 5, 31)));
  EXPECT_FALSE(range.Contains(CivilDate(2018, 6, 1)));
  EXPECT_EQ(range.NumDays(), 365);
  DateRange inverted{CivilDate(2018, 1, 1), CivilDate(2017, 1, 1)};
  EXPECT_EQ(inverted.NumDays(), 0);
  EXPECT_FALSE(inverted.Contains(CivilDate(2017, 6, 1)));
}

// ---------------------------------------------------------------------------
// BinaryCode
// ---------------------------------------------------------------------------

TEST(BinaryCodeTest, EmptyAndZero) {
  BinaryCode empty;
  EXPECT_TRUE(empty.empty());
  BinaryCode zeros(128);
  EXPECT_EQ(zeros.size(), 128u);
  EXPECT_EQ(zeros.PopCount(), 0u);
}

TEST(BinaryCodeTest, SetGetFlip) {
  BinaryCode code(128);
  code.SetBit(0, true);
  code.SetBit(127, true);
  code.SetBit(64, true);
  EXPECT_TRUE(code.GetBit(0));
  EXPECT_TRUE(code.GetBit(64));
  EXPECT_TRUE(code.GetBit(127));
  EXPECT_FALSE(code.GetBit(1));
  EXPECT_EQ(code.PopCount(), 3u);
  code.FlipBit(64);
  EXPECT_FALSE(code.GetBit(64));
  EXPECT_EQ(code.PopCount(), 2u);
  code.SetBit(0, false);
  EXPECT_EQ(code.PopCount(), 1u);
}

TEST(BinaryCodeTest, FromSignsBinarizesAtZero) {
  BinaryCode code = BinaryCode::FromSigns({0.5f, -0.5f, 0.0f, 1e-9f});
  EXPECT_TRUE(code.GetBit(0));
  EXPECT_FALSE(code.GetBit(1));
  EXPECT_FALSE(code.GetBit(2));  // exactly zero -> 0
  EXPECT_TRUE(code.GetBit(3));
}

TEST(BinaryCodeTest, BitStringRoundTrip) {
  const std::string bits = "10110010011101";
  BinaryCode code = BinaryCode::FromBitString(bits);
  EXPECT_EQ(code.size(), bits.size());
  EXPECT_EQ(code.ToBitString(), bits);
}

TEST(BinaryCodeTest, HammingDistanceMatchesManualCount) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    BinaryCode a(128), b(128);
    size_t expected = 0;
    for (size_t i = 0; i < 128; ++i) {
      bool ba = rng.Bernoulli(0.5), bb = rng.Bernoulli(0.5);
      a.SetBit(i, ba);
      b.SetBit(i, bb);
      if (ba != bb) ++expected;
    }
    EXPECT_EQ(a.HammingDistance(b), expected);
    EXPECT_EQ(b.HammingDistance(a), expected);
    EXPECT_EQ(a.HammingDistance(a), 0u);
  }
}

TEST(BinaryCodeTest, HammingDistanceIsAMetric) {
  // Triangle inequality on random triples.
  Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    BinaryCode a(64), b(64), c(64);
    for (size_t i = 0; i < 64; ++i) {
      a.SetBit(i, rng.Bernoulli(0.5));
      b.SetBit(i, rng.Bernoulli(0.5));
      c.SetBit(i, rng.Bernoulli(0.5));
    }
    EXPECT_LE(a.HammingDistance(c),
              a.HammingDistance(b) + b.HammingDistance(c));
  }
}

TEST(BinaryCodeTest, SubstringExtractsBits) {
  BinaryCode code = BinaryCode::FromBitString("110010101100");
  BinaryCode sub = code.Substring(2, 5);
  EXPECT_EQ(sub.ToBitString(), "00101");
  // Substrings spanning a word boundary.
  BinaryCode wide(128);
  wide.SetBit(62, true);
  wide.SetBit(65, true);
  BinaryCode cross = wide.Substring(60, 8);
  EXPECT_EQ(cross.ToBitString(), "00100100");
}

TEST(BinaryCodeTest, EqualityAndOrdering) {
  BinaryCode a = BinaryCode::FromBitString("0101");
  BinaryCode b = BinaryCode::FromBitString("0101");
  BinaryCode c = BinaryCode::FromBitString("0111");
  BinaryCode longer = BinaryCode::FromBitString("01010");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, longer);
  EXPECT_TRUE(a < c || c < a);
  EXPECT_TRUE(a < longer);  // shorter sorts first
}

TEST(BinaryCodeTest, HashIsStableAndSpreads) {
  BinaryCodeHash hasher;
  BinaryCode a = BinaryCode::FromBitString("0101");
  EXPECT_EQ(hasher(a), hasher(BinaryCode::FromBitString("0101")));
  std::set<size_t> hashes;
  Rng rng(47);
  for (int i = 0; i < 200; ++i) {
    BinaryCode code(64);
    for (size_t j = 0; j < 64; ++j) code.SetBit(j, rng.Bernoulli(0.5));
    hashes.insert(hasher(code));
  }
  EXPECT_GT(hashes.size(), 195u);  // essentially no collisions
}

TEST(BinaryCodeTest, HexStringIsStable) {
  BinaryCode code(128);
  code.SetBit(0, true);
  code.SetBit(4, true);
  const std::string hex = code.ToHexString();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex[0], '1');
  EXPECT_EQ(hex[1], '1');
}

// ---------------------------------------------------------------------------
// ByteBuffer
// ---------------------------------------------------------------------------

TEST(ByteBufferTest, RoundTripScalars) {
  ByteWriter w;
  w.PutU8(7);
  w.PutU32(123456);
  w.PutU64(1ull << 40);
  w.PutI64(-99);
  w.PutF32(2.5f);
  w.PutF64(-0.125);
  w.PutString("hello");
  w.PutF32Vector({1.0f, 2.0f, 3.0f});

  ByteReader r(w.data());
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetU32(), 123456u);
  EXPECT_EQ(*r.GetU64(), 1ull << 40);
  EXPECT_EQ(*r.GetI64(), -99);
  EXPECT_EQ(*r.GetF32(), 2.5f);
  EXPECT_EQ(*r.GetF64(), -0.125);
  EXPECT_EQ(*r.GetString(), "hello");
  auto vec = r.GetF32Vector();
  ASSERT_TRUE(vec.ok());
  EXPECT_EQ(*vec, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBufferTest, ExhaustionIsCorruption) {
  ByteWriter w;
  w.PutU8(1);
  ByteReader r(w.data());
  EXPECT_TRUE(r.GetU8().ok());
  EXPECT_TRUE(r.GetU32().status().IsCorruption());
}

TEST(ByteBufferTest, TruncatedStringIsCorruption) {
  ByteWriter w;
  w.PutU32(100);  // claims 100 bytes follow, none do
  ByteReader r(w.data());
  EXPECT_TRUE(r.GetString().status().IsCorruption());
}

TEST(ByteBufferTest, FileRoundTrip) {
  const std::string path = "/tmp/agoraeo_bytebuffer_test.bin";
  std::vector<uint8_t> payload = {1, 2, 3, 250, 255};
  ASSERT_TRUE(WriteFileBytes(path, payload).ok());
  auto back = ReadFileBytes(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
  std::remove(path.c_str());
}

TEST(ByteBufferTest, ReadMissingFileIsIOError) {
  EXPECT_TRUE(ReadFileBytes("/tmp/definitely_missing_agoraeo_file")
                  .status()
                  .IsIOError());
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace agoraeo
