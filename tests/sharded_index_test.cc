#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "index/bk_tree.h"
#include "index/hamming_table.h"
#include "index/linear_scan.h"
#include "index/sharded_index.h"

namespace agoraeo::index {
namespace {

BinaryCode RandomCode(size_t bits, Rng* rng) {
  BinaryCode code(bits);
  for (size_t i = 0; i < bits; ++i) code.SetBit(i, rng->Bernoulli(0.5));
  return code;
}

enum class Kind { kHashTable, kMultiIndex, kLinearScan, kBkTree };

const Kind kAllKinds[] = {Kind::kHashTable, Kind::kMultiIndex,
                          Kind::kLinearScan, Kind::kBkTree};

std::unique_ptr<HammingIndex> MakeKind(Kind kind) {
  switch (kind) {
    case Kind::kHashTable:
      return std::make_unique<HammingHashTable>();
    case Kind::kMultiIndex:
      return std::make_unique<MultiIndexHashing>(4);
    case Kind::kLinearScan:
      return std::make_unique<LinearScanIndex>();
    case Kind::kBkTree:
      return std::make_unique<BkTree>();
  }
  return nullptr;
}

/// A plain index and sharded wrappers over the same kind, loaded with
/// identical items: the parity fixture.
struct ParityFixture {
  std::unique_ptr<HammingIndex> plain;
  std::vector<std::unique_ptr<ShardedHammingIndex>> sharded;  // 1, 3, 8
  std::vector<BinaryCode> codes;
  std::vector<BinaryCode> queries;
  CandidateSet allowed;

  ParityFixture(Kind kind, size_t num_items, size_t bits, uint64_t seed) {
    Rng rng(seed);
    plain = MakeKind(kind);
    for (size_t shards : {1u, 3u, 8u}) {
      sharded.push_back(std::make_unique<ShardedHammingIndex>(
          shards, [kind] { return MakeKind(kind); }));
    }
    codes.reserve(num_items);
    for (size_t i = 0; i < num_items; ++i) {
      codes.push_back(RandomCode(bits, &rng));
      if (!plain->Add(i, codes.back()).ok()) std::abort();
      for (auto& idx : sharded) {
        if (!idx->Add(i, codes.back()).ok()) std::abort();
      }
    }
    for (size_t q = 0; q < 12; ++q) {
      queries.push_back(RandomCode(bits, &rng));
    }
    std::vector<ItemId> subset;
    for (size_t i = 0; i < num_items; ++i) {
      if (rng.Bernoulli(0.35)) subset.push_back(i);
    }
    allowed = CandidateSet(std::move(subset));
  }
};

// ---------------------------------------------------------------------------
// Sharded-vs-unsharded parity: every search flavour, every index kind,
// shard counts 1, 3 and 8
// ---------------------------------------------------------------------------

TEST(ShardedIndexTest, SingleQueryParityAllKinds) {
  for (Kind kind : kAllKinds) {
    ParityFixture f(kind, 300, 64, 11);
    for (const auto& idx : f.sharded) {
      ASSERT_EQ(idx->size(), f.plain->size());
      for (const BinaryCode& q : f.queries) {
        EXPECT_EQ(idx->RadiusSearch(q, 12), f.plain->RadiusSearch(q, 12));
        EXPECT_EQ(idx->KnnSearch(q, 9), f.plain->KnnSearch(q, 9));
        EXPECT_EQ(idx->RadiusSearchIn(q, 14, f.allowed),
                  f.plain->RadiusSearchIn(q, 14, f.allowed));
        EXPECT_EQ(idx->KnnSearchIn(q, 7, f.allowed),
                  f.plain->KnnSearchIn(q, 7, f.allowed));
      }
    }
  }
}

TEST(ShardedIndexTest, BatchParityAllKindsPooledAndSequential) {
  ThreadPool pool(4);
  for (Kind kind : kAllKinds) {
    ParityFixture f(kind, 250, 64, 23);
    const auto want_radius = f.plain->BatchRadiusSearch(f.queries, 12);
    const auto want_knn = f.plain->BatchKnnSearch(f.queries, 8);
    const auto want_radius_in =
        f.plain->BatchRadiusSearchIn(f.queries, 14, f.allowed);
    const auto want_knn_in = f.plain->BatchKnnSearchIn(f.queries, 6, f.allowed);
    for (const auto& idx : f.sharded) {
      for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
        EXPECT_EQ(idx->BatchRadiusSearch(f.queries, 12, p), want_radius);
        EXPECT_EQ(idx->BatchKnnSearch(f.queries, 8, p), want_knn);
        EXPECT_EQ(idx->BatchRadiusSearchIn(f.queries, 14, f.allowed, p),
                  want_radius_in);
        EXPECT_EQ(idx->BatchKnnSearchIn(f.queries, 6, f.allowed, p),
                  want_knn_in);
      }
    }
  }
}

TEST(ShardedIndexTest, BatchAddParityAndParallelIngest) {
  ThreadPool pool(4);
  Rng rng(31);
  std::vector<ItemId> ids;
  std::vector<BinaryCode> codes;
  for (size_t i = 0; i < 400; ++i) {
    ids.push_back(i);
    codes.push_back(RandomCode(64, &rng));
  }
  auto plain = MakeKind(Kind::kLinearScan);
  ASSERT_TRUE(plain->BatchAdd(ids, codes).ok());
  ShardedHammingIndex sharded(
      5, [] { return MakeKind(Kind::kLinearScan); });
  ASSERT_TRUE(sharded.BatchAdd(ids, codes, &pool).ok());
  ASSERT_EQ(sharded.size(), plain->size());
  for (size_t q = 0; q < 8; ++q) {
    const BinaryCode query = RandomCode(64, &rng);
    EXPECT_EQ(sharded.RadiusSearch(query, 14), plain->RadiusSearch(query, 14));
  }
  // Every item routed to exactly one shard; sizes sum to the total.
  const ShardedIndexStats stats = sharded.Stats();
  ASSERT_EQ(stats.shard_sizes.size(), 5u);
  size_t total = 0;
  for (size_t s = 0; s < stats.shard_sizes.size(); ++s) {
    total += stats.shard_sizes[s];
  }
  EXPECT_EQ(total, ids.size());
}

TEST(ShardedIndexTest, BatchAddLengthMismatchRejected) {
  ShardedHammingIndex sharded(3, [] { return MakeKind(Kind::kHashTable); });
  Rng rng(5);
  EXPECT_TRUE(sharded
                  .BatchAdd({0, 1}, {RandomCode(32, &rng)},
                            /*pool=*/nullptr)
                  .IsInvalidArgument());
}

TEST(ShardedIndexTest, MixedCodeLengthsRejectedAcrossShards) {
  // The second code routes to a different (still empty) shard — the
  // partition layer must still enforce the monolithic one-length
  // contract instead of letting that shard anchor its own length.
  ShardedHammingIndex sharded(8, [] { return MakeKind(Kind::kHashTable); });
  Rng rng(13);
  ASSERT_TRUE(sharded.Add(0, RandomCode(32, &rng)).ok());
  for (ItemId id = 1; id < 16; ++id) {
    EXPECT_TRUE(sharded.Add(id, RandomCode(64, &rng)).IsInvalidArgument())
        << id;
  }
  // A batch with one bad slot is rejected whole, nothing ingested.
  EXPECT_TRUE(sharded
                  .BatchAdd({20, 21},
                            {RandomCode(32, &rng), RandomCode(64, &rng)},
                            /*pool=*/nullptr)
                  .IsInvalidArgument());
  EXPECT_EQ(sharded.size(), 1u);
}

TEST(ShardedIndexTest, RoutingIsIdStableAndBalanced) {
  // Stability: the same id always routes to the same shard.
  for (ItemId id = 0; id < 100; ++id) {
    EXPECT_EQ(ShardedHammingIndex::ShardOf(id, 8),
              ShardedHammingIndex::ShardOf(id, 8));
    EXPECT_EQ(ShardedHammingIndex::ShardOf(id, 1), 0u);
  }
  // Balance: sequential ids spread over shards instead of clumping
  // (each shard within 2x of the ideal eighth for 4k sequential ids).
  std::vector<size_t> counts(8, 0);
  const size_t n = 4096;
  for (ItemId id = 0; id < n; ++id) {
    ++counts[ShardedHammingIndex::ShardOf(id, 8)];
  }
  for (size_t c : counts) {
    EXPECT_GT(c, n / 16);
    EXPECT_LT(c, n / 4);
  }
}

TEST(ShardedIndexTest, StatsCountFanoutsAndName) {
  ThreadPool pool(4);
  ParityFixture f(Kind::kHashTable, 100, 64, 47);
  ShardedHammingIndex& idx = *f.sharded[1];  // 3 shards
  EXPECT_EQ(idx.num_shards(), 3u);
  EXPECT_EQ(idx.Name(), "sharded(HammingHashTable, 3)");

  const ShardedIndexStats before = idx.Stats();
  (void)idx.BatchRadiusSearch(f.queries, 10, &pool);
  (void)idx.RadiusSearch(f.queries[0], 10);
  const ShardedIndexStats after = idx.Stats();
  EXPECT_EQ(after.batch_fanouts, before.batch_fanouts + 1);
  EXPECT_EQ(after.fanout_tasks, before.fanout_tasks + 3);
  EXPECT_EQ(after.single_fanouts, before.single_fanouts + 1);
}

TEST(ShardedIndexTest, StatsAggregateAcrossShards) {
  ParityFixture f(Kind::kLinearScan, 200, 64, 53);
  SearchStats plain_stats, sharded_stats;
  (void)f.plain->RadiusSearch(f.queries[0], 12, &plain_stats);
  (void)f.sharded[2]->RadiusSearch(f.queries[0], 12, &sharded_stats);
  // The linear scan evaluates every item exactly once whether the items
  // live in one partition or eight.
  EXPECT_EQ(sharded_stats.candidates, plain_stats.candidates);
  EXPECT_EQ(sharded_stats.results, plain_stats.results);
}

// ---------------------------------------------------------------------------
// Concurrency: ingest and query the partitioned index from 8 threads
// (runs under TSan in CI — the name matches the index_test regex)
// ---------------------------------------------------------------------------

TEST(ShardedIndexTest, ConcurrentIngestQueryHammer) {
  ShardedHammingIndex idx(4, [] { return MakeKind(Kind::kHashTable); });
  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 4;
  constexpr size_t kPerWriter = 250;

  // Seed a few items so early readers have something to find.
  Rng seed_rng(71);
  for (size_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(idx.Add(1'000'000 + i, RandomCode(64, &seed_rng)).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> write_errors{0};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([w, &idx, &write_errors] {
      Rng rng(100 + w);
      for (size_t i = 0; i < kPerWriter; ++i) {
        const ItemId id = w * kPerWriter + i;
        if (!idx.Add(id, RandomCode(64, &rng)).ok()) {
          write_errors.fetch_add(1);
        }
      }
    });
  }
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([r, &idx, &stop] {
      Rng rng(200 + r);
      while (!stop.load()) {
        const BinaryCode query = RandomCode(64, &rng);
        const auto radius_hits = idx.RadiusSearch(query, 20);
        for (size_t i = 1; i < radius_hits.size(); ++i) {
          ASSERT_TRUE(ResultLess(radius_hits[i - 1], radius_hits[i]));
        }
        const auto knn_hits = idx.KnnSearch(query, 5);
        ASSERT_LE(knn_hits.size(), 5u);
        (void)idx.size();
      }
    });
  }
  for (size_t w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (size_t r = 0; r < kReaders; ++r) threads[kWriters + r].join();

  EXPECT_EQ(write_errors.load(), 0u);
  EXPECT_EQ(idx.size(), kWriters * kPerWriter + 16);
}

}  // namespace
}  // namespace agoraeo::index
