/// Tests for the JSON library (src/json): serialisation, parsing,
/// round-trips, malformed-input rejection and base64.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "json/json.h"

namespace agoraeo::json {
namespace {

using docstore::Document;
using docstore::MakeArray;
using docstore::Value;

// --- serialisation ---------------------------------------------------------

TEST(JsonSerializeTest, Scalars) {
  EXPECT_EQ(Serialize(Value()), "null");
  EXPECT_EQ(Serialize(Value(true)), "true");
  EXPECT_EQ(Serialize(Value(false)), "false");
  EXPECT_EQ(Serialize(Value(42)), "42");
  EXPECT_EQ(Serialize(Value(int64_t{-7})), "-7");
  EXPECT_EQ(Serialize(Value(1.5)), "1.5");
  EXPECT_EQ(Serialize(Value("hi")), "\"hi\"");
}

TEST(JsonSerializeTest, StringEscapes) {
  EXPECT_EQ(Serialize(Value("a\"b")), "\"a\\\"b\"");
  EXPECT_EQ(Serialize(Value("back\\slash")), "\"back\\\\slash\"");
  EXPECT_EQ(Serialize(Value("tab\there")), "\"tab\\there\"");
  EXPECT_EQ(Serialize(Value("line\nbreak")), "\"line\\nbreak\"");
  EXPECT_EQ(Serialize(Value(std::string("nul\x01 byte"))),
            "\"nul\\u0001 byte\"");
}

TEST(JsonSerializeTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Serialize(Value(std::numeric_limits<double>::quiet_NaN())),
            "null");
  EXPECT_EQ(Serialize(Value(std::numeric_limits<double>::infinity())),
            "null");
}

TEST(JsonSerializeTest, ArraysAndObjects) {
  Document doc;
  doc.Set("name", Value("S2A_MSIL2A"));
  doc.Set("bands", MakeArray({Value(1), Value(2), Value(3)}));
  Document nested;
  nested.Set("lat", Value(38.7));
  doc.Set("location", Value(nested));
  // Document fields are key-sorted, so the output is deterministic.
  EXPECT_EQ(Serialize(doc),
            "{\"bands\":[1,2,3],\"location\":{\"lat\":38.7},"
            "\"name\":\"S2A_MSIL2A\"}");
  EXPECT_EQ(Serialize(Value(std::vector<Value>{})), "[]");
  EXPECT_EQ(Serialize(Document()), "{}");
}

TEST(JsonSerializeTest, PrettyPrintIndents) {
  Document doc;
  doc.Set("a", Value(1));
  const std::string pretty = Serialize(doc, /*pretty=*/true);
  EXPECT_NE(pretty.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(JsonSerializeTest, BinaryAsBase64) {
  EXPECT_EQ(Serialize(Value(std::vector<uint8_t>{'M', 'a', 'n'})),
            "\"TWFu\"");
}

// --- parsing ---------------------------------------------------------------

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_EQ(Parse("true")->as_bool(), true);
  EXPECT_EQ(Parse("false")->as_bool(), false);
  EXPECT_EQ(Parse("42")->as_int64(), 42);
  EXPECT_EQ(Parse("-17")->as_int64(), -17);
  EXPECT_DOUBLE_EQ(Parse("3.25")->as_double(), 3.25);
  EXPECT_DOUBLE_EQ(Parse("1e3")->as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(Parse("-2.5E-2")->as_double(), -0.025);
  EXPECT_EQ(Parse("\"text\"")->as_string(), "text");
}

TEST(JsonParseTest, IntegerVsDoubleTyping) {
  EXPECT_TRUE(Parse("7")->is_int64());
  EXPECT_TRUE(Parse("7.0")->is_double());
  EXPECT_TRUE(Parse("7e0")->is_double());
  // Overflowing int64 falls back to double.
  EXPECT_TRUE(Parse("99999999999999999999999999")->is_double());
}

TEST(JsonParseTest, NestedStructures) {
  auto v = Parse(R"({"query":{"labels":["Airports","Port areas"],)"
                 R"("limit":50,"geo":{"min_lat":-1.5}}})");
  ASSERT_TRUE(v.ok());
  const Document& doc = v->as_document();
  const Value* labels = doc.GetPath("query.labels");
  ASSERT_NE(labels, nullptr);
  ASSERT_TRUE(labels->is_array());
  EXPECT_EQ(labels->as_array()[0].as_string(), "Airports");
  EXPECT_EQ(doc.GetPath("query.limit")->as_int64(), 50);
  EXPECT_DOUBLE_EQ(doc.GetPath("query.geo.min_lat")->as_double(), -1.5);
}

TEST(JsonParseTest, WhitespaceTolerated) {
  auto v = Parse("  {\n\t\"a\" : [ 1 , 2 ]\r\n}  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_document().GetPath("a")->as_array().size(), 2u);
}

TEST(JsonParseTest, EscapeSequences) {
  EXPECT_EQ(Parse(R"("a\"b\\c\/d\b\f\n\r\t")")->as_string(),
            "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(Parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(Parse(R"("é")")->as_string(), "\xC3\xA9");       // é
  EXPECT_EQ(Parse(R"("€")")->as_string(), "\xE2\x82\xAC");   // €
  // Surrogate pair: U+1F30D (earth globe).
  EXPECT_EQ(Parse(R"("🌍")")->as_string(),
            "\xF0\x9F\x8C\x8D");
}

TEST(JsonParseTest, MalformedInputsRejected) {
  const char* bad[] = {
      "",
      "{",
      "}",
      "[1,",
      "[1 2]",
      "{\"a\":}",
      "{\"a\" 1}",
      "{a:1}",
      "\"unterminated",
      "tru",
      "nul",
      "01",
      "1.",
      "1e",
      "+1",
      "--1",
      "\"bad\\escape\"",
      "\"\\u12g4\"",
      "\"\\ud800\"",          // unpaired high surrogate
      "\"\\udc00\"",          // unpaired low surrogate
      "[1] trailing",
      "{\"a\":1}{",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Parse(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonParseTest, RawControlCharacterRejected) {
  std::string s = "\"a";
  s.push_back('\n');
  s += "b\"";
  EXPECT_FALSE(Parse(s).ok());
}

TEST(JsonParseTest, DeepNestingRejected) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Parse(deep).ok());
  // 100 levels is fine.
  std::string ok(100, '[');
  ok += std::string(100, ']');
  EXPECT_TRUE(Parse(ok).ok());
}

TEST(JsonParseTest, ParseObjectRequiresObject) {
  EXPECT_TRUE(ParseObject("{\"a\":1}").ok());
  EXPECT_TRUE(ParseObject("[1]").status().IsInvalidArgument());
  EXPECT_TRUE(ParseObject("3").status().IsInvalidArgument());
}

// --- round trips -------------------------------------------------------------

TEST(JsonRoundTripTest, StructuredValueSurvives) {
  Document doc;
  doc.Set("name", Value("patch_1"));
  doc.Set("count", Value(int64_t{123456789012345}));
  doc.Set("ratio", Value(0.1));
  doc.Set("flags", MakeArray({Value(true), Value(false), Value()}));
  Document nested;
  nested.Set("deep", MakeArray({Value("x"), Value(2.5)}));
  doc.Set("nested", Value(nested));

  auto back = ParseObject(Serialize(doc));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, doc);
}

TEST(JsonRoundTripTest, RandomDoublesRoundTripExactly) {
  Rng rng(2022);
  for (int i = 0; i < 200; ++i) {
    const double d = (rng.Uniform(-1.0, 1.0)) *
                     std::pow(10.0, rng.Uniform(-30.0, 30.0));
    auto v = Parse(Serialize(Value(d)));
    ASSERT_TRUE(v.ok());
    EXPECT_DOUBLE_EQ(v->as_number(), d) << d;
  }
}

TEST(JsonRoundTripTest, UnicodeStringsSurvive) {
  const std::string s = "céu \xE2\x82\xAC \xF0\x9F\x8C\x8D end";
  auto v = Parse(Serialize(Value(s)));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), s);
}

// --- base64 ------------------------------------------------------------------

TEST(Base64Test, Rfc4648Vectors) {
  auto enc = [](const std::string& s) {
    return Base64Encode(std::vector<uint8_t>(s.begin(), s.end()));
  };
  EXPECT_EQ(enc(""), "");
  EXPECT_EQ(enc("f"), "Zg==");
  EXPECT_EQ(enc("fo"), "Zm8=");
  EXPECT_EQ(enc("foo"), "Zm9v");
  EXPECT_EQ(enc("foob"), "Zm9vYg==");
  EXPECT_EQ(enc("fooba"), "Zm9vYmE=");
  EXPECT_EQ(enc("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, DecodeInvertsEncode) {
  Rng rng(7);
  for (size_t len : {0u, 1u, 2u, 3u, 17u, 256u}) {
    std::vector<uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.UniformInt(256));
    auto back = Base64Decode(Base64Encode(bytes));
    ASSERT_TRUE(back.ok()) << len;
    EXPECT_EQ(*back, bytes) << len;
  }
}

TEST(Base64Test, MalformedRejected) {
  EXPECT_FALSE(Base64Decode("abc").ok());      // not multiple of 4
  EXPECT_FALSE(Base64Decode("ab!=").ok());     // bad character
  EXPECT_FALSE(Base64Decode("=abc").ok());     // padding first
  EXPECT_FALSE(Base64Decode("a=bc").ok());     // data after padding
  EXPECT_TRUE(Base64Decode("TWFu").ok());
}


// --- randomized structural round-trip ----------------------------------------

namespace {

/// Random JSON-representable value with bounded depth.
Value RandomJsonValue(Rng* rng, int depth) {
  const uint32_t pick = rng->UniformInt(depth <= 0 ? 5u : 7u);
  switch (pick) {
    case 0: return Value();
    case 1: return Value(rng->UniformInt(2u) == 1);
    case 2: return Value(static_cast<int64_t>(rng->UniformInt(0, 1000000)) -
                         500000);
    case 3: return Value(rng->Uniform(-1e6, 1e6));
    case 4: {
      std::string s;
      const size_t len = rng->UniformInt(12u);
      for (size_t i = 0; i < len; ++i) {
        // Printable ASCII plus the characters needing escapes.
        const char* alphabet =
            "abcXYZ019 _\"\\\n\t/{}[]:,";
        s.push_back(alphabet[rng->UniformInt(23u)]);
      }
      return Value(std::move(s));
    }
    case 5: {
      std::vector<Value> items;
      const size_t n = rng->UniformInt(4u);
      for (size_t i = 0; i < n; ++i) {
        items.push_back(RandomJsonValue(rng, depth - 1));
      }
      return Value(std::move(items));
    }
    default: {
      Document d;
      const size_t n = rng->UniformInt(4u);
      for (size_t i = 0; i < n; ++i) {
        d.Set("k" + std::to_string(i), RandomJsonValue(rng, depth - 1));
      }
      return Value(std::move(d));
    }
  }
}

}  // namespace

class JsonFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(JsonFuzzTest, RandomValuesRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1009 + 3);
  for (int trial = 0; trial < 300; ++trial) {
    const Value original = RandomJsonValue(&rng, 4);
    const std::string compact = Serialize(original);
    auto back = Parse(compact);
    ASSERT_TRUE(back.ok()) << compact;
    EXPECT_EQ(*back, original) << compact;
    // Pretty form parses to the same value.
    auto pretty_back = Parse(Serialize(original, /*pretty=*/true));
    ASSERT_TRUE(pretty_back.ok());
    EXPECT_EQ(*pretty_back, original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace agoraeo::json
