#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cache/epoch.h"
#include "cache/sharded_lru_cache.h"

namespace agoraeo::cache {
namespace {

using namespace std::chrono_literals;

ShardedLruCacheOptions SmallOptions(size_t capacity_bytes,
                                    size_t num_shards = 1) {
  ShardedLruCacheOptions options;
  options.capacity_bytes = capacity_bytes;
  options.num_shards = num_shards;
  return options;
}

TEST(ShardedLruCache, GetMissThenHit) {
  ShardedLruCache<std::string, int> cache(SmallOptions(1024));
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", 1, 8);
  auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 8u);
  EXPECT_EQ(stats.capacity_bytes, 1024u);
}

TEST(ShardedLruCache, PutReplacesExistingKey) {
  ShardedLruCache<std::string, int> cache(SmallOptions(1024));
  cache.Put("a", 1, 8);
  cache.Put("a", 2, 16);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get("a"), 2);
  EXPECT_EQ(cache.Stats().bytes, 16u);
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsedOnByteOverflow) {
  // One shard with room for three 10-byte entries.
  ShardedLruCache<std::string, int> cache(SmallOptions(30));
  cache.Put("a", 1, 10);
  cache.Put("b", 2, 10);
  cache.Put("c", 3, 10);
  // Touch "a" so "b" is now the least recently used.
  EXPECT_TRUE(cache.Get("a").has_value());
  cache.Put("d", 4, 10);
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_TRUE(cache.Get("d").has_value());
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_LE(cache.Stats().bytes, 30u);
}

TEST(ShardedLruCache, OversizedValueIsNotAdmitted) {
  ShardedLruCache<std::string, int> cache(SmallOptions(100, /*num_shards=*/4));
  // Per-shard budget is 25 bytes; a 40-byte value must not be admitted,
  // must leave any existing entry alone, and must be counted as a
  // rejection (not a put) so misconfiguration is observable.
  cache.Put("big", 1, 40);
  EXPECT_FALSE(cache.Get("big").has_value());
  cache.Put("key", 7, 10);
  cache.Put("key", 8, 40);  // grown past the budget: rejected, old kept
  EXPECT_EQ(*cache.Get("key"), 7);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.rejected_puts, 2u);
}

TEST(ShardedLruCache, EraseAndClear) {
  ShardedLruCache<std::string, int> cache(SmallOptions(1024));
  cache.Put("a", 1, 8);
  cache.Put("b", 2, 8);
  EXPECT_TRUE(cache.Erase("a"));
  EXPECT_FALSE(cache.Erase("a"));
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Stats().bytes, 0u);
}

TEST(ShardedLruCache, EpochBumpInvalidatesLazily) {
  EpochValidator epoch;
  ShardedLruCacheOptions options = SmallOptions(1024);
  options.validator = &epoch;
  ShardedLruCache<std::string, int> cache(options);
  cache.Put("a", 1, 8);
  EXPECT_TRUE(cache.Get("a").has_value());
  epoch.Bump();
  // The entry is still resident but must be treated as a miss and
  // dropped on this access.
  EXPECT_FALSE(cache.Get("a").has_value());
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.stale_drops, 1u);
  EXPECT_EQ(stats.entries, 0u);
  // A post-bump Put is valid under the new epoch.
  cache.Put("a", 2, 8);
  EXPECT_EQ(*cache.Get("a"), 2);
}

TEST(ShardedLruCache, TtlExpiresEntriesViaInjectedClock) {
  auto now = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::now());
  ShardedLruCacheOptions options = SmallOptions(1024);
  options.ttl = 100ms;
  options.clock = [now] { return *now; };
  ShardedLruCache<std::string, int> cache(options);
  cache.Put("a", 1, 8);
  *now += 50ms;
  EXPECT_TRUE(cache.Get("a").has_value());
  *now += 60ms;
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.Stats().expired_drops, 1u);
}

TEST(ShardedLruCache, ShardCountRoundsUpToPowerOfTwo) {
  ShardedLruCache<int, int> cache(SmallOptions(1024, /*num_shards=*/5));
  EXPECT_EQ(cache.num_shards(), 8u);
}

TEST(ShardedLruCache, IntegerKeysSpreadAcrossShards) {
  // std::hash<int> is identity-like; the shard mixer must still spread
  // consecutive keys instead of pinning them to one shard.
  ShardedLruCache<int, int> cache(SmallOptions(1u << 20, /*num_shards=*/8));
  for (int i = 0; i < 256; ++i) cache.Put(i, i, 16);
  EXPECT_EQ(cache.size(), 256u);
  EXPECT_EQ(cache.Stats().evictions, 0u);
}

TEST(ShardedLruCache, ConcurrentMixedAccessWithEpochBumps) {
  // N threads hammer Get/Put on overlapping keys while another thread
  // bumps the epoch; run under -DAGORAEO_SANITIZE=thread in CI.
  EpochValidator epoch;
  ShardedLruCacheOptions options;
  options.capacity_bytes = 1u << 16;
  options.num_shards = 8;
  options.validator = &epoch;
  ShardedLruCache<int, std::string> cache(options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int kKeySpace = 128;
  std::atomic<uint64_t> observed_hits{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key = (t * 31 + i) % kKeySpace;
        if (i % 3 == 0) {
          cache.Put(key, "value-" + std::to_string(key), 64);
        } else if (auto hit = cache.Get(key)) {
          // A hit must always observe a complete value for its key.
          ASSERT_EQ(*hit, "value-" + std::to_string(key));
          observed_hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  workers.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      epoch.Bump();
      std::this_thread::yield();
    }
  });
  for (std::thread& w : workers) w.join();

  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_LE(stats.bytes, options.capacity_bytes);
  // Every non-Put op is exactly one Get (= one hit or one miss).
  constexpr uint64_t kGetsPerThread =
      kOpsPerThread - (kOpsPerThread + 2) / 3;
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kGetsPerThread);
}

}  // namespace
}  // namespace agoraeo::cache
