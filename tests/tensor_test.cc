#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "tensor/tensor.h"

namespace agoraeo {
namespace {

TEST(TensorTest, ZeroInitialised) {
  Tensor t({3, 4});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 12u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ConstructWithData) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full({5}, 2.5f);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 2.5f);
  t.Fill(-1.0f);
  EXPECT_EQ(t.Sum(), -5.0f);
}

TEST(TensorTest, RandomNormalMoments) {
  Rng rng(1);
  Tensor t = Tensor::RandomNormal({100, 100}, 2.0f, &rng);
  EXPECT_NEAR(t.Mean(), 0.0f, 0.05f);
  float var = 0;
  for (size_t i = 0; i < t.size(); ++i) var += t[i] * t[i];
  var /= t.size();
  EXPECT_NEAR(var, 4.0f, 0.2f);
}

TEST(TensorTest, RandomUniformRange) {
  Rng rng(2);
  Tensor t = Tensor::RandomUniform({1000}, -2.0f, 3.0f, &rng);
  EXPECT_GE(t.Min(), -2.0f);
  EXPECT_LT(t.Max(), 3.0f);
  EXPECT_NEAR(t.Mean(), 0.5f, 0.15f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.at(0, 0), 1.0f);
  EXPECT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorTest, Transpose) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tt = t.Transposed();
  EXPECT_EQ(tt.shape(), (std::vector<size_t>{3, 2}));
  EXPECT_EQ(tt.at(0, 0), 1.0f);
  EXPECT_EQ(tt.at(0, 1), 4.0f);
  EXPECT_EQ(tt.at(2, 0), 3.0f);
  // Double transpose is identity.
  EXPECT_EQ(tt.Transposed(), t);
}

TEST(TensorTest, RowAndSetRow) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = t.Row(1);
  EXPECT_EQ(row.shape(), (std::vector<size_t>{3}));
  EXPECT_EQ(row[0], 4.0f);
  Tensor newrow({3}, {7, 8, 9});
  t.SetRow(0, newrow);
  EXPECT_EQ(t.at(0, 2), 9.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  EXPECT_EQ(Add(a, b), Tensor({3}, {11, 22, 33}));
  EXPECT_EQ(Sub(b, a), Tensor({3}, {9, 18, 27}));
  EXPECT_EQ(Mul(a, b), Tensor({3}, {10, 40, 90}));
  EXPECT_EQ(Scale(a, -2.0f), Tensor({3}, {-2, -4, -6}));
  a += b;
  EXPECT_EQ(a, Tensor({3}, {11, 22, 33}));
  a -= b;
  EXPECT_EQ(a, Tensor({3}, {1, 2, 3}));
  a *= 3.0f;
  EXPECT_EQ(a, Tensor({3}, {3, 6, 9}));
}

TEST(TensorTest, ApplyAndReductions) {
  Tensor t({4}, {-2, -1, 1, 2});
  t.Apply([](float v) { return v * v; });
  EXPECT_EQ(t, Tensor({4}, {4, 1, 1, 4}));
  EXPECT_EQ(t.Sum(), 10.0f);
  EXPECT_EQ(t.Mean(), 2.5f);
  EXPECT_EQ(t.Min(), 1.0f);
  EXPECT_EQ(t.Max(), 4.0f);
}

TEST(TensorTest, NormsAndDistances) {
  Tensor a({2}, {3, 4});
  EXPECT_FLOAT_EQ(a.L2Norm(), 5.0f);
  Tensor b({2}, {0, 0});
  EXPECT_FLOAT_EQ(a.SquaredDistance(b), 25.0f);
  EXPECT_FLOAT_EQ(a.Dot(a), 25.0f);
  Tensor c({2}, {4, -3});
  EXPECT_FLOAT_EQ(a.Dot(c), 0.0f);  // orthogonal
}

TEST(TensorTest, MatMulKnownResult) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (std::vector<size_t>{2, 2}));
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorTest, MatMulIdentity) {
  Rng rng(3);
  Tensor a = Tensor::RandomNormal({4, 4}, 1.0f, &rng);
  Tensor eye({4, 4});
  for (size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  Tensor prod = MatMul(a, eye);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(prod[i], a[i], 1e-5f);
}

TEST(TensorTest, MatMulAssociativityProperty) {
  Rng rng(4);
  Tensor a = Tensor::RandomNormal({3, 5}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({5, 4}, 1.0f, &rng);
  Tensor c = Tensor::RandomNormal({4, 2}, 1.0f, &rng);
  Tensor left = MatMul(MatMul(a, b), c);
  Tensor right = MatMul(a, MatMul(b, c));
  ASSERT_EQ(left.shape(), right.shape());
  for (size_t i = 0; i < left.size(); ++i) {
    EXPECT_NEAR(left[i], right[i], 1e-3f);
  }
}

TEST(TensorTest, MatMulAccumulateAddsIntoC) {
  Tensor a({1, 2}, {1, 1});
  Tensor b({2, 1}, {2, 3});
  Tensor c({1, 1}, {10});
  MatMulAccumulate(a, b, &c);
  EXPECT_EQ(c.at(0, 0), 15.0f);
}

TEST(TensorTest, MatVec) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor x({3}, {1, 0, -1});
  Tensor y = MatVec(a, x);
  EXPECT_EQ(y.shape(), (std::vector<size_t>{2}));
  EXPECT_EQ(y[0], -2.0f);
  EXPECT_EQ(y[1], -2.0f);
}

TEST(TensorTest, AddBiasRowsAndSumRows) {
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias({3}, {10, 20, 30});
  AddBiasRows(&m, bias);
  EXPECT_EQ(m, Tensor({2, 3}, {11, 22, 33, 14, 25, 36}));
  Tensor sums = SumRows(m);
  EXPECT_EQ(sums, Tensor({3}, {25, 47, 69}));
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({32, 128}).ShapeString(), "[32, 128]");
  EXPECT_EQ(Tensor({5}).ShapeString(), "[5]");
}

// Property sweep: MatMul matches a naive reference implementation on
// random shapes.
class MatMulPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatMulPropertyTest, MatchesNaiveReference) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t m = 1 + rng.UniformInt(8u);
  const size_t k = 1 + rng.UniformInt(8u);
  const size_t n = 1 + rng.UniformInt(8u);
  Tensor a = Tensor::RandomNormal({m, k}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({k, n}, 1.0f, &rng);
  Tensor c = MatMul(a, b);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0;
      for (size_t kk = 0; kk < k; ++kk) acc += a.at(i, kk) * b.at(kk, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, MatMulPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace agoraeo
