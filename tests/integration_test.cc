/// End-to-end integration tests replaying the three demonstration
/// scenarios of Section 4 of the paper against a full pipeline:
/// archive synthesis -> feature extraction -> MiLaN training -> CBIR
/// indexing -> EarthQube queries.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <atomic>
#include <set>
#include <thread>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "earthqube/earthqube.h"
#include "index/linear_scan.h"
#include "milan/trainer.h"

namespace agoraeo {
namespace {

using bigearthnet::LabelIdFromName;
using bigearthnet::LabelSet;
using earthqube::EarthQube;
using earthqube::EarthQubeQuery;
using earthqube::GeoQuery;
using earthqube::LabelFilter;

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bigearthnet::ArchiveConfig aconfig;
    aconfig.num_patches = 3000;
    aconfig.seed = 2022;  // the VLDB year, for flavour
    aconfig.patches_per_scene = 40;
    generator_ = new bigearthnet::ArchiveGenerator(aconfig);
    auto archive = generator_->Generate();
    ASSERT_TRUE(archive.ok());
    archive_ = new bigearthnet::Archive(std::move(archive).value());

    extractor_ = new bigearthnet::FeatureExtractor();
    features_ =
        new Tensor(extractor_->ExtractArchive(*archive_, *generator_, 4));

    system_ = new EarthQube();
    ASSERT_TRUE(system_->IngestArchive(*archive_).ok());

    milan::MilanConfig mconfig;
    mconfig.feature_dim = bigearthnet::kFeatureDim;
    mconfig.hidden1 = 128;
    mconfig.hidden2 = 64;
    mconfig.hash_bits = 64;
    mconfig.dropout = 0.0f;
    auto model = std::make_unique<milan::MilanModel>(mconfig);
    std::vector<LabelSet> labels;
    for (const auto& p : archive_->patches) labels.push_back(p.labels);
    milan::TripletSampler sampler(labels);
    milan::TrainConfig tconfig;
    tconfig.epochs = 6;
    tconfig.batches_per_epoch = 30;
    tconfig.batch_size = 24;
    milan::Trainer trainer(model.get(), features_, &sampler, tconfig);
    ASSERT_TRUE(trainer.Train().ok());

    auto cbir = std::make_unique<earthqube::CbirService>(std::move(model),
                                                         extractor_);
    std::vector<std::string> names;
    for (const auto& p : archive_->patches) names.push_back(p.name);
    ASSERT_TRUE(cbir->AddImages(names, *features_).ok());
    system_->AttachCbir(std::move(cbir));
  }

  static void TearDownTestSuite() {
    delete system_;
    delete features_;
    delete extractor_;
    delete archive_;
    delete generator_;
  }

  static bigearthnet::ArchiveGenerator* generator_;
  static bigearthnet::Archive* archive_;
  static bigearthnet::FeatureExtractor* extractor_;
  static Tensor* features_;
  static EarthQube* system_;
};

bigearthnet::ArchiveGenerator* ScenarioTest::generator_ = nullptr;
bigearthnet::Archive* ScenarioTest::archive_ = nullptr;
bigearthnet::FeatureExtractor* ScenarioTest::extractor_ = nullptr;
Tensor* ScenarioTest::features_ = nullptr;
EarthQube* ScenarioTest::system_ = nullptr;

/// Scenario 1 (Label-based Exploration): "search for industrial areas
/// adjacent to inland water bodies ... to detect possible water
/// pollution by industrial waste in 10 different European countries.
/// By inspecting the label statistics view, visitors can discover other
/// land cover classes that fit the query description."
TEST_F(ScenarioTest, LabelBasedExploration) {
  const LabelSet industrial_water(
      {*LabelIdFromName("Industrial or commercial units"),
       *LabelIdFromName("Water bodies")});
  EarthQubeQuery query;
  query.label_filter = LabelFilter::AtLeastAndMore(industrial_water);
  auto response = system_->Search(query);
  ASSERT_TRUE(response.ok());
  ASSERT_GT(response->panel.total(), 0u)
      << "no industrial waterfront patches in the archive";

  // Every result carries both labels.
  for (const auto& e : response->panel.entries()) {
    EXPECT_TRUE(e.labels.ContainsAll(industrial_water)) << e.name;
  }

  // The label statistics view surfaces co-occurring classes beyond the
  // two selected ones (the paper's "land principally occupied by
  // agriculture" style discovery).
  EXPECT_GT(response->statistics.bars().size(), 2u);
  EXPECT_EQ(response->statistics.CountOf(industrial_water.ids()[0]),
            response->panel.total());

  // The query used the multikey label index, not a collection scan.
  EXPECT_NE(response->query_stats.plan.find("multikey"), std::string::npos)
      << response->query_stats.plan;
}

/// Scenario 2 (Spatial Exploration and Query-by-Existing-Example):
/// "submit a geospatial query covering the southwestern tip of
/// Portugal ... select an image and perform content-based image
/// retrieval to display similar images in the 10 countries."
TEST_F(ScenarioTest, SpatialExplorationThenCbir) {
  // SW Portugal rectangle.
  EarthQubeQuery geo_query;
  geo_query.geo = GeoQuery::Rect({{37.0, -9.5}, {38.5, -7.8}});
  auto geo_response = system_->Search(geo_query);
  ASSERT_TRUE(geo_response.ok());
  ASSERT_GT(geo_response->panel.total(), 0u);
  for (const auto& e : geo_response->panel.entries()) {
    EXPECT_EQ(e.country, "Portugal") << e.name;
  }

  // Render the first page of results (the map render functionality).
  const auto page = geo_response->panel.Page(0);
  ASSERT_FALSE(page.empty());
  for (size_t i = 0; i < std::min<size_t>(3, page.size()); ++i) {
    auto meta = system_->GetMetadata(page[i]->name);
    ASSERT_TRUE(meta.ok());
    bigearthnet::Patch patch = generator_->SynthesizePatch(*meta);
    ASSERT_TRUE(system_->StoreRenderedImage(patch).ok());
    auto rgb = system_->GetRenderedImage(page[i]->name);
    ASSERT_TRUE(rgb.ok());
    EXPECT_EQ(rgb->size(), 120u * 120u * 3u);
  }

  // Pick an image and retrieve similar content across all countries.
  const std::string& query_name = page[0]->name;
  auto cbir_response = system_->NearestToArchiveImage(query_name, 20);
  ASSERT_TRUE(cbir_response.ok());
  EXPECT_GT(cbir_response->panel.total(), 0u);

  auto query_meta = system_->GetMetadata(query_name);
  ASSERT_TRUE(query_meta.ok());
  size_t shared = 0;
  std::set<std::string> countries;
  for (const auto& e : cbir_response->panel.entries()) {
    if (e.labels.ContainsAny(query_meta->labels)) ++shared;
    countries.insert(e.country);
  }
  // Results are semantically similar...
  EXPECT_GT(static_cast<double>(shared) / cbir_response->panel.total(), 0.5);
  // ...and not restricted to Portugal (global-scale retrieval).
  EXPECT_GT(countries.size(), 1u);
}

/// Scenario 3 (Query-by-New-Example): "newly collected images do not
/// have any land cover class labels ... visitors can upload such images
/// to EarthQube to search for other images with similar semantic
/// content.  Based on the semantic search results, one could design an
/// automatic labeling process."
TEST_F(ScenarioTest, QueryByNewExampleAndAutoLabeling) {
  // A "new Sentinel acquisition": synthesise pixels for metadata the
  // system has never indexed (fresh generator, different seed).
  bigearthnet::ArchiveConfig fresh_config;
  fresh_config.num_patches = 50;
  fresh_config.seed = 4099;
  fresh_config.countries = {"Portugal"};
  bigearthnet::ArchiveGenerator fresh_gen(fresh_config);
  auto fresh = fresh_gen.Generate();
  ASSERT_TRUE(fresh.ok());

  // Pick an upload with a reasonably common label set.
  const auto& upload_meta = fresh->patches[0];
  bigearthnet::Patch upload = fresh_gen.SynthesizePatch(upload_meta);
  upload.meta.name = "visitor_upload_2022";

  auto response = system_->SimilarToUploadedImage(upload, /*radius=*/16, 30);
  ASSERT_TRUE(response.ok());
  ASSERT_GT(response->panel.total(), 0u);

  // Automatic labeling: with multi-label data even a perfect retrieval
  // cannot guarantee the single most frequent retrieved label is one of
  // the query's (a frequent co-occurring class can out-count it).  The
  // property that makes auto-labeling viable is *enrichment*: the
  // upload's true labels must be over-represented among the retrieved
  // images relative to their archive base rate, and at least one true
  // label must rank among the top bars of the statistics view.
  const auto& stats = response->statistics;
  ASSERT_TRUE(stats.DominantLabel().ok());
  ASSERT_GT(stats.num_images(), 0u);

  // Archive base rates.
  std::map<bigearthnet::LabelId, size_t> base_counts;
  for (const auto& p : archive_->patches) {
    for (bigearthnet::LabelId id : p.labels.ids()) ++base_counts[id];
  }
  const double n_archive = static_cast<double>(archive_->patches.size());
  const double n_retrieved = static_cast<double>(stats.num_images());

  double best_lift = 0.0;
  for (bigearthnet::LabelId id : upload_meta.labels.ids()) {
    const double base = base_counts[id] / n_archive;
    if (base == 0.0) continue;  // label absent from the indexed archive
    const double retrieved = stats.CountOf(id) / n_retrieved;
    best_lift = std::max(best_lift, retrieved / base);
  }
  EXPECT_GT(best_lift, 1.0)
      << "no upload label is enriched among retrieved images; labels: "
      << upload_meta.labels.ToString();

  // At least one true label within the top-5 bars.
  bool in_top = false;
  const auto& bars = stats.bars();
  for (size_t i = 0; i < bars.size() && i < 5; ++i) {
    if (upload_meta.labels.Contains(bars[i].label)) in_top = true;
  }
  EXPECT_TRUE(in_top) << "no upload label among the top-5 retrieved bars";
}

/// The paper's pipeline claim: hash-table CBIR returns the same result
/// set as an exhaustive Hamming scan (hashing loses nothing at equal
/// radius).
TEST_F(ScenarioTest, HashTableRetrievalMatchesLinearScan) {
  auto* cbir = system_->cbir();
  ASSERT_NE(cbir, nullptr);
  // Re-hash all features with the same model into a linear-scan index.
  index::LinearScanIndex reference;
  std::vector<std::string> names;
  for (const auto& p : archive_->patches) names.push_back(p.name);
  for (size_t i = 0; i < names.size(); ++i) {
    auto code = cbir->CodeOf(names[i]);
    ASSERT_TRUE(code.ok());
    ASSERT_TRUE(reference.Add(i, *code).ok());
  }
  for (size_t q = 0; q < 10; ++q) {
    const std::string& name = names[q * 11];
    auto via_service = cbir->QueryByName(name, /*radius=*/6);
    ASSERT_TRUE(via_service.ok());
    auto code = cbir->CodeOf(name);
    ASSERT_TRUE(code.ok());
    auto via_scan = reference.RadiusSearch(*code, 6);
    // The service excludes the query itself; align the reference.
    std::vector<std::string> scan_names;
    for (const auto& hit : via_scan) {
      if (names[hit.id] != name) scan_names.push_back(names[hit.id]);
    }
    ASSERT_EQ(via_service->size(), scan_names.size()) << "query " << q;
    for (size_t i = 0; i < scan_names.size(); ++i) {
      EXPECT_EQ((*via_service)[i].patch_name, scan_names[i]);
    }
  }
}

/// Persistence across restarts: save the whole data tier and the model,
/// reload, and verify queries still work (demo-booth resilience).
TEST_F(ScenarioTest, DataTierSurvivesRestart) {
  const std::string db_path = "/tmp/agoraeo_integration_db.bin";
  ASSERT_TRUE(system_->database().SaveToFile(db_path).ok());

  docstore::Database restored;
  ASSERT_TRUE(restored.LoadFromFile(db_path).ok());
  auto* meta = restored.GetCollection("metadata");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->size(), archive_->patches.size());

  // An indexed label query still runs on the restored database.
  docstore::QueryStats stats;
  EarthQubeQuery query;
  query.label_filter = LabelFilter::Some(
      LabelSet({*LabelIdFromName("Coniferous forest")}));
  auto ids = meta->FindIds(query.ToFilter(), 0, &stats);
  EXPECT_GT(ids.size(), 0u);
  EXPECT_NE(stats.plan.find("multikey"), std::string::npos);
  std::remove(db_path.c_str());
}


/// The paper's back-end server handles concurrent visitors; EarthQube's
/// read-only query paths (panel search, CBIR, statistics) must be safe
/// under parallel use and return exactly the single-threaded results.
TEST_F(ScenarioTest, ConcurrentReadOnlyQueriesAreConsistent) {
  // Reference results, single-threaded.
  EarthQubeQuery label_query;
  label_query.label_filter = LabelFilter::Some(
      LabelSet({*LabelIdFromName("Pastures")}));
  label_query.limit = 100;
  auto reference_search = system_->Search(label_query);
  ASSERT_TRUE(reference_search.ok());
  const std::string ref_names = reference_search->panel.NamesAsText();

  const std::string& probe = archive_->patches[17].name;
  auto reference_cbir = system_->NearestToArchiveImage(probe, 12);
  ASSERT_TRUE(reference_cbir.ok());
  const std::string ref_cbir_names = reference_cbir->panel.NamesAsText();

  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        auto search = system_->Search(label_query);
        if (!search.ok() || search->panel.NamesAsText() != ref_names) {
          ++mismatches;
        }
        auto cbir = system_->NearestToArchiveImage(probe, 12);
        if (!cbir.ok() || cbir->panel.NamesAsText() != ref_cbir_names) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace agoraeo
