#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

#include "common/crc32.h"
#include "common/random.h"
#include "docstore/aggregate.h"
#include "docstore/btree.h"
#include "docstore/collection.h"
#include "docstore/database.h"
#include "docstore/filter.h"
#include "docstore/wal.h"
#include "docstore/value.h"

namespace agoraeo::docstore {
namespace {

Document MakePatchDoc(const std::string& name, double lat, double lon,
                      std::vector<std::string> labels,
                      const std::string& country, int64_t date_ordinal) {
  Document doc;
  doc.Set("name", Value(name));
  Document location;
  location.Set("min_lat", Value(lat));
  location.Set("min_lon", Value(lon));
  location.Set("max_lat", Value(lat + 0.01));
  location.Set("max_lon", Value(lon + 0.01));
  doc.Set("location", Value(std::move(location)));
  Document properties;
  properties.Set("labels", MakeStringArray(labels));
  properties.Set("country", Value(country));
  properties.Set("date_ordinal", Value(date_ordinal));
  doc.Set("properties", Value(std::move(properties)));
  return doc;
}

// ---------------------------------------------------------------------------
// Value / Document
// ---------------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(std::vector<uint8_t>{1}).is_binary());
  EXPECT_TRUE(MakeArray({Value(1)}).is_array());
  EXPECT_TRUE(Value(Document()).is_document());
  EXPECT_EQ(Value(42).as_int64(), 42);
  EXPECT_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(1), Value(1.0));
  EXPECT_NE(Value(1), Value(1.5));
  EXPECT_EQ(Value(0).as_number(), Value(0.0).as_number());
}

TEST(ValueTest, CompareTotalOrder) {
  EXPECT_LT(Value(), Value(false));       // null < bool
  EXPECT_LT(Value(true), Value(0));       // bool < number
  EXPECT_LT(Value(5), Value("a"));        // number < string
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.5), Value(2));
}

TEST(ValueTest, ArrayComparison) {
  Value a = MakeArray({Value(1), Value(2)});
  Value b = MakeArray({Value(1), Value(3)});
  Value c = MakeArray({Value(1), Value(2), Value(0)});
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);  // prefix sorts first
  EXPECT_EQ(a, MakeArray({Value(1), Value(2)}));
}

TEST(ValueTest, IndexKeyDistinguishesTypes) {
  EXPECT_NE(Value(1).IndexKey(), Value("1").IndexKey());
  EXPECT_EQ(Value(1).IndexKey(), Value(1.0).IndexKey());  // numeric unify
  EXPECT_NE(Value(true).IndexKey(), Value(1).IndexKey());
}

TEST(DocumentTest, SetGetRemove) {
  Document doc;
  doc.Set("b", Value(2));
  doc.Set("a", Value(1));
  doc.Set("a", Value(10));  // replace
  EXPECT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc.Get("a")->as_int64(), 10);
  EXPECT_EQ(doc.Get("missing"), nullptr);
  doc.Remove("a");
  EXPECT_FALSE(doc.Has("a"));
  doc.Remove("never_there");  // no-op
  EXPECT_EQ(doc.size(), 1u);
}

TEST(DocumentTest, FieldsAreSorted) {
  Document doc;
  doc.Set("zebra", Value(1));
  doc.Set("apple", Value(2));
  doc.Set("mango", Value(3));
  EXPECT_EQ(doc.fields()[0].first, "apple");
  EXPECT_EQ(doc.fields()[2].first, "zebra");
}

TEST(DocumentTest, GetPathTraversesNestedDocuments) {
  Document doc = MakePatchDoc("p1", 40.0, -8.0, {"A"}, "Portugal", 100);
  ASSERT_NE(doc.GetPath("properties.country"), nullptr);
  EXPECT_EQ(doc.GetPath("properties.country")->as_string(), "Portugal");
  EXPECT_EQ(doc.GetPath("location.min_lat")->as_double(), 40.0);
  EXPECT_EQ(doc.GetPath("properties.missing"), nullptr);
  EXPECT_EQ(doc.GetPath("name.sub"), nullptr);  // string is not a document
  EXPECT_EQ(doc.GetPath("nothing.at.all"), nullptr);
}

TEST(DocumentTest, EqualityIsDeep) {
  Document a = MakePatchDoc("p", 1, 2, {"A", "B"}, "Serbia", 5);
  Document b = MakePatchDoc("p", 1, 2, {"A", "B"}, "Serbia", 5);
  Document c = MakePatchDoc("p", 1, 2, {"A"}, "Serbia", 5);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// ---------------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------------

TEST(FilterTest, TrueMatchesEverything) {
  EXPECT_TRUE(Filter::True().Matches(Document()));
}

TEST(FilterTest, EqOnScalarAndMissing) {
  Document doc = MakePatchDoc("p", 1, 2, {"A"}, "Serbia", 5);
  EXPECT_TRUE(Filter::Eq("properties.country", Value("Serbia")).Matches(doc));
  EXPECT_FALSE(Filter::Eq("properties.country", Value("Kosovo")).Matches(doc));
  EXPECT_FALSE(Filter::Eq("properties.absent", Value(1)).Matches(doc));
}

TEST(FilterTest, EqOnArrayMatchesAnyElement) {
  Document doc = MakePatchDoc("p", 1, 2, {"A", "F"}, "Serbia", 5);
  EXPECT_TRUE(Filter::Eq("properties.labels", Value("F")).Matches(doc));
  EXPECT_FALSE(Filter::Eq("properties.labels", Value("Z")).Matches(doc));
}

TEST(FilterTest, NeSemantics) {
  Document doc = MakePatchDoc("p", 1, 2, {"A"}, "Serbia", 5);
  EXPECT_TRUE(Filter::Ne("properties.country", Value("Kosovo")).Matches(doc));
  EXPECT_FALSE(Filter::Ne("properties.country", Value("Serbia")).Matches(doc));
  // Missing fields are "not equal".
  EXPECT_TRUE(Filter::Ne("properties.absent", Value(1)).Matches(doc));
}

TEST(FilterTest, InMatchesMembership) {
  Document doc = MakePatchDoc("p", 1, 2, {"A", "C"}, "Serbia", 5);
  EXPECT_TRUE(
      Filter::In("properties.labels", {Value("X"), Value("C")}).Matches(doc));
  EXPECT_FALSE(
      Filter::In("properties.labels", {Value("X"), Value("Y")}).Matches(doc));
  EXPECT_TRUE(Filter::In("properties.country", {Value("Serbia")}).Matches(doc));
}

TEST(FilterTest, AllRequiresEveryElement) {
  Document doc = MakePatchDoc("p", 1, 2, {"A", "C", "F"}, "Serbia", 5);
  EXPECT_TRUE(
      Filter::All("properties.labels", {Value("A"), Value("F")}).Matches(doc));
  EXPECT_FALSE(
      Filter::All("properties.labels", {Value("A"), Value("Z")}).Matches(doc));
  // Scalar field: $all with one element behaves like Eq.
  EXPECT_TRUE(
      Filter::All("properties.country", {Value("Serbia")}).Matches(doc));
  EXPECT_FALSE(
      Filter::All("properties.country", {Value("Serbia"), Value("X")})
          .Matches(doc));
}

TEST(FilterTest, SizeMatchesArrayLength) {
  Document doc = MakePatchDoc("p", 1, 2, {"A", "C"}, "Serbia", 5);
  EXPECT_TRUE(Filter::Size("properties.labels", 2).Matches(doc));
  EXPECT_FALSE(Filter::Size("properties.labels", 3).Matches(doc));
  EXPECT_FALSE(Filter::Size("properties.country", 1).Matches(doc));
}

TEST(FilterTest, ExistsChecksPresence) {
  Document doc = MakePatchDoc("p", 1, 2, {"A"}, "Serbia", 5);
  EXPECT_TRUE(Filter::Exists("properties.labels").Matches(doc));
  EXPECT_FALSE(Filter::Exists("properties.ghost").Matches(doc));
}

TEST(FilterTest, RangeOperators) {
  Document doc = MakePatchDoc("p", 1, 2, {"A"}, "Serbia", 100);
  const char* path = "properties.date_ordinal";
  EXPECT_TRUE(Filter::Gt(path, Value(99)).Matches(doc));
  EXPECT_FALSE(Filter::Gt(path, Value(100)).Matches(doc));
  EXPECT_TRUE(Filter::Gte(path, Value(100)).Matches(doc));
  EXPECT_TRUE(Filter::Lt(path, Value(101)).Matches(doc));
  EXPECT_FALSE(Filter::Lt(path, Value(100)).Matches(doc));
  EXPECT_TRUE(Filter::Lte(path, Value(100)).Matches(doc));
  // Cross-type numeric comparison.
  EXPECT_TRUE(Filter::Gt(path, Value(99.5)).Matches(doc));
}

TEST(FilterTest, BooleanCombinators) {
  Document doc = MakePatchDoc("p", 1, 2, {"A"}, "Serbia", 100);
  Filter serbia = Filter::Eq("properties.country", Value("Serbia"));
  Filter kosovo = Filter::Eq("properties.country", Value("Kosovo"));
  EXPECT_TRUE(Filter::And({serbia, Filter::Gt("properties.date_ordinal",
                                              Value(50))})
                  .Matches(doc));
  EXPECT_FALSE(Filter::And({serbia, kosovo}).Matches(doc));
  EXPECT_TRUE(Filter::Or({kosovo, serbia}).Matches(doc));
  EXPECT_FALSE(Filter::Or({kosovo, kosovo}).Matches(doc));
  EXPECT_TRUE(Filter::Not(kosovo).Matches(doc));
  EXPECT_FALSE(Filter::Not(serbia).Matches(doc));
}

TEST(FilterTest, GeoIntersects) {
  Document doc = MakePatchDoc("p", 40.0, -8.0, {"A"}, "Portugal", 5);
  geo::BoundingBox hit{{39.9, -8.1}, {40.1, -7.9}};
  geo::BoundingBox miss{{50, 0}, {51, 1}};
  EXPECT_TRUE(Filter::GeoIntersects("location", hit).Matches(doc));
  EXPECT_FALSE(Filter::GeoIntersects("location", miss).Matches(doc));
  // A document without location never matches.
  EXPECT_FALSE(Filter::GeoIntersects("location", hit).Matches(Document()));
}

TEST(FilterTest, GeoWithinCircleAndPolygon) {
  Document doc = MakePatchDoc("p", 40.0, -8.0, {"A"}, "Portugal", 5);
  geo::Circle near{{40.0, -8.0}, 5000};
  geo::Circle far{{45.0, 5.0}, 5000};
  EXPECT_TRUE(Filter::GeoWithinCircle("location", near).Matches(doc));
  EXPECT_FALSE(Filter::GeoWithinCircle("location", far).Matches(doc));

  geo::Polygon triangle{{{39, -9}, {41, -9}, {40, -7}}};
  EXPECT_TRUE(Filter::GeoWithinPolygon("location", triangle).Matches(doc));
  geo::Polygon elsewhere{{{50, 0}, {51, 0}, {50, 1}}};
  EXPECT_FALSE(Filter::GeoWithinPolygon("location", elsewhere).Matches(doc));
}

TEST(FilterTest, ToStringIsInformative) {
  Filter f = Filter::And({Filter::Eq("a", Value(1)),
                          Filter::In("b", {Value("x")})});
  const std::string s = f.ToString();
  EXPECT_NE(s.find("And"), std::string::npos);
  EXPECT_NE(s.find("Eq(a"), std::string::npos);
  EXPECT_NE(s.find("In(b"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Collection basics
// ---------------------------------------------------------------------------

TEST(CollectionTest, InsertAssignsIncreasingIds) {
  Collection coll("test");
  auto id1 = coll.Insert(MakePatchDoc("a", 1, 2, {"A"}, "Serbia", 1));
  auto id2 = coll.Insert(MakePatchDoc("b", 1, 2, {"A"}, "Serbia", 2));
  ASSERT_TRUE(id1.ok() && id2.ok());
  EXPECT_LT(*id1, *id2);
  EXPECT_EQ(coll.size(), 2u);
  EXPECT_NE(coll.Get(*id1), nullptr);
  EXPECT_EQ(coll.Get(9999), nullptr);
}

TEST(CollectionTest, RemoveAndUpdate) {
  Collection coll("test");
  auto id = *coll.Insert(MakePatchDoc("a", 1, 2, {"A"}, "Serbia", 1));
  ASSERT_TRUE(coll.Update(id, MakePatchDoc("a", 1, 2, {"B"}, "Kosovo", 1)).ok());
  EXPECT_EQ(coll.Get(id)->GetPath("properties.country")->as_string(),
            "Kosovo");
  ASSERT_TRUE(coll.Remove(id).ok());
  EXPECT_TRUE(coll.Remove(id).IsNotFound());
  EXPECT_TRUE(coll.Update(id, Document()).IsNotFound());
  EXPECT_EQ(coll.size(), 0u);
}

TEST(CollectionTest, FindWithLimitAndCount) {
  Collection coll("test");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(coll.Insert(MakePatchDoc("p" + std::to_string(i), 1, 2,
                                         {i % 2 == 0 ? "A" : "B"}, "Serbia",
                                         i))
                    .ok());
  }
  Filter evens = Filter::Eq("properties.labels", Value("A"));
  EXPECT_EQ(coll.Count(evens), 10u);
  EXPECT_EQ(coll.FindIds(evens, 3).size(), 3u);
  EXPECT_EQ(coll.Find(evens).size(), 10u);
}

TEST(CollectionTest, FindOneIdNotFound) {
  Collection coll("test");
  EXPECT_TRUE(
      coll.FindOneId(Filter::Eq("name", Value("ghost"))).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Unique index
// ---------------------------------------------------------------------------

TEST(UniqueIndexTest, RejectsDuplicates) {
  Collection coll("test");
  ASSERT_TRUE(coll.CreateHashIndex("name", /*unique=*/true).ok());
  ASSERT_TRUE(coll.Insert(MakePatchDoc("a", 1, 2, {"A"}, "Serbia", 1)).ok());
  auto dup = coll.Insert(MakePatchDoc("a", 3, 4, {"B"}, "Kosovo", 2));
  EXPECT_TRUE(dup.status().IsAlreadyExists());
  EXPECT_EQ(coll.size(), 1u);  // rejected insert left no trace
}

TEST(UniqueIndexTest, AllowsReinsertAfterRemove) {
  Collection coll("test");
  ASSERT_TRUE(coll.CreateHashIndex("name", true).ok());
  auto id = *coll.Insert(MakePatchDoc("a", 1, 2, {"A"}, "Serbia", 1));
  ASSERT_TRUE(coll.Remove(id).ok());
  EXPECT_TRUE(coll.Insert(MakePatchDoc("a", 1, 2, {"A"}, "Serbia", 1)).ok());
}

TEST(UniqueIndexTest, UpdateToExistingKeyRejected) {
  Collection coll("test");
  ASSERT_TRUE(coll.CreateHashIndex("name", true).ok());
  ASSERT_TRUE(coll.Insert(MakePatchDoc("a", 1, 2, {"A"}, "Serbia", 1)).ok());
  auto id_b = *coll.Insert(MakePatchDoc("b", 1, 2, {"A"}, "Serbia", 1));
  EXPECT_TRUE(coll.Update(id_b, MakePatchDoc("a", 1, 2, {"A"}, "Serbia", 1))
                  .IsAlreadyExists());
  // Self-update keeping the key is fine.
  EXPECT_TRUE(coll.Update(id_b, MakePatchDoc("b", 9, 9, {"C"}, "Kosovo", 2))
                  .ok());
}

TEST(UniqueIndexTest, CreateOnExistingDataWithDuplicatesFails) {
  Collection coll("test");
  ASSERT_TRUE(coll.Insert(MakePatchDoc("a", 1, 2, {"A"}, "Serbia", 1)).ok());
  ASSERT_TRUE(coll.Insert(MakePatchDoc("a", 3, 4, {"B"}, "Kosovo", 2)).ok());
  EXPECT_FALSE(coll.CreateHashIndex("name", true).ok());
}

// ---------------------------------------------------------------------------
// Query planning
// ---------------------------------------------------------------------------

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    coll_ = std::make_unique<Collection>("metadata");
    Rng rng(61);
    const char* countries[] = {"Serbia", "Portugal", "Finland"};
    for (int i = 0; i < 500; ++i) {
      std::vector<std::string> labels;
      labels.push_back(std::string(1, static_cast<char>('A' + i % 7)));
      if (i % 3 == 0) labels.push_back("Z");
      const double lat = 40.0 + (i % 50) * 0.1;
      const double lon = -8.0 + (i / 50) * 0.1;
      ASSERT_TRUE(coll_->Insert(MakePatchDoc("p" + std::to_string(i), lat,
                                             lon, labels,
                                             countries[i % 3], i))
                      .ok());
    }
    ASSERT_TRUE(coll_->CreateHashIndex("name", true).ok());
    ASSERT_TRUE(coll_->CreateMultikeyIndex("properties.labels").ok());
    ASSERT_TRUE(coll_->CreateGeoIndex("location", 5).ok());
  }

  std::unique_ptr<Collection> coll_;
};

TEST_F(PlannerTest, EqOnPrimaryKeyUsesHashIndex) {
  QueryStats stats;
  auto ids = coll_->FindIds(Filter::Eq("name", Value("p123")), 0, &stats);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(stats.plan, "IXSCAN(hash:name)");
  EXPECT_EQ(stats.docs_examined, 1u);
}

TEST_F(PlannerTest, LabelEqUsesMultikeyIndex) {
  QueryStats stats;
  auto ids =
      coll_->FindIds(Filter::Eq("properties.labels", Value("Z")), 0, &stats);
  EXPECT_EQ(stats.plan, "IXSCAN(multikey:properties.labels)");
  EXPECT_EQ(ids.size(), 167u);  // ceil(500/3)
  EXPECT_EQ(stats.docs_examined, ids.size());  // no false candidates
}

TEST_F(PlannerTest, LabelAllIntersectsPostingLists) {
  QueryStats stats;
  auto ids = coll_->FindIds(
      Filter::All("properties.labels", {Value("A"), Value("Z")}), 0, &stats);
  EXPECT_EQ(stats.plan, "IXSCAN(multikey:properties.labels)");
  // i % 7 == 0 and i % 3 == 0 -> i % 21 == 0 -> 24 docs in [0, 500).
  EXPECT_EQ(ids.size(), 24u);
}

TEST_F(PlannerTest, LabelInUnionsPostingLists) {
  QueryStats stats;
  auto ids = coll_->FindIds(
      Filter::In("properties.labels", {Value("A"), Value("B")}), 0, &stats);
  EXPECT_EQ(stats.plan, "IXSCAN(multikey:properties.labels)");
  // i%7==0 (72) + i%7==1 (72) -> 144.
  EXPECT_EQ(ids.size(), 144u);
}

TEST_F(PlannerTest, GeoQueryUsesGeoIndex) {
  QueryStats stats;
  geo::BoundingBox box{{40.0, -8.0}, {40.5, -7.8}};
  auto ids = coll_->FindIds(Filter::GeoIntersects("location", box), 0, &stats);
  EXPECT_EQ(stats.plan, "IXSCAN(geo:location)");
  EXPECT_FALSE(ids.empty());
  // Index candidates must be a superset but far less than the collection.
  EXPECT_GE(stats.index_candidates, ids.size());
  EXPECT_LT(stats.index_candidates, coll_->size());
  // Cross-check against a full scan.
  Collection unindexed("scan");
  for (const auto& [id, doc] : coll_->docs()) {
    Document copy = doc;
    ASSERT_TRUE(unindexed.Insert(std::move(copy)).ok());
  }
  QueryStats scan_stats;
  auto scan_ids =
      unindexed.FindIds(Filter::GeoIntersects("location", box), 0, &scan_stats);
  EXPECT_EQ(scan_stats.plan, "COLLSCAN");
  EXPECT_EQ(ids.size(), scan_ids.size());
}

TEST_F(PlannerTest, ConjunctionPicksCheapestIndex) {
  QueryStats stats;
  // name Eq has 1 candidate; label Eq has ~70: planner must pick name.
  auto ids = coll_->FindIds(
      Filter::And({Filter::Eq("properties.labels", Value("A")),
                   Filter::Eq("name", Value("p7"))}),
      0, &stats);
  EXPECT_EQ(stats.plan, "IXSCAN(hash:name)");
  ASSERT_EQ(ids.size(), 1u);
}

TEST_F(PlannerTest, NonIndexableFilterFallsBackToScan) {
  QueryStats stats;
  auto ids = coll_->FindIds(
      Filter::Eq("properties.country", Value("Serbia")), 0, &stats);
  EXPECT_EQ(stats.plan, "COLLSCAN");
  EXPECT_EQ(ids.size(), 167u);
  EXPECT_EQ(stats.docs_examined, coll_->size());
}

TEST_F(PlannerTest, IndexAndScanAgreeOnComplexQuery) {
  Filter filter = Filter::And(
      {Filter::In("properties.labels", {Value("A"), Value("C")}),
       Filter::Gte("properties.date_ordinal", Value(100)),
       Filter::Lt("properties.date_ordinal", Value(400))});
  QueryStats stats;
  auto indexed = coll_->FindIds(filter, 0, &stats);
  EXPECT_NE(stats.plan, "COLLSCAN");
  // Reference: evaluate filter on all docs directly.
  std::vector<DocId> reference;
  for (const auto& [id, doc] : coll_->docs()) {
    if (filter.Matches(doc)) reference.push_back(id);
  }
  EXPECT_EQ(indexed, reference);
}

TEST_F(PlannerTest, CountByArrayFieldAggregates) {
  auto counts = coll_->CountByArrayField("properties.labels", Filter::True());
  // 500 docs: labels A..G get ~71-72 each, Z gets 167.
  EXPECT_EQ(counts["Z"], 167u);
  size_t total = 0;
  for (const auto& [key, n] : counts) total += n;
  EXPECT_EQ(total, 500u + 167u);
}

TEST(IndexMaintenanceTest, RemoveUpdatesIndexes) {
  Collection coll("test");
  ASSERT_TRUE(coll.CreateMultikeyIndex("properties.labels").ok());
  auto id = *coll.Insert(MakePatchDoc("a", 1, 2, {"A", "B"}, "Serbia", 1));
  ASSERT_TRUE(coll.Remove(id).ok());
  QueryStats stats;
  auto ids =
      coll.FindIds(Filter::Eq("properties.labels", Value("A")), 0, &stats);
  EXPECT_TRUE(ids.empty());
  EXPECT_EQ(stats.index_candidates, 0u);
}

TEST(IndexMaintenanceTest, UpdateMovesDocBetweenPostingLists) {
  Collection coll("test");
  ASSERT_TRUE(coll.CreateMultikeyIndex("properties.labels").ok());
  auto id = *coll.Insert(MakePatchDoc("a", 1, 2, {"A"}, "Serbia", 1));
  ASSERT_TRUE(coll.Update(id, MakePatchDoc("a", 1, 2, {"B"}, "Serbia", 1)).ok());
  EXPECT_TRUE(coll.FindIds(Filter::Eq("properties.labels", Value("A"))).empty());
  EXPECT_EQ(coll.FindIds(Filter::Eq("properties.labels", Value("B"))).size(),
            1u);
}

TEST(IndexCreationTest, DuplicateIndexRejected) {
  Collection coll("test");
  ASSERT_TRUE(coll.CreateHashIndex("name").ok());
  EXPECT_TRUE(coll.CreateHashIndex("name").IsAlreadyExists());
  ASSERT_TRUE(coll.CreateMultikeyIndex("labels").ok());
  EXPECT_TRUE(coll.CreateMultikeyIndex("labels").IsAlreadyExists());
  ASSERT_TRUE(coll.CreateGeoIndex("location").ok());
  EXPECT_TRUE(coll.CreateGeoIndex("location").IsAlreadyExists());
  EXPECT_TRUE(coll.CreateGeoIndex("loc2", 99).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Database + persistence
// ---------------------------------------------------------------------------

TEST(DatabaseTest, CollectionLifecycle) {
  Database db;
  Collection* a = db.GetOrCreateCollection("metadata");
  EXPECT_EQ(a, db.GetOrCreateCollection("metadata"));
  EXPECT_EQ(db.GetCollection("metadata"), a);
  EXPECT_EQ(db.GetCollection("ghost"), nullptr);
  EXPECT_EQ(db.NumCollections(), 1u);
  EXPECT_TRUE(db.DropCollection("metadata").ok());
  EXPECT_TRUE(db.DropCollection("metadata").IsNotFound());
}

TEST(DatabaseTest, SaveLoadRoundTrip) {
  const std::string path = "/tmp/agoraeo_db_test.bin";
  {
    Database db;
    Collection* meta = db.GetOrCreateCollection("metadata");
    ASSERT_TRUE(meta->CreateHashIndex("name", true).ok());
    ASSERT_TRUE(meta->CreateMultikeyIndex("properties.labels").ok());
    ASSERT_TRUE(meta->CreateGeoIndex("location", 5).ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(meta->Insert(MakePatchDoc("p" + std::to_string(i),
                                            40.0 + i * 0.01, -8.0,
                                            {"A", "B"}, "Portugal", i))
                      .ok());
    }
    Collection* feedback = db.GetOrCreateCollection("feedback");
    Document f;
    f.Set("text", Value("great demo"));
    ASSERT_TRUE(feedback->Insert(std::move(f)).ok());
    ASSERT_TRUE(db.SaveToFile(path).ok());
  }
  {
    Database db;
    ASSERT_TRUE(db.LoadFromFile(path).ok());
    EXPECT_EQ(db.NumCollections(), 2u);
    Collection* meta = db.GetCollection("metadata");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->size(), 50u);
    // Indexes were rebuilt: a PK lookup must use them.
    QueryStats stats;
    auto ids = meta->FindIds(Filter::Eq("name", Value("p17")), 0, &stats);
    EXPECT_EQ(ids.size(), 1u);
    EXPECT_EQ(stats.plan, "IXSCAN(hash:name)");
    // Unique constraint survives.
    EXPECT_TRUE(meta->Insert(MakePatchDoc("p17", 0, 0, {"A"}, "x", 0))
                    .status()
                    .IsAlreadyExists());
  }
  std::remove(path.c_str());
}

TEST(DatabaseTest, LoadRejectsGarbageFile) {
  const std::string path = "/tmp/agoraeo_db_garbage.bin";
  ASSERT_TRUE(WriteFileBytes(path, {1, 2, 3, 4, 5, 6, 7, 8, 9}).ok());
  Database db;
  EXPECT_TRUE(db.LoadFromFile(path).IsCorruption());
  std::remove(path.c_str());
}

TEST(SerializationTest, ValueRoundTripAllTypes) {
  Document nested;
  nested.Set("k", Value(1.5));
  std::vector<Value> values = {
      Value(), Value(true), Value(int64_t{-42}), Value(3.14),
      Value("text"), Value(std::vector<uint8_t>{0, 255, 7}),
      MakeArray({Value(1), Value("two"), MakeArray({Value(3)})}),
      Value(nested)};
  for (const Value& original : values) {
    ByteWriter w;
    SerializeValue(original, &w);
    ByteReader r(w.data());
    auto back = DeserializeValue(&r);
    ASSERT_TRUE(back.ok()) << original.ToString();
    EXPECT_EQ(*back, original) << original.ToString();
    EXPECT_TRUE(r.exhausted());
  }
}


// ---------------------------------------------------------------------------
// BPlusTree
// ---------------------------------------------------------------------------

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.num_keys(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.Find(Value(1)), nullptr);
  EXPECT_TRUE(tree.ScanIds(nullptr, true, nullptr, true).empty());
  EXPECT_EQ(tree.CheckInvariants(), "");
}

TEST(BPlusTreeTest, InsertFindSingle) {
  BPlusTree tree;
  tree.Insert(Value("2017-06-13"), 7);
  ASSERT_NE(tree.Find(Value("2017-06-13")), nullptr);
  EXPECT_EQ(*tree.Find(Value("2017-06-13")), std::vector<DocId>{7});
  EXPECT_EQ(tree.Find(Value("2017-06-14")), nullptr);
}

TEST(BPlusTreeTest, DuplicateInsertStoredOnce) {
  BPlusTree tree;
  tree.Insert(Value(5), 1);
  tree.Insert(Value(5), 1);
  tree.Insert(Value(5), 2);
  ASSERT_NE(tree.Find(Value(5)), nullptr);
  EXPECT_EQ(tree.Find(Value(5))->size(), 2u);
  EXPECT_EQ(tree.num_keys(), 1u);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree tree(4);  // tiny order to force splits early
  for (int i = 0; i < 100; ++i) tree.Insert(Value(i), static_cast<DocId>(i));
  EXPECT_EQ(tree.num_keys(), 100u);
  EXPECT_GT(tree.height(), 2u);
  EXPECT_EQ(tree.CheckInvariants(), "");
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(tree.Find(Value(i)), nullptr) << i;
  }
}

TEST(BPlusTreeTest, ScanFullAscending) {
  BPlusTree tree(4);
  // Insert in a scrambled order; scan must come back sorted.
  for (int i = 0; i < 50; ++i) {
    const int k = (i * 37) % 50;
    tree.Insert(Value(k), static_cast<DocId>(k));
  }
  std::vector<DocId> ids = tree.ScanIds(nullptr, true, nullptr, true);
  ASSERT_EQ(ids.size(), 50u);
  for (size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
}

TEST(BPlusTreeTest, BoundedScansRespectInclusivity) {
  BPlusTree tree(4);
  for (int i = 0; i < 20; ++i) tree.Insert(Value(i), static_cast<DocId>(i));
  const Value lo(5), hi(10);
  EXPECT_EQ(tree.ScanIds(&lo, true, &hi, true).size(), 6u);    // [5,10]
  EXPECT_EQ(tree.ScanIds(&lo, false, &hi, true).size(), 5u);   // (5,10]
  EXPECT_EQ(tree.ScanIds(&lo, true, &hi, false).size(), 5u);   // [5,10)
  EXPECT_EQ(tree.ScanIds(&lo, false, &hi, false).size(), 4u);  // (5,10)
  const Value missing_lo(-3), missing_hi(100);
  EXPECT_EQ(tree.ScanIds(&missing_lo, true, &missing_hi, true).size(), 20u);
}

TEST(BPlusTreeTest, EmptyIntervalScans) {
  BPlusTree tree(4);
  for (int i = 0; i < 10; ++i) tree.Insert(Value(i * 2), static_cast<DocId>(i));
  const Value a(3), b(3);
  EXPECT_TRUE(tree.ScanIds(&a, true, &b, true).empty());  // between keys
  const Value lo(8), hi(4);
  EXPECT_TRUE(tree.ScanIds(&lo, true, &hi, true).empty());  // inverted
}

TEST(BPlusTreeTest, RemoveMergesAndShrinks) {
  BPlusTree tree(4);
  for (int i = 0; i < 200; ++i) tree.Insert(Value(i), static_cast<DocId>(i));
  const size_t tall = tree.height();
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(tree.Remove(Value(i), static_cast<DocId>(i))) << i;
    ASSERT_EQ(tree.CheckInvariants(), "") << "after removing " << i;
  }
  EXPECT_EQ(tree.num_keys(), 0u);
  EXPECT_LT(tree.height(), tall);
  EXPECT_FALSE(tree.Remove(Value(0), 0));  // already gone
}

TEST(BPlusTreeTest, RemoveMissingReturnsFalse) {
  BPlusTree tree;
  tree.Insert(Value(1), 10);
  EXPECT_FALSE(tree.Remove(Value(2), 10));   // absent key
  EXPECT_FALSE(tree.Remove(Value(1), 11));   // absent id under present key
  EXPECT_TRUE(tree.Remove(Value(1), 10));
}

TEST(BPlusTreeTest, MixedTypeKeysOrderByTypeRank) {
  BPlusTree tree(4);
  tree.Insert(Value(2), 1);
  tree.Insert(Value("alpha"), 2);
  tree.Insert(Value(true), 3);
  tree.Insert(Value(1.5), 4);
  EXPECT_EQ(tree.num_keys(), 4u);
  EXPECT_EQ(tree.CheckInvariants(), "");
  // Full scan is total-order consistent (Value::Compare).
  std::vector<Value> keys;
  tree.Scan(nullptr, true, nullptr, true,
            [&](const Value& k, const std::vector<DocId>&) {
              keys.push_back(k);
            });
  ASSERT_EQ(keys.size(), 4u);
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    EXPECT_LT(keys[i].Compare(keys[i + 1]), 0);
  }
}

/// Differential test: a long random insert/remove sequence must track a
/// std::map reference exactly, with invariants intact throughout.
class BPlusTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BPlusTreeRandomTest, MatchesReferenceUnderRandomOps) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  BPlusTree tree(8);
  std::map<int64_t, std::set<DocId>> ref;

  for (int step = 0; step < 2000; ++step) {
    const int64_t key = static_cast<int64_t>(rng.UniformInt(0, 150));
    const DocId id = static_cast<DocId>(rng.UniformInt(0, 10));
    if (rng.UniformInt(0, 99) < 60) {
      tree.Insert(Value(key), id);
      ref[key].insert(id);
    } else {
      const bool removed = tree.Remove(Value(key), id);
      const bool expected = ref.count(key) > 0 && ref[key].count(id) > 0;
      EXPECT_EQ(removed, expected) << "step " << step;
      if (expected) {
        ref[key].erase(id);
        if (ref[key].empty()) ref.erase(key);
      }
    }
    if (step % 100 == 0) {
      ASSERT_EQ(tree.CheckInvariants(), "") << step;
    }
  }
  ASSERT_EQ(tree.CheckInvariants(), "");
  EXPECT_EQ(tree.num_keys(), ref.size());

  // Exact-match parity.
  for (const auto& [key, ids] : ref) {
    const auto* postings = tree.Find(Value(key));
    ASSERT_NE(postings, nullptr) << key;
    std::set<DocId> got(postings->begin(), postings->end());
    EXPECT_EQ(got, ids) << key;
  }
  // Range parity on a few random intervals.
  for (int t = 0; t < 20; ++t) {
    const int64_t a = static_cast<int64_t>(rng.UniformInt(0, 150));
    const int64_t b = static_cast<int64_t>(rng.UniformInt(0, 150));
    const int64_t lo = std::min(a, b), hi = std::max(a, b);
    std::multiset<DocId> expected;
    for (auto it = ref.lower_bound(lo); it != ref.end() && it->first <= hi;
         ++it) {
      expected.insert(it->second.begin(), it->second.end());
    }
    const Value vlo(lo), vhi(hi);
    std::vector<DocId> got = tree.ScanIds(&vlo, true, &vhi, true);
    EXPECT_EQ(std::multiset<DocId>(got.begin(), got.end()), expected)
        << "[" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// RangeIndex + planner
// ---------------------------------------------------------------------------

namespace {

Document DatedDoc(const std::string& name, const std::string& date,
                  int64_t size) {
  Document d;
  d.Set("name", Value(name));
  Document props;
  props.Set("acquisition_date", Value(date));
  props.Set("size", Value(size));
  d.Set("properties", Value(props));
  return d;
}

}  // namespace

TEST(RangeIndexTest, DateRangeUsesIndex) {
  Collection coll("metadata");
  ASSERT_TRUE(coll.CreateRangeIndex("properties.acquisition_date").ok());
  for (int m = 1; m <= 12; ++m) {
    for (int day = 1; day <= 20; ++day) {
      char date[16];
      std::snprintf(date, sizeof(date), "2017-%02d-%02d", m, day);
      ASSERT_TRUE(
          coll.Insert(DatedDoc("p" + std::to_string(m * 100 + day), date,
                               m * day))
              .ok());
    }
  }
  QueryStats stats;
  auto ids = coll.FindIds(
      Filter::And({Filter::Gte("properties.acquisition_date", Value("2017-03-01")),
                   Filter::Lte("properties.acquisition_date", Value("2017-04-31"))}),
      0, &stats);
  EXPECT_EQ(ids.size(), 40u);  // months 3 and 4, 20 days each
  EXPECT_EQ(stats.plan, "IXSCAN(range:properties.acquisition_date)");
  // The combined-interval plan only touches the interval's documents.
  EXPECT_EQ(stats.index_candidates, 40u);
}

TEST(RangeIndexTest, SingleBoundPlansIndexScan) {
  Collection coll("metadata");
  ASSERT_TRUE(coll.CreateRangeIndex("properties.size").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(coll.Insert(DatedDoc("p" + std::to_string(i), "2017-06-01",
                                     i)).ok());
  }
  QueryStats stats;
  auto ids = coll.FindIds(Filter::Gt("properties.size", Value(89)), 0, &stats);
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(stats.plan, "IXSCAN(range:properties.size)");

  ids = coll.FindIds(Filter::Lt("properties.size", Value(10)), 0, &stats);
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(stats.plan, "IXSCAN(range:properties.size)");
}

TEST(RangeIndexTest, EqualityUsesRangeIndexWhenNoHashIndex) {
  Collection coll("metadata");
  ASSERT_TRUE(coll.CreateRangeIndex("properties.size").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(coll.Insert(DatedDoc("p" + std::to_string(i), "2017-06-01",
                                     i % 5)).ok());
  }
  QueryStats stats;
  auto ids = coll.FindIds(Filter::Eq("properties.size", Value(3)), 0, &stats);
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(stats.plan, "IXSCAN(range:properties.size)");
}

TEST(RangeIndexTest, MaintainedAcrossUpdateAndRemove) {
  Collection coll("metadata");
  ASSERT_TRUE(coll.CreateRangeIndex("properties.size").ok());
  auto id = coll.Insert(DatedDoc("a", "2017-06-01", 5));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(coll.Update(*id, DatedDoc("a", "2017-06-01", 50)).ok());
  QueryStats stats;
  EXPECT_TRUE(coll.FindIds(Filter::Eq("properties.size", Value(5)), 0,
                           &stats).empty());
  EXPECT_EQ(coll.FindIds(Filter::Eq("properties.size", Value(50))).size(), 1u);
  ASSERT_TRUE(coll.Remove(*id).ok());
  EXPECT_TRUE(coll.FindIds(Filter::Eq("properties.size", Value(50))).empty());
}

TEST(RangeIndexTest, DuplicateCreateRejected) {
  Collection coll("c");
  ASSERT_TRUE(coll.CreateRangeIndex("f").ok());
  EXPECT_TRUE(coll.CreateRangeIndex("f").IsAlreadyExists());
}

TEST(RangeIndexTest, SurvivesDatabasePersistence) {
  const std::string path = "/tmp/agoraeo_range_persist.bin";
  {
    Database db;
    Collection* coll = db.GetOrCreateCollection("metadata");
    ASSERT_TRUE(coll->CreateRangeIndex("properties.size").ok());
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(coll->Insert(DatedDoc("p" + std::to_string(i),
                                        "2017-06-01", i)).ok());
    }
    ASSERT_TRUE(db.SaveToFile(path).ok());
  }
  Database db;
  ASSERT_TRUE(db.LoadFromFile(path).ok());
  Collection* coll = db.GetOrCreateCollection("metadata");
  QueryStats stats;
  auto ids = coll->FindIds(Filter::Gte("properties.size", Value(20)), 0,
                           &stats);
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(stats.plan, "IXSCAN(range:properties.size)");
  std::remove(path.c_str());
}


// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // Standard check value for the ASCII string "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  uint32_t inc = 0;
  inc = Crc32Update(inc, data.data(), 10);
  inc = Crc32Update(inc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(inc, whole);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(64, 0xAB);
  const uint32_t original = Crc32(data);
  for (size_t byte = 0; byte < data.size(); byte += 13) {
    data[byte] ^= 0x04;
    EXPECT_NE(Crc32(data), original) << byte;
    data[byte] ^= 0x04;
  }
}

// ---------------------------------------------------------------------------
// Write-ahead log + DurableDatabase
// ---------------------------------------------------------------------------

namespace {

/// Scratch directory for one WAL test; wiped at construction.
class WalDir {
 public:
  explicit WalDir(const std::string& name)
      : path_("/tmp/agoraeo_wal_" + name) {
    std::remove((path_ + "/snapshot.bin").c_str());
    std::remove((path_ + "/wal.log").c_str());
    (void)!system(("mkdir -p " + path_).c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Document NamedDoc(const std::string& name, int64_t n) {
  Document d;
  d.Set("name", Value(name));
  d.Set("n", Value(n));
  return d;
}

/// Truncates a file to `keep` bytes (simulates a crash mid-append).
void TruncateFile(const std::string& path, size_t keep) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_GE(static_cast<size_t>(size), keep);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(keep);
  ASSERT_EQ(std::fread(bytes.data(), 1, keep, f), keep);
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, keep, f), keep);
  std::fclose(f);
}

size_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return static_cast<size_t>(size);
}

}  // namespace

TEST(WalTest, MutationsSurviveReopen) {
  WalDir dir("reopen");
  DocId id2;
  {
    DurableDatabase ddb(dir.path());
    ASSERT_TRUE(ddb.Open().ok());
    ASSERT_TRUE(ddb.CreateHashIndex("meta", "name", /*unique=*/true).ok());
    ASSERT_TRUE(ddb.Insert("meta", NamedDoc("a", 1)).ok());
    auto id = ddb.Insert("meta", NamedDoc("b", 2));
    ASSERT_TRUE(id.ok());
    id2 = *id;
    ASSERT_TRUE(ddb.Insert("meta", NamedDoc("c", 3)).ok());
    ASSERT_TRUE(ddb.Update("meta", id2, NamedDoc("b", 20)).ok());
    EXPECT_EQ(ddb.journal_records(), 5u);
  }  // no checkpoint: recovery is journal-only
  DurableDatabase ddb(dir.path());
  ASSERT_TRUE(ddb.Open().ok());
  EXPECT_FALSE(ddb.recovered_torn_tail());
  const Collection* meta = ddb.db().GetCollection("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->size(), 3u);
  auto found = meta->FindOneId(Filter::Eq("name", Value("b")));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(meta->Get(*found)->Get("n")->as_int64(), 20);
  // The unique index definition was journaled too.
  EXPECT_TRUE(ddb.Insert("meta", NamedDoc("a", 9)).status().IsAlreadyExists());
}

TEST(WalTest, CheckpointTruncatesJournal) {
  WalDir dir("checkpoint");
  DurableDatabase ddb(dir.path());
  ASSERT_TRUE(ddb.Open().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ddb.Insert("meta", NamedDoc("p" + std::to_string(i), i)).ok());
  }
  EXPECT_GT(FileSize(ddb.wal_path()), 0u);
  ASSERT_TRUE(ddb.Checkpoint().ok());
  EXPECT_EQ(FileSize(ddb.wal_path()), 0u);
  EXPECT_GT(FileSize(ddb.snapshot_path()), 0u);

  // Post-checkpoint mutations land in the fresh journal; reopen restores
  // snapshot + tail.
  ASSERT_TRUE(ddb.Insert("meta", NamedDoc("tail", 99)).ok());
  DurableDatabase reopened(dir.path());
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.db().GetCollection("meta")->size(), 11u);
}

TEST(WalTest, TornTailDiscardedButPrefixRecovered) {
  WalDir dir("torn");
  {
    DurableDatabase ddb(dir.path());
    ASSERT_TRUE(ddb.Open().ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          ddb.Insert("meta", NamedDoc("p" + std::to_string(i), i)).ok());
    }
  }
  // Chop off the last 3 bytes: the final frame is torn.
  const std::string wal = dir.path() + "/wal.log";
  TruncateFile(wal, FileSize(wal) - 3);

  DurableDatabase ddb(dir.path());
  ASSERT_TRUE(ddb.Open().ok());
  EXPECT_TRUE(ddb.recovered_torn_tail());
  EXPECT_EQ(ddb.db().GetCollection("meta")->size(), 4u);  // prefix intact
}

TEST(WalTest, CorruptMiddleRecordStopsReplayAtPrefix) {
  WalDir dir("corrupt");
  {
    DurableDatabase ddb(dir.path());
    ASSERT_TRUE(ddb.Open().ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          ddb.Insert("meta", NamedDoc("p" + std::to_string(i), i)).ok());
    }
  }
  // Flip one payload byte in the middle of the file.
  const std::string wal = dir.path() + "/wal.log";
  std::FILE* f = std::fopen(wal.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, static_cast<long>(FileSize(wal) / 2), SEEK_SET);
  uint8_t b = 0;
  ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
  std::fseek(f, -1, SEEK_CUR);
  b ^= 0xFF;
  ASSERT_EQ(std::fwrite(&b, 1, 1, f), 1u);
  std::fclose(f);

  DurableDatabase ddb(dir.path());
  ASSERT_TRUE(ddb.Open().ok());
  EXPECT_TRUE(ddb.recovered_torn_tail());
  EXPECT_LT(ddb.db().GetCollection("meta")->size(), 5u);
}

TEST(WalTest, RemoveJournaled) {
  WalDir dir("remove");
  {
    DurableDatabase ddb(dir.path());
    ASSERT_TRUE(ddb.Open().ok());
    auto id = ddb.Insert("meta", NamedDoc("gone", 1));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(ddb.Insert("meta", NamedDoc("kept", 2)).ok());
    ASSERT_TRUE(ddb.Remove("meta", *id).ok());
  }
  DurableDatabase ddb(dir.path());
  ASSERT_TRUE(ddb.Open().ok());
  EXPECT_EQ(ddb.db().GetCollection("meta")->size(), 1u);
  EXPECT_TRUE(ddb.db()
                  .GetCollection("meta")
                  ->FindOneId(Filter::Eq("name", Value("kept")))
                  .ok());
}

TEST(WalTest, ReplayReassignsSameDocIds) {
  WalDir dir("ids");
  std::vector<DocId> original;
  {
    DurableDatabase ddb(dir.path());
    ASSERT_TRUE(ddb.Open().ok());
    for (int i = 0; i < 8; ++i) {
      auto id = ddb.Insert("meta", NamedDoc("p" + std::to_string(i), i));
      ASSERT_TRUE(id.ok());
      original.push_back(*id);
    }
    // Interleave removes so the id sequence has gaps.
    ASSERT_TRUE(ddb.Remove("meta", original[2]).ok());
    ASSERT_TRUE(ddb.Remove("meta", original[5]).ok());
  }
  DurableDatabase ddb(dir.path());
  ASSERT_TRUE(ddb.Open().ok());
  const Collection* meta = ddb.db().GetCollection("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->size(), 6u);
  for (size_t i = 0; i < original.size(); ++i) {
    if (i == 2 || i == 5) {
      EXPECT_EQ(meta->Get(original[i]), nullptr) << i;
    } else {
      ASSERT_NE(meta->Get(original[i]), nullptr) << i;
      EXPECT_EQ(meta->Get(original[i])->Get("n")->as_int64(),
                static_cast<int64_t>(i));
    }
  }
}

TEST(WalTest, AppendWithoutOpenFails) {
  WalWriter wal;
  WalRecord r;
  r.op = WalRecord::Op::kInsert;
  r.collection = "x";
  EXPECT_TRUE(wal.Append(r).IsFailedPrecondition());
}


// ---------------------------------------------------------------------------
// Aggregation pipeline
// ---------------------------------------------------------------------------

namespace {

/// A small metadata-like collection: country, labels array, cloud cover.
void FillAggCollection(Collection* coll) {
  struct Row {
    const char* country;
    std::vector<std::string> labels;
    double cloud;
  };
  const std::vector<Row> rows = {
      {"Portugal", {"Beaches", "Sea"}, 0.1},
      {"Portugal", {"Vineyards"}, 0.3},
      {"Portugal", {"Beaches", "Vineyards"}, 0.2},
      {"Austria", {"Pastures", "Forest"}, 0.6},
      {"Austria", {"Forest"}, 0.4},
      {"Finland", {"Forest", "Peatbogs"}, 0.8},
  };
  for (const Row& r : rows) {
    Document d;
    Document props;
    props.Set("country", Value(r.country));
    props.Set("labels", MakeStringArray(r.labels));
    props.Set("cloud", Value(r.cloud));
    d.Set("properties", Value(props));
    ASSERT_TRUE(coll->Insert(std::move(d)).ok());
  }
}

}  // namespace

TEST(PipelineTest, EmptyPipelinePassesEverything) {
  Collection coll("agg");
  FillAggCollection(&coll);
  auto out = Pipeline().Run(coll);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 6u);
}

TEST(PipelineTest, MatchFiltersDocuments) {
  Collection coll("agg");
  FillAggCollection(&coll);
  auto out = Pipeline()
                 .Match(Filter::Eq("properties.country", Value("Portugal")))
                 .Run(coll);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST(PipelineTest, UnwindExpandsArrays) {
  Collection coll("agg");
  FillAggCollection(&coll);
  auto out = Pipeline().Unwind("properties.labels").Run(coll);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 10u);  // total label occurrences
  // Every unwound document carries a scalar label.
  for (const Document& d : *out) {
    const Value* v = d.GetPath("properties.labels");
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->is_string());
  }
}

TEST(PipelineTest, GroupCountMatchesCountByArrayField) {
  Collection coll("agg");
  FillAggCollection(&coll);
  auto out = Pipeline()
                 .Unwind("properties.labels")
                 .Group("properties.labels", {Accumulator::Count("count")})
                 .Run(coll);
  ASSERT_TRUE(out.ok());
  const auto reference = coll.CountByArrayField("properties.labels",
                                                Filter::True());
  ASSERT_EQ(out->size(), reference.size());
  for (const Document& d : *out) {
    const std::string label = d.Get("_id")->as_string();
    ASSERT_TRUE(reference.count(label)) << label;
    EXPECT_EQ(static_cast<size_t>(d.Get("count")->as_int64()),
              reference.at(label))
        << label;
  }
}

TEST(PipelineTest, LabelStatisticsShapeSortedDescending) {
  Collection coll("agg");
  FillAggCollection(&coll);
  auto out = Pipeline()
                 .Unwind("properties.labels")
                 .Group("properties.labels", {Accumulator::Count("count")})
                 .Sort("count", /*ascending=*/false)
                 .Limit(2)
                 .Run(coll);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0].Get("_id")->as_string(), "Forest");  // 3 occurrences
  EXPECT_EQ((*out)[0].Get("count")->as_int64(), 3);
  EXPECT_GE((*out)[0].Get("count")->as_int64(),
            (*out)[1].Get("count")->as_int64());
}

TEST(PipelineTest, GroupSumAvgMinMax) {
  Collection coll("agg");
  FillAggCollection(&coll);
  auto out = Pipeline()
                 .Group("properties.country",
                        {Accumulator::Count("n"),
                         Accumulator::Sum("total_cloud", "properties.cloud"),
                         Accumulator::Avg("avg_cloud", "properties.cloud"),
                         Accumulator::Min("min_cloud", "properties.cloud"),
                         Accumulator::Max("max_cloud", "properties.cloud")})
                 .Sort("_id", /*ascending=*/true)
                 .Run(coll);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  const Document& austria = (*out)[0];
  EXPECT_EQ(austria.Get("_id")->as_string(), "Austria");
  EXPECT_EQ(austria.Get("n")->as_int64(), 2);
  EXPECT_NEAR(austria.Get("total_cloud")->as_double(), 1.0, 1e-9);
  EXPECT_NEAR(austria.Get("avg_cloud")->as_double(), 0.5, 1e-9);
  EXPECT_NEAR(austria.Get("min_cloud")->as_number(), 0.4, 1e-9);
  EXPECT_NEAR(austria.Get("max_cloud")->as_number(), 0.6, 1e-9);
}

TEST(PipelineTest, MatchAfterGroupFiltersGroups) {
  Collection coll("agg");
  FillAggCollection(&coll);
  auto out = Pipeline()
                 .Unwind("properties.labels")
                 .Group("properties.labels", {Accumulator::Count("count")})
                 .Match(Filter::Gte("count", Value(2)))
                 .Run(coll);
  ASSERT_TRUE(out.ok());
  // Labels occurring at least twice: Beaches (2), Vineyards (2), Forest (3).
  EXPECT_EQ(out->size(), 3u);
}

TEST(PipelineTest, ProjectKeepsOnlyListedFields) {
  Collection coll("agg");
  FillAggCollection(&coll);
  auto out = Pipeline()
                 .Group("properties.country", {Accumulator::Count("n")})
                 .Project({"_id"})
                 .Run(coll);
  ASSERT_TRUE(out.ok());
  for (const Document& d : *out) {
    EXPECT_EQ(d.size(), 1u);
    EXPECT_TRUE(d.Has("_id"));
  }
}

TEST(PipelineTest, GroupMissingPathGroupsUnderNull) {
  Collection coll("agg");
  Document with, without;
  with.Set("k", Value("x"));
  ASSERT_TRUE(coll.Insert(with).ok());
  ASSERT_TRUE(coll.Insert(without).ok());
  auto out =
      Pipeline().Group("k", {Accumulator::Count("n")}).Sort("_id").Run(coll);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_TRUE((*out)[0].Get("_id")->is_null());
}

TEST(PipelineTest, EmptyOutputFieldRejected) {
  Collection coll("agg");
  FillAggCollection(&coll);
  auto out = Pipeline().Group("properties.country",
                              {Accumulator::Count("")}).Run(coll);
  EXPECT_TRUE(out.status().IsInvalidArgument());
}

TEST(PipelineTest, SetDottedPathCreatesNestedDocs) {
  Document d;
  SetDottedPath(&d, "a.b.c", Value(7));
  const Value* v = d.GetPath("a.b.c");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->as_int64(), 7);
  // Overwriting a leaf keeps siblings.
  SetDottedPath(&d, "a.b.d", Value(8));
  EXPECT_EQ(d.GetPath("a.b.c")->as_int64(), 7);
  EXPECT_EQ(d.GetPath("a.b.d")->as_int64(), 8);
}


// ---------------------------------------------------------------------------
// Filter algebra laws (property tests)
// ---------------------------------------------------------------------------

namespace {

/// A random document over a small vocabulary so predicates hit often.
Document RandomDoc(Rng* rng) {
  Document d;
  d.Set("kind", Value(static_cast<int64_t>(rng->UniformInt(4u))));
  d.Set("score", Value(static_cast<double>(rng->UniformInt(100u)) / 10.0));
  if (rng->UniformInt(10u) < 8) {
    std::vector<Value> tags;
    const char* vocab[] = {"a", "b", "c", "d"};
    for (int t = 0; t < 3; ++t) {
      if (rng->UniformInt(2u)) tags.emplace_back(vocab[rng->UniformInt(4u)]);
    }
    d.Set("tags", Value(std::move(tags)));
  }
  return d;
}

/// A random leaf predicate over the RandomDoc schema.
Filter RandomLeaf(Rng* rng) {
  switch (rng->UniformInt(6u)) {
    case 0: return Filter::Eq("kind", Value(static_cast<int64_t>(rng->UniformInt(4u))));
    case 1: return Filter::Gt("score", Value(static_cast<double>(rng->UniformInt(10u))));
    case 2: return Filter::Lte("score", Value(static_cast<double>(rng->UniformInt(10u))));
    case 3: return Filter::Eq("tags", Value("b"));
    case 4: return Filter::Exists("tags");
    default: return Filter::In("tags", {Value("a"), Value("c")});
  }
}

}  // namespace

class FilterAlgebraTest : public ::testing::TestWithParam<int> {};

TEST_P(FilterAlgebraTest, BooleanLawsHoldOnRandomDocs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  for (int trial = 0; trial < 200; ++trial) {
    const Document doc = RandomDoc(&rng);
    const Filter a = RandomLeaf(&rng);
    const Filter b = RandomLeaf(&rng);
    const bool va = a.Matches(doc);
    const bool vb = b.Matches(doc);

    // Double negation.
    EXPECT_EQ(Filter::Not(Filter::Not(a)).Matches(doc), va);
    // De Morgan, both directions.
    EXPECT_EQ(Filter::Not(Filter::And({a, b})).Matches(doc),
              Filter::Or({Filter::Not(a), Filter::Not(b)}).Matches(doc));
    EXPECT_EQ(Filter::Not(Filter::Or({a, b})).Matches(doc),
              Filter::And({Filter::Not(a), Filter::Not(b)}).Matches(doc));
    // And/Or truth tables against direct evaluation.
    EXPECT_EQ(Filter::And({a, b}).Matches(doc), va && vb);
    EXPECT_EQ(Filter::Or({a, b}).Matches(doc), va || vb);
    // Identity elements.
    EXPECT_EQ(Filter::And({a, Filter::True()}).Matches(doc), va);
    EXPECT_EQ(Filter::Or({a, Filter::Not(Filter::True())}).Matches(doc), va);
  }
}

TEST_P(FilterAlgebraTest, PlannerAgreesWithCollectionScan) {
  // The planner (indexed path) and a COLLSCAN must produce identical
  // result sets for every random conjunctive query.
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 9);
  Collection indexed("indexed");
  Collection plain("plain");
  ASSERT_TRUE(indexed.CreateMultikeyIndex("tags").ok());
  ASSERT_TRUE(indexed.CreateRangeIndex("score").ok());
  ASSERT_TRUE(indexed.CreateHashIndex("kind").ok());
  for (int i = 0; i < 400; ++i) {
    const Document doc = RandomDoc(&rng);
    ASSERT_TRUE(indexed.Insert(doc).ok());
    ASSERT_TRUE(plain.Insert(doc).ok());
  }
  for (int trial = 0; trial < 50; ++trial) {
    const Filter query = Filter::And({RandomLeaf(&rng), RandomLeaf(&rng)});
    QueryStats indexed_stats, plain_stats;
    const auto from_indexed = indexed.FindIds(query, 0, &indexed_stats);
    const auto from_plain = plain.FindIds(query, 0, &plain_stats);
    EXPECT_EQ(from_indexed, from_plain) << query.ToString();
    EXPECT_EQ(plain_stats.plan, "COLLSCAN");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterAlgebraTest, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Field histograms and the count-only cardinality estimator
// ---------------------------------------------------------------------------

TEST(FieldHistogramTest, AddRemoveAndRangeEstimates) {
  FieldHistogram hist(8);
  for (int i = 0; i < 100; ++i) hist.Add(i);
  EXPECT_EQ(hist.total(), 100u);
  // Upper bound that tightens with the interval; unbounded = everything.
  EXPECT_EQ(hist.EstimateRange(std::nullopt, std::nullopt), 100u);
  EXPECT_GE(hist.EstimateRange(90.0, std::nullopt), 10u);
  EXPECT_LT(hist.EstimateRange(90.0, std::nullopt), 60u);
  EXPECT_EQ(hist.EstimateRange(200.0, 300.0), 0u);
  EXPECT_EQ(hist.EstimateRange(std::nullopt, -1.0), 0u);
  for (int i = 0; i < 50; ++i) hist.Remove(i);
  EXPECT_EQ(hist.total(), 50u);
  EXPECT_EQ(hist.EstimateRange(std::nullopt, std::nullopt), 50u);
}

TEST(FieldHistogramTest, WidensToCoverAnyFiniteRange) {
  FieldHistogram hist(4);
  hist.Add(0.5);
  hist.Add(1e6);     // forces many doublings
  hist.Add(-2000.0);  // and a widening below the anchor
  EXPECT_EQ(hist.total(), 3u);
  EXPECT_EQ(hist.EstimateRange(std::nullopt, std::nullopt), 3u);
  // No count is lost in the re-bucketing.
  EXPECT_GE(hist.EstimateRange(-3000.0, 0.0), 1u);
  EXPECT_GE(hist.EstimateRange(900000.0, 1.1e6), 1u);
}

TEST(EstimateMatchesTest, EqualityEstimateEqualsPostingListLength) {
  Collection coll("metadata");
  ASSERT_TRUE(coll.CreateHashIndex("name").ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        coll.Insert(DatedDoc("p" + std::to_string(i % 4), "2017-06-01", i))
            .ok());
  }
  std::string plan;
  EXPECT_EQ(coll.EstimateMatches(Filter::Eq("name", Value("p1")), &plan), 10u);
  EXPECT_EQ(plan, "IXSCAN(hash:name)");
  EXPECT_EQ(coll.EstimateMatches(Filter::Eq("name", Value("nope")), &plan),
            0u);
}

TEST(EstimateMatchesTest, RangeFiltersUseTheHistogram) {
  Collection coll("metadata");
  ASSERT_TRUE(coll.CreateRangeIndex("properties.size").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        coll.Insert(DatedDoc("p" + std::to_string(i), "2017-06-01", i)).ok());
  }
  const size_t truth =
      coll.Count(Filter::Gte("properties.size", Value(180)));
  std::string plan;
  const size_t estimate =
      coll.EstimateMatches(Filter::Gte("properties.size", Value(180)), &plan);
  EXPECT_EQ(plan, "HISTOGRAM(properties.size)");
  EXPECT_GE(estimate, truth);            // upper bound...
  EXPECT_LE(estimate, coll.size());      // ...capped at the collection
  EXPECT_LT(estimate, coll.size() / 2);  // and far tighter than COLLSCAN

  // Conjunctions combine bounds into one interval estimate.
  const size_t window = coll.EstimateMatches(
      Filter::And({Filter::Gte("properties.size", Value(100)),
                   Filter::Lt("properties.size", Value(120))}),
      &plan);
  EXPECT_EQ(plan, "HISTOGRAM(properties.size)");
  EXPECT_GE(window, 20u);
  EXPECT_LT(window, 100u);
}

TEST(EstimateMatchesTest, HistogramTracksRemovalsAndUpdates) {
  Collection coll("metadata");
  ASSERT_TRUE(coll.CreateRangeIndex("properties.size").ok());
  std::vector<DocId> ids;
  for (int i = 0; i < 50; ++i) {
    auto id = coll.Insert(DatedDoc("p" + std::to_string(i), "2017-06-01", i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_NE(coll.HistogramFor("properties.size"), nullptr);
  EXPECT_EQ(coll.HistogramFor("properties.size")->total(), 50u);
  for (int i = 0; i < 25; ++i) ASSERT_TRUE(coll.Remove(ids[i]).ok());
  EXPECT_EQ(coll.HistogramFor("properties.size")->total(), 25u);
  ASSERT_TRUE(
      coll.Update(ids[30], DatedDoc("p30", "2017-06-01", 3000)).ok());
  EXPECT_EQ(coll.HistogramFor("properties.size")->total(), 25u);
  EXPECT_GE(coll.EstimateMatches(
                Filter::Gte("properties.size", Value(2000))),
            1u);
}

TEST(EstimateMatchesTest, NonNumericRangeKeysFallBackToIntervalCount) {
  Collection coll("metadata");
  ASSERT_TRUE(coll.CreateRangeIndex("properties.acquisition_date").ok());
  for (int d = 1; d <= 20; ++d) {
    char date[16];
    std::snprintf(date, sizeof(date), "2017-06-%02d", d);
    ASSERT_TRUE(coll.Insert(DatedDoc("p" + std::to_string(d), date, d)).ok());
  }
  std::string plan;
  const size_t estimate = coll.EstimateMatches(
      Filter::And(
          {Filter::Gte("properties.acquisition_date", Value("2017-06-05")),
           Filter::Lte("properties.acquisition_date", Value("2017-06-08"))}),
      &plan);
  // String keys have no histogram; the B+-tree interval count (no id
  // materialisation) answers instead.
  EXPECT_EQ(plan, "IXSCAN(range:properties.acquisition_date)");
  EXPECT_EQ(estimate, 4u);
}

TEST(FieldHistogramTest, HugeValuesClampInsteadOfOverflowing) {
  FieldHistogram hist(8);
  hist.Add(1.0);
  hist.Add(1e300);   // |v/width| would overflow int64 without clamping
  hist.Add(-1e300);
  EXPECT_EQ(hist.total(), 3u);
  EXPECT_EQ(hist.EstimateRange(std::nullopt, std::nullopt), 3u);
}

TEST(EstimateMatchesTest, MixedTypeRangePathSkipsHistogram) {
  // Value's type order ranks strings above every number, so Gt(number)
  // matches string entries too; with strings on the path the histogram
  // (numbers only) must NOT answer, or the upper bound would break.
  Collection coll("metadata");
  ASSERT_TRUE(coll.CreateRangeIndex("properties.size").ok());
  ASSERT_TRUE(coll.Insert(DatedDoc("n", "2017-06-01", 5)).ok());
  for (int i = 0; i < 9; ++i) {
    Document d;
    d.Set("name", Value("s" + std::to_string(i)));
    Document props;
    props.Set("size", Value(std::string("large")));
    d.Set("properties", Value(props));
    ASSERT_TRUE(coll.Insert(std::move(d)).ok());
  }
  const size_t truth = coll.Count(Filter::Gt("properties.size", Value(10)));
  ASSERT_EQ(truth, 9u);  // every string doc matches
  std::string plan;
  const size_t estimate =
      coll.EstimateMatches(Filter::Gt("properties.size", Value(10)), &plan);
  EXPECT_EQ(plan, "IXSCAN(range:properties.size)");  // not HISTOGRAM
  EXPECT_GE(estimate, truth);
}

TEST(EstimateMatchesTest, ZeroConjunctShortCircuits) {
  Collection coll("metadata");
  ASSERT_TRUE(coll.CreateHashIndex("name").ok());
  ASSERT_TRUE(coll.CreateRangeIndex("properties.size").ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        coll.Insert(DatedDoc("p" + std::to_string(i), "2017-06-01", i)).ok());
  }
  std::string plan;
  EXPECT_EQ(coll.EstimateMatches(
                Filter::And({Filter::Eq("name", Value("missing")),
                             Filter::Gte("properties.size", Value(0))}),
                &plan),
            0u);
  EXPECT_EQ(plan, "IXSCAN(hash:name)");
}

TEST(EstimateMatchesTest, UnindexedFilterFallsBackToCollectionSize) {
  Collection coll("metadata");
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        coll.Insert(DatedDoc("p" + std::to_string(i), "2017-06-01", i)).ok());
  }
  std::string plan;
  EXPECT_EQ(coll.EstimateMatches(Filter::Eq("country", Value("AT")), &plan),
            12u);
  EXPECT_EQ(plan, "COLLSCAN");
}

}  // namespace
}  // namespace agoraeo::docstore
