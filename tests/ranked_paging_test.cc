#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "index/bk_tree.h"
#include "index/frontier.h"
#include "index/hamming_table.h"
#include "index/linear_scan.h"
#include "index/segmented_index.h"
#include "index/sharded_index.h"

namespace agoraeo::index {
namespace {

BinaryCode RandomCode(size_t bits, Rng* rng) {
  BinaryCode code(bits);
  for (size_t i = 0; i < bits; ++i) code.SetBit(i, rng->Bernoulli(0.5));
  return code;
}

/// Drains a frontier completely, pulling in chunks of `chunk`.
std::vector<SearchResult> Drain(HitFrontier* frontier, size_t chunk) {
  std::vector<SearchResult> out;
  while (true) {
    const size_t got = frontier->Next(chunk, &out);
    if (got == 0) break;
  }
  // Exhaustion is sticky.
  std::vector<SearchResult> extra;
  EXPECT_EQ(frontier->Next(chunk, &extra), 0u);
  EXPECT_TRUE(extra.empty());
  return out;
}

struct IndexVariant {
  std::string name;
  std::function<std::unique_ptr<HammingIndex>()> make;
};

/// Every index shape the frontier contract must hold on: the four leaf
/// kinds, a segment-structured wrapper (sealing every 64 items), and a
/// 4-shard partition of each kind.
std::vector<IndexVariant> AllVariants() {
  std::vector<IndexVariant> out;
  const std::vector<
      std::pair<std::string, std::function<std::unique_ptr<HammingIndex>()>>>
      kinds = {
          {"LinearScan", [] { return std::make_unique<LinearScanIndex>(); }},
          {"HashTable", [] { return std::make_unique<HammingHashTable>(); }},
          {"MultiIndex",
           [] { return std::make_unique<MultiIndexHashing>(4); }},
          {"BkTree", [] { return std::make_unique<BkTree>(); }},
      };
  for (const auto& [name, make] : kinds) {
    out.push_back({name, make});
    out.push_back({"Segmented(" + name + ")", [make = make] {
                     return std::make_unique<SegmentedHammingIndex>(make, 64);
                   }});
    out.push_back({"Sharded4(" + name + ")", [make = make] {
                     return std::make_unique<ShardedHammingIndex>(4, make, 64);
                   }});
  }
  return out;
}

class FrontierExactnessTest : public ::testing::Test {
 protected:
  static constexpr size_t kBits = 64;
  static constexpr size_t kItems = 400;

  void Populate(HammingIndex* index, Rng* rng) {
    query_ = RandomCode(kBits, rng);
    for (size_t i = 0; i < kItems; ++i) {
      // Mix of near and far codes (plus exact duplicates of the query)
      // so every distance bucket from 0 outward is exercised.
      BinaryCode code = rng->Bernoulli(0.05) ? query_ : RandomCode(kBits, rng);
      ASSERT_TRUE(index->Add(i, code).ok());
    }
  }

  BinaryCode query_;
};

TEST_F(FrontierExactnessTest, FullRankedMatchesEagerKnn) {
  for (const IndexVariant& variant : AllVariants()) {
    SCOPED_TRACE(variant.name);
    Rng rng(7);
    auto index = variant.make();
    Populate(index.get(), &rng);
    const std::vector<SearchResult> eager =
        index->KnnSearch(query_, index->size());
    for (size_t chunk : {1u, 7u, 50u, 1000u}) {
      auto frontier = index->OpenFrontier(query_, FrontierOptions{});
      EXPECT_EQ(Drain(frontier.get(), chunk), eager) << "chunk=" << chunk;
    }
  }
}

TEST_F(FrontierExactnessTest, RadiusBoundedMatchesEagerRadius) {
  for (const IndexVariant& variant : AllVariants()) {
    SCOPED_TRACE(variant.name);
    Rng rng(11);
    auto index = variant.make();
    Populate(index.get(), &rng);
    for (uint32_t radius : {0u, 3u, 12u, 28u, 64u}) {
      const std::vector<SearchResult> eager =
          index->RadiusSearch(query_, radius);
      FrontierOptions options;
      options.radius = radius;
      auto frontier = index->OpenFrontier(query_, options);
      EXPECT_EQ(Drain(frontier.get(), 13), eager) << "radius=" << radius;
    }
  }
}

TEST_F(FrontierExactnessTest, RestrictedMatchesEagerIn) {
  for (const IndexVariant& variant : AllVariants()) {
    SCOPED_TRACE(variant.name);
    Rng rng(13);
    auto index = variant.make();
    Populate(index.get(), &rng);
    // A sparse and a dense allowlist straddle the restricted-scan
    // crossovers; both include some ids the index does not hold.
    for (size_t allow_count : {kItems / 10, (kItems * 9) / 10}) {
      std::vector<ItemId> ids;
      for (size_t i = 0; i < allow_count; ++i) {
        ids.push_back(static_cast<ItemId>(
            rng.UniformInt(static_cast<uint32_t>(kItems + 50))));
      }
      const CandidateSet allowed(std::move(ids));
      {
        FrontierOptions options;
        options.radius = 20;
        options.allowed = &allowed;
        auto frontier = index->OpenFrontier(query_, options);
        EXPECT_EQ(Drain(frontier.get(), 9),
                  index->RadiusSearchIn(query_, 20, allowed))
            << "allow=" << allow_count;
      }
      {
        FrontierOptions options;
        options.allowed = &allowed;
        auto frontier = index->OpenFrontier(query_, options);
        EXPECT_EQ(Drain(frontier.get(), 9),
                  index->KnnSearchIn(query_, index->size(), allowed))
            << "allow=" << allow_count;
      }
    }
  }
}

TEST_F(FrontierExactnessTest, EmptyIndexYieldsEmptyFrontier) {
  for (const IndexVariant& variant : AllVariants()) {
    SCOPED_TRACE(variant.name);
    auto index = variant.make();
    auto frontier =
        index->OpenFrontier(BinaryCode(kBits), FrontierOptions{});
    std::vector<SearchResult> out;
    EXPECT_EQ(frontier->Next(10, &out), 0u);
    EXPECT_TRUE(out.empty());
  }
}

// An open frontier is a snapshot: ingest, seals, and compactions after
// the open must not change what it streams — this is what lets a paging
// handle live across concurrent writes.
TEST(FrontierSnapshotTest, SegmentedFrontierIgnoresLaterIngest) {
  Rng rng(17);
  SegmentedHammingIndex index(
      [] { return std::make_unique<LinearScanIndex>(); },
      /*seal_threshold=*/32, /*compact_threshold=*/2);
  const BinaryCode query = RandomCode(64, &rng);
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(index.Add(i, RandomCode(64, &rng)).ok());
  }
  const std::vector<SearchResult> before = index.KnnSearch(query, 100);

  auto frontier = index.OpenFrontier(query, FrontierOptions{});
  std::vector<SearchResult> streamed;
  frontier->Next(10, &streamed);  // partially drained before the writes

  // Enough ingest to force seals AND a compaction of the very segments
  // the frontier is pinned to.
  for (size_t i = 100; i < 400; ++i) {
    ASSERT_TRUE(index.Add(i, RandomCode(64, &rng)).ok());
  }
  ASSERT_TRUE(index.Seal().ok());

  while (frontier->Next(64, &streamed) > 0) {
  }
  EXPECT_EQ(streamed, before);
  EXPECT_EQ(index.size(), 400u);
}

TEST(FrontierSnapshotTest, ShardedFrontierIgnoresLaterIngest) {
  Rng rng(19);
  ShardedHammingIndex index(
      4, [] { return std::make_unique<HammingHashTable>(); },
      /*seal_threshold=*/16);
  const BinaryCode query = RandomCode(64, &rng);
  for (size_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(index.Add(i, RandomCode(64, &rng)).ok());
  }
  const std::vector<SearchResult> before = index.KnnSearch(query, 120);

  auto frontier = index.OpenFrontier(query, FrontierOptions{});
  std::vector<SearchResult> streamed;
  frontier->Next(7, &streamed);
  for (size_t i = 120; i < 240; ++i) {
    ASSERT_TRUE(index.Add(i, RandomCode(64, &rng)).ok());
  }
  while (frontier->Next(33, &streamed) > 0) {
  }
  // The sealed portion is pinned; only what was still in mutable
  // segments at open time is snapshotted eagerly — either way the
  // stream must equal the pre-ingest eager ranking.
  EXPECT_EQ(streamed, before);
}

// ---------------------------------------------------------------------------
// Frontier building blocks
// ---------------------------------------------------------------------------

TEST(MergingFrontierTest, MergesDisjointChildrenInCanonicalOrder) {
  MergingFrontier merge;
  merge.AddChild(std::make_unique<MaterializedFrontier>(
      std::vector<SearchResult>{{1, 0}, {5, 2}, {7, 2}, {9, 9}}));
  merge.AddChild(std::make_unique<MaterializedFrontier>(
      std::vector<SearchResult>{{2, 1}, {6, 2}, {8, 3}}));
  merge.AddChild(
      std::make_unique<MaterializedFrontier>(std::vector<SearchResult>{}));
  const std::vector<SearchResult> expected = {
      {1, 0}, {2, 1}, {5, 2}, {6, 2}, {7, 2}, {8, 3}, {9, 9}};
  EXPECT_EQ(Drain(&merge, 2), expected);
}

TEST(DistanceBucketFrontierTest, SortsBucketsLazilyById) {
  std::vector<std::vector<SearchResult>> buckets(4);
  buckets[1] = {{9, 1}, {3, 1}, {7, 1}};  // deliberately unsorted
  buckets[3] = {{2, 3}, {1, 3}};
  DistanceBucketFrontier frontier(std::move(buckets));
  const std::vector<SearchResult> expected = {
      {3, 1}, {7, 1}, {9, 1}, {1, 3}, {2, 3}};
  EXPECT_EQ(Drain(&frontier, 1), expected);
}

}  // namespace
}  // namespace agoraeo::index

// ===========================================================================
// Part 2: ranked direct access at the EarthQube layer — resumable cursors,
// the handle registry, and fallback discipline.
// ===========================================================================

#include <chrono>
#include <set>
#include <thread>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "earthqube/earthqube.h"
#include "earthqube/ranked_access.h"
#include "milan/milan_model.h"
#include "netsvc/earthqube_service.h"

namespace agoraeo::earthqube {

/// Test-only access to a handle's buffered state (friend of RankedHandle).
struct RankedAccessTestPeer {
  static std::vector<CbirResult>& survivors(RankedHandle* handle) {
    return handle->survivors_;
  }
};

namespace {

// ---------------------------------------------------------------------------
// RankedAccess registry unit tests (injectable clock, no EarthQube)
// ---------------------------------------------------------------------------

class RankedAccessTest : public ::testing::Test {
 protected:
  RankedAccessConfig Config() {
    RankedAccessConfig config;
    config.clock = [this] { return now_; };
    return config;
  }

  std::shared_ptr<RankedHandle> Handle(const std::string& id, uint64_t epoch) {
    return std::make_shared<RankedHandle>(id, "fp:" + id, epoch,
                                          RankedHandle::Kind::kPlain);
  }

  std::chrono::steady_clock::time_point now_{std::chrono::steady_clock::now()};
};

TEST_F(RankedAccessTest, HandleIdsAreDeterministicFnv) {
  // FNV-1a 64 offset basis: the id of the empty fingerprint is pinned so
  // cursors stay portable across builds and processes.
  EXPECT_EQ(RankedAccess::HandleIdFor(""), "cbf29ce484222325");
  EXPECT_EQ(RankedAccess::HandleIdFor("abc"), RankedAccess::HandleIdFor("abc"));
  EXPECT_NE(RankedAccess::HandleIdFor("abc"), RankedAccess::HandleIdFor("abd"));
  EXPECT_EQ(RankedAccess::HandleIdFor("x").size(), 16u);
}

TEST_F(RankedAccessTest, TtlExpiresHandles) {
  auto config = Config();
  config.handle_ttl = std::chrono::milliseconds(1000);
  RankedAccess access(config);
  access.Register(Handle("a", 7));
  EXPECT_NE(access.Get("a", "fp:a", 7), nullptr);
  now_ += std::chrono::milliseconds(1001);
  EXPECT_EQ(access.Get("a", "fp:a", 7), nullptr);
  const RankedAccessStats stats = access.Stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.handles, 0u);
}

TEST_F(RankedAccessTest, EpochBumpDropsHandles) {
  RankedAccess access(Config());
  access.Register(Handle("a", 7));
  EXPECT_EQ(access.Get("a", "fp:a", 8), nullptr);
  const RankedAccessStats stats = access.Stats();
  EXPECT_EQ(stats.epoch_drops, 1u);
  // The stale handle was erased, not just skipped: the next lookup under
  // ANY epoch is a plain miss.
  EXPECT_EQ(access.Get("a", "fp:a", 8), nullptr);
  EXPECT_EQ(access.Stats().misses, 1u);
}

TEST_F(RankedAccessTest, CapacityEvictsLeastRecentlyTouched) {
  auto config = Config();
  config.handle_capacity = 2;
  RankedAccess access(config);
  access.Register(Handle("a", 1));
  access.Register(Handle("b", 1));
  // Refresh a; b is now coldest.
  EXPECT_NE(access.Get("a", "fp:a", 1), nullptr);
  access.Register(Handle("c", 1));
  EXPECT_EQ(access.Get("b", "fp:b", 1), nullptr);
  EXPECT_NE(access.Get("a", "fp:a", 1), nullptr);
  EXPECT_NE(access.Get("c", "fp:c", 1), nullptr);
  EXPECT_EQ(access.Stats().evicted, 1u);
}

TEST_F(RankedAccessTest, ByteBudgetEvictsColderHandles) {
  auto config = Config();
  config.handle_max_bytes = 8192;
  RankedAccess access(config);
  const auto fat = [this](const std::string& id) {
    auto handle = Handle(id, 1);
    auto& survivors = RankedAccessTestPeer::survivors(handle.get());
    for (int i = 0; i < 100; ++i) {
      survivors.push_back({"patch_name_padding_padding_" + std::to_string(i),
                           static_cast<uint32_t>(i)});
    }
    return handle;
  };
  access.Register(fat("a"));
  EXPECT_NE(access.Get("a", "fp:a", 1), nullptr);
  access.Register(fat("b"));  // over budget together: a (colder) goes
  EXPECT_EQ(access.Get("a", "fp:a", 1), nullptr);
  EXPECT_NE(access.Get("b", "fp:b", 1), nullptr);
  EXPECT_GE(access.Stats().evicted, 1u);
  // The survivor alone may exceed the budget (the hottest handle is
  // never evicted on its own behalf), but it must be the ONLY resident.
  EXPECT_EQ(access.Stats().handles, 1u);
}

TEST_F(RankedAccessTest, RegisterIsFirstWinsWithinAnEpoch) {
  RankedAccess access(Config());
  auto first = Handle("a", 3);
  auto second = Handle("a", 3);
  EXPECT_EQ(access.Register(first), first);
  // A racing second registration converges on the resident handle.
  EXPECT_EQ(access.Register(second), first);
  // A FRESH epoch replaces the now-stale resident.
  auto fresh = Handle("a", 4);
  EXPECT_EQ(access.Register(fresh), fresh);
  EXPECT_EQ(access.Get("a", "fp:a", 4), fresh);
}

TEST_F(RankedAccessTest, FingerprintCollisionIsAMissNotACrossServe) {
  // Two queries whose fingerprints collide under the 64-bit FNV id
  // must never serve each other's pinned ranking: a lookup with the
  // other query's fingerprint is a plain miss and the resident stays.
  RankedAccess access(Config());
  access.Register(std::make_shared<RankedHandle>(
      "a", "fp:victim", 1, RankedHandle::Kind::kPlain));
  EXPECT_EQ(access.Get("a", "fp:attacker", 1), nullptr);
  EXPECT_EQ(access.Stats().misses, 1u);
  EXPECT_NE(access.Get("a", "fp:victim", 1), nullptr);
  EXPECT_EQ(access.Stats().epoch_drops, 0u);
}

TEST_F(RankedAccessTest, FingerprintCollisionRegistersEphemerally) {
  // A colliding registration neither evicts the resident ranking nor
  // converges on it: the new handle comes back unregistered.
  RankedAccess access(Config());
  auto resident = std::make_shared<RankedHandle>(
      "a", "fp:victim", 1, RankedHandle::Kind::kPlain);
  EXPECT_EQ(access.Register(resident), resident);
  auto collider = std::make_shared<RankedHandle>(
      "a", "fp:attacker", 1, RankedHandle::Kind::kPlain);
  EXPECT_EQ(access.Register(collider), collider);
  EXPECT_EQ(access.Stats().handles, 1u);
  EXPECT_EQ(access.Get("a", "fp:victim", 1), resident);
}

// ---------------------------------------------------------------------------
// EarthQube-level cursor walks: byte parity, fallback, concurrency
// ---------------------------------------------------------------------------

/// A 400-patch system with an attached CBIR index of the given kind and
/// shard count.  The response cache is disabled so every page walks the
/// ranked-access path (replay flags would otherwise differ between the
/// warm and cold serialisations).
class PagingFixture {
 public:
  explicit PagingFixture(CbirIndexKind kind, size_t num_shards = 1) {
    bigearthnet::ArchiveConfig config;
    config.num_patches = 400;
    config.seed = 17;
    generator_ = std::make_unique<bigearthnet::ArchiveGenerator>(config);
    auto archive = generator_->Generate();
    if (!archive.ok()) std::abort();
    archive_ = std::move(archive).value();

    features_ = extractor_.ExtractArchive(archive_, *generator_, 2);
    EarthQubeConfig system_config;
    system_config.cache.enable_response_cache = false;
    system_ = std::make_unique<EarthQube>(system_config);
    if (!system_->IngestArchive(archive_).ok()) std::abort();

    milan::MilanConfig mconfig;
    mconfig.feature_dim = bigearthnet::kFeatureDim;
    mconfig.hidden1 = 32;
    mconfig.hidden2 = 16;
    mconfig.hash_bits = 32;
    mconfig.dropout = 0.0f;
    CbirConfig cbir_config;
    cbir_config.index_kind = kind;
    cbir_config.num_shards = num_shards;
    auto cbir = std::make_unique<CbirService>(
        std::make_unique<milan::MilanModel>(mconfig), &extractor_,
        cbir_config);
    std::vector<std::string> names;
    for (const auto& p : archive_.patches) names.push_back(p.name);
    if (!cbir->AddImages(names, features_).ok()) std::abort();
    system_->AttachCbir(std::move(cbir));
  }

  EarthQube& system() { return *system_; }
  const bigearthnet::Archive& archive() const { return archive_; }
  const Tensor& features() const { return features_; }

 private:
  std::unique_ptr<bigearthnet::ArchiveGenerator> generator_;
  bigearthnet::Archive archive_;
  bigearthnet::FeatureExtractor extractor_;
  Tensor features_;
  std::unique_ptr<EarthQube> system_;
};

std::string Serialize(const QueryResponse& response) {
  return netsvc::EarthQubeService::QueryResponseToJson(response);
}

/// Walks every page of `base` twice per page: once resuming the pinned
/// handle (warm) and once from scratch (handles cleared), asserting the
/// serialised wire bytes are identical.  Returns the concatenated hit
/// names of the whole walk.
std::vector<std::string> AuditWalk(EarthQube& system, QueryRequest base) {
  std::vector<std::string> names;
  const uint64_t hits_before = system.ranked_access()->Stats().hits;
  size_t pages = 0;
  for (size_t page = 0; page < 64; ++page) {
    QueryRequest paged = base;
    paged.page = page;
    auto warm = system.Execute(paged);
    EXPECT_TRUE(warm.ok()) << warm.status().message();
    if (!warm.ok()) break;
    EXPECT_TRUE(warm->windowed);
    // Cold re-execution of exactly this page: drop every handle first.
    system.ranked_access()->Clear();
    auto cold = system.Execute(paged);
    EXPECT_TRUE(cold.ok()) << cold.status().message();
    if (!cold.ok()) break;
    EXPECT_EQ(Serialize(*warm), Serialize(*cold))
        << "page " << page << " resumed != re-executed";
    for (const CbirResult& hit : warm->hits) names.push_back(hit.patch_name);
    ++pages;
    if (warm->cursor.empty()) break;
  }
  EXPECT_GT(pages, 2u) << "walk too shallow to exercise resumption";
  // Pages 1.. of the warm walk resumed the handle registered by the
  // previous page's cold execution.
  EXPECT_GE(system.ranked_access()->Stats().hits - hits_before, pages - 1);
  return names;
}

TEST(RankedPagingAuditTest, ResumedPagesMatchReExecutionAcrossVariants) {
  const std::vector<std::pair<std::string, CbirIndexKind>> kinds = {
      {"HashTable", CbirIndexKind::kHashTable},
      {"MultiIndex", CbirIndexKind::kMultiIndex},
      {"LinearScan", CbirIndexKind::kLinearScan},
      {"BkTree", CbirIndexKind::kBkTree},
  };
  for (const auto& [kind_name, kind] : kinds) {
    for (size_t shards : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE(kind_name + "/shards=" + std::to_string(shards));
      PagingFixture fixture(kind, shards);
      EarthQube& system = fixture.system();
      const std::string& subject = fixture.archive().patches[0].name;

      // Plain CBIR, radius mode (limit 0 = unlimited, so the restricted
      // walk below is provably a subset of this one).
      QueryRequest plain;
      plain.similarity = SimilaritySpec::NameRadius(subject, 9);
      plain.page_size = 7;
      const std::vector<std::string> radius_walk = AuditWalk(system, plain);

      // Plain CBIR, k-NN mode, hits-only projection.
      QueryRequest knn;
      knn.similarity = SimilaritySpec::NameKnn(subject, 33);
      knn.projection = Projection::kHitsOnly;
      knn.page_size = 6;
      AuditWalk(system, knn);

      // Restricted (pre-filter) hybrid.
      EarthQubeQuery panel;
      panel.satellites = {"S2A"};
      QueryRequest restricted;
      restricted.panel = panel;
      restricted.similarity = SimilaritySpec::NameRadius(subject, 9);
      restricted.planner = PlannerMode::kForcePreFilter;
      restricted.page_size = 5;
      const std::vector<std::string> restricted_walk =
          AuditWalk(system, restricted);

      // Post-filter hybrid over the same shape: same rows must survive,
      // discovered by joining the raw ranking instead.
      QueryRequest post = restricted;
      post.planner = PlannerMode::kForcePostFilter;
      const std::vector<std::string> post_walk = AuditWalk(system, post);
      EXPECT_EQ(restricted_walk, post_walk)
          << "pre- and post-filter walks disagree on the ranking";

      // The restricted walk is a subsequence of the plain walk's names.
      const std::set<std::string> plain_names(radius_walk.begin(),
                                              radius_walk.end());
      for (const std::string& name : restricted_walk) {
        EXPECT_TRUE(plain_names.count(name)) << name;
      }
    }
  }
}

TEST(RankedPagingAuditTest, IngestMidPaginationFallsBackToReExecution) {
  PagingFixture fixture(CbirIndexKind::kHashTable);
  EarthQube& system = fixture.system();
  const auto& patch0 = fixture.archive().patches[0];

  QueryRequest base;
  base.similarity = SimilaritySpec::NameRadius(patch0.name, 8);
  base.page_size = 7;

  QueryRequest paged = base;
  auto page0 = system.Execute(paged);
  ASSERT_TRUE(page0.ok());
  paged.page = 1;
  auto page1 = system.Execute(paged);
  ASSERT_TRUE(page1.ok());
  ASSERT_FALSE(page1->cursor.empty());

  // A twin of patch 0 lands mid-pagination: distance 0 to the query, so
  // the pinned pre-ingest ranking MUST NOT serve the next page.
  bigearthnet::Archive extra;
  bigearthnet::PatchMetadata twin = patch0;
  twin.name = "twin_of_patch_0";
  extra.patches.push_back(twin);
  ASSERT_TRUE(
      system.cbir()->AddImage(twin.name, fixture.features().Row(0)).ok());
  ASSERT_TRUE(system.IngestArchive(extra).ok());

  const uint64_t drops_before = system.ranked_access()->Stats().epoch_drops;
  paged.page = 2;
  auto resumed = system.Execute(paged);
  ASSERT_TRUE(resumed.ok());
  EXPECT_GE(system.ranked_access()->Stats().epoch_drops, drops_before + 1)
      << "stale handle should have been dropped on the epoch bump";

  // The fallen-back page equals a from-scratch execution of the
  // post-ingest ranking, and the full walk now contains the twin.
  system.ranked_access()->Clear();
  auto cold = system.Execute(paged);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(Serialize(*resumed), Serialize(*cold));
  std::set<std::string> all_names;
  QueryRequest walk = base;
  for (size_t page = 0; page < 64; ++page) {
    walk.page = page;
    auto response = system.Execute(walk);
    ASSERT_TRUE(response.ok());
    for (const CbirResult& hit : response->hits) {
      all_names.insert(hit.patch_name);
    }
    if (response->cursor.empty()) break;
  }
  EXPECT_TRUE(all_names.count("twin_of_patch_0"));
}

TEST(RankedPagingAuditTest, ParallelPaginationConverges) {
  PagingFixture fixture(CbirIndexKind::kHashTable, 4);
  EarthQube& system = fixture.system();

  QueryRequest base;
  base.similarity =
      SimilaritySpec::NameKnn(fixture.archive().patches[3].name, 40);
  base.projection = Projection::kHitsOnly;
  base.page_size = 6;

  const auto walk = [&system, &base]() {
    std::vector<std::string> names;
    QueryRequest paged = base;
    for (size_t page = 0; page < 16; ++page) {
      paged.page = page;
      auto response = system.Execute(paged);
      if (!response.ok()) return names;
      for (const CbirResult& hit : response->hits) {
        names.push_back(hit.patch_name);
      }
      if (response->cursor.empty()) break;
    }
    return names;
  };

  const std::vector<std::string> reference = walk();
  ASSERT_EQ(reference.size(), 40u);

  // Eight threads hammer the same cursor chain concurrently; the
  // per-handle mutex serialises extension, and everyone must observe
  // exactly the reference sequence.
  std::vector<std::vector<std::string>> results(8);
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < results.size(); ++t) {
      threads.emplace_back([&results, &walk, t] { results[t] = walk(); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (const auto& result : results) EXPECT_EQ(result, reference);
}

}  // namespace
}  // namespace agoraeo::earthqube
