/// Tests for the netsvc module: HTTP framing, URL utilities, the
/// loopback server/client pair, and the EarthQube JSON service — the
/// paper's three-tier architecture exercised end to end over real TCP.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <memory>
#include <thread>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "earthqube/earthqube.h"
#include "earthqube/exec/execution_engine.h"
#include "earthqube/zip_writer.h"
#include "json/json.h"
#include "milan/trainer.h"
#include "netsvc/client.h"
#include "netsvc/earthqube_service.h"
#include "netsvc/http.h"
#include "netsvc/server.h"

namespace agoraeo::netsvc {
namespace {

using docstore::Document;
using docstore::Value;

// --- HTTP framing ------------------------------------------------------------

TEST(HttpTest, ParseRequestHead) {
  auto req = ParseRequestHead(
      "POST /api/search?debug=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 2");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->path, "/api/search");
  EXPECT_EQ(req->query, "debug=1");
  EXPECT_EQ(req->Header("content-type"), "application/json");
  EXPECT_EQ(req->Header("host"), "localhost");
  EXPECT_EQ(req->Header("absent"), "");
}

TEST(HttpTest, ParseRequestHeadRejectsMalformed) {
  EXPECT_FALSE(ParseRequestHead("").ok());
  EXPECT_FALSE(ParseRequestHead("GET /x").ok());
  EXPECT_FALSE(ParseRequestHead("GET /x SMTP/1.0").ok());
  EXPECT_FALSE(ParseRequestHead("GET /x HTTP/1.1\r\nbadheader").ok());
}

TEST(HttpTest, SerializeParseRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/api/echo";
  req.body = "{\"x\":1}";
  req.headers["content-type"] = "application/json";
  const std::string wire = SerializeRequest(req, "127.0.0.1:80");
  const size_t head_end = wire.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  auto back = ParseRequestHead(wire.substr(0, head_end));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->method, "POST");
  EXPECT_EQ(back->path, "/api/echo");
  EXPECT_EQ(back->Header("content-length"), "7");
  EXPECT_EQ(wire.substr(head_end + 4), req.body);
}

TEST(HttpTest, ParseResponseHead) {
  auto resp = ParseResponseHead(
      "HTTP/1.1 404 Not Found\r\ncontent-type: application/json");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status_code, 404);
  EXPECT_EQ(resp->reason, "Not Found");
  EXPECT_FALSE(ParseResponseHead("FTP/1.1 200 OK").ok());
  EXPECT_FALSE(ParseResponseHead("HTTP/1.1 999999 X").ok());
}

TEST(HttpTest, UrlCoding) {
  EXPECT_EQ(UrlEncode("a b/c"), "a%20b%2Fc");
  EXPECT_EQ(*UrlDecode("a%20b%2Fc"), "a b/c");
  EXPECT_EQ(*UrlDecode("x+y"), "x y");
  EXPECT_FALSE(UrlDecode("bad%2").ok());
  EXPECT_FALSE(UrlDecode("bad%zz").ok());
  // Round trip over awkward characters.
  const std::string nasty = "S2A_MSIL2A 2017/08#1?a=b&c";
  EXPECT_EQ(*UrlDecode(UrlEncode(nasty)), nasty);
}

TEST(HttpTest, ParseQueryString) {
  auto q = ParseQueryString("a=1&b=x%20y&flag");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->at("a"), "1");
  EXPECT_EQ(q->at("b"), "x y");
  EXPECT_EQ(q->at("flag"), "");
}

// --- server + client over loopback ------------------------------------------

TEST(ServerTest, RoutesAndStatusCodes) {
  HttpServer server(2);
  server.Route("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse::Text(200, "pong");
  });
  server.Route("POST", "/echo", [](const HttpRequest& req) {
    return HttpResponse::Json(200, req.body);
  });
  server.Route("GET", "/things/*", [](const HttpRequest& req) {
    return HttpResponse::Text(200, "thing:" + req.path.substr(8));
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  HttpClient client;
  auto pong = client.Get(server.port(), "/ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->status_code, 200);
  EXPECT_EQ(pong->body, "pong");

  auto echo = client.Post(server.port(), "/echo", "{\"k\":[1,2]}");
  ASSERT_TRUE(echo.ok());
  EXPECT_EQ(echo->body, "{\"k\":[1,2]}");

  auto thing = client.Get(server.port(), "/things/42");
  ASSERT_TRUE(thing.ok());
  EXPECT_EQ(thing->body, "thing:42");

  auto missing = client.Get(server.port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 404);

  auto wrong_method = client.Post(server.port(), "/ping", "{}");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status_code, 405);

  EXPECT_EQ(server.requests_served(), 5u);
  server.Stop();
  EXPECT_FALSE(server.is_running());
}

TEST(ServerTest, ConcurrentClients) {
  HttpServer server(4);
  std::atomic<int> handled{0};
  server.Route("POST", "/work", [&handled](const HttpRequest& req) {
    ++handled;
    return HttpResponse::Text(200, req.body);
  });
  ASSERT_TRUE(server.Start(0).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client;
      for (int i = 0; i < kPerThread; ++i) {
        const std::string body =
            "t" + std::to_string(t) + "_" + std::to_string(i);
        auto resp = client.Post(server.port(), "/work", body);
        if (resp.ok() && resp->status_code == 200 && resp->body == body) {
          ++ok_count;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
  EXPECT_EQ(handled.load(), kThreads * kPerThread);
  server.Stop();
}

TEST(ServerTest, StopIsIdempotentAndRestartable) {
  HttpServer server;
  server.Route("GET", "/x", [](const HttpRequest&) {
    return HttpResponse::Text(200, "x");
  });
  ASSERT_TRUE(server.Start(0).ok());
  const uint16_t port = server.port();
  server.Stop();
  server.Stop();
  // A fresh server can bind a fresh port immediately.
  HttpServer second;
  second.Route("GET", "/x", [](const HttpRequest&) {
    return HttpResponse::Text(200, "x");
  });
  ASSERT_TRUE(second.Start(0).ok());
  EXPECT_NE(second.port(), 0);
  (void)port;
  second.Stop();
}

// --- client robustness --------------------------------------------------------

/// Binds an ephemeral port and immediately releases it: a port that is
/// almost certainly closed, so connects are refused rather than hang.
uint16_t ClosedPort() {
  HttpServer probe(1);
  EXPECT_TRUE(probe.Start(0).ok());
  const uint16_t port = probe.port();
  probe.Stop();
  return port;
}

TEST(ClientTest, RefusedConnectionIsTypedAndRetried) {
  HttpClientOptions options;
  options.max_retries = 2;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 2;
  HttpClient client("127.0.0.1", options);
  HttpRequestDetail detail;
  auto resp = client.Request(ClosedPort(), "POST", "/x", "{}",
                             "application/json", &detail);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(detail.error_kind, HttpErrorKind::kRefused);
  // Connection-phase failures retry even for POST: first try + 2 retries.
  EXPECT_EQ(detail.attempts, 3);
  EXPECT_EQ(client.retries_attempted(), 2u);
  // The typed kind leads the Status message.
  EXPECT_NE(resp.status().message().find("refused"), std::string::npos)
      << resp.status().message();
}

TEST(ClientTest, ZeroRetriesFailsFast) {
  HttpClientOptions options;
  options.max_retries = 0;
  HttpClient client("127.0.0.1", options);
  HttpRequestDetail detail;
  auto resp = client.Request(ClosedPort(), "GET", "/x", "", "", &detail);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(detail.attempts, 1);
  EXPECT_EQ(client.retries_attempted(), 0u);
}

TEST(ClientTest, SilentServerIsAReadTimeout) {
  // A listener that accepts but never answers.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const uint16_t port = ntohs(addr.sin_port);

  HttpClientOptions options;
  options.read_timeout_ms = 100;
  options.max_retries = 0;
  HttpClient client("127.0.0.1", options);
  HttpRequestDetail detail;
  auto resp = client.Request(port, "GET", "/slow", "", "", &detail);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(detail.error_kind, HttpErrorKind::kReadTimeout);
  EXPECT_NE(resp.status().message().find("read_timeout"), std::string::npos)
      << resp.status().message();
  ::close(listener);
}

TEST(ClientTest, GarbageResponseIsMalformedAndNotRetriedForPost) {
  // A listener that answers every connection with non-HTTP bytes.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const uint16_t port = ntohs(addr.sin_port);
  std::atomic<bool> stop{false};
  std::thread garbler([listener, &stop] {
    while (!stop.load()) {
      const int conn = ::accept(listener, nullptr, nullptr);
      if (conn < 0) break;
      char buf[512];
      (void)::recv(conn, buf, sizeof(buf), 0);
      const char kJunk[] = "NOT/HTTP definitely\r\n\r\n";
      (void)::send(conn, kJunk, sizeof(kJunk) - 1, 0);
      ::close(conn);
    }
  });

  HttpClientOptions options;
  options.max_retries = 3;
  options.backoff_base_ms = 1;
  HttpClient client("127.0.0.1", options);
  HttpRequestDetail detail;
  auto resp = client.Request(port, "POST", "/x", "{}", "application/json",
                             &detail);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(detail.error_kind, HttpErrorKind::kMalformed);
  // A POST may have executed server-side: read-phase failures must NOT
  // be replayed for non-idempotent methods.
  EXPECT_EQ(detail.attempts, 1);

  stop = true;
  ::shutdown(listener, SHUT_RDWR);
  ::close(listener);
  garbler.join();
}

// --- EarthQube service over the wire ------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bigearthnet::ArchiveConfig config;
    config.num_patches = 800;
    config.seed = 77;
    generator_ = new bigearthnet::ArchiveGenerator(config);
    auto archive = generator_->Generate();
    ASSERT_TRUE(archive.ok());
    archive_ = new bigearthnet::Archive(std::move(archive).value());

    earthqube::EarthQubeConfig system_config;
    // Generous negative TTL: the wire test below asserts repeat 404s
    // hit the negative cache, and sanitizer runs can stretch three
    // round trips past the 2 s default.
    system_config.cache.negative_ttl = std::chrono::minutes(5);
    system_ = new earthqube::EarthQube(system_config);
    ASSERT_TRUE(system_->IngestArchive(*archive_).ok());

    // Small trained model so the similarity endpoint works.
    bigearthnet::FeatureExtractor extractor;
    Tensor features = extractor.ExtractArchive(*archive_, *generator_, 2);
    milan::MilanConfig mconfig;
    mconfig.feature_dim = bigearthnet::kFeatureDim;
    mconfig.hidden1 = 64;
    mconfig.hidden2 = 32;
    mconfig.hash_bits = 32;
    mconfig.dropout = 0.0f;
    auto model = std::make_unique<milan::MilanModel>(mconfig);
    std::vector<bigearthnet::LabelSet> labels;
    for (const auto& p : archive_->patches) labels.push_back(p.labels);
    milan::TripletSampler sampler(labels);
    milan::TrainConfig tconfig;
    tconfig.epochs = 2;
    tconfig.batches_per_epoch = 10;
    tconfig.batch_size = 16;
    milan::Trainer trainer(model.get(), &features, &sampler, tconfig);
    ASSERT_TRUE(trainer.Train().ok());
    cbir_extractor_ = new bigearthnet::FeatureExtractor();
    auto cbir = std::make_unique<earthqube::CbirService>(std::move(model),
                                                         cbir_extractor_);
    std::vector<std::string> names;
    for (const auto& p : archive_->patches) names.push_back(p.name);
    ASSERT_TRUE(cbir->AddImages(names, features).ok());
    system_->AttachCbir(std::move(cbir));

    service_ = new EarthQubeService(system_);
    server_ = new HttpServer(2);
    service_->RegisterRoutes(server_);
    ASSERT_TRUE(server_->Start(0).ok());
  }

  static void TearDownTestSuite() {
    server_->Stop();
    delete server_;
    delete service_;
    delete system_;  // owns the CbirService that references the extractor
    delete cbir_extractor_;
    delete archive_;
    delete generator_;
  }

  static bigearthnet::ArchiveGenerator* generator_;
  static bigearthnet::Archive* archive_;
  static bigearthnet::FeatureExtractor* cbir_extractor_;
  static earthqube::EarthQube* system_;
  static EarthQubeService* service_;
  static HttpServer* server_;
};

bigearthnet::ArchiveGenerator* ServiceTest::generator_ = nullptr;
bigearthnet::Archive* ServiceTest::archive_ = nullptr;
bigearthnet::FeatureExtractor* ServiceTest::cbir_extractor_ = nullptr;
earthqube::EarthQube* ServiceTest::system_ = nullptr;
EarthQubeService* ServiceTest::service_ = nullptr;
HttpServer* ServiceTest::server_ = nullptr;

TEST_F(ServiceTest, HealthEndpoint) {
  HttpClient client;
  auto resp = client.Get(server_->port(), "/health");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status_code, 200);
  EXPECT_EQ(resp->body, "{\"status\":\"ok\"}");
}

TEST_F(ServiceTest, SearchByCountryLabelsOverWire) {
  HttpClient client;
  auto resp = client.Post(
      server_->port(), "/api/search",
      R"({"labels":{"operator":"some","names":["Broad-leaved forest",)"
      R"("Coniferous forest","Mixed forest"]},"limit":25})");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;
  auto body = json::ParseObject(resp->body);
  ASSERT_TRUE(body.ok());
  EXPECT_GT(body->Get("total")->as_int64(), 0);
  EXPECT_LE(body->Get("total")->as_int64(), 25);
  const Value* results = body->Get("results");
  ASSERT_TRUE(results->is_array());
  ASSERT_FALSE(results->as_array().empty());
  // Every result must carry one of the forest labels.
  for (const Value& r : results->as_array()) {
    bool has_forest = false;
    for (const Value& l : r.as_document().Get("labels")->as_array()) {
      if (l.as_string().find("forest") != std::string::npos) {
        has_forest = true;
      }
    }
    EXPECT_TRUE(has_forest) << r.as_document().ToString();
  }
  // The statistics view accompanies the search (Figure 2-4).
  EXPECT_TRUE(body->Get("label_statistics")->is_array());
  EXPECT_FALSE(body->Get("label_statistics")->as_array().empty());
}

TEST_F(ServiceTest, SearchWithDateRangeUsesRangeIndex) {
  HttpClient client;
  auto resp = client.Post(
      server_->port(), "/api/search",
      R"({"date_range":{"begin":"2017-08-01","end":"2017-08-31"}})");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;
  auto body = json::ParseObject(resp->body);
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body->Get("plan")->as_string().find("range"), std::string::npos)
      << body->Get("plan")->as_string();
}

TEST_F(ServiceTest, SimilarByNameOverWire) {
  HttpClient client;
  const std::string& name = archive_->patches[0].name;
  Document req;
  req.Set("name", Value(name));
  req.Set("k", Value(10));
  auto resp = client.Post(server_->port(), "/api/similar/by_name",
                          json::Serialize(req));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;
  auto body = json::ParseObject(resp->body);
  ASSERT_TRUE(body.ok());
  const auto& results = body->Get("results")->as_array();
  ASSERT_EQ(results.size(), 10u);
  // The service drops the self-match (the UI's "retrieve similar images"
  // button must not return the clicked image itself); every name is
  // distinct and differs from the query.
  std::set<std::string> names;
  for (const Value& r : results) {
    const std::string& n = r.as_document().Get("name")->as_string();
    EXPECT_NE(n, name);
    names.insert(n);
  }
  EXPECT_EQ(names.size(), results.size());
}

TEST_F(ServiceTest, BatchSearchOverWire) {
  HttpClient client;
  const std::string& a = archive_->patches[0].name;
  const std::string& b = archive_->patches[5].name;
  Document req;
  req.Set("names", Value(std::vector<Value>{Value(a), Value(b)}));
  req.Set("k", Value(8));
  auto resp = client.Post(server_->port(), "/cbir/batch_search",
                          json::Serialize(req));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;
  auto body = json::ParseObject(resp->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Get("batch_size")->as_int64(), 2);
  const auto& results = body->Get("results")->as_array();
  ASSERT_EQ(results.size(), 2u);

  // Each slot must agree with the single-query endpoint for that name.
  const std::string queries[] = {a, b};
  for (size_t i = 0; i < 2; ++i) {
    const Document& slot = results[i].as_document();
    EXPECT_EQ(slot.Get("query")->as_string(), queries[i]);
    const auto& hits = slot.Get("hits")->as_array();
    ASSERT_EQ(hits.size(), 8u);
    Document single_req;
    single_req.Set("name", Value(queries[i]));
    single_req.Set("k", Value(8));
    auto single = client.Post(server_->port(), "/api/similar/by_name",
                              json::Serialize(single_req));
    ASSERT_TRUE(single.ok());
    ASSERT_EQ(single->status_code, 200);
    auto single_body = json::ParseObject(single->body);
    ASSERT_TRUE(single_body.ok());
    const auto& single_hits = single_body->Get("results")->as_array();
    ASSERT_EQ(single_hits.size(), hits.size());
    for (size_t j = 0; j < hits.size(); ++j) {
      EXPECT_EQ(hits[j].as_document().Get("name")->as_string(),
                single_hits[j].as_document().Get("name")->as_string())
          << "query " << i << " hit " << j;
    }
    // No slot returns its own query image.
    for (const Value& h : hits) {
      EXPECT_NE(h.as_document().Get("name")->as_string(), queries[i]);
    }
  }
}

TEST_F(ServiceTest, BatchSearchRadiusFlavour) {
  HttpClient client;
  Document req;
  req.Set("names",
          Value(std::vector<Value>{Value(archive_->patches[2].name)}));
  req.Set("radius", Value(6));
  req.Set("limit", Value(10));
  auto resp = client.Post(server_->port(), "/cbir/batch_search",
                          json::Serialize(req));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;
  auto body = json::ParseObject(resp->body);
  ASSERT_TRUE(body.ok());
  const auto& results = body->Get("results")->as_array();
  ASSERT_EQ(results.size(), 1u);
  const auto& hits = results[0].as_document().Get("hits")->as_array();
  EXPECT_LE(hits.size(), 10u);
  // Hits arrive in ascending Hamming distance within the radius.
  int64_t last = -1;
  for (const Value& h : hits) {
    const int64_t d = h.as_document().Get("distance")->as_int64();
    EXPECT_LE(d, 6);
    EXPECT_GE(d, last);
    last = d;
  }
}

TEST_F(ServiceTest, BatchSearchRejectsBadBodies) {
  HttpClient client;
  auto missing = client.Post(server_->port(), "/cbir/batch_search",
                             R"({"k":5})");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 400);
  auto empty = client.Post(server_->port(), "/cbir/batch_search",
                           R"({"names":[],"k":5})");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->status_code, 400);
  auto unknown = client.Post(server_->port(), "/cbir/batch_search",
                             R"({"names":["ghost_patch"],"k":5})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status_code, 404);
  // Oversized batches are rejected before touching the query pool.
  std::string big = R"({"k":1,"names":[)";
  for (size_t i = 0; i <= EarthQubeService::kMaxBatchQueries; ++i) {
    if (i != 0) big += ",";
    big += "\"" + archive_->patches[0].name + "\"";
  }
  big += "]}";
  auto oversized = client.Post(server_->port(), "/cbir/batch_search", big);
  ASSERT_TRUE(oversized.ok());
  EXPECT_EQ(oversized->status_code, 400);
}

TEST_F(ServiceTest, SimilarByNameUnknownIs404) {
  HttpClient client;
  auto resp = client.Post(server_->port(), "/api/similar/by_name",
                          R"({"name":"no_such_patch","k":5})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status_code, 404);
}

TEST_F(ServiceTest, FeedbackRoundTrip) {
  HttpClient client;
  const size_t before = system_->NumFeedbackEntries();
  auto resp = client.Post(server_->port(), "/api/feedback",
                          R"({"text":"lovely demo!"})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status_code, 201);
  auto count = client.Get(server_->port(), "/api/feedback/count");
  ASSERT_TRUE(count.ok());
  auto body = json::ParseObject(count->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(static_cast<size_t>(body->Get("count")->as_int64()), before + 1);

  auto empty = client.Post(server_->port(), "/api/feedback", R"({"text":""})");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->status_code, 400);
}

TEST_F(ServiceTest, PatchMetadataByName) {
  HttpClient client;
  const auto& meta = archive_->patches[3];
  auto resp = client.Get(server_->port(),
                         "/api/patch/" + UrlEncode(meta.name));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;
  auto body = json::ParseObject(resp->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Get("name")->as_string(), meta.name);
  EXPECT_EQ(body->Get("country")->as_string(), meta.country);
  EXPECT_EQ(body->Get("labels")->as_array().size(), meta.labels.size());

  auto missing = client.Get(server_->port(), "/api/patch/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 404);
}

TEST_F(ServiceTest, DownloadCartAsZipOverWire) {
  // Store pixels + preview for two patches, then download them combined
  // — the cart's "download together as a single collection".
  bigearthnet::ArchiveGenerator& gen = *generator_;
  const auto& m0 = archive_->patches[0];
  const auto& m1 = archive_->patches[1];
  bigearthnet::Patch p0 = gen.SynthesizePatch(m0);
  bigearthnet::Patch p1 = gen.SynthesizePatch(m1);
  ASSERT_TRUE(system_->StorePatchPixels(p0).ok());
  ASSERT_TRUE(system_->StoreRenderedImage(p1).ok());

  HttpClient client;
  Document req;
  req.Set("names", docstore::MakeStringArray({m0.name, m1.name}));
  auto resp = client.Post(server_->port(), "/api/download",
                          json::Serialize(req));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;
  auto body = json::ParseObject(resp->body);
  ASSERT_TRUE(body.ok());
  auto zip_bytes =
      json::Base64Decode(body->Get("zip_base64")->as_string());
  ASSERT_TRUE(zip_bytes.ok());

  auto entries = earthqube::ZipExtractAll(*zip_bytes);
  ASSERT_TRUE(entries.ok());
  std::set<std::string> names;
  for (const auto& [name, content] : *entries) names.insert(name);
  EXPECT_TRUE(names.count(m0.name + "/metadata.json"));
  EXPECT_TRUE(names.count(m0.name + "/bands.bin"));    // pixels stored
  EXPECT_TRUE(names.count(m1.name + "/metadata.json"));
  EXPECT_TRUE(names.count(m1.name + "/preview.rgb"));  // preview stored
  EXPECT_TRUE(names.count("manifest.txt"));

  // Unknown names are a 404, not a broken archive.
  Document bad;
  bad.Set("names", docstore::MakeStringArray({"nope"}));
  auto missing = client.Post(server_->port(), "/api/download",
                             json::Serialize(bad));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 404);
}

TEST_F(ServiceTest, MalformedSearchBodyIs400) {
  HttpClient client;
  auto resp = client.Post(server_->port(), "/api/search", "{not json");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status_code, 400);

  auto bad_label = client.Post(
      server_->port(), "/api/search",
      R"({"labels":{"operator":"some","names":["Atlantis"]}})");
  ASSERT_TRUE(bad_label.ok());
  EXPECT_EQ(bad_label->status_code, 400);

  auto bad_op = client.Post(
      server_->port(), "/api/search",
      R"({"labels":{"operator":"banana","names":["Airports"]}})");
  ASSERT_TRUE(bad_op.ok());
  EXPECT_EQ(bad_op->status_code, 400);

  auto bad_date = client.Post(
      server_->port(), "/api/search",
      R"({"date_range":{"begin":"2017-02-30","end":"2017-03-01"}})");
  ASSERT_TRUE(bad_date.ok());
  EXPECT_EQ(bad_date->status_code, 400);
}

// --- QueryFromJson unit tests (no sockets) -----------------------------------

TEST(QueryFromJsonTest, GeoShapes) {
  auto rect = EarthQubeService::QueryFromJson(*json::ParseObject(
      R"({"geo":{"rect":{"min_lat":1,"min_lon":2,"max_lat":3,"max_lon":4}}})"));
  ASSERT_TRUE(rect.ok());
  EXPECT_EQ(rect->geo.shape, earthqube::GeoQuery::Shape::kRectangle);
  EXPECT_DOUBLE_EQ(rect->geo.rectangle.max.lon, 4.0);

  auto circle = EarthQubeService::QueryFromJson(*json::ParseObject(
      R"({"geo":{"circle":{"lat":38.0,"lon":-9.1,"radius_m":5000}}})"));
  ASSERT_TRUE(circle.ok());
  EXPECT_EQ(circle->geo.shape, earthqube::GeoQuery::Shape::kCircle);

  auto poly = EarthQubeService::QueryFromJson(*json::ParseObject(
      R"({"geo":{"polygon":[[0,0],[0,1],[1,1]]}})"));
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->geo.shape, earthqube::GeoQuery::Shape::kPolygon);

  EXPECT_FALSE(EarthQubeService::QueryFromJson(
                   *json::ParseObject(R"({"geo":{"polygon":[[0,0],[1,1]]}})"))
                   .ok());
  EXPECT_FALSE(EarthQubeService::QueryFromJson(
                   *json::ParseObject(R"({"geo":{"blob":1}})"))
                   .ok());
}

TEST(QueryFromJsonTest, SeasonsAndSatellites) {
  auto q = EarthQubeService::QueryFromJson(*json::ParseObject(
      R"({"seasons":["Summer","Winter"],"satellites":["S2A"],"limit":9})"));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->seasons.size(), 2u);
  EXPECT_EQ(q->satellites.size(), 1u);
  EXPECT_EQ(q->limit, 9u);
  EXPECT_FALSE(EarthQubeService::QueryFromJson(
                   *json::ParseObject(R"({"seasons":["Monsoon"]})"))
                   .ok());
  EXPECT_FALSE(EarthQubeService::QueryFromJson(
                   *json::ParseObject(R"({"limit":-3})"))
                   .ok());
  // Unknown satellites are rejected, not silently matched against
  // nothing.
  EXPECT_FALSE(EarthQubeService::QueryFromJson(
                   *json::ParseObject(R"({"satellites":["S3A"]})"))
                   .ok());
}

// --- QueryRequestFromJson (v2) unit tests ------------------------------------

TEST(QueryRequestFromJsonTest, EdgeCases) {
  // Empty body: neither panel nor similarity.
  EXPECT_TRUE(EarthQubeService::QueryRequestFromJson(*json::ParseObject("{}"))
                  .status()
                  .IsInvalidArgument());

  // Malformed polygon with fewer than 3 vertices inside the panel.
  EXPECT_FALSE(EarthQubeService::QueryRequestFromJson(*json::ParseObject(
                   R"({"panel":{"geo":{"polygon":[[0,0],[1,1]]}}})"))
                   .ok());

  // Unknown season / satellite strings inside the panel.
  EXPECT_FALSE(EarthQubeService::QueryRequestFromJson(*json::ParseObject(
                   R"({"panel":{"seasons":["Monsoon"]}})"))
                   .ok());
  EXPECT_FALSE(EarthQubeService::QueryRequestFromJson(*json::ParseObject(
                   R"({"panel":{"satellites":["Landsat"]}})"))
                   .ok());

  // Conflicting radius + k.
  EXPECT_TRUE(EarthQubeService::QueryRequestFromJson(
                  *json::ParseObject(
                      R"({"similarity":{"name":"x","radius":4,"k":5}})"))
                  .status()
                  .IsInvalidArgument());

  // Two similarity subjects.
  EXPECT_TRUE(EarthQubeService::QueryRequestFromJson(
                  *json::ParseObject(
                      R"({"similarity":{"name":"x","code":"0101","k":5}})"))
                  .status()
                  .IsInvalidArgument());

  // Invalid bit-string code.
  EXPECT_TRUE(EarthQubeService::QueryRequestFromJson(
                  *json::ParseObject(R"({"similarity":{"code":"01a1","k":5}})"))
                  .status()
                  .IsInvalidArgument());

  // Hits projection without similarity.
  EXPECT_TRUE(EarthQubeService::QueryRequestFromJson(
                  *json::ParseObject(R"({"panel":{},"projection":"hits"})"))
                  .status()
                  .IsInvalidArgument());

  // Negative paging values are rejected, not clamped.
  EXPECT_TRUE(EarthQubeService::QueryRequestFromJson(
                  *json::ParseObject(R"({"panel":{},"page":-1})"))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(EarthQubeService::QueryRequestFromJson(
                  *json::ParseObject(
                      R"({"similarity":{"name":"x","k":-2}})"))
                  .status()
                  .IsInvalidArgument());

  // Unknown planner / projection values.
  EXPECT_FALSE(EarthQubeService::QueryRequestFromJson(
                   *json::ParseObject(R"({"panel":{},"planner":"magic"})"))
                   .ok());
  EXPECT_FALSE(EarthQubeService::QueryRequestFromJson(
                   *json::ParseObject(R"({"panel":{},"projection":"csv"})"))
                   .ok());
}

TEST(QueryRequestFromJsonTest, DefaultsAndCursor) {
  // A bare similarity name defaults to radius 8 (the v1 default).
  auto req = EarthQubeService::QueryRequestFromJson(
      *json::ParseObject(R"({"similarity":{"name":"x"}})"));
  ASSERT_TRUE(req.ok());
  ASSERT_TRUE(req->similarity->radius.has_value());
  EXPECT_EQ(*req->similarity->radius, 8u);

  // A cursor token overrides page/page_size.
  const std::string token = earthqube::EncodeCursor({3, 20});
  auto paged = EarthQubeService::QueryRequestFromJson(*json::ParseObject(
      R"({"panel":{},"page":0,"page_size":50,"cursor":")" + token + "\"}"));
  ASSERT_TRUE(paged.ok());
  EXPECT_EQ(paged->page, 3u);
  EXPECT_EQ(paged->page_size, 20u);

  auto bad = EarthQubeService::QueryRequestFromJson(
      *json::ParseObject(R"({"panel":{},"cursor":"garbage!"})"));
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

// --- v2 endpoint over the wire ------------------------------------------------

TEST_F(ServiceTest, V2UndecodableCursorAnswers410CursorExpired) {
  // A cursor that cannot be decoded is not a bad REQUEST — the request
  // shape is fine, the continuation is gone — so the wire answer is the
  // shared error envelope with 410 and code "cursor_expired", telling
  // paging clients to restart from page 0.
  HttpClient client;
  for (const std::string cursor : {"garbage!", "djI6bm9wZQ", "djk6MTox"}) {
    auto resp = client.Post(server_->port(), "/api/v2/query",
                            R"({"similarity":{"name":")" +
                                archive_->patches[0].name +
                                R"(","radius":6},"cursor":")" + cursor +
                                R"("})");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status_code, 410) << cursor << ": " << resp->body;
    auto body = json::ParseObject(resp->body);
    ASSERT_TRUE(body.ok()) << resp->body;
    EXPECT_EQ(body->GetPath("error.code")->as_string(), "cursor_expired")
        << resp->body;
  }

  // The batch flavour rejects the whole submission the same way.
  auto batch = client.Post(server_->port(), "/api/v2/query",
                           R"({"requests":[{"similarity":{"name":")" +
                               archive_->patches[0].name +
                               R"(","radius":6},"cursor":"garbage!"}]})");
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->status_code, 410) << batch->body;
}

TEST_F(ServiceTest, V2PanelOnlyQuery) {
  HttpClient client;
  auto resp = client.Post(
      server_->port(), "/api/v2/query",
      R"({"panel":{"labels":{"operator":"some","names":["Broad-leaved forest",)"
      R"("Coniferous forest","Mixed forest"]}},"page_size":10})");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;
  auto body = json::ParseObject(resp->body);
  ASSERT_TRUE(body.ok());
  EXPECT_GT(body->Get("total")->as_int64(), 0);
  EXPECT_EQ(body->GetPath("plan.strategy")->as_string(), "panel_only");
  EXPECT_LE(body->Get("results")->as_array().size(), 10u);
  EXPECT_TRUE(body->Get("label_statistics")->is_array());
  // More than one 10-entry page exists, so a cursor is returned; feeding
  // it back fetches the next page.
  const std::string cursor = body->Get("cursor")->as_string();
  if (body->Get("total")->as_int64() > 10) {
    ASSERT_FALSE(cursor.empty());
    auto next = client.Post(server_->port(), "/api/v2/query",
                            R"({"panel":{"labels":{"operator":"some",)"
                            R"("names":["Broad-leaved forest",)"
                            R"("Coniferous forest","Mixed forest"]}},)"
                            R"("cursor":")" + cursor + "\"}");
    ASSERT_TRUE(next.ok());
    ASSERT_EQ(next->status_code, 200) << next->body;
    auto next_body = json::ParseObject(next->body);
    ASSERT_TRUE(next_body.ok());
    EXPECT_EQ(next_body->Get("page")->as_int64(), 1);
    // Pages are disjoint.
    const auto& first_results = body->Get("results")->as_array();
    const auto& second_results = next_body->Get("results")->as_array();
    std::set<std::string> first_names;
    for (const Value& r : first_results) {
      first_names.insert(r.as_document().Get("name")->as_string());
    }
    for (const Value& r : second_results) {
      EXPECT_EQ(first_names.count(r.as_document().Get("name")->as_string()),
                0u);
    }
  }
}

TEST_F(ServiceTest, V2CbirOnlyMatchesV1SimilarByName) {
  HttpClient client;
  const std::string& name = archive_->patches[4].name;
  auto v2 = client.Post(server_->port(), "/api/v2/query",
                        R"({"similarity":{"name":")" + name +
                            R"(","k":10},"page_size":0})");
  ASSERT_TRUE(v2.ok());
  ASSERT_EQ(v2->status_code, 200) << v2->body;
  auto v2_body = json::ParseObject(v2->body);
  ASSERT_TRUE(v2_body.ok());
  EXPECT_EQ(v2_body->GetPath("plan.strategy")->as_string(), "cbir_only");

  auto v1 = client.Post(server_->port(), "/api/similar/by_name",
                        R"({"name":")" + name + R"(","k":10})");
  ASSERT_TRUE(v1.ok());
  ASSERT_EQ(v1->status_code, 200) << v1->body;
  auto v1_body = json::ParseObject(v1->body);
  ASSERT_TRUE(v1_body.ok());

  const auto& v2_results = v2_body->Get("results")->as_array();
  const auto& v1_results = v1_body->Get("results")->as_array();
  ASSERT_EQ(v2_results.size(), v1_results.size());
  for (size_t i = 0; i < v2_results.size(); ++i) {
    EXPECT_EQ(v2_results[i].as_document().Get("name")->as_string(),
              v1_results[i].as_document().Get("name")->as_string());
    // v2 joined results carry the Hamming distance.
    EXPECT_TRUE(v2_results[i].as_document().Has("distance"));
  }
}

TEST_F(ServiceTest, V2HybridPlannerStrategiesAgreeOverWire) {
  HttpClient client;
  const std::string& name = archive_->patches[7].name;
  const std::string base =
      R"({"panel":{"seasons":["Summer","Autumn"]},"similarity":{"name":")" +
      name + R"(","k":8},"projection":"hits","page_size":0)";
  auto pre = client.Post(server_->port(), "/api/v2/query",
                         base + R"(,"planner":"pre_filter"})");
  auto post = client.Post(server_->port(), "/api/v2/query",
                          base + R"(,"planner":"post_filter"})");
  auto auto_plan = client.Post(server_->port(), "/api/v2/query", base + "}");
  ASSERT_TRUE(pre.ok());
  ASSERT_TRUE(post.ok());
  ASSERT_TRUE(auto_plan.ok());
  ASSERT_EQ(pre->status_code, 200) << pre->body;
  ASSERT_EQ(post->status_code, 200) << post->body;
  ASSERT_EQ(auto_plan->status_code, 200) << auto_plan->body;

  auto pre_body = json::ParseObject(pre->body);
  auto post_body = json::ParseObject(post->body);
  auto auto_body = json::ParseObject(auto_plan->body);
  ASSERT_TRUE(pre_body.ok());
  ASSERT_TRUE(post_body.ok());
  ASSERT_TRUE(auto_body.ok());
  EXPECT_EQ(pre_body->GetPath("plan.strategy")->as_string(), "pre_filter");
  EXPECT_EQ(post_body->GetPath("plan.strategy")->as_string(), "post_filter");
  const std::string auto_strategy =
      auto_body->GetPath("plan.strategy")->as_string();
  EXPECT_TRUE(auto_strategy == "pre_filter" || auto_strategy == "post_filter");

  // Identical result sets regardless of strategy.
  const auto& pre_results = pre_body->Get("results")->as_array();
  const auto& post_results = post_body->Get("results")->as_array();
  ASSERT_EQ(pre_results.size(), post_results.size());
  for (size_t i = 0; i < pre_results.size(); ++i) {
    EXPECT_EQ(pre_results[i].as_document().Get("name")->as_string(),
              post_results[i].as_document().Get("name")->as_string());
    EXPECT_EQ(pre_results[i].as_document().Get("distance")->as_int64(),
              post_results[i].as_document().Get("distance")->as_int64());
  }
}

TEST_F(ServiceTest, V2BatchMatchesV1BatchSearch) {
  HttpClient client;
  const std::string& a = archive_->patches[1].name;
  const std::string& b = archive_->patches[6].name;
  auto v2 = client.Post(
      server_->port(), "/api/v2/query",
      R"({"requests":[)"
      R"({"similarity":{"name":")" + a +
          R"(","k":6},"projection":"hits","page_size":0},)"
      R"({"similarity":{"name":")" + b +
          R"(","k":6},"projection":"hits","page_size":0}]})");
  ASSERT_TRUE(v2.ok());
  ASSERT_EQ(v2->status_code, 200) << v2->body;
  auto v2_body = json::ParseObject(v2->body);
  ASSERT_TRUE(v2_body.ok());
  EXPECT_EQ(v2_body->Get("batch_size")->as_int64(), 2);
  const auto& responses = v2_body->Get("responses")->as_array();
  ASSERT_EQ(responses.size(), 2u);

  Document v1_req;
  v1_req.Set("names", Value(std::vector<Value>{Value(a), Value(b)}));
  v1_req.Set("k", Value(6));
  auto v1 = client.Post(server_->port(), "/cbir/batch_search",
                        json::Serialize(v1_req));
  ASSERT_TRUE(v1.ok());
  ASSERT_EQ(v1->status_code, 200) << v1->body;
  auto v1_body = json::ParseObject(v1->body);
  ASSERT_TRUE(v1_body.ok());
  const auto& v1_results = v1_body->Get("results")->as_array();
  for (size_t i = 0; i < 2; ++i) {
    const auto& v2_hits =
        responses[i].as_document().Get("results")->as_array();
    const auto& v1_hits =
        v1_results[i].as_document().Get("hits")->as_array();
    ASSERT_EQ(v2_hits.size(), v1_hits.size());
    for (size_t j = 0; j < v2_hits.size(); ++j) {
      EXPECT_EQ(v2_hits[j].as_document().Get("name")->as_string(),
                v1_hits[j].as_document().Get("name")->as_string());
    }
  }
}

TEST_F(ServiceTest, V2RejectsMalformedBodies) {
  HttpClient client;
  auto empty = client.Post(server_->port(), "/api/v2/query", "{}");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->status_code, 400);

  auto conflict = client.Post(
      server_->port(), "/api/v2/query",
      R"({"similarity":{"name":"x","radius":3,"k":5}})");
  ASSERT_TRUE(conflict.ok());
  EXPECT_EQ(conflict->status_code, 400);

  auto unknown = client.Post(server_->port(), "/api/v2/query",
                             R"({"similarity":{"name":"ghost","k":3}})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status_code, 404);

  auto empty_batch = client.Post(server_->port(), "/api/v2/query",
                                 R"({"requests":[]})");
  ASSERT_TRUE(empty_batch.ok());
  EXPECT_EQ(empty_batch->status_code, 400);
}

// --- v1 paging + shared error envelope ----------------------------------------

TEST_F(ServiceTest, V1SearchRejectsMalformedPagingAndReturnsCursor) {
  HttpClient client;
  auto negative = client.Post(server_->port(), "/api/search",
                              R"({"page":-2})");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative->status_code, 400);

  auto fractional = client.Post(server_->port(), "/api/search",
                                R"({"page":1.5})");
  ASSERT_TRUE(fractional.ok());
  EXPECT_EQ(fractional->status_code, 400);

  // An unfiltered search has many pages: the v1 response carries the v2
  // continuation cursor.
  auto all = client.Post(server_->port(), "/api/search", "{}");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->status_code, 200);
  auto body = json::ParseObject(all->body);
  ASSERT_TRUE(body.ok());
  ASSERT_TRUE(body->Has("cursor"));
  const std::string cursor = body->Get("cursor")->as_string();
  ASSERT_FALSE(cursor.empty());
  auto decoded = earthqube::DecodeCursor(cursor);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->page, 1u);
}

TEST_F(ServiceTest, ErrorsUseSharedJsonEnvelope) {
  HttpClient client;
  // 400 from a handler.
  auto bad = client.Post(server_->port(), "/api/search", "{not json");
  ASSERT_TRUE(bad.ok());
  ASSERT_EQ(bad->status_code, 400);
  auto bad_body = json::ParseObject(bad->body);
  ASSERT_TRUE(bad_body.ok()) << bad->body;
  EXPECT_EQ(bad_body->GetPath("error.code")->as_string(), "bad_request");
  EXPECT_TRUE(bad_body->GetPath("error.message")->is_string());

  // 404 from a handler.
  auto missing = client.Get(server_->port(), "/api/patch/nope");
  ASSERT_TRUE(missing.ok());
  ASSERT_EQ(missing->status_code, 404);
  auto missing_body = json::ParseObject(missing->body);
  ASSERT_TRUE(missing_body.ok()) << missing->body;
  EXPECT_EQ(missing_body->GetPath("error.code")->as_string(), "not_found");

  // 404/405 from the router itself share the envelope.
  auto unrouted = client.Get(server_->port(), "/no/such/route");
  ASSERT_TRUE(unrouted.ok());
  ASSERT_EQ(unrouted->status_code, 404);
  auto unrouted_body = json::ParseObject(unrouted->body);
  ASSERT_TRUE(unrouted_body.ok()) << unrouted->body;
  EXPECT_EQ(unrouted_body->GetPath("error.code")->as_string(), "not_found");

  auto wrong_method = client.Get(server_->port(), "/api/search");
  ASSERT_TRUE(wrong_method.ok());
  ASSERT_EQ(wrong_method->status_code, 405);
  auto wrong_body = json::ParseObject(wrong_method->body);
  ASSERT_TRUE(wrong_body.ok()) << wrong_method->body;
  EXPECT_EQ(wrong_body->GetPath("error.code")->as_string(),
            "method_not_allowed");
}

TEST_F(ServiceTest, CachedV2ResponseIsByteIdenticalExceptFlag) {
  HttpClient client;
  // A request no earlier test issued, so the first round trip is a miss.
  const std::string body =
      R"({"similarity":{"name":")" + archive_->patches[42].name +
      R"(","radius":9}})";

  auto first = client.Post(server_->port(), "/api/v2/query", body);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->status_code, 200) << first->body;
  EXPECT_NE(first->body.find("\"served_from_cache\":false"),
            std::string::npos);

  auto second = client.Post(server_->port(), "/api/v2/query", body);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->status_code, 200) << second->body;
  EXPECT_NE(second->body.find("\"served_from_cache\":true"),
            std::string::npos);

  // Normalising the cache flag must make the wire bodies byte-identical
  // (same results, same paging cursor, same plan and statistics).
  std::string normalized = second->body;
  const size_t pos = normalized.find("\"served_from_cache\":true");
  ASSERT_NE(pos, std::string::npos);
  normalized.replace(pos, std::string("\"served_from_cache\":true").size(),
                     "\"served_from_cache\":false");
  EXPECT_EQ(first->body, normalized);
}

TEST_F(ServiceTest, CacheStatsEndpoint) {
  HttpClient client;
  auto before = client.Get(server_->port(), "/api/v2/cache/stats");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->status_code, 200) << before->body;
  auto before_body = json::ParseObject(before->body);
  ASSERT_TRUE(before_body.ok()) << before->body;
  ASSERT_TRUE(before_body->Get("epoch")->is_int64());
  for (const char* which : {"response_cache", "allowlist_cache"}) {
    const Value* stats = before_body->Get(which);
    ASSERT_TRUE(stats != nullptr && stats->is_document()) << which;
    const Document& d = stats->as_document();
    EXPECT_TRUE(d.Get("enabled")->as_bool());
    for (const char* field : {"hits", "misses", "puts", "rejected_puts",
                              "evictions", "stale_drops", "expired_drops",
                              "entries", "bytes", "capacity_bytes"}) {
      ASSERT_TRUE(d.Get(field) != nullptr && d.Get(field)->is_int64())
          << which << "." << field;
    }
    EXPECT_TRUE(d.Get("hit_rate")->is_number());
  }
  const int64_t hits_before =
      before_body->GetPath("response_cache.hits")->as_int64();

  // One repeated query adds exactly one response-cache hit.
  const std::string body =
      R"({"similarity":{"name":")" + archive_->patches[55].name +
      R"(","k":4}})";
  ASSERT_EQ(client.Post(server_->port(), "/api/v2/query", body)->status_code,
            200);
  ASSERT_EQ(client.Post(server_->port(), "/api/v2/query", body)->status_code,
            200);

  auto after = client.Get(server_->port(), "/api/v2/cache/stats");
  ASSERT_TRUE(after.ok());
  auto after_body = json::ParseObject(after->body);
  ASSERT_TRUE(after_body.ok()) << after->body;
  EXPECT_EQ(after_body->GetPath("response_cache.hits")->as_int64(),
            hits_before + 1);

  // The engine and negative-cache sections ride the same endpoint.
  const Value* negative = after_body->Get("negative_cache");
  ASSERT_TRUE(negative != nullptr && negative->is_document());
  EXPECT_TRUE(negative->as_document().Get("enabled")->as_bool());
  const Value* exec = after_body->Get("exec");
  ASSERT_TRUE(exec != nullptr && exec->is_document());
  EXPECT_TRUE(exec->as_document().Get("enabled")->as_bool());
  for (const char* field : {"submitted", "completed", "coalesced", "flights",
                            "batches", "batched_flights", "cache_hits",
                            "negative_hits", "rejected", "flight_warms",
                            "warm_from_flight_hits"}) {
    ASSERT_TRUE(exec->as_document().Get(field) != nullptr &&
                exec->as_document().Get(field)->is_int64())
        << "exec." << field;
  }
  // The repeated query above was executed once by a flight (warming the
  // cache) and then served from that warm entry.
  EXPECT_GE(exec->as_document().Get("flight_warms")->as_int64(), 1);
  EXPECT_GE(exec->as_document().Get("warm_from_flight_hits")->as_int64(), 1);
}

TEST_F(ServiceTest, IndexStatsEndpointUnsharded) {
  HttpClient client;
  auto resp = client.Get(server_->port(), "/api/v2/index/stats");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;
  auto body = json::ParseObject(resp->body);
  ASSERT_TRUE(body.ok()) << resp->body;
  EXPECT_TRUE(body->Get("attached")->as_bool());
  EXPECT_FALSE(body->Get("sharded")->as_bool());
  EXPECT_EQ(body->Get("num_indexed")->as_int64(),
            static_cast<int64_t>(archive_->patches.size()));
  EXPECT_EQ(body->Get("name")->as_string(), "HammingHashTable");
}

/// A partitioned CBIR service behind its own server: the stats endpoint
/// reports per-shard sizes and the batched passes' fan-out counters.
TEST(ShardedServiceTest, IndexStatsEndpointReportsPartitions) {
  bigearthnet::ArchiveConfig config;
  config.num_patches = 120;
  config.seed = 91;
  bigearthnet::ArchiveGenerator generator(config);
  auto archive = generator.Generate();
  ASSERT_TRUE(archive.ok());

  earthqube::EarthQube system;
  ASSERT_TRUE(system.IngestArchive(*archive).ok());
  bigearthnet::FeatureExtractor extractor;
  Tensor features = extractor.ExtractArchive(*archive, generator, 2);
  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 32;
  mconfig.hidden2 = 16;
  mconfig.hash_bits = 32;
  mconfig.dropout = 0.0f;
  earthqube::CbirConfig cbir_config;
  cbir_config.index_kind = earthqube::CbirIndexKind::kLinearScan;
  cbir_config.num_shards = 4;
  auto cbir = std::make_unique<earthqube::CbirService>(
      std::make_unique<milan::MilanModel>(mconfig), &extractor, cbir_config);
  std::vector<std::string> names;
  for (const auto& p : archive->patches) names.push_back(p.name);
  ASSERT_TRUE(cbir->AddImages(names, features).ok());
  system.AttachCbir(std::move(cbir));

  EarthQubeService service(&system);
  HttpServer server(2);
  service.RegisterRoutes(&server);
  ASSERT_TRUE(server.Start(0).ok());

  HttpClient client;
  // A batched pass so the fan-out counters move.
  const std::string batch_body = R"({"names":[")" + names[0] + R"(",")" +
                                 names[1] + R"(",")" + names[2] +
                                 R"("],"radius":10})";
  ASSERT_EQ(
      client.Post(server.port(), "/cbir/batch_search", batch_body)->status_code,
      200);

  auto resp = client.Get(server.port(), "/api/v2/index/stats");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;
  auto body = json::ParseObject(resp->body);
  ASSERT_TRUE(body.ok()) << resp->body;
  EXPECT_TRUE(body->Get("attached")->as_bool());
  EXPECT_TRUE(body->Get("sharded")->as_bool());
  EXPECT_EQ(body->Get("name")->as_string(), "sharded(LinearScan, 4)");
  EXPECT_EQ(body->Get("num_shards")->as_int64(), 4);
  const Value* sizes = body->Get("shard_sizes");
  ASSERT_TRUE(sizes != nullptr && sizes->is_array());
  ASSERT_EQ(sizes->as_array().size(), 4u);
  int64_t total = 0;
  for (const Value& s : sizes->as_array()) total += s.as_int64();
  EXPECT_EQ(total, body->Get("num_indexed")->as_int64());
  EXPECT_GE(body->Get("batch_fanouts")->as_int64(), 1);
  EXPECT_GE(body->Get("fanout_tasks")->as_int64(),
            body->Get("batch_fanouts")->as_int64() * 4);
  ASSERT_TRUE(body->Get("merge_nanos")->is_int64());

  server.Stop();
}

/// Snapshot endpoint: 409 without a durable CBIR service, 200 with one
/// (checkpoint written, WAL reset), and the stats endpoint reports the
/// segment + persistence state.
TEST(PersistentServiceTest, SnapshotEndpointAndPersistenceStats) {
  const std::string dir = "/tmp/agoraeo_netsvc_persist_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  bigearthnet::ArchiveConfig config;
  config.num_patches = 80;
  config.seed = 92;
  bigearthnet::ArchiveGenerator generator(config);
  auto archive = generator.Generate();
  ASSERT_TRUE(archive.ok());

  earthqube::EarthQube system;
  ASSERT_TRUE(system.IngestArchive(*archive).ok());
  bigearthnet::FeatureExtractor extractor;
  Tensor features = extractor.ExtractArchive(*archive, generator, 2);
  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 32;
  mconfig.hidden2 = 16;
  mconfig.hash_bits = 32;
  mconfig.dropout = 0.0f;
  earthqube::CbirConfig cbir_config;
  cbir_config.index_kind = earthqube::CbirIndexKind::kHashTable;
  cbir_config.num_shards = 4;
  cbir_config.snapshot_dir = dir;
  cbir_config.seal_threshold = 16;
  auto cbir = std::make_unique<earthqube::CbirService>(
      std::make_unique<milan::MilanModel>(mconfig), &extractor, cbir_config);
  ASSERT_TRUE(system.RecoverAndAttachCbir(std::move(cbir)).ok());
  std::vector<std::string> names;
  for (const auto& p : archive->patches) names.push_back(p.name);
  ASSERT_TRUE(system.cbir()->AddImages(names, features).ok());

  EarthQubeService service(&system);
  HttpServer server(2);
  service.RegisterRoutes(&server);
  ASSERT_TRUE(server.Start(0).ok());
  HttpClient client;

  auto snap = client.Post(server.port(), "/api/v2/index/snapshot", "{}");
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->status_code, 200) << snap->body;
  auto snap_body = json::ParseObject(snap->body);
  ASSERT_TRUE(snap_body.ok()) << snap->body;
  EXPECT_TRUE(snap_body->Get("snapshotted")->as_bool());
  EXPECT_EQ(snap_body->Get("num_indexed")->as_int64(), 80);
  EXPECT_GE(snap_body->Get("snapshots_written")->as_int64(), 4);
  EXPECT_EQ(std::filesystem::file_size(dir + "/index.wal"), 0u);

  auto resp = client.Get(server.port(), "/api/v2/index/stats");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;
  auto body = json::ParseObject(resp->body);
  ASSERT_TRUE(body.ok()) << resp->body;
  EXPECT_TRUE(body->Get("sharded")->as_bool());
  const Value* segments = body->Get("shard_segments");
  ASSERT_TRUE(segments != nullptr && segments->is_array());
  ASSERT_EQ(segments->as_array().size(), 4u);
  EXPECT_GE(body->Get("seals")->as_int64(), 1);
  // Post-snapshot, everything lives in sealed segments.
  EXPECT_EQ(body->Get("mutable_items")->as_int64(), 0);
  EXPECT_EQ(body->Get("sealed_items")->as_int64(), 80);
  const Value* persistence = body->Get("persistence");
  ASSERT_TRUE(persistence != nullptr && persistence->is_document());
  const Document& pdoc = persistence->as_document();
  EXPECT_TRUE(pdoc.Get("enabled")->as_bool());
  EXPECT_TRUE(pdoc.Get("recovered")->as_bool());
  EXPECT_GE(pdoc.Get("wal_records")->as_int64(), 1);
  EXPECT_GE(pdoc.Get("snapshots_written")->as_int64(), 4);
  server.Stop();
}

TEST_F(ServiceTest, SnapshotEndpointWithoutDurableServiceIs409) {
  HttpClient client;
  auto resp = client.Post(server_->port(), "/api/v2/index/snapshot", "{}");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status_code, 409) << resp->body;
}

/// The v2 query route is deferred: HTTP workers park connections on the
/// execution engine instead of blocking.  Many concurrent clients —
/// more than the server's 2 pool workers — must all be answered, and
/// the engine must have seen every submission.
TEST_F(ServiceTest, ConcurrentDeferredQueriesOverWire) {
  constexpr size_t kClients = 8;
  constexpr size_t kPerClient = 4;
  const std::string hot_body =
      R"({"similarity":{"name":")" + archive_->patches[23].name +
      R"(","radius":8},"projection":"hits"})";
  const uint64_t submitted_before =
      system_->exec_engine()->Stats().submitted;

  std::atomic<size_t> ok_responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      HttpClient client;
      for (size_t i = 0; i < kPerClient; ++i) {
        auto resp = client.Post(server_->port(), "/api/v2/query", hot_body);
        if (resp.ok() && resp->status_code == 200 &&
            resp->body.find("\"results\":[") != std::string::npos) {
          ok_responses.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(ok_responses.load(), kClients * kPerClient);
  EXPECT_GE(system_->exec_engine()->Stats().submitted,
            submitted_before + kClients * kPerClient);
}

/// Negative caching over the wire: a bad archive name 404s every time,
/// and repeats are served from the negative cache.
TEST_F(ServiceTest, RepeatedUnknownNameServedFromNegativeCache) {
  HttpClient client;
  const std::string body =
      R"({"similarity":{"name":"definitely_not_an_archive_image","k":3}})";
  const auto hits_before = system_->query_cache().NegativeStats().hits;
  for (int i = 0; i < 3; ++i) {
    auto resp = client.Post(server_->port(), "/api/v2/query", body);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status_code, 404) << resp->body;
    EXPECT_NE(resp->body.find("\"error\""), std::string::npos);
  }
  EXPECT_GE(system_->query_cache().NegativeStats().hits, hits_before + 2);
}

}  // namespace
}  // namespace agoraeo::netsvc
