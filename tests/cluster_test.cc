/// Tests for the cluster tier: slot routing, the wire codecs, a real
/// 3-node deployment answering the full v2 query matrix byte-identically
/// to a monolithic deployment over the same archive, MOVED redirect
/// discipline, and live slot migration under concurrent query load.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "cluster/cluster_node.h"
#include "cluster/coordinator.h"
#include "cluster/slot_table.h"
#include "cluster/wire.h"
#include "earthqube/earthqube.h"
#include "json/json.h"
#include "milan/milan_model.h"
#include "milan/trainer.h"
#include "milan/triplet_sampler.h"
#include "netsvc/client.h"
#include "netsvc/earthqube_service.h"
#include "netsvc/http.h"
#include "netsvc/server.h"

namespace agoraeo::cluster {
namespace {

using docstore::Document;
using docstore::Value;
using netsvc::HttpClient;
using netsvc::HttpResponse;

// --- slot routing ------------------------------------------------------------

TEST(SlotTableTest, SlotOfIsDeterministicAndInRange) {
  for (const std::string name :
       {"S2A_MSIL2A_20170613T101031_0_45", "S2B_MSIL2A_20170613T101031_0_46",
        "a", "", "S2A_MSIL2A_20170613T101031_0_45x"}) {
    const size_t slot = SlotOf(name, 1024);
    EXPECT_LT(slot, 1024u);
    EXPECT_EQ(slot, SlotOf(name, 1024)) << name;
  }
  // Single-slot tables route everything to slot 0.
  EXPECT_EQ(SlotOf("anything", 1), 0u);
  EXPECT_EQ(SlotOf("anything", 0), 0u);
}

TEST(SlotTableTest, SlotOfSpreadsSimilarNames) {
  // Patch names share long prefixes; the mixer must still spread them.
  std::set<size_t> slots;
  for (int i = 0; i < 256; ++i) {
    slots.insert(SlotOf("S2A_MSIL2A_20170613T101031_0_" + std::to_string(i),
                        1024));
  }
  EXPECT_GT(slots.size(), 180u);
}

TEST(SlotTableTest, EvenPartitionCoversEverySlot) {
  const SlotTable table({{"n1", "127.0.0.1", 1001},
                         {"n2", "127.0.0.1", 1002},
                         {"n3", "127.0.0.1", 1003}},
                        16);
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_EQ(table.num_slots(), 16u);
  size_t total = 0;
  for (const std::string id : {"n1", "n2", "n3"}) {
    const size_t owned = table.CountOwnedBy(id);
    EXPECT_GE(owned, 5u) << id;
    EXPECT_LE(owned, 6u) << id;
    total += owned;
  }
  EXPECT_EQ(total, 16u);
  for (size_t slot = 0; slot < 16; ++slot) {
    EXPECT_NE(table.OwnerOfSlot(slot), nullptr) << slot;
  }
  EXPECT_EQ(table.OwnerOfSlot(99), nullptr);
}

TEST(SlotTableTest, AssignSlotRewiresOwnership) {
  SlotTable table({{"n1", "127.0.0.1", 1001}, {"n2", "127.0.0.1", 1002}}, 8);
  ASSERT_TRUE(table.AssignSlot(0, "n2").ok());
  EXPECT_EQ(table.OwnerOfSlot(0)->id, "n2");
  EXPECT_FALSE(table.AssignSlot(0, "ghost").ok());
  EXPECT_FALSE(table.AssignSlot(64, "n1").ok());
}

TEST(SlotTableTest, JsonRoundTrip) {
  SlotTable table({{"n1", "127.0.0.1", 1001}, {"n2", "10.0.0.7", 1002}}, 8);
  table.set_epoch(42);
  ASSERT_TRUE(table.AssignSlot(3, "n2").ok());
  auto back = SlotTable::FromJson(table.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->epoch(), 42u);
  EXPECT_EQ(back->num_slots(), 8u);
  ASSERT_EQ(back->num_nodes(), 2u);
  EXPECT_EQ(back->node(1).host, "10.0.0.7");
  for (size_t slot = 0; slot < 8; ++slot) {
    EXPECT_EQ(back->OwnerOfSlot(slot)->id, table.OwnerOfSlot(slot)->id);
  }
}

TEST(SlotTableTest, FromJsonRejectsMalformed) {
  SlotTable table({{"n1", "127.0.0.1", 1001}}, 4);
  Document good = table.ToJson();

  Document bad = good;
  bad.Set("num_slots", Value(static_cast<int64_t>(5)));
  EXPECT_FALSE(SlotTable::FromJson(bad).ok());  // slots length mismatch

  bad = good;
  bad.Set("epoch", Value(std::string("later")));
  EXPECT_FALSE(SlotTable::FromJson(bad).ok());

  bad = good;
  bad.Remove("nodes");
  EXPECT_FALSE(SlotTable::FromJson(bad).ok());

  bad = good;
  bad.Set("slots", Value(std::vector<Value>{
                       Value(static_cast<int64_t>(7)), Value(static_cast<int64_t>(0)),
                       Value(static_cast<int64_t>(0)), Value(static_cast<int64_t>(0))}));
  EXPECT_FALSE(SlotTable::FromJson(bad).ok());  // owner out of range
}

// --- wire codecs -------------------------------------------------------------

TEST(WireTest, MovedBodyRoundTrip) {
  const Document body = MovedBody(17, {"n2", "127.0.0.1", 4242}, 9);
  auto moved = ParseMovedBody(body);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved->slot, 17u);
  EXPECT_EQ(moved->owner.id, "n2");
  EXPECT_EQ(moved->owner.host, "127.0.0.1");
  EXPECT_EQ(moved->owner.port, 4242);
  EXPECT_EQ(moved->epoch, 9u);
}

TEST(WireTest, SlotPayloadRoundTrip) {
  SlotPayload payload;
  payload.slot = 5;
  payload.epoch = 3;
  bigearthnet::ArchiveConfig config;
  config.num_patches = 6;
  config.seed = 9;
  bigearthnet::ArchiveGenerator generator(config);
  auto archive = generator.Generate();
  ASSERT_TRUE(archive.ok());
  for (const auto& patch : archive->patches) {
    payload.names.push_back(patch.name);
    payload.metadata.push_back(patch);
    std::string bits;
    for (int b = 0; b < 32; ++b) bits += (patch.name.size() + b) % 3 ? '1' : '0';
    payload.codes.push_back(BinaryCode::FromBitString(bits));
  }
  auto doc = SlotPayloadToJson(payload);
  ASSERT_TRUE(doc.ok());
  // The payload survives a serialize/parse cycle (what actually crosses
  // the wire between nodes).
  auto reparsed = json::ParseObject(json::Serialize(*doc));
  ASSERT_TRUE(reparsed.ok());
  auto back = ParseSlotPayload(*reparsed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->slot, 5u);
  EXPECT_EQ(back->epoch, 3u);
  ASSERT_EQ(back->names.size(), payload.names.size());
  for (size_t i = 0; i < payload.names.size(); ++i) {
    EXPECT_EQ(back->names[i], payload.names[i]);
    EXPECT_EQ(back->codes[i].ToBitString(), payload.codes[i].ToBitString());
    EXPECT_EQ(back->metadata[i].name, payload.metadata[i].name);
    EXPECT_EQ(back->metadata[i].labels, payload.metadata[i].labels);
    EXPECT_EQ(back->metadata[i].country, payload.metadata[i].country);
  }
}

// --- 3-node cluster vs monolith ----------------------------------------------

/// Strips the two fields that legitimately differ between a monolithic
/// and a clustered answer: the plan (the coordinator synthesises its
/// own) and the cache marker.  Everything else must be byte-identical.
std::string Canonical(const std::string& body) {
  auto doc = json::ParseObject(body);
  EXPECT_TRUE(doc.ok()) << body;
  if (!doc.ok()) return body;
  doc->Remove("plan");
  doc->Remove("served_from_cache");
  // Batch envelopes nest the per-request responses.
  const Value* responses = doc->Get("responses");
  if (responses != nullptr && responses->is_array()) {
    std::vector<Value> cleaned;
    for (const Value& entry : responses->as_array()) {
      Document one = entry.as_document();
      one.Remove("plan");
      one.Remove("served_from_cache");
      cleaned.emplace_back(std::move(one));
    }
    doc->Set("responses", Value(std::move(cleaned)));
  }
  return json::Serialize(*doc);
}

class ClusterTest : public ::testing::Test {
 protected:
  static constexpr size_t kNumSlots = 64;

  static void SetUpTestSuite() {
    bigearthnet::ArchiveConfig config;
    config.num_patches = 800;
    config.seed = 77;
    generator_ = new bigearthnet::ArchiveGenerator(config);
    auto archive = generator_->Generate();
    ASSERT_TRUE(archive.ok());
    archive_ = new bigearthnet::Archive(std::move(archive).value());

    // One trained model shared (via save/load) by the monolith and
    // every node: identical codes everywhere.
    bigearthnet::FeatureExtractor extractor;
    Tensor features = extractor.ExtractArchive(*archive_, *generator_, 2);
    milan::MilanConfig mconfig;
    mconfig.feature_dim = bigearthnet::kFeatureDim;
    mconfig.hidden1 = 64;
    mconfig.hidden2 = 32;
    mconfig.hash_bits = 32;
    mconfig.dropout = 0.0f;
    auto model = std::make_unique<milan::MilanModel>(mconfig);
    std::vector<bigearthnet::LabelSet> labels;
    for (const auto& p : archive_->patches) labels.push_back(p.labels);
    milan::TripletSampler sampler(labels);
    milan::TrainConfig tconfig;
    tconfig.epochs = 2;
    tconfig.batches_per_epoch = 10;
    tconfig.batch_size = 16;
    milan::Trainer trainer(model.get(), &features, &sampler, tconfig);
    ASSERT_TRUE(trainer.Train().ok());
    model_path_ = new std::string(
        (std::filesystem::temp_directory_path() / "cluster_test_model.milan")
            .string());
    ASSERT_TRUE(model->Save(*model_path_).ok());

    // Monolithic reference deployment.
    extractor_ = new bigearthnet::FeatureExtractor();
    mono_ = new earthqube::EarthQube();
    ASSERT_TRUE(mono_->IngestArchive(*archive_).ok());
    auto mono_cbir =
        std::make_unique<earthqube::CbirService>(std::move(model), extractor_);
    std::vector<std::string> names;
    for (const auto& p : archive_->patches) names.push_back(p.name);
    ASSERT_TRUE(mono_cbir->AddImages(names, features).ok());
    mono_->AttachCbir(std::move(mono_cbir));
    mono_service_ = new netsvc::EarthQubeService(mono_);
    mono_server_ = new netsvc::HttpServer(2);
    mono_service_->RegisterRoutes(mono_server_);
    ASSERT_TRUE(mono_server_->Start(0).ok());

    // The monolith's codes are the cluster's ingest payload.
    codes_ = new std::vector<BinaryCode>();
    for (const auto& p : archive_->patches) {
      auto code = mono_->cbir()->CodeOf(p.name);
      ASSERT_TRUE(code.ok()) << p.name;
      codes_->push_back(*std::move(code));
    }

    // Three cluster nodes, each a full stack over an empty system.
    for (int i = 0; i < 3; ++i) {
      systems_[i] = NewNodeSystem();
      ClusterNode::Options options;
      options.id = "n" + std::to_string(i + 1);
      nodes_[i] = new ClusterNode(systems_[i], options);
      ASSERT_TRUE(nodes_[i]->Start(0).ok());
    }
    const SlotTable table({nodes_[0]->address(), nodes_[1]->address(),
                           nodes_[2]->address()},
                          kNumSlots);
    for (auto* node : nodes_) node->SetTable(table);

    coordinator_ = new Coordinator();
    coordinator_->AttachTable(table);
    ASSERT_TRUE(coordinator_->IngestArchive(*archive_, *codes_).ok());

    coordinator_server_ = new netsvc::HttpServer(2);
    coordinator_->RegisterRoutes(coordinator_server_);
    ASSERT_TRUE(coordinator_server_->Start(0).ok());
  }

  static void TearDownTestSuite() {
    coordinator_server_->Stop();
    delete coordinator_server_;
    delete coordinator_;
    for (auto*& node : nodes_) {
      node->Stop();
      delete node;
      node = nullptr;
    }
    for (auto*& system : systems_) {
      delete system;
      system = nullptr;
    }
    mono_server_->Stop();
    delete mono_server_;
    delete mono_service_;
    delete mono_;
    delete extractor_;
    delete codes_;
    std::filesystem::remove(*model_path_);
    delete model_path_;
    delete archive_;
    delete generator_;
  }

  /// A fresh single-node stack with the shared model loaded.
  static earthqube::EarthQube* NewNodeSystem() {
    auto* system = new earthqube::EarthQube();
    auto model = milan::MilanModel::Load(*model_path_);
    EXPECT_TRUE(model.ok());
    system->AttachCbir(std::make_unique<earthqube::CbirService>(
        std::move(*model), extractor_));
    return system;
  }

  /// Posts the same body to the monolith and the coordinator and
  /// expects canonically identical answers.
  static void ExpectParity(const std::string& body) {
    HttpClient client;
    auto mono = client.Post(mono_server_->port(), "/api/v2/query", body);
    auto cluster =
        client.Post(coordinator_server_->port(), "/api/v2/query", body);
    ASSERT_TRUE(mono.ok());
    ASSERT_TRUE(cluster.ok());
    ASSERT_EQ(mono->status_code, 200) << mono->body;
    ASSERT_EQ(cluster->status_code, 200) << cluster->body;
    EXPECT_EQ(Canonical(cluster->body), Canonical(mono->body)) << body;
  }

  static bigearthnet::ArchiveGenerator* generator_;
  static bigearthnet::Archive* archive_;
  static bigearthnet::FeatureExtractor* extractor_;
  static std::string* model_path_;
  static std::vector<BinaryCode>* codes_;
  static earthqube::EarthQube* mono_;
  static netsvc::EarthQubeService* mono_service_;
  static netsvc::HttpServer* mono_server_;
  static earthqube::EarthQube* systems_[3];
  static ClusterNode* nodes_[3];
  static Coordinator* coordinator_;
  static netsvc::HttpServer* coordinator_server_;
};

bigearthnet::ArchiveGenerator* ClusterTest::generator_ = nullptr;
bigearthnet::Archive* ClusterTest::archive_ = nullptr;
bigearthnet::FeatureExtractor* ClusterTest::extractor_ = nullptr;
std::string* ClusterTest::model_path_ = nullptr;
std::vector<BinaryCode>* ClusterTest::codes_ = nullptr;
earthqube::EarthQube* ClusterTest::mono_ = nullptr;
netsvc::EarthQubeService* ClusterTest::mono_service_ = nullptr;
netsvc::HttpServer* ClusterTest::mono_server_ = nullptr;
earthqube::EarthQube* ClusterTest::systems_[3] = {nullptr, nullptr, nullptr};
ClusterNode* ClusterTest::nodes_[3] = {nullptr, nullptr, nullptr};
Coordinator* ClusterTest::coordinator_ = nullptr;
netsvc::HttpServer* ClusterTest::coordinator_server_ = nullptr;

TEST_F(ClusterTest, IngestSharded) {
  // Every node holds a proper, non-empty subset.
  size_t total = 0;
  for (auto* system : systems_) {
    EXPECT_GT(system->num_images(), 0u);
    EXPECT_LT(system->num_images(), archive_->patches.size());
    total += system->num_images();
  }
  EXPECT_EQ(total, archive_->patches.size());
  // And the subset is exactly the names whose slots the node owns.
  const SlotTable table = nodes_[0]->table();
  for (const auto& patch : archive_->patches) {
    const NodeAddress* owner = table.OwnerOfName(patch.name);
    ASSERT_NE(owner, nullptr);
    for (int i = 0; i < 3; ++i) {
      const bool here = nodes_[i]->id() == owner->id;
      EXPECT_EQ(systems_[i]->GetMetadata(patch.name).ok(), here) << patch.name;
    }
  }
}

TEST_F(ClusterTest, PanelQueriesMatchMonolith) {
  ExpectParity(
      R"({"panel":{"labels":{"operator":"some","names":["Broad-leaved forest",)"
      R"("Coniferous forest","Mixed forest"]}}})");
  ExpectParity(
      R"({"panel":{"date_range":{"begin":"2017-07-01","end":"2017-08-31"}}})");
  ExpectParity(
      R"({"panel":{"geo":{"rect":{"min_lat":40,"min_lon":5,)"
      R"("max_lat":55,"max_lon":20}}}})");
  ExpectParity(
      R"({"panel":{"geo":{"circle":{"lat":48.0,"lon":11.0,)"
      R"("radius_m":400000}},"satellites":["S2A"]}})");
  ExpectParity(R"({"panel":{"seasons":["summer"],"limit":37}})");
  ExpectParity(
      R"({"panel":{"labels":{"operator":"some","names":["Water bodies"]},)"
      R"("limit":10},"projection":"full"})");
}

TEST_F(ClusterTest, SimilarityByCodeMatchesMonolith) {
  const std::string code = (*codes_)[11].ToBitString();
  ExpectParity(R"({"similarity":{"code":")" + code + R"(","k":25}})");
  ExpectParity(R"({"similarity":{"code":")" + code + R"(","radius":6}})");
  ExpectParity(R"({"similarity":{"code":")" + code +
               R"(","radius":8,"limit":15}})");
  ExpectParity(R"({"similarity":{"code":")" + code +
               R"(","k":10},"projection":"full"})");
}

TEST_F(ClusterTest, SimilarityByNameMatchesMonolith) {
  // Subjects spread over all three nodes: by-name resolution must work
  // wherever the subject lives.
  const SlotTable table = nodes_[0]->table();
  std::set<std::string> covered;
  for (const auto& patch : archive_->patches) {
    if (!covered.insert(table.OwnerOfName(patch.name)->id).second) continue;
    ExpectParity(R"({"similarity":{"name":")" + patch.name + R"(","k":20}})");
    ExpectParity(R"({"similarity":{"name":")" + patch.name +
                 R"(","radius":7},"projection":"full"})");
    if (covered.size() == 3) break;
  }
  EXPECT_EQ(covered.size(), 3u);
}

TEST_F(ClusterTest, HybridQueriesMatchMonolith) {
  const std::string code = (*codes_)[42].ToBitString();
  for (const std::string planner : {"auto", "pre_filter", "post_filter"}) {
    ExpectParity(
        R"({"panel":{"labels":{"operator":"some","names":["Pastures",)"
        R"("Water bodies","Beaches, dunes, sands"]}},)"
        R"("similarity":{"code":")" +
        code + R"(","k":30},"planner":")" + planner +
        R"(","projection":"full"})");
    ExpectParity(
        R"({"panel":{"seasons":["summer","autumn"]},)"
        R"("similarity":{"name":")" +
        archive_->patches[5].name + R"(","radius":9},"planner":")" + planner +
        R"("})");
  }
}

TEST_F(ClusterTest, PagingAndCursorMatchMonolith) {
  const std::string base =
      R"({"panel":{"labels":{"operator":"some","names":["Pastures"]}},)"
      R"("projection":"full","page_size":7)";
  ExpectParity(base + "}");
  ExpectParity(base + R"(,"page":2})");

  // Follow the cluster's cursor on BOTH deployments: the cursor itself
  // must be interchangeable.
  HttpClient client;
  auto first =
      client.Post(coordinator_server_->port(), "/api/v2/query", base + "}");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->status_code, 200) << first->body;
  auto doc = json::ParseObject(first->body);
  ASSERT_TRUE(doc.ok());
  const Value* cursor = doc->Get("cursor");
  ASSERT_NE(cursor, nullptr);
  ASSERT_TRUE(cursor->is_string());
  ExpectParity(
      R"({"panel":{"labels":{"operator":"some","names":["Pastures"]}},)"
      R"("projection":"full","cursor":")" +
      cursor->as_string() + R"("})");
}

TEST_F(ClusterTest, RankedCursorWalkMatchesMonolithPageByPage) {
  // Walk an ENTIRE ranked result set page by page on both deployments,
  // feeding each side's cursor forward.  Beyond row parity, the raw
  // cursor TOKENS must be identical: both tiers derive the v3 handle id
  // from the same page-free request fingerprint, which is what lets a
  // client move between a monolith and a cluster mid-pagination.
  const std::string code = (*codes_)[11].ToBitString();
  const std::string subject = R"("similarity":{"code":")" + code +
                              R"(","radius":8},"page_size":9)";
  const auto hits_before = coordinator_->result_cache_stats().hits;

  HttpClient client;
  std::string body = "{" + subject + "}";
  size_t pages = 0;
  for (; pages < 120; ++pages) {
    auto mono = client.Post(mono_server_->port(), "/api/v2/query", body);
    auto cluster =
        client.Post(coordinator_server_->port(), "/api/v2/query", body);
    ASSERT_TRUE(mono.ok());
    ASSERT_TRUE(cluster.ok());
    ASSERT_EQ(mono->status_code, 200) << mono->body;
    ASSERT_EQ(cluster->status_code, 200) << cluster->body;
    EXPECT_EQ(Canonical(cluster->body), Canonical(mono->body)) << body;

    auto mono_doc = json::ParseObject(mono->body);
    auto cluster_doc = json::ParseObject(cluster->body);
    ASSERT_TRUE(mono_doc.ok());
    ASSERT_TRUE(cluster_doc.ok());
    const Value* mono_cursor = mono_doc->Get("cursor");
    const Value* cluster_cursor = cluster_doc->Get("cursor");
    ASSERT_NE(mono_cursor, nullptr);
    ASSERT_NE(cluster_cursor, nullptr);
    EXPECT_EQ(cluster_cursor->as_string(), mono_cursor->as_string())
        << "cursor tokens diverged on page " << pages;
    if (cluster_cursor->as_string().empty()) break;
    body = "{" + subject + R"(,"cursor":")" + cluster_cursor->as_string() +
           R"("})";
  }
  EXPECT_GT(pages, 1u) << "ranking too small to exercise cursor resume";
  ASSERT_LT(pages, 120u) << "cursor chain never terminated";

  // Every page after the first resumed the coordinator's cached merged
  // ranking instead of fanning out again.
  EXPECT_GE(coordinator_->result_cache_stats().hits - hits_before, pages);
}

TEST_F(ClusterTest, BatchMatchesMonolith) {
  const std::string code = (*codes_)[3].ToBitString();
  ExpectParity(
      R"({"requests":[)"
      R"({"panel":{"seasons":["winter"]}},)"
      R"({"similarity":{"code":")" +
      code +
      R"(","k":12}},)"
      R"({"panel":{"labels":{"operator":"some","names":["Pastures"]}},)"
      R"("similarity":{"code":")" +
      code + R"(","radius":10}}]})");
}

TEST_F(ClusterTest, CoordinatorServesResultCacheStats) {
  HttpClient client;
  auto resp = client.Get(coordinator_server_->port(), "/api/v2/cache/stats");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;
  auto doc = json::ParseObject(resp->body);
  ASSERT_TRUE(doc.ok());
  const Value* rankings = doc->Get("merged_rankings");
  ASSERT_NE(rankings, nullptr);
  ASSERT_TRUE(rankings->is_document());
  const Value* enabled = rankings->as_document().Get("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(enabled->as_bool());
  EXPECT_NE(doc->Get("result_epoch"), nullptr);
}

TEST_F(ClusterTest, CoordinatorServesSlotTable) {
  HttpClient client;
  auto resp = client.Get(coordinator_server_->port(), "/api/v2/cluster/slots");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200);
  auto doc = json::ParseObject(resp->body);
  ASSERT_TRUE(doc.ok());
  auto table = SlotTable::FromJson(*doc);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_slots(), kNumSlots);
  EXPECT_EQ(table->num_nodes(), 3u);

  // RefreshTopology bootstraps a second coordinator from any member.
  Coordinator fresh;
  ASSERT_TRUE(fresh.RefreshTopology(nodes_[1]->address()).ok());
  EXPECT_EQ(fresh.table().num_slots(), kNumSlots);
  EXPECT_EQ(fresh.epoch(), coordinator_->epoch());
}

TEST_F(ClusterTest, NodeStatsCarryNodeBlock) {
  HttpClient client;
  for (const std::string target :
       {std::string("/api/v2/index/stats"), std::string("/api/v2/cache/stats")}) {
    auto resp = client.Get(nodes_[1]->port(), target);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->status_code, 200) << resp->body;
    auto doc = json::ParseObject(resp->body);
    ASSERT_TRUE(doc.ok());
    const Value* node = doc->Get("node");
    ASSERT_NE(node, nullptr) << target;
    ASSERT_TRUE(node->is_document());
    EXPECT_EQ(node->as_document().Get("id")->as_string(), "n2");
    EXPECT_GT(node->as_document().Get("owned_slots")->as_int64(), 0);
    EXPECT_GE(node->as_document().Get("cluster_epoch")->as_int64(), 1);
  }
}

TEST_F(ClusterTest, UnownedByNameSubjectAnswersMoved) {
  // Find a patch and a node that does NOT own it.
  const SlotTable table = nodes_[0]->table();
  const auto& patch = archive_->patches[0];
  const NodeAddress* owner = table.OwnerOfName(patch.name);
  ASSERT_NE(owner, nullptr);
  ClusterNode* wrong = nullptr;
  for (auto* node : nodes_) {
    if (node->id() != owner->id) wrong = node;
  }
  ASSERT_NE(wrong, nullptr);

  HttpClient client;
  auto resp = client.Post(wrong->port(), "/api/v2/query",
                          R"({"similarity":{"name":")" + patch.name +
                              R"(","k":5}})");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 308) << resp->body;
  EXPECT_NE(resp->headers.find("x-cluster-epoch"), resp->headers.end());
  auto doc = json::ParseObject(resp->body);
  ASSERT_TRUE(doc.ok());
  auto moved = ParseMovedBody(*doc);
  ASSERT_TRUE(moved.ok()) << resp->body;
  EXPECT_EQ(moved->owner.id, owner->id);
  EXPECT_EQ(moved->owner.port, owner->port);
  EXPECT_EQ(moved->slot, SlotOf(patch.name, kNumSlots));

  // The same subject at the right node answers 200.
  for (auto* node : nodes_) {
    if (node->id() != owner->id) continue;
    auto good = client.Post(node->port(), "/api/v2/query",
                            R"({"similarity":{"name":")" + patch.name +
                                R"(","k":5}})");
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good->status_code, 200) << good->body;
  }
}

TEST_F(ClusterTest, CoordinatorFollowsExactlyOneRedirect) {
  // Two nodes with deliberately conflicting tables: each claims the
  // OTHER owns the probe slot, so every code lookup answers MOVED.
  const std::string name = archive_->patches[7].name;
  const size_t slot = SlotOf(name, 8);

  earthqube::EarthQube a_system, b_system;
  ClusterNode::Options a_options, b_options;
  a_options.id = "a";
  b_options.id = "b";
  ClusterNode a(&a_system, a_options);
  ClusterNode b(&b_system, b_options);
  ASSERT_TRUE(a.Start(0).ok());
  ASSERT_TRUE(b.Start(0).ok());

  SlotTable base({a.address(), b.address()}, 8);
  SlotTable for_a = base;
  ASSERT_TRUE(for_a.AssignSlot(slot, "b").ok());
  SlotTable for_b = base;
  ASSERT_TRUE(for_b.AssignSlot(slot, "a").ok());
  a.SetTable(for_a);
  b.SetTable(for_b);

  Coordinator coordinator;
  SlotTable for_coordinator = base;
  ASSERT_TRUE(for_coordinator.AssignSlot(slot, "a").ok());
  coordinator.AttachTable(for_coordinator);

  EXPECT_EQ(coordinator.redirects_followed(), 0u);
  auto result = coordinator.Query(R"({"similarity":{"name":")" + name +
                                  R"(","k":3}})");
  ASSERT_FALSE(result.ok());
  // Exactly one redirect was followed before giving up — never a loop.
  EXPECT_EQ(coordinator.redirects_followed(), 1u);

  a.Stop();
  b.Stop();
}

// --- live migration ----------------------------------------------------------

class MigrationTest : public ClusterTest {};

TEST_F(MigrationTest, MigrationMovesSlotAndKeepsParity) {
  // Fresh 2-node cluster over the shared archive + codes.
  std::unique_ptr<earthqube::EarthQube> s1(NewNodeSystem());
  std::unique_ptr<earthqube::EarthQube> s2(NewNodeSystem());
  ClusterNode::Options o1, o2;
  o1.id = "m1";
  o2.id = "m2";
  ClusterNode n1(s1.get(), o1);
  ClusterNode n2(s2.get(), o2);
  ASSERT_TRUE(n1.Start(0).ok());
  ASSERT_TRUE(n2.Start(0).ok());
  const SlotTable table({n1.address(), n2.address()}, 8);
  n1.SetTable(table);
  n2.SetTable(table);
  Coordinator coordinator;
  coordinator.AttachTable(table);
  ASSERT_TRUE(coordinator.IngestArchive(*archive_, *codes_).ok());

  // Pick an owned slot with data and migrate it over the wire.
  const std::vector<size_t> owned = table.SlotsOwnedBy("m1");
  ASSERT_FALSE(owned.empty());
  size_t slot = owned[0];
  for (size_t candidate : owned) {
    for (const auto& patch : archive_->patches) {
      if (SlotOf(patch.name, 8) == candidate) {
        slot = candidate;
        break;
      }
    }
  }
  const size_t before_n2 = s2->num_images();
  HttpClient client;
  auto resp = client.Post(n1.port(), "/api/v2/cluster/migrate",
                          R"({"slot":)" + std::to_string(slot) +
                              R"(,"target":"m2"})");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status_code, 200) << resp->body;

  // Ownership flipped, epoch advanced, tombstone recorded.
  EXPECT_EQ(n1.table().OwnerOfSlot(slot)->id, "m2");
  EXPECT_GT(n1.epoch(), 1u);
  const auto tombstones = n1.tombstoned_slots();
  EXPECT_NE(std::find(tombstones.begin(), tombstones.end(), slot),
            tombstones.end());
  EXPECT_GT(s2->num_images(), before_n2);

  // A by-name subject from the migrated slot now 308s at the source...
  std::string migrated_name;
  for (const auto& patch : archive_->patches) {
    if (SlotOf(patch.name, 8) == slot) {
      migrated_name = patch.name;
      break;
    }
  }
  ASSERT_FALSE(migrated_name.empty());
  auto at_source = client.Post(n1.port(), "/api/v2/query",
                               R"({"similarity":{"name":")" + migrated_name +
                                   R"(","k":5}})");
  ASSERT_TRUE(at_source.ok());
  EXPECT_EQ(at_source->status_code, 308) << at_source->body;
  // ...and answers at the new owner.
  auto at_target = client.Post(n2.port(), "/api/v2/query",
                               R"({"similarity":{"name":")" + migrated_name +
                                   R"(","k":5}})");
  ASSERT_TRUE(at_target.ok());
  EXPECT_EQ(at_target->status_code, 200) << at_target->body;

  // Full parity after the move: the coordinator chases the 308 via the
  // epoch refresh and the merged answers still match the monolith.
  netsvc::HttpServer coordinator_server(2);
  coordinator.RegisterRoutes(&coordinator_server);
  ASSERT_TRUE(coordinator_server.Start(0).ok());
  const std::string code = (*codes_)[11].ToBitString();
  const std::vector<std::string> parity_bodies = {
      R"({"similarity":{"code":")" + code + R"(","k":25}})",
      R"({"similarity":{"name":")" + migrated_name +
          R"(","k":20},"projection":"full"})",
      R"({"panel":{"labels":{"operator":"some",)"
      R"("names":["Pastures","Water bodies"]}},"projection":"full"})",
  };
  for (const std::string& body : parity_bodies) {
    auto mono = client.Post(mono_server_->port(), "/api/v2/query", body);
    auto clustered =
        client.Post(coordinator_server.port(), "/api/v2/query", body);
    ASSERT_TRUE(mono.ok());
    ASSERT_TRUE(clustered.ok());
    ASSERT_EQ(clustered->status_code, 200) << clustered->body;
    EXPECT_EQ(Canonical(clustered->body), Canonical(mono->body)) << body;
  }
  coordinator_server.Stop();
  n1.Stop();
  n2.Stop();
}

TEST_F(MigrationTest, QueriesUnderLiveMigrationLoseNothing) {
  // 2-node cluster; hammer the coordinator from several threads while
  // every slot of m1 migrates to m2.  Every in-flight answer must stay
  // well-formed and row-identical to the monolith: the dedup-by-name
  // merge makes the ASK-window union exact.
  std::unique_ptr<earthqube::EarthQube> s1(NewNodeSystem());
  std::unique_ptr<earthqube::EarthQube> s2(NewNodeSystem());
  ClusterNode::Options o1, o2;
  o1.id = "m1";
  o2.id = "m2";
  ClusterNode n1(s1.get(), o1);
  ClusterNode n2(s2.get(), o2);
  ASSERT_TRUE(n1.Start(0).ok());
  ASSERT_TRUE(n2.Start(0).ok());
  const SlotTable table({n1.address(), n2.address()}, 8);
  n1.SetTable(table);
  n2.SetTable(table);
  auto coordinator = std::make_unique<Coordinator>();
  coordinator->AttachTable(table);
  ASSERT_TRUE(coordinator->IngestArchive(*archive_, *codes_).ok());

  // Expected answers, computed against the monolith up front.
  const std::string code = (*codes_)[23].ToBitString();
  const std::vector<std::string> bodies = {
      R"({"similarity":{"code":")" + code + R"(","k":40}})",
      R"({"similarity":{"code":")" + code + R"(","radius":8}})",
      R"({"panel":{"labels":{"operator":"some","names":["Pastures",)"
      R"("Coniferous forest"]}},"projection":"full"})",
      R"({"panel":{"seasons":["summer"]},"similarity":{"code":")" + code +
          R"(","k":25},"projection":"full"})",
  };
  HttpClient setup_client;
  std::vector<std::string> expected;
  for (const std::string& body : bodies) {
    auto mono = setup_client.Post(mono_server_->port(), "/api/v2/query", body);
    ASSERT_TRUE(mono.ok());
    ASSERT_EQ(mono->status_code, 200);
    expected.push_back(Canonical(mono->body));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 4; ++t) {
    hammers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& body = bodies[i++ % bodies.size()];
        auto result = coordinator->Query(body);
        if (!result.ok()) {
          ++failures;
          continue;
        }
        ++answered;
        if (Canonical(*result) !=
            expected[(i - 1) % bodies.size()]) {
          ++mismatches;
        }
      }
    });
  }

  // Migrate every slot m1 owns, one at a time, under load.
  HttpClient client;
  for (const size_t slot : table.SlotsOwnedBy("m1")) {
    auto resp = client.Post(n1.port(), "/api/v2/cluster/migrate",
                            R"({"slot":)" + std::to_string(slot) +
                                R"(,"target":"m2"})");
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->status_code, 200) << resp->body;
  }
  // Let the hammers observe the post-migration steady state too.
  for (int burst = 0; burst < 4; ++burst) {
    auto result = coordinator->Query(bodies[0]);
    ASSERT_TRUE(result.ok());
  }
  stop = true;
  for (auto& thread : hammers) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(answered.load(), 0);

  // End state: m1 serves nothing, m2 everything.
  EXPECT_EQ(n1.owned_slot_count(), 0u);
  EXPECT_EQ(n1.tombstoned_slots().size(), table.SlotsOwnedBy("m1").size());
  EXPECT_EQ(n2.owned_slot_count(), 8u);
  auto final_result = coordinator->Query(bodies[2]);
  ASSERT_TRUE(final_result.ok());
  EXPECT_EQ(Canonical(*final_result), expected[2]);

  n1.Stop();
  n2.Stop();
}

}  // namespace
}  // namespace agoraeo::cluster
