#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/gradient_check.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace agoraeo::nn {
namespace {

/// Scalar loss L = 0.5 * sum(output^2); grad = output.
LossFn QuadraticLoss() {
  LossFn loss;
  loss.value = [](const Tensor& out) {
    float acc = 0;
    for (size_t i = 0; i < out.size(); ++i) acc += out[i] * out[i];
    return 0.5f * acc;
  };
  loss.grad = [](const Tensor& out) { return out; };
  return loss;
}

TEST(DenseTest, ForwardMatchesManual) {
  Rng rng(1);
  Dense dense(2, 2, Init::kZero, &rng);
  dense.weight().value = Tensor({2, 2}, {1, 2, 3, 4});
  dense.bias().value = Tensor({2}, {10, 20});
  Tensor x({1, 2}, {1, 1});
  Tensor y = dense.Forward(x, false);
  EXPECT_EQ(y.at(0, 0), 14.0f);  // 1*1 + 1*3 + 10
  EXPECT_EQ(y.at(0, 1), 26.0f);  // 1*2 + 1*4 + 20
}

TEST(DenseTest, OutputDimAndName) {
  Rng rng(2);
  Dense dense(128, 512, Init::kHeNormal, &rng);
  EXPECT_EQ(dense.OutputDim(128), 512u);
  EXPECT_EQ(dense.Name(), "Dense(128->512)");
  EXPECT_EQ(dense.Params().size(), 2u);
}

TEST(DenseTest, XavierInitBounded) {
  Rng rng(3);
  Dense dense(100, 100, Init::kXavierUniform, &rng);
  const float limit = std::sqrt(6.0f / 200.0f);
  EXPECT_GE(dense.weight().value.Min(), -limit);
  EXPECT_LE(dense.weight().value.Max(), limit);
  EXPECT_EQ(dense.bias().value.Sum(), 0.0f);
}

TEST(DenseTest, GradientCheck) {
  Rng rng(4);
  Sequential net;
  net.Emplace<Dense>(5, 3, Init::kXavierUniform, &rng);
  Tensor input = Tensor::RandomNormal({4, 5}, 1.0f, &rng);
  auto result = CheckGradients(&net, input, QuadraticLoss(), 64);
  EXPECT_GT(result.checked, 0u);
  EXPECT_LT(result.max_rel_error, 0.02f);
}

TEST(ReLUTest, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x({1, 4}, {-1, 0, 2, -3});
  Tensor y = relu.Forward(x, false);
  EXPECT_EQ(y, Tensor({1, 4}, {0, 0, 2, 0}));
}

TEST(ReLUTest, BackwardMasksGradient) {
  ReLU relu;
  Tensor x({1, 4}, {-1, 0.5f, 2, -3});
  relu.Forward(x, false);
  Tensor g({1, 4}, {1, 1, 1, 1});
  Tensor gx = relu.Backward(g);
  EXPECT_EQ(gx, Tensor({1, 4}, {0, 1, 1, 0}));
}

TEST(TanhTest, ForwardRange) {
  Tanh tanh_layer;
  Tensor x({1, 3}, {-100, 0, 100});
  Tensor y = tanh_layer.Forward(x, false);
  EXPECT_NEAR(y[0], -1.0f, 1e-5f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_NEAR(y[2], 1.0f, 1e-5f);
}

TEST(TanhTest, GradientCheckThroughDense) {
  Rng rng(5);
  Sequential net;
  net.Emplace<Dense>(4, 4, Init::kXavierUniform, &rng);
  net.Emplace<Tanh>();
  Tensor input = Tensor::RandomNormal({3, 4}, 0.5f, &rng);
  auto result = CheckGradients(&net, input, QuadraticLoss(), 48);
  EXPECT_LT(result.max_rel_error, 0.02f);
}

TEST(SigmoidTest, ForwardAndGradientCheck) {
  Sigmoid sig;
  Tensor x({1, 2}, {0, 100});
  Tensor y = sig.Forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.5f);
  EXPECT_NEAR(y[1], 1.0f, 1e-5f);

  Rng rng(6);
  Sequential net;
  net.Emplace<Dense>(3, 3, Init::kXavierUniform, &rng);
  net.Emplace<Sigmoid>();
  Tensor input = Tensor::RandomNormal({2, 3}, 1.0f, &rng);
  auto result = CheckGradients(&net, input, QuadraticLoss(), 32);
  EXPECT_LT(result.max_rel_error, 0.02f);
}

TEST(DropoutTest, IdentityAtInference) {
  Rng rng(7);
  Dropout drop(0.5f, &rng);
  Tensor x = Tensor::RandomNormal({4, 8}, 1.0f, &rng);
  Tensor y = drop.Forward(x, /*training=*/false);
  EXPECT_EQ(y, x);
}

TEST(DropoutTest, TrainingZeroesAboutPFraction) {
  Rng rng(8);
  Dropout drop(0.3f, &rng);
  Tensor x = Tensor::Full({100, 100}, 1.0f);
  Tensor y = drop.Forward(x, /*training=*/true);
  size_t zeros = 0;
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.3, 0.02);
  // Survivors are scaled to keep the expectation.
  EXPECT_NEAR(y.Mean(), 1.0f, 0.05f);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(9);
  Dropout drop(0.5f, &rng);
  Tensor x = Tensor::Full({1, 100}, 1.0f);
  Tensor y = drop.Forward(x, /*training=*/true);
  Tensor g = Tensor::Full({1, 100}, 1.0f);
  Tensor gx = drop.Backward(g);
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_EQ(gx[i], y[i]);  // mask * scale matches exactly for all-ones
  }
}

TEST(SequentialTest, ChainsLayers) {
  Rng rng(10);
  Sequential net;
  net.Emplace<Dense>(8, 16, Init::kHeNormal, &rng);
  net.Emplace<ReLU>();
  net.Emplace<Dense>(16, 4, Init::kXavierUniform, &rng);
  net.Emplace<Tanh>();
  EXPECT_EQ(net.NumLayers(), 4u);
  EXPECT_EQ(net.Params().size(), 4u);
  EXPECT_EQ(net.NumParams(), 8u * 16 + 16 + 16 * 4 + 4);

  Tensor x = Tensor::RandomNormal({5, 8}, 1.0f, &rng);
  Tensor y = net.Forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<size_t>{5, 4}));
  EXPECT_LE(y.Max(), 1.0f);
  EXPECT_GE(y.Min(), -1.0f);
}

TEST(SequentialTest, ZeroGradClearsAccumulation) {
  Rng rng(11);
  Sequential net;
  net.Emplace<Dense>(3, 2, Init::kHeNormal, &rng);
  Tensor x = Tensor::RandomNormal({2, 3}, 1.0f, &rng);
  Tensor y = net.Forward(x, true);
  net.Backward(y);
  float grad_norm = net.Params()[0]->grad.L2Norm();
  EXPECT_GT(grad_norm, 0.0f);
  net.ZeroGrad();
  EXPECT_EQ(net.Params()[0]->grad.L2Norm(), 0.0f);
}

TEST(SequentialTest, DeepNetworkGradientCheck) {
  Rng rng(12);
  Sequential net;
  net.Emplace<Dense>(6, 10, Init::kHeNormal, &rng);
  net.Emplace<ReLU>();
  net.Emplace<Dense>(10, 8, Init::kHeNormal, &rng);
  net.Emplace<ReLU>();
  net.Emplace<Dense>(8, 4, Init::kXavierUniform, &rng);
  net.Emplace<Tanh>();
  Tensor input = Tensor::RandomNormal({4, 6}, 0.7f, &rng);
  auto result = CheckGradients(&net, input, QuadraticLoss(), 96);
  EXPECT_GT(result.checked, 50u);
  EXPECT_LT(result.max_rel_error, 0.05f);
}

TEST(SequentialTest, SummaryListsLayers) {
  Rng rng(13);
  Sequential net;
  net.Emplace<Dense>(2, 3, Init::kZero, &rng);
  net.Emplace<ReLU>();
  const std::string summary = net.Summary();
  EXPECT_NE(summary.find("Dense(2->3)"), std::string::npos);
  EXPECT_NE(summary.find("ReLU"), std::string::npos);
}

// --- optimizers ------------------------------------------------------------

/// Minimises f(w) = ||w - target||^2 with each optimizer; both must
/// converge to the target.
template <typename MakeOpt>
void TestOptimizerConvergence(MakeOpt make_opt, float tol) {
  Parameter param(Tensor({4}, {5, -3, 2, 8}));
  const Tensor target({4}, {1, 1, 1, 1});
  std::vector<Parameter*> params = {&param};
  auto opt = make_opt(params);
  for (int step = 0; step < 500; ++step) {
    param.ZeroGrad();
    for (size_t i = 0; i < 4; ++i) {
      param.grad[i] = 2.0f * (param.value[i] - target[i]);
    }
    opt->Step();
  }
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(param.value[i], target[i], tol) << "component " << i;
  }
}

TEST(OptimizerTest, SgdConverges) {
  TestOptimizerConvergence(
      [](std::vector<Parameter*> p) {
        return std::make_unique<Sgd>(p, 0.05f, 0.9f);
      },
      1e-3f);
}

TEST(OptimizerTest, AdamConverges) {
  TestOptimizerConvergence(
      [](std::vector<Parameter*> p) {
        return std::make_unique<Adam>(p, 0.1f);
      },
      1e-2f);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Parameter param(Tensor({1}, {10.0f}));
  std::vector<Parameter*> params = {&param};
  Sgd opt(params, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  for (int step = 0; step < 100; ++step) {
    param.ZeroGrad();  // no data gradient; only decay acts
    opt.Step();
  }
  EXPECT_LT(std::fabs(param.value[0]), 0.1f);
}

TEST(OptimizerTest, LearningRateAdjustable) {
  Parameter param(Tensor({1}, {1.0f}));
  std::vector<Parameter*> params = {&param};
  Sgd opt(params, 1.0f, 0.0f);
  EXPECT_EQ(opt.learning_rate(), 1.0f);
  opt.set_learning_rate(0.0f);
  param.grad[0] = 100.0f;
  opt.Step();
  EXPECT_EQ(param.value[0], 1.0f);  // lr 0 -> no movement
}

TEST(OptimizerTest, TrainXorWithAdam) {
  // A 2-2-1 tanh net can fit XOR: end-to-end sanity of forward/backward.
  Rng rng(14);
  Sequential net;
  net.Emplace<Dense>(2, 8, Init::kXavierUniform, &rng);
  net.Emplace<Tanh>();
  net.Emplace<Dense>(8, 1, Init::kXavierUniform, &rng);
  net.Emplace<Tanh>();
  Adam opt(net.Params(), 0.03f);

  const Tensor inputs({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  const Tensor targets({4, 1}, {-1, 1, 1, -1});
  for (int epoch = 0; epoch < 800; ++epoch) {
    net.ZeroGrad();
    Tensor out = net.Forward(inputs, true);
    Tensor grad = Sub(out, targets);
    net.Backward(grad);
    opt.Step();
  }
  Tensor out = net.Forward(inputs, false);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_GT(out[i] * targets[i], 0.25f) << "sample " << i;
  }
}

}  // namespace
}  // namespace agoraeo::nn
