/// Tests for the observability layer: histogram quantile correctness
/// against a sorted reference, concurrent record/snapshot safety (run
/// under TSan in CI), the Prometheus exposition golden shape, slow-query
/// ring eviction, and end-to-end trace propagation across a 2-node
/// cluster fan-out.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/feature_extractor.h"
#include "cluster/cluster_node.h"
#include "cluster/coordinator.h"
#include "cluster/slot_table.h"
#include "common/binary_code.h"
#include "earthqube/earthqube.h"
#include "json/json.h"
#include "milan/milan_model.h"
#include "netsvc/client.h"
#include "netsvc/server.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"

namespace agoraeo::obs {
namespace {

using docstore::Document;
using docstore::Value;

// --- histogram ---------------------------------------------------------------

TEST(HistogramTest, QuantilesMatchSortedReference) {
  Histogram histogram(1'000, 10'000'000);
  std::vector<uint64_t> reference;
  // Deterministic LCG stream spread over three and a half decades.
  uint64_t x = 0x12345678abcdef01ULL;
  for (int i = 0; i < 10'000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint64_t value = 1'000 + (x >> 33) % 5'000'000;
    histogram.Record(value);
    reference.push_back(value);
  }
  std::sort(reference.begin(), reference.end());

  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, reference.size());
  uint64_t expected_sum = 0;
  for (uint64_t v : reference) expected_sum += v;
  EXPECT_EQ(snapshot.sum, expected_sum);

  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const size_t rank = std::min(
        reference.size() - 1,
        static_cast<size_t>(q * static_cast<double>(reference.size())));
    const double exact = static_cast<double>(reference[rank]);
    const double approx = static_cast<double>(snapshot.Quantile(q));
    // Log-bucketed with four sub-buckets per octave: ~9% worst-case
    // bucket width; interpolation keeps the error well inside 15%.
    EXPECT_NEAR(approx, exact, exact * 0.15) << "q=" << q;
  }
}

TEST(HistogramTest, OverflowReportsTopBoundAsFloor) {
  Histogram histogram(100, 200);
  histogram.Record(1'000'000);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1u);
  // Values past the top bound report the bound — "at least this".
  EXPECT_EQ(snapshot.Quantile(0.5), snapshot.bounds.back());
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram histogram(1'000, 1'000'000);
  EXPECT_EQ(histogram.Snapshot().Quantile(0.99), 0u);
  EXPECT_EQ(histogram.Snapshot().MeanNs(), 0.0);
}

TEST(HistogramTest, ConcurrentRecordAndSnapshot) {
  // 8 writers hammer one histogram while readers snapshot it; the final
  // snapshot must account for every record.  This is the TSan probe for
  // the striped-atomic design.
  Histogram histogram(1'000, 1'000'000);
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("agoraeo_hammer_total");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const HistogramSnapshot snapshot = histogram.Snapshot();
      // Monotone sanity under concurrency: never more sum than count*max.
      EXPECT_LE(snapshot.count, static_cast<uint64_t>(kThreads) * kPerThread);
      (void)registry.PrometheusText();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<uint64_t>(1'000 + (i + t) % 1'000));
        counter->Increment();
      }
    });
  }
  for (auto& thread : writers) thread.join();
  stop = true;
  reader.join();

  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(counter->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      expected_sum += static_cast<uint64_t>(1'000 + (i + t) % 1'000);
    }
  }
  EXPECT_EQ(snapshot.sum, expected_sum);
}

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("agoraeo_a_total");
  Gauge* g = registry.GetGauge("agoraeo_g");
  Histogram* h = registry.GetHistogram("agoraeo_h_ns", 1'000, 1'000'000);
  EXPECT_EQ(a, registry.GetCounter("agoraeo_a_total"));
  EXPECT_EQ(g, registry.GetGauge("agoraeo_g"));
  EXPECT_EQ(h, registry.GetHistogram("agoraeo_h_ns", 1, 2));
}

// --- exposition --------------------------------------------------------------

TEST(MetricsRegistryTest, PrometheusExpositionGolden) {
  MetricsRegistry registry;
  registry
      .GetCounter(
          LabeledName("agoraeo_demo_requests_total", "route", "POST /api/v2/query"))
      ->Add(3);
  registry.GetGauge("agoraeo_demo_inflight")->Set(-2);
  // min=100 max=200 gives bounds [100,125,150,175,200]; all records land
  // in the first bucket (lower edge 0), so quantiles interpolate to
  // exactly 100*q and the exposition is byte-stable.
  Histogram* latency = registry.GetHistogram("agoraeo_demo_latency_ns", 100, 200);
  for (int i = 0; i < 4; ++i) latency->Record(100);
  Histogram* shard =
      registry.GetHistogram(LabeledName("agoraeo_demo_shard_ns", "shard", "3"),
                            100, 200);
  shard->Record(100);
  registry.AddCollector([](std::vector<Sample>* out) {
    out->push_back({LabeledName("agoraeo_demo_collected_total", "cache",
                                "response"),
                    SampleKind::kCounter, 7});
    out->push_back({LabeledName("agoraeo_demo_collected_total", "cache",
                                "negative"),
                    SampleKind::kCounter, 2});
    out->push_back({"agoraeo_demo_items", SampleKind::kGauge, 12.5});
  });

  const std::string expected =
      "# TYPE agoraeo_demo_requests_total counter\n"
      "agoraeo_demo_requests_total{route=\"POST /api/v2/query\"} 3\n"
      "# TYPE agoraeo_demo_inflight gauge\n"
      "agoraeo_demo_inflight -2\n"
      "# TYPE agoraeo_demo_latency_ns summary\n"
      "agoraeo_demo_latency_ns{quantile=\"0.5\"} 50\n"
      "agoraeo_demo_latency_ns{quantile=\"0.9\"} 90\n"
      "agoraeo_demo_latency_ns{quantile=\"0.99\"} 99\n"
      "agoraeo_demo_latency_ns{quantile=\"0.999\"} 99\n"
      "agoraeo_demo_latency_ns_sum 400\n"
      "agoraeo_demo_latency_ns_count 4\n"
      "# TYPE agoraeo_demo_shard_ns summary\n"
      "agoraeo_demo_shard_ns{shard=\"3\",quantile=\"0.5\"} 50\n"
      "agoraeo_demo_shard_ns{shard=\"3\",quantile=\"0.9\"} 90\n"
      "agoraeo_demo_shard_ns{shard=\"3\",quantile=\"0.99\"} 99\n"
      "agoraeo_demo_shard_ns{shard=\"3\",quantile=\"0.999\"} 99\n"
      "agoraeo_demo_shard_ns_sum{shard=\"3\"} 100\n"
      "agoraeo_demo_shard_ns_count{shard=\"3\"} 1\n"
      "# TYPE agoraeo_demo_collected_total counter\n"
      "agoraeo_demo_collected_total{cache=\"response\"} 7\n"
      "agoraeo_demo_collected_total{cache=\"negative\"} 2\n"
      "# TYPE agoraeo_demo_items gauge\n"
      "agoraeo_demo_items 12.5\n";
  EXPECT_EQ(registry.PrometheusText(), expected);
}

TEST(MetricsRegistryTest, JsonTextParses) {
  MetricsRegistry registry;
  registry.GetCounter("agoraeo_a_total")->Add(9);
  registry.GetHistogram("agoraeo_h_ns", 100, 200)->Record(100);
  registry.AddCollector([](std::vector<Sample>* out) {
    out->push_back({"agoraeo_items", SampleKind::kGauge, 4});
  });
  auto doc = json::ParseObject(registry.JsonText());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("agoraeo_a_total")->as_int64(), 9);
  EXPECT_EQ(doc->Get("agoraeo_items")->as_int64(), 4);
  const Value* histogram = doc->Get("agoraeo_h_ns");
  ASSERT_NE(histogram, nullptr);
  ASSERT_TRUE(histogram->is_document());
  EXPECT_EQ(histogram->as_document().Get("count")->as_int64(), 1);
  EXPECT_EQ(histogram->as_document().Get("sum_ns")->as_int64(), 100);
}

TEST(MetricsRegistryTest, LabeledNameEscapes) {
  EXPECT_EQ(LabeledName("m", "k", "a\"b\\c\nd"),
            "m{k=\"a\\\"b\\\\c\\nd\"}");
}

// --- observability bundle gating ---------------------------------------------

TEST(ObservabilityTest, DisabledMetricsAndTracingReturnNull) {
  ObsConfig config;
  config.enable_metrics = false;
  config.enable_tracing = false;
  Observability off(config);
  EXPECT_EQ(off.CounterOrNull("agoraeo_x_total"), nullptr);
  EXPECT_EQ(off.GaugeOrNull("agoraeo_x"), nullptr);
  EXPECT_EQ(off.HistogramOrNull("agoraeo_x_ns"), nullptr);
  EXPECT_EQ(off.StartTrace(), nullptr);
  EXPECT_EQ(off.StartTrace("deadbeefdeadbeef"), nullptr);

  Observability on;
  EXPECT_NE(on.CounterOrNull("agoraeo_x_total"), nullptr);
  auto trace = on.StartTrace("deadbeefdeadbeef");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->id(), "deadbeefdeadbeef");
}

// --- traces ------------------------------------------------------------------

TEST(TraceTest, NewIdIsSixteenHexAndUnique) {
  std::set<std::string> ids;
  for (int i = 0; i < 1'000; ++i) {
    const std::string id = Trace::NewId();
    ASSERT_EQ(id.size(), 16u);
    EXPECT_EQ(id.find_first_not_of("0123456789abcdef"), std::string::npos);
    EXPECT_TRUE(ids.insert(id).second) << id;
  }
}

TEST(TraceTest, ToJsonCarriesSpansAndChildren) {
  Trace trace("cafef00dcafef00d");
  trace.AddSpan("index_pass", trace.born_ns() + 2'000, 5'000);
  trace.AddChild("n1", {{"execute", 0, 3'000}});
  auto doc = json::ParseObject(trace.ToJson());
  ASSERT_TRUE(doc.ok()) << trace.ToJson();
  EXPECT_EQ(doc->Get("trace_id")->as_string(), "cafef00dcafef00d");
  const auto& spans = doc->Get("spans")->as_array();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].as_document().Get("name")->as_string(), "index_pass");
  EXPECT_EQ(spans[0].as_document().Get("start_us")->as_int64(), 2);
  EXPECT_EQ(spans[0].as_document().Get("dur_us")->as_int64(), 5);
  const auto& children = doc->Get("children")->as_array();
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0].as_document().Get("node")->as_string(), "n1");
  EXPECT_EQ(children[0].as_document().Get("spans")->as_array().size(), 1u);
}

// --- slow-query log ----------------------------------------------------------

TEST(SlowQueryLogTest, RingEvictsOldestAndServesWorstFirst) {
  SlowQueryLog log(/*threshold_ns=*/100, /*capacity=*/3);
  log.Observe(50, "t0", "fast", "");  // below threshold: rejected
  log.Observe(150, "ta", "a", "");
  log.Observe(300, "tb", "b", "");
  log.Observe(200, "tc", "c", "");
  log.Observe(400, "td", "d", "");  // evicts "a" (oldest by seq)

  const std::vector<SlowQueryRecord> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_EQ(worst[0].trace_id, "td");
  EXPECT_EQ(worst[1].trace_id, "tb");
  EXPECT_EQ(worst[2].trace_id, "tc");
  EXPECT_GT(worst[0].seq, worst[1].seq);

  auto doc = json::ParseObject(log.ToJson());
  ASSERT_TRUE(doc.ok()) << log.ToJson();
  EXPECT_EQ(doc->Get("count")->as_int64(), 3);
  EXPECT_EQ(doc->Get("slow_queries")->as_array().size(), 3u);
}

TEST(SlowQueryLogTest, ZeroCapacityKeepsNothing) {
  SlowQueryLog log(0, 0);
  log.Observe(1'000'000, "t", "s", "");
  EXPECT_TRUE(log.WorstFirst().empty());
}

// --- cluster trace propagation -----------------------------------------------

TEST(ClusterTraceTest, FanOutMergesChildSpansFromEveryNode) {
  // A tiny 2-node cluster: codes are synthetic (no model training — the
  // coordinator ships codes on ingest and the test queries by panel and
  // by code only), and both tiers run with slow-query threshold 0 so
  // every request lands in the ring with its full trace.
  bigearthnet::ArchiveConfig archive_config;
  archive_config.num_patches = 60;
  archive_config.seed = 5;
  bigearthnet::ArchiveGenerator generator(archive_config);
  auto archive = generator.Generate();
  ASSERT_TRUE(archive.ok());
  std::vector<BinaryCode> codes;
  for (const auto& patch : archive->patches) {
    std::string bits;
    for (int b = 0; b < 32; ++b) bits += (patch.name.size() + b) % 3 ? '1' : '0';
    codes.push_back(BinaryCode::FromBitString(bits));
  }

  bigearthnet::FeatureExtractor extractor;
  milan::MilanConfig mconfig;
  mconfig.feature_dim = bigearthnet::kFeatureDim;
  mconfig.hidden1 = 16;
  mconfig.hidden2 = 8;
  mconfig.hash_bits = 32;
  auto make_system = [&] {
    earthqube::EarthQubeConfig config;
    config.obs.slow_query_threshold_ns = 0;
    auto* system = new earthqube::EarthQube(config);
    system->AttachCbir(std::make_unique<earthqube::CbirService>(
        std::make_unique<milan::MilanModel>(mconfig), &extractor));
    return system;
  };
  std::unique_ptr<earthqube::EarthQube> s1(make_system());
  std::unique_ptr<earthqube::EarthQube> s2(make_system());

  cluster::ClusterNode::Options o1, o2;
  o1.id = "t1";
  o2.id = "t2";
  cluster::ClusterNode n1(s1.get(), o1);
  cluster::ClusterNode n2(s2.get(), o2);
  ASSERT_TRUE(n1.Start(0).ok());
  ASSERT_TRUE(n2.Start(0).ok());
  const cluster::SlotTable table({n1.address(), n2.address()}, 16);
  n1.SetTable(table);
  n2.SetTable(table);

  cluster::Coordinator::Options coordinator_options;
  coordinator_options.obs.slow_query_threshold_ns = 0;
  cluster::Coordinator coordinator(coordinator_options);
  coordinator.AttachTable(table);
  ASSERT_TRUE(coordinator.IngestArchive(*archive, codes).ok());

  auto result = coordinator.Query(R"({"panel":{"seasons":["summer"]}})");
  ASSERT_TRUE(result.ok()) << result.status().message();

  // The coordinator's slow log holds ONE merged trace for the fan-out:
  // its own resolve/fanout/merge spans plus a child span set per node.
  const std::vector<SlowQueryRecord> worst =
      coordinator.obs().slow_log().WorstFirst();
  ASSERT_FALSE(worst.empty());
  const SlowQueryRecord* fanout_record = nullptr;
  for (const SlowQueryRecord& record : worst) {
    if (record.summary.find("fan-out") != std::string::npos) {
      fanout_record = &record;
      break;
    }
  }
  ASSERT_NE(fanout_record, nullptr);
  EXPECT_EQ(fanout_record->trace_id.size(), 16u);
  auto trace_doc = json::ParseObject(fanout_record->trace_json);
  ASSERT_TRUE(trace_doc.ok()) << fanout_record->trace_json;
  EXPECT_EQ(trace_doc->Get("trace_id")->as_string(), fanout_record->trace_id);
  std::set<std::string> span_names;
  for (const Value& span : trace_doc->Get("spans")->as_array()) {
    span_names.insert(span.as_document().Get("name")->as_string());
  }
  EXPECT_TRUE(span_names.count("fanout")) << fanout_record->trace_json;
  EXPECT_TRUE(span_names.count("merge")) << fanout_record->trace_json;
  const auto& children = trace_doc->Get("children")->as_array();
  ASSERT_EQ(children.size(), 2u) << fanout_record->trace_json;
  std::set<std::string> child_nodes;
  for (const Value& child : children) {
    child_nodes.insert(child.as_document().Get("node")->as_string());
    EXPECT_FALSE(child.as_document().Get("spans")->as_array().empty());
  }
  EXPECT_EQ(child_nodes, (std::set<std::string>{"t1", "t2"}));

  // Each node adopted the coordinator's trace id: the same id shows up
  // in the node-side slow logs (threshold 0 there too).
  for (earthqube::EarthQube* system : {s1.get(), s2.get()}) {
    bool found = false;
    for (const SlowQueryRecord& record : system->obs().slow_log().WorstFirst()) {
      if (record.trace_id == fanout_record->trace_id) found = true;
    }
    EXPECT_TRUE(found) << "node missing propagated trace "
                       << fanout_record->trace_id;
  }

  // Direct node probe: a propagated x-trace-id is adopted verbatim and
  // the stage spans come back in x-trace-spans.
  netsvc::HttpClient client;
  auto direct = client.Request(
      n1.port(), "POST", "/api/v2/query", R"({"panel":{"limit":5}})",
      "application/json", nullptr, {{"x-trace-id", "feedface00000000"}});
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(direct->status_code, 200) << direct->body;
  auto id_header = direct->headers.find("x-trace-id");
  ASSERT_NE(id_header, direct->headers.end());
  EXPECT_EQ(id_header->second, "feedface00000000");
  auto spans_header = direct->headers.find("x-trace-spans");
  ASSERT_NE(spans_header, direct->headers.end());
  auto spans = json::Parse(spans_header->second);
  ASSERT_TRUE(spans.ok()) << spans_header->second;
  EXPECT_TRUE(spans->is_array());
  EXPECT_FALSE(spans->as_array().empty());

  // The node serves the full registry at /metrics (HTTP-layer counters
  // included); the coordinator's own registry has the client metrics.
  auto node_metrics = client.Get(n1.port(), "/metrics");
  ASSERT_TRUE(node_metrics.ok());
  ASSERT_EQ(node_metrics->status_code, 200);
  EXPECT_NE(node_metrics->body.find("agoraeo_http_requests_total"),
            std::string::npos);

  netsvc::HttpServer coordinator_server(2);
  coordinator.RegisterRoutes(&coordinator_server);
  ASSERT_TRUE(coordinator_server.Start(0).ok());
  auto coordinator_metrics = client.Get(coordinator_server.port(), "/metrics");
  ASSERT_TRUE(coordinator_metrics.ok());
  ASSERT_EQ(coordinator_metrics->status_code, 200);
  EXPECT_NE(
      coordinator_metrics->body.find("agoraeo_http_client_requests_total"),
      std::string::npos);
  auto slow = client.Get(coordinator_server.port(),
                         "/api/v2/debug/slow_queries");
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(slow->status_code, 200);
  auto slow_doc = json::ParseObject(slow->body);
  ASSERT_TRUE(slow_doc.ok());
  EXPECT_GT(slow_doc->Get("count")->as_int64(), 0);
  coordinator_server.Stop();

  n1.Stop();
  n2.Stop();
}

}  // namespace
}  // namespace agoraeo::obs
